// Key-value store with prefix scans: an in-memory index over string keys
// (the paper's motivating in-memory-storage setting) backed by PIM-trie.
// Keys are byte strings encoded as bit-strings; SubtreeQuery implements
// prefix scans ("give me every key under 'user:42:'"), and skewed batch
// updates exercise the structure's skew resistance.
//
//   ./build/examples/kv_prefix_store

#include <cstdio>
#include <string>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

namespace {

ptrie::core::BitString key_of(const std::string& s) {
  return ptrie::core::BitString::from_bytes(s);
}

std::string string_of(const ptrie::core::BitString& b) {
  std::string out(b.size() / 8, '\0');
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned char c = 0;
    for (int k = 0; k < 8; ++k) c = static_cast<unsigned char>((c << 1) | b.bit(i * 8 + k));
    out[i] = static_cast<char>(c);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ptrie;

  pim::System machine(/*p=*/8, /*seed=*/31);
  pimtrie::Config cfg;
  cfg.seed = 13;
  pimtrie::PimTrie store(machine, cfg);

  // Load a table of user/session/object records keyed hierarchically.
  std::vector<core::BitString> keys;
  std::vector<std::uint64_t> values;
  core::Rng rng(17);
  for (int user = 0; user < 120; ++user) {
    for (int item = 0, n = 1 + static_cast<int>(rng.below(12)); item < n; ++item) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "user:%04d:item:%03d", user, item);
      keys.push_back(key_of(buf));
      values.push_back(user * 1000 + item);
    }
    char sbuf[64];
    std::snprintf(sbuf, sizeof sbuf, "user:%04d:profile", user);
    keys.push_back(key_of(sbuf));
    values.push_back(user);
  }
  store.build(keys, values);
  std::printf("store: %zu records across %zu PIM blocks\n", store.key_count(),
              store.block_count());

  // Prefix scan: everything belonging to one user.
  auto scan = store.batch_subtree({key_of("user:0042:")});
  std::printf("\nscan(\"user:0042:\") -> %zu records:\n", scan[0].size());
  for (std::size_t i = 0; i < std::min<std::size_t>(scan[0].size(), 5); ++i)
    std::printf("  %-28s = %llu\n", string_of(scan[0][i].first).c_str(),
                (unsigned long long)scan[0][i].second);

  // Point reads via find().
  auto v = store.find(key_of("user:0042:profile"));
  std::printf("\nget(\"user:0042:profile\") = %s\n",
              v ? std::to_string(*v).c_str() : "(miss)");

  // A skewed write burst: one hot user gets hammered with new items.
  std::vector<core::BitString> hot_keys;
  std::vector<std::uint64_t> hot_vals;
  for (int item = 100; item < 400; ++item) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "user:0042:item:%03d", item);
    hot_keys.push_back(key_of(buf));
    hot_vals.push_back(42'000 + item);
  }
  machine.metrics().reset();
  store.batch_insert(hot_keys, hot_vals);
  std::printf("\nhot-user insert burst of %zu keys: rounds = %zu, comm imbalance = %.2fx "
              "(random block placement keeps modules balanced)\n",
              hot_keys.size(), machine.metrics().io_rounds(),
              machine.metrics().comm_imbalance());

  auto rescan = store.batch_subtree({key_of("user:0042:")});
  std::printf("scan(\"user:0042:\") now -> %zu records\n", rescan[0].size());

  // Delete the whole hot user with one prefix scan + batch erase.
  std::vector<core::BitString> victims;
  for (auto& [k, val] : rescan[0]) victims.push_back(k);
  store.batch_erase(victims);
  auto gone = store.batch_subtree({key_of("user:0042:")});
  std::printf("\nafter deleting the user: scan -> %zu records, store %s\n", gone[0].size(),
              store.debug_check().empty() ? "healthy" : "BROKEN");
  return 0;
}
