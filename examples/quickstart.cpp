// Quickstart: build a PIM-trie over a small key set on a simulated
// 8-module PIM machine, then run every batch operation and print the
// PIM-Model cost metrics the paper analyzes.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace ptrie;
  using core::BitString;

  // A PIM machine with P = 8 modules (the "PIM side") plus the host CPU.
  pim::System machine(/*p=*/8, /*seed=*/2024);

  pimtrie::Config cfg;
  cfg.seed = 42;  // hash seed; every run is deterministic
  pimtrie::PimTrie index(machine, cfg);

  // 1. Bulk-load variable-length bit-string keys.
  auto keys = workload::variable_length_keys(/*n=*/2000, /*min_bits=*/24,
                                             /*max_bits=*/160, /*seed=*/1);
  std::vector<std::uint64_t> values(keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = 1000 + i;
  index.build(keys, values);
  std::printf("built: %zu keys in %zu blocks / %zu meta pieces, %zu words on PIM\n",
              index.key_count(), index.block_count(), index.piece_count(),
              index.space_words());

  // 2. Batch LongestCommonPrefix (Section 5.1).
  machine.metrics().reset();
  std::vector<BitString> queries(keys.begin(), keys.begin() + 500);
  for (auto& q : workload::miss_queries(500, 64, 7)) queries.push_back(q);
  auto lcp = index.batch_lcp(queries);
  std::printf("\nbatch_lcp over %zu queries:\n", queries.size());
  std::printf("  lcp(stored key)   = %zu bits (its full length)\n", lcp[0]);
  std::printf("  lcp(random probe) = %zu bits\n", lcp[600]);
  std::printf("  IO rounds = %zu, IO time = %llu words, comm imbalance = %.2fx\n",
              machine.metrics().io_rounds(),
              (unsigned long long)machine.metrics().io_time(),
              machine.metrics().comm_imbalance());

  // 3. Batch Insert (Section 5.2) — maintenance (block re-partitioning,
  //    meta updates) happens inside the call.
  auto extra = workload::variable_length_keys(500, 24, 160, /*seed=*/2);
  std::vector<std::uint64_t> evals(extra.size(), 7);
  machine.metrics().reset();
  index.batch_insert(extra, evals);
  std::printf("\nbatch_insert of %zu keys: now %zu keys, %zu blocks, rounds = %zu\n",
              extra.size(), index.key_count(), index.block_count(),
              machine.metrics().io_rounds());

  // 4. SubtreeQuery (Section 5.3): everything under a prefix.
  BitString prefix = keys[3].prefix(8);
  auto subtrees = index.batch_subtree({prefix});
  std::printf("\nsubtree(\"%s\"): %zu keys stored under that prefix\n",
              prefix.to_binary().c_str(), subtrees[0].size());

  // 5. Batch Delete.
  std::vector<BitString> victims(extra.begin(), extra.begin() + 250);
  index.batch_erase(victims);
  std::printf("\nbatch_erase of %zu keys: %zu keys remain, structure %s\n", victims.size(),
              index.key_count(), index.debug_check().empty() ? "healthy" : "BROKEN");
  return 0;
}
