// Suffix search: the paper's conclusion names suffix trees as future
// work to build on PIM-trie's methods. This example shows the natural
// first step: index every suffix of a text as a bit-string key, so that
// batched substring search becomes batched LCP (a query matches the text
// iff its LCP against the suffix set equals its own length), and
// batched occurrence listing becomes SubtreeQuery on the pattern.
//
//   ./build/examples/suffix_search

#include <cstdio>
#include <string>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

namespace {

ptrie::core::BitString encode(const std::string& s) {
  return ptrie::core::BitString::from_bytes(s);
}

std::string random_text(std::size_t n, ptrie::core::Rng& rng) {
  static const char alpha[] = "abcdefgh";  // small alphabet: many repeats
  std::string t(n, 'a');
  for (auto& c : t) c = alpha[rng.below(8)];
  return t;
}

}  // namespace

int main() {
  using namespace ptrie;

  pim::System machine(/*p=*/8, /*seed=*/77);
  pimtrie::Config cfg;
  cfg.seed = 78;
  pimtrie::PimTrie index(machine, cfg);

  core::Rng rng(79);
  std::string text = random_text(1200, rng);

  // Index all suffixes, capped at 24 characters (a "suffix array with
  // limited context" — plenty for substring search up to that length).
  const std::size_t cap = 24;
  std::vector<core::BitString> suffixes;
  std::vector<std::uint64_t> positions;
  for (std::size_t i = 0; i < text.size(); ++i) {
    suffixes.push_back(encode(text.substr(i, cap)));
    positions.push_back(i);
  }
  index.build(suffixes, positions);
  std::printf("suffix index over %zu chars: %zu suffixes, %zu blocks, %zu words on PIM\n",
              text.size(), index.key_count(), index.block_count(), index.space_words());

  // Batched substring search: 400 patterns, half genuine substrings.
  std::vector<std::string> patterns;
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0) {
      std::size_t pos = rng.below(text.size() - 12);
      patterns.push_back(text.substr(pos, 4 + rng.below(8)));
    } else {
      std::string p;
      for (int k = 0; k < 6; ++k) p.push_back("abcdefgh"[rng.below(8)]);
      patterns.push_back(p);
    }
  }
  std::vector<core::BitString> queries;
  for (const auto& p : patterns) queries.push_back(encode(p));

  machine.metrics().reset();
  auto lcp = index.batch_lcp(queries);
  std::size_t found = 0, checked = 0, correct = 0;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    bool hit = lcp[i] == queries[i].size();
    found += hit;
    if (i % 13 == 0) {  // spot-check against std::string::find
      ++checked;
      bool want = text.find(patterns[i]) != std::string::npos;
      correct += (hit == want);
    }
  }
  std::printf("\nsubstring search over %zu patterns: %zu present; %zu/%zu spot-checks "
              "agree with std::string::find\n",
              patterns.size(), found, correct, checked);
  std::printf("IO rounds = %zu, words/pattern = %.2f, comm imbalance = %.2fx\n",
              machine.metrics().io_rounds(),
              double(machine.metrics().total_comm_words()) / patterns.size(),
              machine.metrics().comm_imbalance());

  // Occurrence listing: all positions where one frequent 3-gram occurs.
  std::string gram = text.substr(100, 3);
  auto occ = index.batch_subtree({encode(gram)});
  std::size_t want_occ = 0;
  for (std::size_t i = 0; i + 3 <= text.size(); ++i)
    if (text.compare(i, 3, gram) == 0) ++want_occ;
  std::printf("\noccurrences of \"%s\": %zu via SubtreeQuery, %zu via scan — %s\n",
              gram.c_str(), occ[0].size(), want_occ,
              occ[0].size() == want_occ ? "match" : "MISMATCH");
  return 0;
}
