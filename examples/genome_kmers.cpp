// Genome k-mer index: one of the PIM application domains the paper's
// introduction cites (genome analysis). DNA 2-bit encodes naturally into
// bit-strings; we index all k-mers of a synthetic genome and answer
// longest-shared-prefix queries for read fragments — a building block of
// seed-and-extend alignment. The data is heavily skewed on purpose
// (repetitive genome regions), showing the skew-resistance machinery on
// realistic-shaped data.
//
//   ./build/examples/genome_kmers

#include <cstdio>
#include <string>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

namespace {

// 2-bit DNA encoding: A=00 C=01 G=10 T=11.
ptrie::core::BitString encode(const std::string& dna) {
  ptrie::core::BitString out;
  for (char c : dna) {
    unsigned v = c == 'A' ? 0 : c == 'C' ? 1 : c == 'G' ? 2 : 3;
    out.push_back(v & 2);
    out.push_back(v & 1);
  }
  return out;
}

std::string random_genome(std::size_t n, ptrie::core::Rng& rng) {
  static const char bases[] = "ACGT";
  std::string g(n, 'A');
  for (auto& c : g) c = bases[rng.below(4)];
  // Inject repeats: copy a segment several times (real genomes are
  // repetitive; this makes the k-mer trie skewed).
  if (n > 600) {
    std::string repeat = g.substr(50, 80);
    for (int r = 0; r < 6; ++r) g.replace(150 + r * 90, repeat.size(), repeat);
  }
  return g;
}

}  // namespace

int main() {
  using namespace ptrie;

  pim::System machine(/*p=*/16, /*seed=*/5);
  pimtrie::Config cfg;
  cfg.seed = 23;
  pimtrie::PimTrie index(machine, cfg);

  core::Rng rng(29);
  const std::size_t k = 32;  // 32-mers = 64-bit keys
  std::string genome = random_genome(6000, rng);

  // Index every k-mer with its genome position as the value.
  std::vector<core::BitString> kmers;
  std::vector<std::uint64_t> positions;
  for (std::size_t i = 0; i + k <= genome.size(); ++i) {
    kmers.push_back(encode(genome.substr(i, k)));
    positions.push_back(i);
  }
  index.build(kmers, positions);
  std::printf("indexed %zu distinct %zu-mers of a %zu bp genome (%zu blocks)\n",
              index.key_count(), k, genome.size(), index.block_count());

  // Query: fragments of reads — some exact genome substrings, some with
  // simulated sequencing errors.
  std::vector<core::BitString> reads;
  for (int i = 0; i < 800; ++i) {
    std::size_t pos = rng.below(genome.size() - k);
    std::string frag = genome.substr(pos, k);
    if (i % 3 == 0) frag[5 + rng.below(k - 5)] = "ACGT"[rng.below(4)];  // error
    reads.push_back(encode(frag));
  }
  machine.metrics().reset();
  auto lcp = index.batch_lcp(reads);
  std::size_t exact = 0, long_seed = 0;
  for (auto l : lcp) {
    if (l == 2 * k) ++exact;
    if (l >= 30) ++long_seed;  // >= 15 bp seed
  }
  std::printf("\naligned %zu read fragments: %zu exact hits, %zu with seeds >= 15bp\n",
              reads.size(), exact, long_seed);
  std::printf("IO rounds = %zu, words/read = %.2f, comm imbalance = %.2fx "
              "(repetitive k-mers do not hot-spot any module)\n",
              machine.metrics().io_rounds(),
              double(machine.metrics().total_comm_words()) / reads.size(),
              machine.metrics().comm_imbalance());

  // Which positions share a given seed? SubtreeQuery on the seed prefix.
  core::BitString seed = encode(genome.substr(150, 16));  // inside the repeat
  auto hits = index.batch_subtree({seed});
  std::printf("\nseed scan (16 bp from the repeat region): %zu k-mer positions share it\n",
              hits[0].size());
  return 0;
}
