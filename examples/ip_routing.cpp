// IP routing example: longest-prefix-match forwarding with a PIM-trie.
//
// Radix trees are the textbook structure for IP routing tables (the
// paper's introduction cites BSD's tree-based routing table and Linux's
// fib_trie). Here a synthetic IPv4 FIB of CIDR prefixes (variable length
// 8..32 bits — exactly the variable-length keys PIM-trie supports) is
// loaded onto the PIM side, and packet destinations are resolved in
// batches via batch_lcp: the answer for each packet is the longest stored
// prefix of its 32-bit address.
//
//   ./build/examples/ip_routing

#include <cstdio>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace ptrie;
  using core::BitString;

  pim::System machine(/*p=*/16, /*seed=*/7);
  pimtrie::Config cfg;
  cfg.seed = 99;
  pimtrie::PimTrie fib(machine, cfg);

  // Synthetic FIB: 20k CIDR prefixes, next-hop ids as values.
  auto prefixes = workload::ipv4_prefixes(20'000, /*seed=*/3);
  std::vector<std::uint64_t> next_hop(prefixes.size());
  for (std::size_t i = 0; i < next_hop.size(); ++i) next_hop[i] = i % 64;
  fib.build(prefixes, next_hop);
  std::printf("FIB: %zu prefixes, %zu PIM blocks, space %zu words\n", fib.key_count(),
              fib.block_count(), fib.space_words());

  // A batch of packet destinations: half hit stored prefixes (traffic to
  // known routes), half are random addresses.
  core::Rng rng(11);
  std::vector<BitString> packets;
  for (int i = 0; i < 4000; ++i) {
    if (i % 2 == 0) {
      const BitString& p = prefixes[rng.below(prefixes.size())];
      BitString addr = p;  // extend the prefix to a full /32 address
      while (addr.size() < 32) addr.push_back(rng.coin());
      packets.push_back(std::move(addr));
    } else {
      packets.push_back(BitString::from_uint(rng() >> 32, 32));
    }
  }

  machine.metrics().reset();
  auto lcp = fib.batch_lcp(packets);
  std::printf("\nresolved %zu packets: IO rounds = %zu, words/packet = %.2f, "
              "comm imbalance = %.2fx\n",
              packets.size(), machine.metrics().io_rounds(),
              double(machine.metrics().total_comm_words()) / packets.size(),
              machine.metrics().comm_imbalance());

  // Longest-prefix match = deepest stored prefix along the packet's
  // address path. batch_lcp gives the matched depth; a stored prefix of
  // exactly that length is the route (verify with the host reference).
  trie::Patricia ref;
  for (std::size_t i = 0; i < prefixes.size(); ++i) ref.insert(prefixes[i], next_hop[i]);
  std::size_t routed = 0, verified = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Walk down to the deepest stored prefix <= lcp[i] bits.
    std::size_t best = 0;
    bool found = false;
    std::uint64_t hop = 0;
    for (std::size_t len = std::min<std::size_t>(lcp[i], 32); len >= 8; --len) {
      auto v = ref.find(packets[i].prefix(len));
      if (v) {
        best = len;
        hop = *v;
        found = true;
        break;
      }
    }
    if (found) {
      ++routed;
      // Spot-check against brute force on a sample.
      if (i % 97 == 0) {
        std::size_t want = 0;
        for (const auto& p : prefixes)
          if (p.is_prefix_of(packets[i])) want = std::max(want, p.size());
        if (want == best) ++verified;
      }
      (void)hop;
    }
  }
  std::printf("routed %zu/%zu packets via longest-prefix match (%zu spot-checks ok)\n",
              routed, packets.size(), verified);

  // Route updates: BGP-style batch of withdrawals + announcements.
  std::vector<BitString> withdrawn(prefixes.begin(), prefixes.begin() + 1000);
  fib.batch_erase(withdrawn);
  auto announced = workload::ipv4_prefixes(1500, /*seed=*/5);
  std::vector<std::uint64_t> hops(announced.size(), 9);
  fib.batch_insert(announced, hops);
  std::printf("\nafter update batch: %zu prefixes, structure %s\n", fib.key_count(),
              fib.debug_check().empty() ? "healthy" : "BROKEN");
  return 0;
}
