#include "core/bitstring.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ptrie::core {

namespace {
constexpr std::size_t kW = BitString::kWordBits;

std::size_t words_for(std::size_t nbits) { return (nbits + kW - 1) / kW; }
}  // namespace

BitString BitString::from_binary(std::string_view pattern) {
  BitString s;
  s.nbits_ = pattern.size();
  s.words_.assign(words_for(s.nbits_), 0);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (c != '0' && c != '1') throw std::invalid_argument("BitString::from_binary: bad char");
    if (c == '1') s.set_bit(i, true);
  }
  return s;
}

BitString BitString::from_bytes(std::string_view bytes) {
  BitString s;
  s.nbits_ = bytes.size() * 8;
  s.words_.assign(words_for(s.nbits_), 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto b = static_cast<std::uint8_t>(bytes[i]);
    std::size_t w = i / 8, shift = kW - 8 - 8 * (i % 8);
    s.words_[w] |= static_cast<Word>(b) << shift;
  }
  return s;
}

BitString BitString::from_uint(std::uint64_t value, std::size_t nbits) {
  assert(nbits <= kW);
  BitString s;
  s.nbits_ = nbits;
  if (nbits == 0) return s;
  s.words_.assign(1, 0);
  // Keep the low `nbits` of value, placed at the top of the word so that
  // bit 0 of the string is the most significant of those nbits.
  std::uint64_t v = nbits == kW ? value : (value & ((std::uint64_t{1} << nbits) - 1));
  s.words_[0] = v << (kW - nbits);
  return s;
}

void BitString::mask_tail() {
  std::size_t used = nbits_ % kW;
  if (!words_.empty() && used != 0) {
    words_.back() &= ~Word{0} << (kW - used);
  }
}

void BitString::push_back(bool b) {
  if (nbits_ % kW == 0) words_.push_back(0);
  ++nbits_;
  if (b) set_bit(nbits_ - 1, true);
}

void BitString::pop_back() {
  assert(nbits_ > 0);
  set_bit(nbits_ - 1, false);
  --nbits_;
  if (words_.size() > words_for(nbits_)) words_.pop_back();
}

void BitString::truncate(std::size_t len) {
  assert(len <= nbits_);
  nbits_ = len;
  words_.resize(words_for(len));
  mask_tail();
}

void BitString::append(const BitString& other) { append_slice(other, 0, other.nbits_); }

void BitString::append_slice(const BitString& other, std::size_t from, std::size_t len) {
  assert(from + len <= other.nbits_);
  if (len == 0) return;
  words_.resize(words_for(nbits_ + len), 0);
  std::size_t dst = nbits_;
  nbits_ += len;
  // Copy word-at-a-time: read a 64-bit window of `other` starting at bit
  // `from + done`, write it at bit `dst + done`.
  std::size_t done = 0;
  while (done < len) {
    std::size_t src_bit = from + done;
    std::size_t sw = src_bit / kW, soff = src_bit % kW;
    Word window = other.word(sw) << soff;
    if (soff != 0) window |= other.word(sw + 1) >> (kW - soff);
    std::size_t take = std::min<std::size_t>(kW, len - done);
    if (take < kW) window &= ~Word{0} << (kW - take);

    std::size_t dst_bit = dst + done;
    std::size_t dw = dst_bit / kW, doff = dst_bit % kW;
    words_[dw] |= window >> doff;
    if (doff != 0 && dw + 1 < words_.size()) words_[dw + 1] |= window << (kW - doff);
    done += take;
  }
  mask_tail();
}

BitString BitString::substr(std::size_t from, std::size_t len) const {
  assert(from + len <= nbits_);
  BitString out;
  out.append_slice(*this, from, len);
  return out;
}

std::size_t BitString::lcp(const BitString& other) const {
  std::size_t limit = std::min(nbits_, other.nbits_);
  std::size_t nw = words_for(limit);
  for (std::size_t w = 0; w < nw; ++w) {
    Word diff = word(w) ^ other.word(w);
    if (diff != 0) {
      std::size_t p = w * kW + static_cast<std::size_t>(std::countl_zero(diff));
      return std::min(p, limit);
    }
  }
  return limit;
}

std::size_t BitString::lcp_at(std::size_t from, const BitString& other) const {
  assert(from <= nbits_);
  std::size_t limit = std::min(nbits_ - from, other.size());
  std::size_t done = 0;
  while (done < limit) {
    std::size_t sw = (from + done) / kW, soff = (from + done) % kW;
    Word a = word(sw) << soff;
    if (soff != 0) a |= word(sw + 1) >> (kW - soff);
    std::size_t ow = done / kW, ooff = done % kW;
    Word b = other.word(ow) << ooff;
    if (ooff != 0) b |= other.word(ow + 1) >> (kW - ooff);
    Word diff = a ^ b;
    if (diff != 0) {
      return std::min(done + static_cast<std::size_t>(std::countl_zero(diff)), limit);
    }
    done += kW;
  }
  return limit;
}

std::size_t BitString::lcp_range(std::size_t from, const BitString& other,
                                 std::size_t other_from) const {
  assert(from <= nbits_ && other_from <= other.nbits_);
  std::size_t limit = std::min(nbits_ - from, other.nbits_ - other_from);
  std::size_t done = 0;
  while (done < limit) {
    std::size_t aw = (from + done) / kW, aoff = (from + done) % kW;
    Word a = word(aw) << aoff;
    if (aoff != 0) a |= word(aw + 1) >> (kW - aoff);
    std::size_t bw = (other_from + done) / kW, boff = (other_from + done) % kW;
    Word b = other.word(bw) << boff;
    if (boff != 0) b |= other.word(bw + 1) >> (kW - boff);
    Word diff = a ^ b;
    if (diff != 0)
      return std::min(done + static_cast<std::size_t>(std::countl_zero(diff)), limit);
    done += kW;
  }
  return limit;
}

bool BitString::is_prefix_of(const BitString& other) const {
  return nbits_ <= other.nbits_ && lcp(other) == nbits_;
}

bool BitString::operator==(const BitString& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

int BitString::compare(const BitString& other) const {
  std::size_t nw = std::max(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < nw; ++w) {
    Word a = word(w), b = other.word(w);
    if (a != b) return a < b ? -1 : 1;
  }
  if (nbits_ == other.nbits_) return 0;
  return nbits_ < other.nbits_ ? -1 : 1;
}

std::string BitString::to_binary() const {
  std::string out(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (bit(i)) out[i] = '1';
  return out;
}

std::size_t BitString::std_hash() const {
  // FNV-1a over the packed words plus the length.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(nbits_);
  for (Word w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

}  // namespace ptrie::core
