#pragma once
// Minimal fork-join parallel runtime in the style of the binary-forking
// model the paper assumes for its CPU side: a persistent worker pool with
// blocked parallel_for / reduce / scan / sort / pack. On a single hardware
// thread the same code paths run serially with no overhead surprises.
//
// Determinism contract: every primitive here produces output that is
// independent of the worker count (PTRIE_WORKERS). Chunk boundaries may
// vary, but results are combined in index order, sorts are merged stably,
// and scans use exact (integer) recombination — so the batch pipeline
// built on top yields byte-identical results and identical model metrics
// for any number of workers.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iterator>
#include <mutex>
#include <thread>
#include <vector>

namespace ptrie::core {

class ThreadPool {
 public:
  static ThreadPool& instance();

  // Number of workers (>= 1). Includes the calling thread's share of work.
  std::size_t workers() const { return nworkers_; }

  // Resizes the pool to exactly n workers (n >= 1). Joins the current
  // worker threads and spawns fresh ones; must not be called while a
  // parallel region is in flight. Used by benchmarks/tests to sweep the
  // worker count without re-exec'ing with a new PTRIE_WORKERS.
  void set_workers(std::size_t n);

  // Runs f(chunk_index, begin, end) over `chunks` contiguous chunks of
  // [0, n) and waits for completion. Chunks are claimed dynamically by the
  // caller plus all workers. Nested calls (from inside a chunk body) are
  // detected and run serially on the calling thread, so primitives built
  // on run_blocked compose without deadlocking.
  void run_blocked(std::size_t n, std::size_t chunks,
                   const std::function<void(std::size_t, std::size_t, std::size_t)>& f);

  // True when the calling thread is already inside a parallel region.
  static bool in_parallel_region();

  ~ThreadPool();

  // Concurrent top-level parallel regions (e.g. the serving pipeline's
  // prepare thread racing the executor thread) are legal: run_blocked
  // serializes whole jobs on an internal region mutex, so the single job
  // slot is never shared. Primitive outputs stay worker-count invariant,
  // hence unchanged by the serialization order.

 private:
  explicit ThreadPool(std::size_t nworkers);

  struct Job {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    // Claim word: (epoch & 0xffffffff) << 32 | chunks-claimed-so-far.
    // Claims are CAS'd, so a straggler still looping on a finished job can
    // neither claim nor skip a chunk of the next job — its CAS carries the
    // stale epoch tag and fails.
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void spawn_workers();
  void join_workers();
  void worker_loop();
  // Claims and runs chunks of the current job. All job parameters are
  // passed in (snapshotted under mu_ by the caller); only the tagged
  // atomic claim word is shared, so stale participants exit without
  // touching a dead body pointer.
  void run_chunks(const std::function<void(std::size_t, std::size_t, std::size_t)>* f,
                  std::size_t n, std::size_t chunks, std::uint64_t tag);

  std::size_t nworkers_;
  std::vector<std::thread> threads_;
  std::mutex region_mu_;  // serializes concurrent top-level callers
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

// RAII guard that marks the calling thread as already-parallel, so every
// primitive below runs inline (serially) on it for the guard's lifetime.
// The serving pipeline wraps its preparation stage in one of these: the
// prepared results are byte-identical (all primitives are worker-count
// invariant, and serial == one worker) while the pool stays dedicated to
// the executor thread it overlaps with.
class SerialRegion {
 public:
  SerialRegion();
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;

 private:
  bool prev_;
};

namespace detail {
// Chunk count for n items: enough chunks for dynamic load balancing
// (workers * 8) but never chunks smaller than `grain` items. Using a
// multiple of the worker count keeps the tail chunk from dominating when
// n is slightly above grain (the old `workers * 4` cap could produce two
// wildly uneven chunks).
inline std::size_t chunk_count(std::size_t n, std::size_t grain, std::size_t workers) {
  if (grain == 0) grain = 1;
  return std::min(workers * 8, (n + grain - 1) / grain);
}
}  // namespace detail

// Parallel for over [begin, end). `grain` bounds serialization granularity.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& f, std::size_t grain = 512) {
  if (begin >= end) return;
  std::size_t n = end - begin;
  auto& pool = ThreadPool::instance();
  std::size_t chunks = detail::chunk_count(n, grain, pool.workers());
  if (chunks <= 1 || ThreadPool::in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  std::function<void(std::size_t, std::size_t, std::size_t)> body =
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) f(begin + i);
      };
  pool.run_blocked(n, chunks, body);
}

// Parallel reduction with identity `id` and associative combiner `comb`;
// `f(i)` produces the element value.
template <class T, class F, class Comb>
T parallel_reduce(std::size_t begin, std::size_t end, T id, F&& f, Comb&& comb,
                  std::size_t grain = 512) {
  if (begin >= end) return id;
  std::size_t n = end - begin;
  auto& pool = ThreadPool::instance();
  std::size_t chunks = detail::chunk_count(n, grain, pool.workers());
  if (chunks <= 1 || ThreadPool::in_parallel_region()) {
    T acc = id;
    for (std::size_t i = begin; i < end; ++i) acc = comb(acc, f(i));
    return acc;
  }
  std::vector<T> partial(chunks, id);
  std::function<void(std::size_t, std::size_t, std::size_t)> body =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        T acc = id;
        for (std::size_t i = lo; i < hi; ++i) acc = comb(acc, f(begin + i));
        partial[c] = acc;
      };
  pool.run_blocked(n, chunks, body);
  T acc = id;
  for (const T& p : partial) acc = comb(acc, p);
  return acc;
}

// Exclusive prefix sum of `values` in place; returns the total.
// This is the workhorse behind the paper's prefix-sum uses (Lemma 4.4,
// Euler-tour blocking in Section 4.2). Serial reference implementation;
// parallel_exclusive_scan below is the blocked two-pass version.
template <class T>
T exclusive_scan(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    T next = total + v;
    v = total;
    total = next;
  }
  return total;
}

template <class T>
T inclusive_scan(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    total = total + v;
    v = total;
  }
  return total;
}

namespace detail {
// Shared blocked two-pass scan: chunk-local sums -> serial scan of the
// sums -> chunk-local rescan seeded with the chunk offset. Exact for the
// integer types used throughout, hence worker-count invariant.
template <class T, bool Inclusive>
T blocked_scan(std::vector<T>& values, std::size_t grain) {
  std::size_t n = values.size();
  if (n == 0) return T{};
  auto& pool = ThreadPool::instance();
  std::size_t chunks = chunk_count(n, grain, pool.workers());
  if (chunks <= 1 || ThreadPool::in_parallel_region()) {
    return Inclusive ? inclusive_scan(values) : exclusive_scan(values);
  }
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<T> sums(chunks, T{});
  std::function<void(std::size_t, std::size_t, std::size_t)> pass1 =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        T acc{};
        for (std::size_t i = lo; i < hi; ++i) acc = acc + values[i];
        sums[c] = acc;
      };
  pool.run_blocked(n, chunks, pass1);
  T total = exclusive_scan(sums);
  std::function<void(std::size_t, std::size_t, std::size_t)> pass2 =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        T acc = sums[c];
        for (std::size_t i = lo; i < hi; ++i) {
          if constexpr (Inclusive) {
            acc = acc + values[i];
            values[i] = acc;
          } else {
            T next = acc + values[i];
            values[i] = acc;
            acc = next;
          }
        }
      };
  // Both passes must agree on chunk boundaries; run_blocked derives them
  // from (n, chunks) deterministically.
  (void)chunk_size;
  pool.run_blocked(n, chunks, pass2);
  return total;
}
}  // namespace detail

// Parallel exclusive/inclusive prefix sums (blocked two-pass). In-place;
// return the grand total, matching the serial variants above.
template <class T>
T parallel_exclusive_scan(std::vector<T>& values, std::size_t grain = 2048) {
  return detail::blocked_scan<T, false>(values, grain);
}

template <class T>
T parallel_inclusive_scan(std::vector<T>& values, std::size_t grain = 2048) {
  return detail::blocked_scan<T, true>(values, grain);
}

namespace detail {
// Merge-based parallel sort shared by parallel_sort / parallel_stable_sort.
// Blocks are sorted independently, then merged pairwise with std::merge
// (stable: left block wins ties), doubling the run width each round. The
// fully sorted stable result is unique, so the output does not depend on
// the number of workers or block boundaries.
template <class It, class Compare, class BlockSort>
void merge_sort_impl(It first, It last, Compare comp, BlockSort block_sort) {
  using V = typename std::iterator_traits<It>::value_type;
  std::size_t n = static_cast<std::size_t>(last - first);
  auto& pool = ThreadPool::instance();
  constexpr std::size_t kMinBlock = 4096;
  std::size_t max_blocks = chunk_count(n, kMinBlock, pool.workers());
  if (max_blocks <= 1 || ThreadPool::in_parallel_region()) {
    block_sort(first, last);
    return;
  }
  // Round the block count down to a power of two so merge rounds pair up
  // evenly (the last block simply runs long).
  std::size_t blocks = 1;
  while (blocks * 2 <= max_blocks) blocks *= 2;
  std::size_t bs = (n + blocks - 1) / blocks;

  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        std::size_t lo = b * bs, hi = std::min(n, lo + bs);
        if (lo < hi) block_sort(first + lo, first + hi);
      },
      /*grain=*/1);

  std::vector<V> buf(n);
  V* src = &*first;
  V* dst = buf.data();
  std::size_t width = bs;
  while (width < n) {
    std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    parallel_for(
        0, pairs,
        [&](std::size_t p) {
          std::size_t lo = p * 2 * width;
          std::size_t mid = std::min(n, lo + width);
          std::size_t hi = std::min(n, lo + 2 * width);
          std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
        },
        /*grain=*/1);
    std::swap(src, dst);
    width *= 2;
  }
  if (src == buf.data()) {
    parallel_for(0, n, [&](std::size_t i) { *(first + i) = std::move(buf[i]); },
                 /*grain=*/8192);
  }
}
}  // namespace detail

// Parallel merge sort for arbitrary comparators. Not guaranteed stable.
template <class It, class Compare>
void parallel_sort(It first, It last, Compare comp) {
  detail::merge_sort_impl(first, last, comp,
                          [&](It lo, It hi) { std::sort(lo, hi, comp); });
}

template <class It>
void parallel_sort(It first, It last) {
  parallel_sort(first, last, std::less<typename std::iterator_traits<It>::value_type>{});
}

// Stable parallel merge sort: equal elements keep their input order
// (blocks are stably sorted and std::merge prefers the left run).
template <class It, class Compare>
void parallel_stable_sort(It first, It last, Compare comp) {
  detail::merge_sort_impl(first, last, comp,
                          [&](It lo, It hi) { std::stable_sort(lo, hi, comp); });
}

template <class It>
void parallel_stable_sort(It first, It last) {
  parallel_stable_sort(first, last,
                       std::less<typename std::iterator_traits<It>::value_type>{});
}

// Parallel pack (flag + scan + scatter): collects get(i) for every i in
// [0, n) with flag(i) true, preserving index order.
template <class T, class Flag, class Get>
std::vector<T> parallel_pack(std::size_t n, Flag&& flag, Get&& get) {
  std::vector<std::size_t> pos(n);
  parallel_for(0, n, [&](std::size_t i) { pos[i] = flag(i) ? 1 : 0; }, /*grain=*/4096);
  std::size_t total = parallel_exclusive_scan(pos);
  std::vector<T> out(total);
  parallel_for(
      0, n,
      [&](std::size_t i) {
        if (flag(i)) out[pos[i]] = get(i);
      },
      /*grain=*/4096);
  return out;
}

// Parallel filter: keeps the elements of `in` satisfying `pred`, in order.
template <class T, class Pred>
std::vector<T> parallel_filter(const std::vector<T>& in, Pred&& pred) {
  return parallel_pack<T>(
      in.size(), [&](std::size_t i) { return pred(in[i]); },
      [&](std::size_t i) { return in[i]; });
}

// Stable parallel bucket placement for scatter-style packing: item i goes
// to bucket dest(i) occupying size(i) slots. Returns {offset, totals}
// where offset[i] is item i's start position inside its bucket (items of
// one bucket keep index order) and totals[b] is bucket b's total size.
// Built from chunk-local per-bucket sums + a scan over (chunk, bucket)
// sums, so it is deterministic for any worker count.
struct BucketLayout {
  std::vector<std::size_t> offset;  // per item
  std::vector<std::size_t> total;   // per bucket
};

template <class Dest, class Size>
BucketLayout parallel_bucket_offsets(std::size_t n, std::size_t buckets, Dest&& dest,
                                     Size&& size) {
  BucketLayout out;
  out.offset.assign(n, 0);
  out.total.assign(buckets, 0);
  if (n == 0) return out;
  auto& pool = ThreadPool::instance();
  std::size_t chunks = detail::chunk_count(n, 4096, pool.workers());
  if (chunks <= 1 || ThreadPool::in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t b = dest(i);
      out.offset[i] = out.total[b];
      out.total[b] += size(i);
    }
    return out;
  }
  // local[c * buckets + b] = words chunk c sends to bucket b.
  std::vector<std::size_t> local(chunks * buckets, 0);
  std::function<void(std::size_t, std::size_t, std::size_t)> pass1 =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        std::size_t* row = local.data() + c * buckets;
        for (std::size_t i = lo; i < hi; ++i) row[dest(i)] += size(i);
      };
  pool.run_blocked(n, chunks, pass1);
  // Column-wise exclusive scan: chunk c's starting offset in bucket b.
  for (std::size_t b = 0; b < buckets; ++b) {
    std::size_t acc = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t v = local[c * buckets + b];
      local[c * buckets + b] = acc;
      acc += v;
    }
    out.total[b] = acc;
  }
  std::function<void(std::size_t, std::size_t, std::size_t)> pass2 =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        std::vector<std::size_t> run(local.begin() + c * buckets,
                                     local.begin() + (c + 1) * buckets);
        for (std::size_t i = lo; i < hi; ++i) {
          std::size_t b = dest(i);
          out.offset[i] = run[b];
          run[b] += size(i);
        }
      };
  pool.run_blocked(n, chunks, pass2);
  return out;
}

}  // namespace ptrie::core
