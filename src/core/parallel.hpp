#pragma once
// Minimal fork-join parallel runtime in the style of the binary-forking
// model the paper assumes for its CPU side: a persistent worker pool with
// blocked parallel_for / reduce / scan. On a single hardware thread the
// same code paths run serially with no overhead surprises.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptrie::core {

class ThreadPool {
 public:
  static ThreadPool& instance();

  // Number of workers (>= 1). Includes the calling thread's share of work.
  std::size_t workers() const { return nworkers_; }

  // Runs f(chunk_index, begin, end) over `chunks` contiguous chunks of
  // [0, n) and waits for completion. Chunk 0 runs on the caller.
  void run_blocked(std::size_t n, std::size_t chunks,
                   const std::function<void(std::size_t, std::size_t, std::size_t)>& f);

  ~ThreadPool();

 private:
  explicit ThreadPool(std::size_t nworkers);

  struct Job {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::uint64_t epoch = 0;
  };

  void worker_loop();
  static void run_chunks(Job& job);

  std::size_t nworkers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

// Parallel for over [begin, end). `grain` bounds serialization granularity.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& f, std::size_t grain = 512) {
  if (begin >= end) return;
  std::size_t n = end - begin;
  auto& pool = ThreadPool::instance();
  std::size_t chunks = std::min(pool.workers() * 4, (n + grain - 1) / grain);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  std::function<void(std::size_t, std::size_t, std::size_t)> body =
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) f(begin + i);
      };
  pool.run_blocked(n, chunks, body);
}

// Parallel reduction with identity `id` and associative combiner `comb`;
// `f(i)` produces the element value.
template <class T, class F, class Comb>
T parallel_reduce(std::size_t begin, std::size_t end, T id, F&& f, Comb&& comb,
                  std::size_t grain = 512) {
  if (begin >= end) return id;
  std::size_t n = end - begin;
  auto& pool = ThreadPool::instance();
  std::size_t chunks = std::min(pool.workers() * 4, (n + grain - 1) / grain);
  if (chunks <= 1) {
    T acc = id;
    for (std::size_t i = begin; i < end; ++i) acc = comb(acc, f(i));
    return acc;
  }
  std::vector<T> partial(chunks, id);
  std::function<void(std::size_t, std::size_t, std::size_t)> body =
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        T acc = id;
        for (std::size_t i = lo; i < hi; ++i) acc = comb(acc, f(begin + i));
        partial[c] = acc;
      };
  pool.run_blocked(n, chunks, body);
  T acc = id;
  for (const T& p : partial) acc = comb(acc, p);
  return acc;
}

// Exclusive prefix sum of `values` in place; returns the total.
// This is the workhorse behind the paper's prefix-sum uses (Lemma 4.4,
// Euler-tour blocking in Section 4.2).
template <class T>
T exclusive_scan(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    T next = total + v;
    v = total;
    total = next;
  }
  return total;
}

template <class T>
T inclusive_scan(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    total = total + v;
    v = total;
  }
  return total;
}

}  // namespace ptrie::core
