#include "core/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace ptrie::core {

namespace {
std::size_t env_workers() {
  if (const char* s = std::getenv("PTRIE_WORKERS")) {
    long v = std::strtol(s, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_workers());
  return pool;
}

ThreadPool::ThreadPool(std::size_t nworkers) : nworkers_(std::max<std::size_t>(1, nworkers)) {
  for (std::size_t i = 1; i < nworkers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_chunks(Job& job) {
  std::size_t chunk_size = (job.n + job.chunks - 1) / job.chunks;
  for (;;) {
    std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) break;
    std::size_t lo = c * chunk_size;
    std::size_t hi = std::min(job.n, lo + chunk_size);
    if (lo < hi) (*job.body)(c, lo, hi);
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    run_chunks(job_);
    cv_done_.notify_one();
  }
}

void ThreadPool::run_blocked(std::size_t n, std::size_t chunks,
                             const std::function<void(std::size_t, std::size_t, std::size_t)>& f) {
  if (chunks == 0) return;
  if (nworkers_ == 1 || chunks == 1) {
    std::size_t chunk_size = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t lo = c * chunk_size, hi = std::min(n, lo + chunk_size);
      if (lo < hi) f(c, lo, hi);
    }
    return;
  }
  {
    std::lock_guard lock(mu_);
    job_.body = &f;
    job_.n = n;
    job_.chunks = chunks;
    job_.next.store(0, std::memory_order_relaxed);
    job_.done.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  cv_work_.notify_all();
  run_chunks(job_);
  // Wait until every chunk has been executed (workers may still be in-flight).
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return job_.done.load(std::memory_order_acquire) >= job_.chunks; });
}

}  // namespace ptrie::core
