#include "core/parallel.hpp"

#include <algorithm>

#include "obs/env.hpp"

namespace ptrie::core {

namespace {
std::size_t env_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  return obs::env::u64("PTRIE_WORKERS", std::max(1u, hw),
                       "host worker threads (default: hardware concurrency)");
}

// Set while a thread executes chunk bodies; nested parallel constructs
// check it and degrade to serial execution instead of deadlocking on the
// single shared job slot.
thread_local bool tls_in_parallel = false;
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_workers());
  return pool;
}

bool ThreadPool::in_parallel_region() { return tls_in_parallel; }

SerialRegion::SerialRegion() : prev_(tls_in_parallel) { tls_in_parallel = true; }
SerialRegion::~SerialRegion() { tls_in_parallel = prev_; }

ThreadPool::ThreadPool(std::size_t nworkers) : nworkers_(std::max<std::size_t>(1, nworkers)) {
  spawn_workers();
}

void ThreadPool::spawn_workers() {
  for (std::size_t i = 1; i < nworkers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::join_workers() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  {
    std::lock_guard lock(mu_);
    stop_ = false;
  }
}

void ThreadPool::set_workers(std::size_t n) {
  n = std::max<std::size_t>(1, n);
  if (n == nworkers_) return;
  join_workers();
  nworkers_ = n;
  spawn_workers();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_chunks(const std::function<void(std::size_t, std::size_t, std::size_t)>* f,
                            std::size_t n, std::size_t chunks, std::uint64_t tag) {
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::uint64_t hi_tag = (tag & 0xffffffffull) << 32;
  tls_in_parallel = true;
  for (;;) {
    std::uint64_t v = job_.next.load(std::memory_order_acquire);
    if ((v & ~0xffffffffull) != hi_tag) break;  // a newer job took the slot
    std::size_t c = static_cast<std::size_t>(v & 0xffffffffull);
    if (c >= chunks) break;
    if (!job_.next.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel)) continue;
    std::size_t lo = c * chunk_size;
    std::size_t hi = std::min(n, lo + chunk_size);
    if (lo < hi) (*f)(c, lo, hi);
    job_.done.fetch_add(1, std::memory_order_acq_rel);
  }
  tls_in_parallel = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen;
  {
    // Workers spawned after earlier jobs ran must not mistake a stale
    // epoch for fresh work; start from the current epoch.
    std::lock_guard lock(mu_);
    seen = epoch_;
  }
  for (;;) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body;
    std::size_t n, chunks;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      // Snapshot the job under the lock: installs also hold it, so these
      // reads never race. A worker that slept through this job entirely
      // snapshots stale fields, but its claims fail on the epoch tag and
      // the dead body pointer is never dereferenced.
      body = job_.body;
      n = job_.n;
      chunks = job_.chunks;
    }
    run_chunks(body, n, chunks, seen);
    cv_done_.notify_one();
  }
}

void ThreadPool::run_blocked(std::size_t n, std::size_t chunks,
                             const std::function<void(std::size_t, std::size_t, std::size_t)>& f) {
  if (chunks == 0) return;
  if (nworkers_ == 1 || chunks == 1 || tls_in_parallel) {
    // Single worker, trivial job, or nested call from inside a chunk
    // body: execute inline. (Nested jobs cannot share the single job
    // slot without deadlocking the outer region.)
    std::size_t chunk_size = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      std::size_t lo = c * chunk_size, hi = std::min(n, lo + chunk_size);
      if (lo < hi) f(c, lo, hi);
    }
    return;
  }
  // Whole-job serialization of concurrent top-level callers: a second
  // thread entering here parks until the first job fully completes, so
  // the single job slot (and the done/epoch protocol) is never shared.
  std::lock_guard region(region_mu_);
  std::uint64_t tag;
  {
    std::lock_guard lock(mu_);
    job_.body = &f;
    job_.n = n;
    job_.chunks = chunks;
    job_.done.store(0, std::memory_order_relaxed);
    ++epoch_;
    tag = epoch_;
    // Publishing the tagged claim word opens the job; stale stragglers'
    // CASes fail against the new tag from this point on.
    job_.next.store((tag & 0xffffffffull) << 32, std::memory_order_release);
  }
  // Queue the work for all workers first, then join in: the caller claims
  // chunks from the same shared counter, so workers never sit idle while
  // the caller churns through a fixed share.
  cv_work_.notify_all();
  run_chunks(&f, n, chunks, tag);
  // Wait until every chunk has been executed (workers may still be in-flight).
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return job_.done.load(std::memory_order_acquire) >= chunks; });
}

}  // namespace ptrie::core
