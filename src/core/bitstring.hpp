#pragma once
// Arbitrary-length bit-strings packed MSB-first into 64-bit words.
//
// Bit i of the string lives in word i/64 at bit position (63 - i%64), so a
// plain word-wise comparison orders bit-strings lexicographically and the
// longest common prefix of two strings can be found one word at a time.
// These are the keys of every trie in this repository (paper Section 4:
// "variable-length bit strings").

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ptrie::core {

class BitString {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitString() = default;

  // Builds from a textual pattern of '0'/'1' characters, e.g. "00101".
  static BitString from_binary(std::string_view pattern);
  // Interprets each byte of `bytes` as 8 bits, MSB first.
  static BitString from_bytes(std::string_view bytes);
  // The `nbits` most significant bits of `value` (natural integer order).
  static BitString from_uint(std::uint64_t value, std::size_t nbits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }
  std::size_t word_count() const { return words_.size(); }
  const Word* words() const { return words_.data(); }
  // Word w holds bits [64w, 64w+64); bits past size() are zero.
  Word word(std::size_t w) const { return w < words_.size() ? words_[w] : 0; }

  bool bit(std::size_t i) const {
    return (words_[i / kWordBits] >> (kWordBits - 1 - i % kWordBits)) & 1u;
  }

  void push_back(bool b);
  void pop_back();
  void append(const BitString& other);
  // Appends bits [from, from+len) of `other`.
  void append_slice(const BitString& other, std::size_t from, std::size_t len);
  void clear() { words_.clear(); nbits_ = 0; }
  // Shortens to the first `len` bits (len <= size()).
  void truncate(std::size_t len);

  BitString prefix(std::size_t len) const { return substr(0, len); }
  BitString suffix(std::size_t from) const { return substr(from, nbits_ - from); }
  BitString substr(std::size_t from, std::size_t len) const;

  // Length (in bits) of the longest common prefix with `other`,
  // word-at-a-time: O(lcp/w) time.
  std::size_t lcp(const BitString& other) const;
  // LCP against bits [from, ...) of this with all of `other`.
  std::size_t lcp_at(std::size_t from, const BitString& other) const;
  // LCP between this[from..] and other[other_from..], word-at-a-time.
  std::size_t lcp_range(std::size_t from, const BitString& other, std::size_t other_from) const;

  bool is_prefix_of(const BitString& other) const;
  bool operator==(const BitString& other) const;
  bool operator!=(const BitString& other) const { return !(*this == other); }
  // Lexicographic; a proper prefix sorts before its extensions.
  bool operator<(const BitString& other) const { return compare(other) < 0; }
  int compare(const BitString& other) const;

  std::string to_binary() const;
  // Stable content hash (for use as unordered_map key, not the paper's hashes).
  std::size_t std_hash() const;

  // Space in 64-bit words used by the packed representation.
  std::size_t space_words() const { return words_.size() + 1; }

 private:
  void set_bit(std::size_t i, bool b) {
    Word mask = Word{1} << (kWordBits - 1 - i % kWordBits);
    if (b) words_[i / kWordBits] |= mask;
    else words_[i / kWordBits] &= ~mask;
  }
  void mask_tail();

  std::vector<Word> words_;
  std::size_t nbits_ = 0;
};

struct BitStringHash {
  std::size_t operator()(const BitString& s) const { return s.std_hash(); }
};

}  // namespace ptrie::core
