#include "core/check.hpp"

#include <cstdarg>
#include <cstdio>

namespace ptrie::core::detail {

void check_fail(const char* expr, const char* file, int line, const char* fmt, ...) {
  char msg[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);
  // Strip the directory: the basename is enough to locate the check and
  // keeps messages stable across build trees.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  char what[640];
  std::snprintf(what, sizeof what, "check failed at %s:%d: %s [%s]", base, line, msg, expr);
  throw CheckError(what);
}

}  // namespace ptrie::core::detail
