#pragma once
// Deterministic, seedable random number generation. Every randomized
// component of the library (module placement, hash seeds, workload
// generators) draws from these so runs are exactly reproducible.

#include <cstdint>
#include <limits>

namespace ptrie::core {

// SplitMix64: used to expand a user seed into stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97f4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5DEECE66Dull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). Unbiased enough for simulation purposes.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : (*this)() % n; }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  bool coin() { return ((*this)() >> 63) != 0; }

  // Derives an independent child stream (for per-module / per-key streams).
  Rng fork() {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ptrie::core
