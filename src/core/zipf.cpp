#include "core/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace ptrie::core {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : n_(n), theta_(theta) {
  if (n_ == 0) n_ = 1;
  if (theta_ <= 0) {
    theta_ = 0;
    return;  // uniform; sample() handles it directly
  }
  if (n_ <= kExactLimit) {
    exact_ = true;
    cdf_.resize(n_);
    double sum = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
    return;
  }
  // YCSB-style approximation for large n.
  zetan_ = 0;
  for (std::size_t i = 0; i < kExactLimit; ++i)
    zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
  // Tail estimate by integral: sum_{k=m+1}^{n} k^-theta ~ (n^{1-t} - m^{1-t}) / (1-t)
  if (theta_ != 1.0) {
    double m = static_cast<double>(kExactLimit), N = static_cast<double>(n_);
    zetan_ += (std::pow(N, 1 - theta_) - std::pow(m, 1 - theta_)) / (1 - theta_);
  } else {
    zetan_ += std::log(static_cast<double>(n_) / kExactLimit);
  }
  double zeta2 = 1.0 + std::pow(0.5, theta_) * 0;  // zeta(theta, 2 terms)
  zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n_), 1 - theta_)) / (1 - zeta2 / zetan_);
  half_pow_ = 1.0 + std::pow(0.5, theta_);
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  if (theta_ <= 0) return rng.below(n_);
  if (exact_) {
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }
  double u = rng.uniform();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_) return 1;
  auto rank = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  return std::min(rank, n_ - 1);
}

}  // namespace ptrie::core
