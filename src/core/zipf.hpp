#pragma once
// Zipf-distributed sampling over ranks 0..n-1 with exponent theta.
// Used to build skewed query batches for the load-balance experiments
// (paper Section 3.2 argues range-partitioned indexes serialize under
// exactly this kind of skew; Theorems 4.3/5.1 claim PIM-trie does not).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace ptrie::core {

class ZipfSampler {
 public:
  // theta = 0 is uniform; theta around 0.99 is the YCSB-style default;
  // larger values concentrate mass on rank 0.
  ZipfSampler(std::size_t n, double theta);

  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative probabilities, size n (built for n <= kExactLimit)
  // For large n we use the Gray/Jim (YCSB) closed-form approximation.
  double zetan_ = 0, alpha_ = 0, eta_ = 0, half_pow_ = 0;
  bool exact_ = false;
  static constexpr std::size_t kExactLimit = 1 << 16;
};

}  // namespace ptrie::core
