#pragma once
// Structured runtime checks for external inputs: PTRIE_CHECK validates a
// condition and throws CheckError (with file:line and a printf-formatted
// context message) when it fails. Unlike assert() these survive release
// builds — they guard inputs that cross a trust boundary (wire-format
// messages parsed by module kernels, caller-supplied machine shapes),
// where a violated precondition must become a reportable error the
// serving layer can degrade on, never undefined behavior.
//
//   PTRIE_CHECK(it != blocks.end(), "m%zu: unknown block id %llu",
//               mod.id(), (unsigned long long)id);
//
// Internal invariants that only a bug in this codebase can violate keep
// using assert().

#include <stdexcept>
#include <string>

namespace ptrie {

class CheckError : public std::runtime_error {
 public:
  explicit CheckError(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace core::detail {

#if defined(__GNUC__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] void check_fail(const char* expr, const char* file, int line, const char* fmt,
                             ...);

}  // namespace core::detail
}  // namespace ptrie

#define PTRIE_CHECK(cond, ...)                                                     \
  do {                                                                             \
    if (!(cond))                                                                   \
      ::ptrie::core::detail::check_fail(#cond, __FILE__, __LINE__, __VA_ARGS__);   \
  } while (0)
