#pragma once
// Deterministic workload generators for the experiments. Each produces
// bit-string key sets / query batches matching a scenario from the
// paper's analysis: uniform data, adversarially skewed data (deep
// caterpillar tries via shared prefixes and nested prefixes), Zipf and
// single-hot-spot query skew, variable-length keys, and IP-style
// prefixes for the routing example.

#include <cstdint>
#include <vector>

#include "core/bitstring.hpp"
#include "core/rng.hpp"

namespace ptrie::workload {

// n distinct uniform random keys of exactly `bits` bits.
std::vector<core::BitString> uniform_keys(std::size_t n, std::size_t bits, std::uint64_t seed);

// n keys with geometric length distribution in [min_bits, max_bits].
std::vector<core::BitString> variable_length_keys(std::size_t n, std::size_t min_bits,
                                                  std::size_t max_bits, std::uint64_t seed);

// Adversarial data skew: all keys share one random `prefix_bits` prefix,
// then diverge in `tail_bits` random bits — the data trie becomes a long
// path with a bushy tip (worst case for range partitioning and for naive
// node distribution).
std::vector<core::BitString> shared_prefix_keys(std::size_t n, std::size_t prefix_bits,
                                                std::size_t tail_bits, std::uint64_t seed);

// Worst-case trie shape: key i is the first (i+1)*step bits of one long
// random string — the trie is a single caterpillar path of nested
// prefixes (height n*step).
std::vector<core::BitString> caterpillar_keys(std::size_t n, std::size_t step,
                                              std::uint64_t seed);

// Query batches -------------------------------------------------------

// m queries sampled from `data` by Zipf(theta) rank (theta=0 uniform).
std::vector<core::BitString> zipf_queries(const std::vector<core::BitString>& data,
                                          std::size_t m, double theta, std::uint64_t seed);

// m queries that all probe keys under one shared hot prefix (worst-case
// query skew: every lookup lands in the same region of the key space).
std::vector<core::BitString> hot_spot_queries(const std::vector<core::BitString>& data,
                                              std::size_t m, std::uint64_t seed);

// m fresh uniform queries of the same width as `bits` (mostly misses).
std::vector<core::BitString> miss_queries(std::size_t m, std::size_t bits, std::uint64_t seed);

// IPv4-style routing prefixes: 32-bit addresses with prefix length in
// [8, 32] (weighted toward /16../24 as in real tables).
std::vector<core::BitString> ipv4_prefixes(std::size_t n, std::uint64_t seed);

// Uniform 64-bit integer keys (for the x-fast baseline).
std::vector<std::uint64_t> uniform_u64(std::size_t n, std::uint64_t seed);

// Open-loop arrival processes (serving benchmarks) --------------------
// Arrival offsets in nanoseconds from stream start for m requests; a
// client replays them against a wall clock, so the offered load is
// independent of service time (open loop, as Cuckoo-Trie's latency
// methodology argues).

// Poisson process with mean `rate_per_sec` (exponential inter-arrivals).
std::vector<std::uint64_t> poisson_arrivals(std::size_t m, double rate_per_sec,
                                            std::uint64_t seed);

// On/off bursts: each `period_ms` cycle spends a 0.2 duty fraction in a
// hot phase at `burst_factor` times the mean rate, with the cold-phase
// rate chosen so the long-run mean stays `rate_per_sec` (cold rate
// floors at 1/100th of the mean when burst_factor is extreme).
std::vector<std::uint64_t> burst_arrivals(std::size_t m, double rate_per_sec,
                                          double burst_factor, double period_ms,
                                          std::uint64_t seed);

// Mixed read/write tenant request streams -----------------------------
// Op codes mirror serve::Op by position (workload stays independent of
// the serving layer; benches map the enum explicitly).
enum class ReqOp : std::uint8_t { kInsert, kErase, kLcp, kGet, kSubtree };

struct Request {
  ReqOp op = ReqOp::kLcp;
  core::BitString key;
  std::uint64_t value = 0;
  // Issuing tenant: 0 is the write tenant (inserts/erases); reads carry
  // 1..read_tenants, assigned by key hash so a tenant's working set is a
  // stable slice of the key space (and a hot key skews exactly one
  // tenant). Derived after generation — it never consumes randomness, so
  // streams are bit-identical to pre-tenant versions for a fixed seed.
  std::uint32_t tenant = 0;
};

struct MixProfile {
  // Op weights (normalized internally). Defaults: read-mostly tenants
  // with a 10% write tenant, the YCSB-flavored serving mix.
  double insert = 0.05, erase = 0.05, lcp = 0.45, get = 0.40, subtree = 0.05;
  double zipf_theta = 0.99;      // key-rank skew for read ops over `data`
  std::size_t subtree_bits = 20; // prefix length for subtree queries
  std::size_t read_tenants = 3;  // read traffic splits across this many tenants
};

// m requests over the stored key set `data`: reads sample keys by
// Zipf(zipf_theta) rank; inserts draw from a disjoint fresh-key pool and
// erases retire the oldest still-live insert (so the live set stays near
// |data| and every erase hits). Deterministic in (data, mix, seed).
std::vector<Request> request_stream(const std::vector<core::BitString>& data, std::size_t m,
                                    const MixProfile& mix, std::uint64_t seed);

}  // namespace ptrie::workload
