#include "workload/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/zipf.hpp"

namespace ptrie::workload {

using core::BitString;
using core::Rng;

namespace {
BitString random_bits(Rng& rng, std::size_t bits) {
  BitString s;
  std::size_t full = bits / 64;
  for (std::size_t i = 0; i < full; ++i)
    s.append(BitString::from_uint(rng(), 64));
  std::size_t rem = bits % 64;
  if (rem != 0) s.append(BitString::from_uint(rng() >> (64 - rem), rem));
  return s;
}
}  // namespace

std::vector<BitString> uniform_keys(std::size_t n, std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  std::unordered_set<std::size_t> seen;
  out.reserve(n);
  while (out.size() < n) {
    BitString s = random_bits(rng, bits);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> variable_length_keys(std::size_t n, std::size_t min_bits,
                                            std::size_t max_bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  out.reserve(n);
  std::unordered_set<std::size_t> seen;
  while (out.size() < n) {
    // Geometric-ish length: halving probability per extra step.
    std::size_t len = min_bits;
    while (len < max_bits && rng.coin()) len += std::max<std::size_t>(1, (max_bits - min_bits) / 8);
    len = std::min(len, max_bits);
    BitString s = random_bits(rng, len);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> shared_prefix_keys(std::size_t n, std::size_t prefix_bits,
                                          std::size_t tail_bits, std::uint64_t seed) {
  Rng rng(seed);
  BitString prefix = random_bits(rng, prefix_bits);
  std::vector<BitString> out;
  out.reserve(n);
  std::unordered_set<std::size_t> seen;
  while (out.size() < n) {
    BitString s = prefix;
    s.append(random_bits(rng, tail_bits));
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> caterpillar_keys(std::size_t n, std::size_t step, std::uint64_t seed) {
  Rng rng(seed);
  BitString spine = random_bits(rng, n * step);
  std::vector<BitString> out;
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) out.push_back(spine.prefix(i * step));
  return out;
}

std::vector<BitString> zipf_queries(const std::vector<BitString>& data, std::size_t m,
                                    double theta, std::uint64_t seed) {
  Rng rng(seed);
  core::ZipfSampler zipf(data.size(), theta);
  std::vector<BitString> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) out.push_back(data[zipf.sample(rng)]);
  return out;
}

std::vector<BitString> hot_spot_queries(const std::vector<BitString>& data, std::size_t m,
                                        std::uint64_t seed) {
  Rng rng(seed);
  // Hot spot: one random stored key, probed by everyone, with tiny
  // perturbations in the last byte so queries are not all identical.
  const BitString& hot = data[rng.below(data.size())];
  std::vector<BitString> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    BitString s = hot;
    if (s.size() >= 4 && !rng.coin()) {
      // flip one of the last 4 bits
      std::size_t pos = s.size() - 1 - rng.below(4);
      BitString t = s.prefix(pos);
      t.push_back(!s.bit(pos));
      t.append_slice(s, pos + 1, s.size() - pos - 1);
      s = std::move(t);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> miss_queries(std::size_t m, std::size_t bits, std::uint64_t seed) {
  return uniform_keys(m, bits, seed ^ 0xDEADBEEFull);
}

std::vector<BitString> ipv4_prefixes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  std::unordered_set<std::size_t> seen;
  out.reserve(n);
  while (out.size() < n) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng());
    // Prefix length: mostly /16../24, some /8 and /32.
    static const unsigned lens[] = {8, 16, 16, 18, 20, 22, 24, 24, 24, 28, 32};
    unsigned len = lens[rng.below(sizeof(lens) / sizeof(lens[0]))];
    std::uint32_t masked = len == 32 ? addr : (addr & ~((1u << (32 - len)) - 1));
    BitString s = BitString::from_uint(static_cast<std::uint64_t>(masked) << 32 >> 32, 32)
                      .prefix(len);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::uint64_t> uniform_u64(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = rng();
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace ptrie::workload
