#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/zipf.hpp"
#include "obs/spans.hpp"

namespace ptrie::workload {

using core::BitString;
using core::Rng;

namespace {
BitString random_bits(Rng& rng, std::size_t bits) {
  BitString s;
  std::size_t full = bits / 64;
  for (std::size_t i = 0; i < full; ++i)
    s.append(BitString::from_uint(rng(), 64));
  std::size_t rem = bits % 64;
  if (rem != 0) s.append(BitString::from_uint(rng() >> (64 - rem), rem));
  return s;
}
}  // namespace

std::vector<BitString> uniform_keys(std::size_t n, std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  std::unordered_set<std::size_t> seen;
  out.reserve(n);
  while (out.size() < n) {
    BitString s = random_bits(rng, bits);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> variable_length_keys(std::size_t n, std::size_t min_bits,
                                            std::size_t max_bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  out.reserve(n);
  std::unordered_set<std::size_t> seen;
  while (out.size() < n) {
    // Geometric-ish length: halving probability per extra step.
    std::size_t len = min_bits;
    while (len < max_bits && rng.coin()) len += std::max<std::size_t>(1, (max_bits - min_bits) / 8);
    len = std::min(len, max_bits);
    BitString s = random_bits(rng, len);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> shared_prefix_keys(std::size_t n, std::size_t prefix_bits,
                                          std::size_t tail_bits, std::uint64_t seed) {
  Rng rng(seed);
  BitString prefix = random_bits(rng, prefix_bits);
  std::vector<BitString> out;
  out.reserve(n);
  std::unordered_set<std::size_t> seen;
  while (out.size() < n) {
    BitString s = prefix;
    s.append(random_bits(rng, tail_bits));
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> caterpillar_keys(std::size_t n, std::size_t step, std::uint64_t seed) {
  Rng rng(seed);
  BitString spine = random_bits(rng, n * step);
  std::vector<BitString> out;
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) out.push_back(spine.prefix(i * step));
  return out;
}

std::vector<BitString> zipf_queries(const std::vector<BitString>& data, std::size_t m,
                                    double theta, std::uint64_t seed) {
  Rng rng(seed);
  core::ZipfSampler zipf(data.size(), theta);
  std::vector<BitString> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) out.push_back(data[zipf.sample(rng)]);
  return out;
}

std::vector<BitString> hot_spot_queries(const std::vector<BitString>& data, std::size_t m,
                                        std::uint64_t seed) {
  Rng rng(seed);
  // Hot spot: one random stored key, probed by everyone, with tiny
  // perturbations in the last byte so queries are not all identical.
  const BitString& hot = data[rng.below(data.size())];
  std::vector<BitString> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    BitString s = hot;
    if (s.size() >= 4 && !rng.coin()) {
      // flip one of the last 4 bits
      std::size_t pos = s.size() - 1 - rng.below(4);
      BitString t = s.prefix(pos);
      t.push_back(!s.bit(pos));
      t.append_slice(s, pos + 1, s.size() - pos - 1);
      s = std::move(t);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<BitString> miss_queries(std::size_t m, std::size_t bits, std::uint64_t seed) {
  return uniform_keys(m, bits, seed ^ 0xDEADBEEFull);
}

std::vector<BitString> ipv4_prefixes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitString> out;
  std::unordered_set<std::size_t> seen;
  out.reserve(n);
  while (out.size() < n) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng());
    // Prefix length: mostly /16../24, some /8 and /32.
    static const unsigned lens[] = {8, 16, 16, 18, 20, 22, 24, 24, 24, 28, 32};
    unsigned len = lens[rng.below(sizeof(lens) / sizeof(lens[0]))];
    std::uint32_t masked = len == 32 ? addr : (addr & ~((1u << (32 - len)) - 1));
    BitString s = BitString::from_uint(static_cast<std::uint64_t>(masked) << 32 >> 32, 32)
                      .prefix(len);
    if (seen.insert(s.std_hash()).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::uint64_t> uniform_u64(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = rng();
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

namespace {
// Exponential inter-arrival gap in nanoseconds at `rate_per_sec`.
std::uint64_t exp_gap_ns(Rng& rng, double rate_per_sec) {
  if (rate_per_sec <= 0) return 0;
  double u = rng.uniform();
  if (u >= 1.0) u = 0.999999999;
  double gap_s = -std::log(1.0 - u) / rate_per_sec;
  return static_cast<std::uint64_t>(gap_s * 1e9);
}
}  // namespace

std::vector<std::uint64_t> poisson_arrivals(std::size_t m, double rate_per_sec,
                                            std::uint64_t seed) {
  Rng rng(seed ^ 0xA881A17u);
  std::vector<std::uint64_t> out;
  out.reserve(m);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < m; ++i) {
    t += exp_gap_ns(rng, rate_per_sec);
    out.push_back(t);
  }
  return out;
}

std::vector<std::uint64_t> burst_arrivals(std::size_t m, double rate_per_sec,
                                          double burst_factor, double period_ms,
                                          std::uint64_t seed) {
  Rng rng(seed ^ 0xB0657u);
  constexpr double kDuty = 0.2;  // fraction of each period spent hot
  burst_factor = std::max(1.0, burst_factor);
  double hot = rate_per_sec * burst_factor;
  // Mean preservation: duty*hot + (1-duty)*cold = rate.
  double cold = (rate_per_sec - kDuty * hot) / (1.0 - kDuty);
  cold = std::max(cold, rate_per_sec / 100.0);
  const std::uint64_t period_ns = static_cast<std::uint64_t>(period_ms * 1e6);
  const std::uint64_t hot_ns = static_cast<std::uint64_t>(kDuty * period_ms * 1e6);
  std::vector<std::uint64_t> out;
  out.reserve(m);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < m; ++i) {
    bool in_hot = period_ns == 0 || (t % period_ns) < hot_ns;
    t += exp_gap_ns(rng, in_hot ? hot : cold);
    out.push_back(t);
  }
  return out;
}

std::vector<Request> request_stream(const std::vector<BitString>& data, std::size_t m,
                                    const MixProfile& mix, std::uint64_t seed) {
  Rng rng(seed ^ 0x5E64E57u);
  core::ZipfSampler zipf(std::max<std::size_t>(1, data.size()), mix.zipf_theta);
  double wsum = mix.insert + mix.erase + mix.lcp + mix.get + mix.subtree;
  if (wsum <= 0) wsum = 1;
  const double w_insert = mix.insert / wsum;
  const double w_erase = w_insert + mix.erase / wsum;
  const double w_lcp = w_erase + mix.lcp / wsum;
  const double w_get = w_lcp + mix.get / wsum;

  // Fresh churn pool for the write tenant: distinct keys, disjoint from
  // `data` with overwhelming probability (independent random bits).
  std::size_t n_writes = 0;
  {
    Rng probe(seed ^ 0x5E64E57u);
    for (std::size_t i = 0; i < m; ++i)
      if (probe.uniform() < w_erase) ++n_writes;
  }
  std::size_t key_bits = data.empty() ? 64 : data.front().size();
  std::vector<BitString> pool = uniform_keys(std::max<std::size_t>(1, n_writes), key_bits,
                                             seed ^ 0x9001u);

  std::vector<Request> out;
  out.reserve(m);
  std::size_t next_fresh = 0;   // next unused pool key
  std::size_t oldest_live = 0;  // oldest inserted-not-yet-erased pool key
  for (std::size_t i = 0; i < m; ++i) {
    double u = rng.uniform();
    Request r;
    if (u < w_insert) {
      r.op = ReqOp::kInsert;
      r.key = pool[std::min(next_fresh, pool.size() - 1)];
      if (next_fresh + 1 < pool.size()) ++next_fresh;
      r.value = i + 1;
    } else if (u < w_erase) {
      if (oldest_live < next_fresh) {
        r.op = ReqOp::kErase;
        r.key = pool[oldest_live++];
      } else {
        // Nothing of ours is live yet; issue a guaranteed-miss erase.
        r.op = ReqOp::kErase;
        r.key = random_bits(rng, key_bits);
      }
    } else if (u < w_lcp) {
      r.op = ReqOp::kLcp;
      r.key = data.empty() ? random_bits(rng, key_bits) : data[zipf.sample(rng)];
    } else if (u < w_get) {
      r.op = ReqOp::kGet;
      r.key = data.empty() ? random_bits(rng, key_bits) : data[zipf.sample(rng)];
    } else {
      r.op = ReqOp::kSubtree;
      const BitString& base = data.empty() ? pool.front() : data[zipf.sample(rng)];
      r.key = base.prefix(std::min(mix.subtree_bits, base.size()));
    }
    // Tenant: writes are tenant 0; reads hash their key into one of
    // read_tenants stable slices. Assigned without touching `rng`, so
    // the op/key stream stays bit-identical to pre-tenant seeds.
    if (r.op == ReqOp::kInsert || r.op == ReqOp::kErase) {
      r.tenant = 0;
    } else {
      std::size_t slices = std::max<std::size_t>(1, mix.read_tenants);
      r.tenant = 1 + static_cast<std::uint32_t>(obs::key_hash(r.key) % slices);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace ptrie::workload
