#include "baselines/distributed_radix_tree.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <functional>
#include <string>
#include <unordered_map>

#include "core/parallel.hpp"
#include "obs/phase.hpp"
#include "trie/ordered_cover.hpp"

namespace ptrie::baselines {

using core::BitString;

namespace {
std::atomic<std::uint64_t> g_instance{1u << 20};

// Per-module node store.
struct RadixModuleState {
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> nodes;  // serialized Node
};

// Node wire format: [fanout children..., has_value, value, tail_len, tail words...]
std::vector<std::uint64_t> pack_node(std::size_t fanout, const std::vector<std::uint64_t>& child,
                                     bool has_value, std::uint64_t value,
                                     const BitString& tail) {
  std::vector<std::uint64_t> out;
  out.reserve(fanout + 3 + tail.word_count());
  for (std::size_t i = 0; i < fanout; ++i) out.push_back(child[i]);
  out.push_back(has_value ? 1 : 0);
  out.push_back(value);
  out.push_back(tail.size());
  for (std::size_t w = 0; w < tail.word_count(); ++w) out.push_back(tail.word(w));
  return out;
}
}  // namespace

DistributedRadixTree::DistributedRadixTree(pim::System& sys, unsigned span, std::uint64_t seed)
    : sys_(&sys), span_(span), instance_(g_instance.fetch_add(1)) {
  (void)seed;
  assert(span_ >= 1 && span_ <= 16);
}

std::uint64_t DistributedRadixTree::new_node() {
  std::uint64_t id = next_id_++;
  dir_[id] = {static_cast<std::uint32_t>(sys_->random_module())};
  ++n_nodes_;
  return id;
}

void DistributedRadixTree::build(const std::vector<BitString>& keys,
                                 const std::vector<std::uint64_t>& values) {
  obs::Phase op_phase("Build");
  // Build host-side, then distribute nodes in one round (construction).
  std::size_t fanout = std::size_t{1} << span_;
  struct HNode {
    std::vector<std::uint64_t> child;
    bool has_value = false;
    std::uint64_t value = 0;
    BitString tail;
  };
  std::unordered_map<std::uint64_t, HNode> host;
  root_ = new_node();
  host[root_].child.assign(fanout, 0);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const BitString& k = keys[i];
    std::uint64_t cur = root_;
    std::size_t pos = 0;
    while (pos + span_ <= k.size()) {
      std::size_t idx = 0;
      for (unsigned b = 0; b < span_; ++b) idx = idx * 2 + (k.bit(pos + b) ? 1 : 0);
      if (host[cur].child[idx] == 0) {
        std::uint64_t id = new_node();
        host[id].child.assign(fanout, 0);
        host[cur].child[idx] = id;
      }
      cur = host[cur].child[idx];
      pos += span_;
    }
    HNode& n = host[cur];
    if (!n.has_value) ++n_keys_;  // duplicate (or tail-colliding) keys overwrite
    n.has_value = true;
    n.value = values[i];
    n.tail = k.suffix(pos);  // leftover < span bits (possibly empty)
  }

  std::vector<pim::Buffer> buffers(sys_->p());
  for (auto& [id, n] : host) {
    if (n.child.empty()) n.child.assign(fanout, 0);
    auto packed = pack_node(fanout, n.child, n.has_value, n.value, n.tail);
    auto& buf = buffers[dir_[id].module];
    buf.push_back(id);
    buf.push_back(packed.size());
    buf.insert(buf.end(), packed.begin(), packed.end());
  }
  std::uint64_t inst = instance_;
  sys_->round("radix.build", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
    auto& st = m.state<RadixModuleState>(inst);
    std::size_t i = 0;
    while (i < in.size()) {
      std::uint64_t id = in[i++];
      std::uint64_t len = in[i++];
      st.nodes[id] = std::vector<std::uint64_t>(in.begin() + i, in.begin() + i + len);
      i += len;
      m.work(len / 4 + 1);
    }
    return pim::Buffer{};
  });
}

std::vector<std::size_t> DistributedRadixTree::batch_lcp(const std::vector<BitString>& keys) {
  obs::Phase op_phase("LCP");
  std::size_t fanout = std::size_t{1} << span_;
  std::vector<std::size_t> out(keys.size(), 0);
  struct Q {
    std::uint64_t node;
    std::size_t pos;
    bool done = false;
  };
  std::vector<Q> qs(keys.size());
  for (auto& q : qs) q = {root_, 0, false};

  std::uint64_t inst = instance_;
  int round = 0;
  for (;;) {
    ++round;
    // One pointer-chasing round: each active query probes its node.
    // Pack with flag+scan+scatter (4 fixed words per active query): the
    // per-module byte order equals the serial index-order append.
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::vector<std::size_t>> sent(sys_->p());
    std::vector<std::size_t> active_q = core::parallel_pack<std::size_t>(
        keys.size(), [&](std::size_t i) { return !qs[i].done; },
        [](std::size_t i) { return i; });
    if (active_q.empty()) break;
    auto layout = core::parallel_bucket_offsets(
        active_q.size(), sys_->p(),
        [&](std::size_t j) { return dir_.at(qs[active_q[j]].node).module; },
        [](std::size_t) { return std::size_t{4}; });
    for (std::size_t m = 0; m < sys_->p(); ++m) {
      buffers[m].resize(layout.total[m]);
      sent[m].resize(layout.total[m] / 4);
    }
    core::parallel_for(
        0, active_q.size(),
        [&](std::size_t j) {
          std::size_t i = active_q[j];
          std::uint32_t module = dir_.at(qs[i].node).module;
          std::size_t idx = 0;
          std::size_t remaining = keys[i].size() - qs[i].pos;
          std::size_t take = std::min<std::size_t>(span_, remaining);
          for (unsigned b = 0; b < take; ++b)
            idx = idx * 2 + (keys[i].bit(qs[i].pos + b) ? 1 : 0);
          // Message: node, chunk bits (padded), chunk length, plus the full
          // remaining tail words are NOT sent (only on the last hop) — the
          // per-hop payload is O(1) words as in the paper's accounting.
          std::size_t off = layout.offset[j];
          std::uint64_t* buf = buffers[module].data() + off;
          buf[0] = qs[i].node;
          buf[1] = idx;
          buf[2] = take;
          // Tail bits for terminal comparison (cheap: < span bits as a word).
          std::uint64_t tailbits = 0;
          for (std::size_t b = 0; b < take; ++b)
            tailbits = tailbits * 2 + (keys[i].bit(qs[i].pos + b) ? 1 : 0);
          buf[3] = tailbits;
          sent[module][off / 4] = i;
        },
        /*grain=*/1024);
    std::string lbl = "radix.lcp" + std::to_string(round);
    auto results = sys_->round(lbl, std::move(buffers), [inst, fanout](pim::Module& m,
                                                                       pim::Buffer in) {
      auto& st = m.state<RadixModuleState>(inst);
      pim::Buffer out;
      std::size_t i = 0;
      std::size_t span_bits = 0;
      while ((std::size_t{1} << span_bits) < fanout) ++span_bits;
      while (i < in.size()) {
        std::uint64_t id = in[i], idx = in[i + 1], take = in[i + 2], tailbits = in[i + 3];
        i += 4;
        m.work(3);
        const auto& packed = st.nodes.at(id);
        // Response: [child_id (0 = none), matched_extra_bits].
        if (take == span_bits && packed[idx] != 0) {
          out.push_back(packed[idx]);
          out.push_back(take);
          continue;
        }
        // Divergence or trailing partial chunk: compare against this
        // node's stored key tail bit-by-bit (chunk-granularity LCP, the
        // natural resolution of a span-s radix baseline).
        std::uint64_t tail_len = packed[fanout + 2];
        std::uint64_t matched = 0;
        if (tail_len != 0 && take != 0) {
          std::uint64_t word0 = packed.size() > fanout + 3 ? packed[fanout + 3] : 0;
          for (std::uint64_t b = 0; b < std::min<std::uint64_t>(tail_len, take); ++b) {
            bool tb = (word0 >> (63 - b)) & 1;
            bool qb = (tailbits >> (take - 1 - b)) & 1;
            if (tb != qb) break;
            ++matched;
          }
          m.work(1 + matched / 8);
        }
        out.push_back(0);
        out.push_back(matched);
      }
      return out;
    });
    // Apply responses: modules are independent and each query appears in
    // exactly one module's reply, so unpack fans out across modules.
    core::parallel_for(
        0, sys_->p(),
        [&](std::size_t module) {
          const auto& buf = results[module];
          for (std::size_t k = 0; k < sent[module].size(); ++k) {
            std::size_t i = sent[module][k];
            std::uint64_t child = buf[2 * k];
            std::uint64_t matched = buf[2 * k + 1];
            if (child != 0) {
              qs[i].node = child;
              qs[i].pos += matched;
              out[i] = qs[i].pos;
              if (qs[i].pos + 0 >= keys[i].size()) qs[i].done = true;
            } else {
              out[i] = qs[i].pos + matched;
              qs[i].done = true;
            }
          }
        },
        /*grain=*/1);
    if (round > 4096) break;
  }
  return out;
}

void DistributedRadixTree::batch_insert(const std::vector<BitString>& keys,
                                        const std::vector<std::uint64_t>& values) {
  obs::Phase op_phase("Insert");
  std::size_t fanout = std::size_t{1} << span_;
  std::uint64_t inst = instance_;

  // Phase 1: pointer-chase each key to the deepest existing node, one
  // probe round per level (the O(l/s) rounds of Table 1).
  struct St {
    std::uint64_t node;
    std::size_t pos;
    bool done;
  };
  std::vector<St> st(keys.size());
  for (auto& q : st) q = {root_, 0, false};
  int round = 0;
  for (;;) {
    ++round;
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::vector<std::size_t>> sent(sys_->p());
    std::vector<std::size_t> walk_q = core::parallel_pack<std::size_t>(
        keys.size(),
        [&](std::size_t i) { return !st[i].done && st[i].pos + span_ <= keys[i].size(); },
        [](std::size_t i) { return i; });
    if (walk_q.empty()) break;
    auto layout = core::parallel_bucket_offsets(
        walk_q.size(), sys_->p(),
        [&](std::size_t j) { return dir_.at(st[walk_q[j]].node).module; },
        [](std::size_t) { return std::size_t{2}; });
    for (std::size_t m = 0; m < sys_->p(); ++m) {
      buffers[m].resize(layout.total[m]);
      sent[m].resize(layout.total[m] / 2);
    }
    core::parallel_for(
        0, walk_q.size(),
        [&](std::size_t j) {
          std::size_t i = walk_q[j];
          std::size_t idx = 0;
          for (unsigned b = 0; b < span_; ++b)
            idx = idx * 2 + (keys[i].bit(st[i].pos + b) ? 1 : 0);
          std::uint32_t module = dir_.at(st[i].node).module;
          std::size_t off = layout.offset[j];
          buffers[module][off] = st[i].node;
          buffers[module][off + 1] = idx;
          sent[module][off / 2] = i;
        },
        /*grain=*/1024);
    std::string lbl = "radix.insertwalk" + std::to_string(round);
    auto results = sys_->round(lbl, std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
      auto& stt = m.state<RadixModuleState>(inst);
      pim::Buffer out;
      for (std::size_t i = 0; i + 1 < in.size() + 0; i += 2) {
        out.push_back(stt.nodes.at(in[i])[in[i + 1]]);
        m.work(2);
      }
      return out;
    });
    core::parallel_for(
        0, sys_->p(),
        [&](std::size_t mdl) {
          for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
            std::size_t i = sent[mdl][k];
            std::uint64_t child = results[mdl][k];
            if (child == 0)
              st[i].done = true;
            else {
              st[i].node = child;
              st[i].pos += span_;
            }
          }
        },
        /*grain=*/1);
    if (round > 4096) break;
  }

  // Phase 2: create the missing chains on the host directory; new links
  // between inserted keys share nodes through `shadow`.
  struct NewNode {
    std::uint64_t id;
    std::vector<std::uint64_t> child;
    bool has_value = false;
    std::uint64_t value = 0;
    BitString tail;
  };
  std::vector<NewNode> created;
  std::unordered_map<std::uint64_t, std::size_t> created_idx;  // id -> created slot
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, std::uint64_t>> shadow;
  struct ValueUpdate {
    std::uint64_t node;
    std::uint64_t value;
    BitString tail;
  };
  std::vector<ValueUpdate> value_updates;  // on pre-existing nodes
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> links;  // existing node links

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const BitString& k = keys[i];
    std::uint64_t cur = st[i].node;
    std::size_t pos = st[i].pos;
    bool cur_is_new = created_idx.contains(cur);
    while (pos + span_ <= k.size()) {
      std::size_t idx = 0;
      for (unsigned b = 0; b < span_; ++b) idx = idx * 2 + (k.bit(pos + b) ? 1 : 0);
      auto& slot = shadow[cur][idx];
      if (slot == 0) {
        std::uint64_t id = new_node();
        slot = id;
        created_idx[id] = created.size();
        created.push_back({id, std::vector<std::uint64_t>(fanout, 0), false, 0, BitString()});
        if (cur_is_new)
          created[created_idx[cur]].child[idx] = id;
        else
          links.emplace_back(cur, idx, id);
      } else if (cur_is_new) {
        created[created_idx[cur]].child[idx] = slot;
      }
      cur = slot;
      cur_is_new = true;
      pos += span_;
    }
    BitString tail = k.suffix(pos);
    if (cur_is_new) {
      auto& nn = created[created_idx[cur]];
      if (!nn.has_value) ++n_keys_;  // batch-internal duplicates overwrite
      nn.has_value = true;
      nn.value = values[i];
      nn.tail = tail;
    } else {
      // Freshness on a pre-existing node is only known module-side; the
      // ship round reports it back per value update.
      value_updates.push_back({cur, values[i], tail});
    }
  }

  // Phase 3: one round shipping new nodes, link updates and value
  // updates (tagged messages).
  std::vector<pim::Buffer> buffers(sys_->p());
  for (const auto& nn : created) {
    auto packed = pack_node(fanout, nn.child, nn.has_value, nn.value, nn.tail);
    auto& buf = buffers[dir_.at(nn.id).module];
    buf.push_back(0);  // tag: store node
    buf.push_back(nn.id);
    buf.push_back(packed.size());
    buf.insert(buf.end(), packed.begin(), packed.end());
  }
  for (auto [node, idx, child] : links) {
    auto& buf = buffers[dir_.at(node).module];
    buf.push_back(1);  // tag: set link
    buf.push_back(node);
    buf.push_back(idx);
    buf.push_back(child);
  }
  for (const auto& vu : value_updates) {
    auto& buf = buffers[dir_.at(vu.node).module];
    buf.push_back(2);  // tag: set value
    buf.push_back(vu.node);
    buf.push_back(vu.value);
    buf.push_back(vu.tail.size());
    for (std::size_t w = 0; w < vu.tail.word_count(); ++w) buf.push_back(vu.tail.word(w));
  }
  std::size_t fo = fanout;
  auto ship = sys_->round("radix.insertship", std::move(buffers),
                          [inst, fo](pim::Module& m, pim::Buffer in) {
    auto& stt = m.state<RadixModuleState>(inst);
    pim::Buffer out;
    std::size_t i = 0;
    while (i < in.size()) {
      std::uint64_t tag = in[i++];
      if (tag == 0) {
        std::uint64_t id = in[i++];
        std::uint64_t len = in[i++];
        stt.nodes[id] = std::vector<std::uint64_t>(in.begin() + i, in.begin() + i + len);
        i += len;
        m.work(len / 4 + 1);
      } else if (tag == 1) {
        std::uint64_t node = in[i], idx = in[i + 1], child = in[i + 2];
        i += 3;
        stt.nodes.at(node)[idx] = child;
        m.work(1);
      } else {
        std::uint64_t node = in[i], value = in[i + 1], tail_bits = in[i + 2];
        i += 3;
        auto& packed = stt.nodes.at(node);
        out.push_back(packed[fo] == 0 ? 1 : 0);  // fresh?
        packed[fo] = 1;
        packed[fo + 1] = value;
        packed[fo + 2] = tail_bits;
        std::size_t tw = (tail_bits + 63) / 64;
        packed.resize(fo + 3 + tw);
        for (std::size_t t = 0; t < tw; ++t) packed[fo + 3 + t] = in[i + t];
        i += tw;
        m.work(2);
      }
    }
    return out;
  });
  for (const auto& buf : ship)
    for (std::uint64_t fresh : buf) n_keys_ += fresh;
}

void DistributedRadixTree::batch_erase(const std::vector<BitString>& keys) {
  obs::Phase op_phase("Delete");
  std::size_t fanout = std::size_t{1} << span_;
  std::uint64_t inst = instance_;

  // Phase 1: pointer-chase each key through its full chunks, one probe
  // round per level. A query that hits a missing link is absent.
  struct St {
    std::uint64_t node;
    std::size_t pos;
    bool stuck;
  };
  std::vector<St> st(keys.size());
  for (auto& q : st) q = {root_, 0, false};
  int round = 0;
  for (;;) {
    ++round;
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::vector<std::size_t>> sent(sys_->p());
    std::vector<std::size_t> walk_q = core::parallel_pack<std::size_t>(
        keys.size(),
        [&](std::size_t i) { return !st[i].stuck && st[i].pos + span_ <= keys[i].size(); },
        [](std::size_t i) { return i; });
    if (walk_q.empty()) break;
    auto layout = core::parallel_bucket_offsets(
        walk_q.size(), sys_->p(),
        [&](std::size_t j) { return dir_.at(st[walk_q[j]].node).module; },
        [](std::size_t) { return std::size_t{2}; });
    for (std::size_t m = 0; m < sys_->p(); ++m) {
      buffers[m].resize(layout.total[m]);
      sent[m].resize(layout.total[m] / 2);
    }
    core::parallel_for(
        0, walk_q.size(),
        [&](std::size_t j) {
          std::size_t i = walk_q[j];
          std::size_t idx = 0;
          for (unsigned b = 0; b < span_; ++b)
            idx = idx * 2 + (keys[i].bit(st[i].pos + b) ? 1 : 0);
          std::uint32_t module = dir_.at(st[i].node).module;
          std::size_t off = layout.offset[j];
          buffers[module][off] = st[i].node;
          buffers[module][off + 1] = idx;
          sent[module][off / 2] = i;
        },
        /*grain=*/1024);
    std::string lbl = "radix.erasewalk" + std::to_string(round);
    auto results = sys_->round(lbl, std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
      auto& stt = m.state<RadixModuleState>(inst);
      pim::Buffer out;
      for (std::size_t i = 0; i + 1 < in.size(); i += 2) {
        out.push_back(stt.nodes.at(in[i])[in[i + 1]]);
        m.work(2);
      }
      return out;
    });
    core::parallel_for(
        0, sys_->p(),
        [&](std::size_t mdl) {
          for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
            std::size_t i = sent[mdl][k];
            std::uint64_t child = results[mdl][k];
            if (child == 0)
              st[i].stuck = true;
            else {
              st[i].node = child;
              st[i].pos += span_;
            }
          }
        },
        /*grain=*/1);
    if (round > 4096) break;
  }

  // Phase 2: one round clearing values whose stored tail equals the key's
  // leftover bits; the kernel reports what it actually removed.
  std::vector<pim::Buffer> buffers(sys_->p());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (st[i].stuck) continue;  // chain missing: key absent
    BitString tail = keys[i].suffix(st[i].pos);
    auto& buf = buffers[dir_.at(st[i].node).module];
    buf.push_back(st[i].node);
    buf.push_back(tail.size());
    buf.push_back(tail.size() == 0 ? 0 : tail.word(0));
  }
  std::size_t fo = fanout;
  auto results = sys_->round("radix.eraseship", std::move(buffers),
                             [inst, fo](pim::Module& m, pim::Buffer in) {
    auto& stt = m.state<RadixModuleState>(inst);
    pim::Buffer out;
    for (std::size_t i = 0; i + 2 < in.size(); i += 3) {
      auto& packed = stt.nodes.at(in[i]);
      std::uint64_t tail_len = in[i + 1], tail_word = in[i + 2];
      bool match = packed[fo] != 0 && packed[fo + 2] == tail_len;
      if (match && tail_len != 0) {
        std::uint64_t stored = packed.size() > fo + 3 ? packed[fo + 3] : 0;
        std::uint64_t mask = tail_len >= 64 ? ~std::uint64_t{0}
                                            : ~((std::uint64_t{1} << (64 - tail_len)) - 1);
        match = (stored & mask) == (tail_word & mask);
      }
      if (match) {
        packed[fo] = 0;
        packed[fo + 1] = 0;
      }
      out.push_back(match ? 1 : 0);
      m.work(2);
    }
    return out;
  });
  for (const auto& buf : results)
    for (std::uint64_t removed : buf) n_keys_ -= removed;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_subtree(const std::vector<BitString>& prefixes) {
  obs::Phase op_phase("Subtree");
  std::size_t fanout = std::size_t{1} << span_;
  std::uint64_t inst = instance_;
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(prefixes.size());

  // Walk to the prefix node (O(l/s) rounds via batch_lcp-style walk),
  // then BFS the subtree one level per round — the O(n_D)-round behavior
  // Table 1 reports.
  struct Item {
    std::size_t query;
    std::uint64_t node;
    BitString path;  // absolute string of `node`
  };
  std::vector<Item> frontier;
  {
    // Locate prefix nodes host-free: replay pointer chase.
    struct Q {
      std::uint64_t node;
      std::size_t pos;
      bool alive;
    };
    std::vector<Q> qs(prefixes.size());
    for (std::size_t i = 0; i < prefixes.size(); ++i) qs[i] = {root_, 0, true};
    int round = 0;
    bool any = true;
    while (any) {
      ++round;
      any = false;
      std::vector<pim::Buffer> buffers(sys_->p());
      std::vector<std::vector<std::size_t>> sent(sys_->p());
      for (std::size_t i = 0; i < prefixes.size(); ++i) {
        if (!qs[i].alive || qs[i].pos + span_ > prefixes[i].size()) continue;
        any = true;
        std::size_t idx = 0;
        for (unsigned b = 0; b < span_; ++b)
          idx = idx * 2 + (prefixes[i].bit(qs[i].pos + b) ? 1 : 0);
        auto& buf = buffers[dir_.at(qs[i].node).module];
        buf.push_back(qs[i].node);
        buf.push_back(idx);
        sent[dir_.at(qs[i].node).module].push_back(i);
      }
      if (!any) break;
      std::string lbl = "radix.subwalk" + std::to_string(round);
      auto results = sys_->round(lbl, std::move(buffers), [inst](pim::Module& m,
                                                                 pim::Buffer in) {
        auto& st = m.state<RadixModuleState>(inst);
        pim::Buffer out;
        for (std::size_t i = 0; i + 1 < in.size(); i += 2) {
          const auto& packed = st.nodes.at(in[i]);
          out.push_back(packed[in[i + 1]]);
          m.work(2);
        }
        return out;
      });
      std::vector<std::size_t> cursor(sys_->p(), 0);
      for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl)
        for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
          std::size_t i = sent[mdl][k];
          std::uint64_t child = results[mdl][cursor[mdl]++];
          if (child == 0)
            qs[i].alive = false;
          else {
            qs[i].node = child;
            qs[i].pos += span_;
          }
        }
      if (round > 4096) break;
    }
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      // Only exact multiples of span are supported as subtree anchors in
      // this baseline (matching its fixed-chunk structure).
      if (qs[i].alive && qs[i].pos + span_ > prefixes[i].size())
        frontier.push_back({i, qs[i].node, prefixes[i].prefix(qs[i].pos)});
    }
  }

  int level = 0;
  while (!frontier.empty() && level < 4096) {
    ++level;
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::vector<std::size_t>> sent(sys_->p());
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      auto& buf = buffers[dir_.at(frontier[f].node).module];
      buf.push_back(frontier[f].node);
      sent[dir_.at(frontier[f].node).module].push_back(f);
    }
    std::string lbl = "radix.subtree" + std::to_string(level);
    auto results = sys_->round(lbl, std::move(buffers), [inst, fanout](pim::Module& m,
                                                                       pim::Buffer in) {
      auto& st = m.state<RadixModuleState>(inst);
      pim::Buffer out;
      for (std::size_t i = 0; i < in.size(); ++i) {
        const auto& packed = st.nodes.at(in[i]);
        out.insert(out.end(), packed.begin(), packed.end());
        m.work(packed.size() / 4 + 1);
      }
      return out;
    });
    std::vector<Item> next;
    std::vector<std::size_t> cursor(sys_->p(), 0);
    for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
      const auto& buf = results[mdl];
      for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
        const Item& item = frontier[sent[mdl][k]];
        std::size_t base = cursor[mdl];
        bool has_value = buf[base + fanout] != 0;
        std::uint64_t value = buf[base + fanout + 1];
        std::uint64_t tail_len = buf[base + fanout + 2];
        cursor[mdl] += fanout + 3 + (tail_len + 63) / 64;
        if (has_value) {
          BitString key = item.path;
          if (tail_len != 0) {
            std::uint64_t word0 = buf[base + fanout + 3];
            key.append(BitString::from_uint(word0 >> (64 - tail_len), tail_len));
          }
          out[item.query].emplace_back(std::move(key), value);
        }
        for (std::size_t c = 0; c < fanout; ++c) {
          std::uint64_t child = buf[base + c];
          if (child == 0) continue;
          BitString path = item.path;
          path.append(BitString::from_uint(c, span_));
          next.push_back({item.query, child, std::move(path)});
        }
      }
    }
    frontier = std::move(next);
  }
  for (auto& res : out)
    std::sort(res.begin(), res.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace {
// Deduplicating accumulator for the cover prefixes of a batch of
// ordered queries; one subtree sweep resolves them all.
struct PrefixPool {
  std::vector<BitString> prefixes;
  std::unordered_map<std::string, std::size_t> index;
  std::size_t add(const BitString& p) {
    auto [it, fresh] = index.emplace(p.to_binary(), prefixes.size());
    if (fresh) prefixes.push_back(p);
    return it->second;
  }
};

// batch_subtree anchors at chunk granularity; keep only true extensions.
std::vector<std::pair<BitString, std::uint64_t>> filter_extensions(
    const std::vector<std::pair<BitString, std::uint64_t>>& hits, const BitString& prefix) {
  std::vector<std::pair<BitString, std::uint64_t>> out;
  for (const auto& [k, v] : hits)
    if (prefix.is_prefix_of(k)) out.emplace_back(k, v);
  return out;
}

std::optional<std::pair<BitString, std::uint64_t>> exact_hit(
    const std::vector<std::pair<BitString, std::uint64_t>>& hits, const BitString& key) {
  for (const auto& [k, v] : hits)
    if (k.size() == key.size() && key.is_prefix_of(k)) return std::make_pair(k, v);
  return std::nullopt;
}
}  // namespace

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_pred(const std::vector<BitString>& keys) {
  return batch_neighbor(keys, /*dir=*/1);
}

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_succ(const std::vector<BitString>& keys) {
  return batch_neighbor(keys, /*dir=*/0);
}

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_neighbor(const std::vector<BitString>& keys, int dir) {
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> out(keys.size());
  if (root_ == 0) return out;
  obs::Phase op_phase(dir ? "Pred" : "Succ");
  std::vector<std::vector<trie::CoverPiece>> cands(keys.size());
  PrefixPool pool;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cands[i] = dir ? trie::pred_candidates(keys[i]) : trie::succ_candidates(keys[i]);
    for (const auto& c : cands[i]) pool.add(c.prefix);
  }
  auto hits = batch_subtree(pool.prefixes);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (const auto& c : cands[i]) {
      const auto& h = hits[pool.index.at(c.prefix.to_binary())];
      if (c.subtree) {
        auto ext = filter_extensions(h, c.prefix);
        if (ext.empty()) continue;
        out[i] = dir ? ext.back() : ext.front();  // hits are ascending
        break;
      }
      if (auto e = exact_hit(h, c.prefix)) {
        out[i] = *e;
        break;
      }
    }
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_range(const std::vector<BitString>& los,
                                  const std::vector<BitString>& his,
                                  const std::vector<std::size_t>& limits) {
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(los.size());
  if (root_ == 0) return out;
  obs::Phase op_phase("Range");
  std::vector<std::vector<trie::CoverPiece>> covers(los.size());
  PrefixPool pool;
  for (std::size_t i = 0; i < los.size(); ++i) {
    if (limits[i] == 0) continue;
    covers[i] = trie::range_cover(los[i], his[i]);
    for (const auto& c : covers[i]) pool.add(c.prefix);
  }
  auto hits = batch_subtree(pool.prefixes);
  for (std::size_t i = 0; i < los.size(); ++i) {
    for (const auto& c : covers[i]) {
      if (out[i].size() >= limits[i]) break;
      const auto& h = hits[pool.index.at(c.prefix.to_binary())];
      if (c.subtree) {
        auto ext = filter_extensions(h, c.prefix);
        std::size_t take = std::min(ext.size(), limits[i] - out[i].size());
        out[i].insert(out[i].end(), ext.begin(), ext.begin() + take);
      } else if (auto e = exact_hit(h, c.prefix)) {
        out[i].push_back(*e);
      }
    }
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
DistributedRadixTree::batch_topk(const std::vector<BitString>& prefixes,
                                 const std::vector<std::size_t>& ks) {
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(prefixes.size());
  if (root_ == 0) return out;
  obs::Phase op_phase("TopK");
  auto hits = batch_subtree(prefixes);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    out[i] = filter_extensions(hits[i], prefixes[i]);
    if (out[i].size() > ks[i]) out[i].resize(ks[i]);
  }
  return out;
}

std::string DistributedRadixTree::debug_check() const {
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 4000) problems += s + "\n";
  };
  std::size_t fanout = std::size_t{1} << span_;
  // Gather resident nodes; every resident node must be in the directory
  // on that module, and vice versa.
  std::unordered_map<std::uint64_t, const std::vector<std::uint64_t>*> resident;
  for (std::size_t m = 0; m < sys_->p(); ++m) {
    auto& mod = const_cast<pim::System*>(sys_)->module(m);
    if (!mod.has_state<RadixModuleState>(instance_)) continue;
    for (const auto& [id, packed] : mod.state<RadixModuleState>(instance_).nodes) {
      auto it = dir_.find(id);
      if (it == dir_.end())
        complain("node " + std::to_string(id) + " resident but not in directory");
      else if (it->second.module != m)
        complain("node " + std::to_string(id) + " on wrong module");
      if (!resident.emplace(id, &packed).second)
        complain("node " + std::to_string(id) + " resident on two modules");
    }
  }
  if (dir_.size() != n_nodes_) complain("directory size != node_count");
  std::size_t values = 0;
  for (const auto& [id, ref] : dir_) {
    auto it = resident.find(id);
    if (it == resident.end()) {
      complain("node " + std::to_string(id) + " in directory but not resident");
      continue;
    }
    const auto& packed = *it->second;
    if (packed.size() < fanout + 3) {
      complain("node " + std::to_string(id) + " truncated");
      continue;
    }
    std::uint64_t tail_len = packed[fanout + 2];
    if (tail_len >= span_)
      complain("node " + std::to_string(id) + " tail as long as span");
    if (packed.size() < fanout + 3 + (tail_len + 63) / 64)
      complain("node " + std::to_string(id) + " tail words missing");
    if (packed[fanout] != 0) ++values;
    for (std::size_t c = 0; c < fanout; ++c) {
      if (packed[c] != 0 && !dir_.contains(packed[c]))
        complain("node " + std::to_string(id) + " dangling child " + std::to_string(packed[c]));
    }
  }
  if (values != n_keys_)
    complain("value flags sum " + std::to_string(values) + " != key_count " +
             std::to_string(n_keys_));
  // Reachability from the root.
  if (root_ != 0) {
    std::unordered_map<std::uint64_t, bool> seen;
    std::vector<std::uint64_t> stack{root_};
    seen[root_] = true;
    while (!stack.empty()) {
      std::uint64_t id = stack.back();
      stack.pop_back();
      auto it = resident.find(id);
      if (it == resident.end()) continue;
      const auto& packed = *it->second;
      for (std::size_t c = 0; c < fanout && c < packed.size(); ++c) {
        std::uint64_t child = packed[c];
        if (child != 0 && !seen[child]) {
          seen[child] = true;
          stack.push_back(child);
        }
      }
    }
    for (const auto& [id, ref] : dir_)
      if (!seen[id]) complain("node " + std::to_string(id) + " unreachable from root");
  }
  return problems;
}

std::size_t DistributedRadixTree::space_words() const {
  // Inspect module states directly (not a metered operation).
  std::size_t words = 0;
  for (std::size_t i = 0; i < sys_->p(); ++i) {
    auto& mod = const_cast<pim::System*>(sys_)->module(i);
    if (!mod.has_state<RadixModuleState>(instance_)) continue;
    for (const auto& [id, packed] : mod.state<RadixModuleState>(instance_).nodes)
      words += packed.size() + 2;
  }
  return words;
}

}  // namespace ptrie::baselines
