#pragma once
// Baseline 3 (paper Section 3.2, "Range-partitioned Indexes"): the key
// space is split by separator keys kept on the host CPU; each module
// owns one contiguous range as a local Patricia trie. Operations route
// to exactly one module in a single round — minimal communication, but
// under query skew every message lands on the same module and the batch
// serializes (the load-imbalance argument PIM-trie exists to beat).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bitstring.hpp"
#include "pim/system.hpp"
#include "trie/patricia.hpp"

namespace ptrie::baselines {

class RangePartitionedIndex {
 public:
  explicit RangePartitionedIndex(pim::System& sys, std::uint64_t seed = 0xBEEFCAFE);

  void build(const std::vector<core::BitString>& keys,
             const std::vector<std::uint64_t>& values);

  std::vector<std::size_t> batch_lcp(const std::vector<core::BitString>& keys);
  void batch_insert(const std::vector<core::BitString>& keys,
                    const std::vector<std::uint64_t>& values);
  // Delete: routes each key to its range owner in one round. Absent keys
  // and batch-internal repeats are no-ops.
  void batch_erase(const std::vector<core::BitString>& keys);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_subtree(
      const std::vector<core::BitString>& prefixes);

  // Ordered operations. Pred/succ broadcast each query to every module
  // (the true neighbor can live across a separator from the query's own
  // range) and reduce the per-module answers host-side; range and top-k
  // route to the module span covering the interval and concatenate the
  // per-module ascending answers in module order.
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_pred(
      const std::vector<core::BitString>& keys);
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_succ(
      const std::vector<core::BitString>& keys);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_range(
      const std::vector<core::BitString>& los, const std::vector<core::BitString>& his,
      const std::vector<std::size_t>& limits);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_topk(
      const std::vector<core::BitString>& prefixes, const std::vector<std::size_t>& ks);

  std::size_t key_count() const { return n_keys_; }
  std::size_t space_words() const;
  // The sorted separator keys (P-1 or fewer): module m owns the keys k
  // with separators()[m-1] <= k < separators()[m]. Exposed so tests can
  // compute exact per-range expectations.
  const std::vector<core::BitString>& separators() const { return separators_; }

  // Inspection-only structural invariants: separators sorted and unique,
  // every resident key routed to its owning module, per-module key counts
  // summing to key_count(). "" if healthy.
  std::string debug_check() const;

 private:
  std::uint32_t route(const core::BitString& key) const;
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_neighbor(
      const std::vector<core::BitString>& keys, int dir);

  pim::System* sys_;
  std::uint64_t instance_;
  std::vector<core::BitString> separators_;  // P-1 of them, sorted
  std::size_t n_keys_ = 0;
};

}  // namespace ptrie::baselines
