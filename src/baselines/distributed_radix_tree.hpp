#pragma once
// Baseline 1 (paper Table 1, row "Distributed Radix Tree"): a span-s
// radix tree whose nodes are hashed uniformly at random to PIM modules,
// queried by pointer chasing — one IO round per traversed node, O(l/s)
// rounds and O(l/s) words per operation, and O(n_D) rounds for Subtree.
// This is the strawman Section 3.4 analyzes: randomization fixes *space*
// balance but neither the round count nor query-skew contention.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bitstring.hpp"
#include "pim/system.hpp"

namespace ptrie::baselines {

class DistributedRadixTree {
 public:
  // span: bits consumed per node (fanout 2^span).
  DistributedRadixTree(pim::System& sys, unsigned span, std::uint64_t seed = 0x8BADF00D);

  void build(const std::vector<core::BitString>& keys, const std::vector<std::uint64_t>& values);

  // Batch LCP: returns per-key LCP length in bits.
  std::vector<std::size_t> batch_lcp(const std::vector<core::BitString>& keys);
  void batch_insert(const std::vector<core::BitString>& keys,
                    const std::vector<std::uint64_t>& values);
  // Batch Delete: clears the value at exactly-matched keys (chain nodes are
  // retained — this baseline never splices, matching its strawman role).
  // Absent keys and repeated deletes are no-ops.
  void batch_erase(const std::vector<core::BitString>& keys);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_subtree(
      const std::vector<core::BitString>& prefixes);

  // Ordered operations, composed host-side from the cover decomposition
  // (trie/ordered_cover.hpp) and one batched subtree sweep: the node
  // wire format and kernels are untouched. batch_subtree anchors at the
  // last full span-chunk of a prefix, so its answers are a superset of
  // the candidate's subtree; the host filters to true extensions before
  // taking extrema / assembling, keeping the answers exact.
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_pred(
      const std::vector<core::BitString>& keys);
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_succ(
      const std::vector<core::BitString>& keys);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_range(
      const std::vector<core::BitString>& los, const std::vector<core::BitString>& his,
      const std::vector<std::size_t>& limits);
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> batch_topk(
      const std::vector<core::BitString>& prefixes, const std::vector<std::size_t>& ks);

  unsigned span() const { return span_; }
  std::size_t key_count() const { return n_keys_; }
  std::size_t node_count() const { return n_nodes_; }
  std::size_t space_words() const;

  // Inspection-only structural invariants: directory/module agreement,
  // child links resolve, every node reachable from the root, and value
  // flags sum to key_count(). "" if healthy.
  std::string debug_check() const;

 private:
  struct Node {
    // Child node ids indexed by the next `span` bits (dense table: the
    // classic radix-node space overhead the paper calls out).
    std::vector<std::uint64_t> child;
    bool has_value = false;
    std::uint64_t value = 0;
    // Terminal marker for keys whose length is not a multiple of span:
    // leftover bits of the key tail (flagged by tail_len > 0).
    std::uint32_t tail_len = 0;
    core::BitString tail;
  };
  struct HostRef {
    std::uint32_t module;
  };

  std::uint64_t new_node();
  std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> batch_neighbor(
      const std::vector<core::BitString>& keys, int dir);

  pim::System* sys_;
  unsigned span_;
  std::uint64_t instance_;
  std::uint64_t next_id_ = 1;
  std::uint64_t root_ = 0;
  std::size_t n_keys_ = 0, n_nodes_ = 0;
  std::unordered_map<std::uint64_t, HostRef> dir_;  // node -> module
};

}  // namespace ptrie::baselines
