#pragma once
// Baseline 2 (paper Table 1, row "Distributed x-fast trie"): an x-fast
// trie for fixed-width integer keys whose per-level prefix tables are
// spread over PIM modules by hashing (level, prefix). LCP resolves by a
// binary search over levels — O(log l) IO rounds, O(log l) words per
// query — but space is O(n*l) words and only l = O(w) bit keys are
// supported (the (#) restriction in Table 1).

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/bitstring.hpp"
#include "pim/system.hpp"

namespace ptrie::baselines {

class DistributedXFastTrie {
 public:
  DistributedXFastTrie(pim::System& sys, unsigned width, std::uint64_t seed = 0xFACEFEED);

  void build(const std::vector<std::uint64_t>& keys, const std::vector<std::uint64_t>& values);

  // LCP length (in bits) of each query against the stored key set.
  std::vector<unsigned> batch_lcp(const std::vector<std::uint64_t>& keys);
  // Insert: one round carrying all l+1 prefixes per key (O(l) words/key).
  // Duplicate keys (in the batch or vs the stored set) overwrite the value
  // without inflating prefix reference counts.
  void batch_insert(const std::vector<std::uint64_t>& keys,
                    const std::vector<std::uint64_t>& values);
  // Delete: one round decrementing every prefix's reference count and
  // dropping the leaf. Absent keys and batch-internal repeats are no-ops.
  void batch_erase(const std::vector<std::uint64_t>& keys);
  // Subtree: all stored keys with the given high-bit prefix. One scan
  // round; O(L_S) response words (Table 1's Subtree column).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> batch_subtree(
      const std::vector<std::pair<std::uint64_t, unsigned>>& prefixes);

  // Ordered operations over the integer key order (identical to the
  // fixed-width bitstring order). Each is one broadcast scan round: the
  // leaves are hash-scattered, so every module holds an arbitrary
  // sample of the key space and must be consulted; modules answer from
  // their local leaf table and the host reduces / merges.
  std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>> batch_pred(
      const std::vector<std::uint64_t>& keys);
  std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>> batch_succ(
      const std::vector<std::uint64_t>& keys);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> batch_range(
      const std::vector<std::uint64_t>& los, const std::vector<std::uint64_t>& his,
      const std::vector<std::size_t>& limits);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> batch_topk(
      const std::vector<std::pair<std::uint64_t, unsigned>>& prefixes,
      const std::vector<std::size_t>& ks);

  unsigned width() const { return width_; }
  std::size_t key_count() const { return n_keys_; }
  std::size_t space_words() const;

  // Inspection-only structural invariants: every stored key's full prefix
  // chain is resident with exact reference counts, leaves match the host
  // key set, and no orphan table entries exist. "" if healthy.
  std::string debug_check() const;

 private:
  std::uint32_t module_of(unsigned level, std::uint64_t prefix) const;

  pim::System* sys_;
  unsigned width_;
  std::uint64_t instance_;
  std::uint64_t salt_;
  std::size_t n_keys_ = 0;
  // Host directory of stored keys (simulation convenience, like the other
  // baselines' host directories): freshness of inserts/deletes is decided
  // here so module-side reference counts stay exact.
  std::unordered_set<std::uint64_t> host_keys_;
};

}  // namespace ptrie::baselines
