#pragma once
// Baseline 2 (paper Table 1, row "Distributed x-fast trie"): an x-fast
// trie for fixed-width integer keys whose per-level prefix tables are
// spread over PIM modules by hashing (level, prefix). LCP resolves by a
// binary search over levels — O(log l) IO rounds, O(log l) words per
// query — but space is O(n*l) words and only l = O(w) bit keys are
// supported (the (#) restriction in Table 1).

#include <cstdint>
#include <vector>

#include "core/bitstring.hpp"
#include "pim/system.hpp"

namespace ptrie::baselines {

class DistributedXFastTrie {
 public:
  DistributedXFastTrie(pim::System& sys, unsigned width, std::uint64_t seed = 0xFACEFEED);

  void build(const std::vector<std::uint64_t>& keys, const std::vector<std::uint64_t>& values);

  // LCP length (in bits) of each query against the stored key set.
  std::vector<unsigned> batch_lcp(const std::vector<std::uint64_t>& keys);
  // Insert: one round carrying all l+1 prefixes per key (O(l) words/key).
  void batch_insert(const std::vector<std::uint64_t>& keys,
                    const std::vector<std::uint64_t>& values);
  // Subtree: all stored keys with the given high-bit prefix. One scan
  // round; O(L_S) response words (Table 1's Subtree column).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> batch_subtree(
      const std::vector<std::pair<std::uint64_t, unsigned>>& prefixes);

  std::size_t key_count() const { return n_keys_; }
  std::size_t space_words() const;

 private:
  std::uint32_t module_of(unsigned level, std::uint64_t prefix) const;

  pim::System* sys_;
  unsigned width_;
  std::uint64_t instance_;
  std::uint64_t salt_;
  std::size_t n_keys_ = 0;
};

}  // namespace ptrie::baselines
