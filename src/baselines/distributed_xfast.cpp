#include "baselines/distributed_xfast.hpp"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "core/parallel.hpp"
#include "obs/phase.hpp"

namespace ptrie::baselines {

namespace {
std::atomic<std::uint64_t> g_instance{1u << 24};

struct XFastModuleState {
  // (level << 57 | prefix-hash-key) -> reference count (number of stored
  // keys carrying that prefix); leaf level also keeps the value and the
  // full key for subtree scans.
  std::unordered_map<std::uint64_t, std::uint64_t> prefixes;
  std::unordered_map<std::uint64_t, std::uint64_t> leaves;  // key -> value
};

std::uint64_t slot_key(unsigned level, std::uint64_t prefix) {
  return (static_cast<std::uint64_t>(level) << 57) ^ (prefix * 0x9E3779B97F4A7C15ull >> 7);
}
}  // namespace

DistributedXFastTrie::DistributedXFastTrie(pim::System& sys, unsigned width,
                                           std::uint64_t seed)
    : sys_(&sys), width_(width), instance_(g_instance.fetch_add(1)), salt_(seed) {}

std::uint32_t DistributedXFastTrie::module_of(unsigned level, std::uint64_t prefix) const {
  std::uint64_t h = (slot_key(level, prefix) ^ salt_) * 0xC2B2AE3D27D4EB4Full;
  return static_cast<std::uint32_t>((h >> 29) % sys_->p());
}

void DistributedXFastTrie::build(const std::vector<std::uint64_t>& keys,
                                 const std::vector<std::uint64_t>& values) {
  batch_insert(keys, values);
}

void DistributedXFastTrie::batch_insert(const std::vector<std::uint64_t>& keys,
                                        const std::vector<std::uint64_t>& values) {
  obs::Phase op_phase("Insert");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  // Freshness is decided on the host (serially, so the first occurrence of
  // a batch-internal duplicate is the fresh one): fresh keys ship their
  // whole prefix chain; duplicates ship a value-update-only leaf item.
  std::vector<char> fresh(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    fresh[i] = host_keys_.insert(keys[i]).second ? 1 : 0;
  // One 4-word item per (key, level) pair; fixed size makes the bucket
  // offsets exact, so the parallel scatter reproduces the serial append
  // order per module. Non-leaf items of duplicate keys have size 0.
  std::size_t levels = width_ + 1;
  std::size_t n_items = keys.size() * levels;
  auto item_prefix = [&](std::size_t it) {
    std::size_t i = it / levels;
    unsigned level = static_cast<unsigned>(it % levels);
    std::uint64_t prefix = level == 0 ? 0 : (keys[i] >> (width_ - level));
    return std::pair<unsigned, std::uint64_t>{level, prefix};
  };
  auto item_live = [&](std::size_t it) {
    return fresh[it / levels] != 0 || it % levels == width_;
  };
  auto layout = core::parallel_bucket_offsets(
      n_items, sys_->p(),
      [&](std::size_t it) {
        auto [level, prefix] = item_prefix(it);
        return module_of(level, prefix);
      },
      [&](std::size_t it) { return item_live(it) ? std::size_t{4} : std::size_t{0}; });
  for (std::size_t m = 0; m < sys_->p(); ++m) buffers[m].resize(layout.total[m]);
  core::parallel_for(
      0, n_items,
      [&](std::size_t it) {
        if (!item_live(it)) return;
        std::size_t i = it / levels;
        auto [level, prefix] = item_prefix(it);
        auto& buf = buffers[module_of(level, prefix)];
        std::size_t off = layout.offset[it];
        // Tags: 0 = prefix refcount only, 1 = leaf + refcount (fresh key),
        // 2 = leaf value update only (duplicate key).
        buf[off] = slot_key(level, prefix);
        buf[off + 1] = level != width_ ? 0 : (fresh[i] != 0 ? 1 : 2);
        buf[off + 2] = level == width_ ? keys[i] : 0;
        buf[off + 3] = level == width_ ? values[i] : 0;
      },
      /*grain=*/512);
  for (char f : fresh) n_keys_ += f != 0 ? 1 : 0;
  sys_->round("xfast.insert", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
    auto& st = m.state<XFastModuleState>(inst);
    for (std::size_t i = 0; i + 3 < in.size() + 0; i += 4) {
      if (in[i + 1] != 2) ++st.prefixes[in[i]];
      if (in[i + 1] != 0) st.leaves[in[i + 2]] = in[i + 3];
      m.work(2);
    }
    return pim::Buffer{};
  });
}

void DistributedXFastTrie::batch_erase(const std::vector<std::uint64_t>& keys) {
  obs::Phase op_phase("Delete");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  // Host-side presence check (serial: the first occurrence of a
  // batch-internal repeat is the one that deletes).
  std::vector<char> present(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    present[i] = host_keys_.erase(keys[i]) != 0 ? 1 : 0;
  std::size_t levels = width_ + 1;
  std::size_t n_items = keys.size() * levels;
  auto item_prefix = [&](std::size_t it) {
    std::size_t i = it / levels;
    unsigned level = static_cast<unsigned>(it % levels);
    std::uint64_t prefix = level == 0 ? 0 : (keys[i] >> (width_ - level));
    return std::pair<unsigned, std::uint64_t>{level, prefix};
  };
  auto layout = core::parallel_bucket_offsets(
      n_items, sys_->p(),
      [&](std::size_t it) {
        auto [level, prefix] = item_prefix(it);
        return module_of(level, prefix);
      },
      [&](std::size_t it) {
        return present[it / levels] != 0 ? std::size_t{3} : std::size_t{0};
      });
  for (std::size_t m = 0; m < sys_->p(); ++m) buffers[m].resize(layout.total[m]);
  core::parallel_for(
      0, n_items,
      [&](std::size_t it) {
        std::size_t i = it / levels;
        if (present[i] == 0) return;
        auto [level, prefix] = item_prefix(it);
        auto& buf = buffers[module_of(level, prefix)];
        std::size_t off = layout.offset[it];
        buf[off] = slot_key(level, prefix);
        buf[off + 1] = level == width_ ? 1 : 0;
        buf[off + 2] = level == width_ ? keys[i] : 0;
      },
      /*grain=*/512);
  for (char pr : present) n_keys_ -= pr != 0 ? 1 : 0;
  sys_->round("xfast.erase", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
    auto& st = m.state<XFastModuleState>(inst);
    for (std::size_t i = 0; i + 2 < in.size() + 0; i += 3) {
      auto it = st.prefixes.find(in[i]);
      if (it != st.prefixes.end() && --it->second == 0) st.prefixes.erase(it);
      if (in[i + 1] != 0) st.leaves.erase(in[i + 2]);
      m.work(2);
    }
    return pim::Buffer{};
  });
}

std::vector<unsigned> DistributedXFastTrie::batch_lcp(const std::vector<std::uint64_t>& keys) {
  obs::Phase op_phase("LCP");
  std::uint64_t inst = instance_;
  std::vector<unsigned> lo(keys.size(), 0), hi(keys.size(), width_);
  if (n_keys_ == 0) return lo;
  // Binary search over levels, one membership-probe round per step.
  int round = 0;
  for (;;) {
    ++round;
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::vector<std::size_t>> sent(sys_->p());
    std::vector<std::size_t> active_q = core::parallel_pack<std::size_t>(
        keys.size(), [&](std::size_t i) { return lo[i] < hi[i]; },
        [](std::size_t i) { return i; });
    if (active_q.empty()) break;
    auto probe = [&](std::size_t i) {
      unsigned mid = (lo[i] + hi[i] + 1) / 2;
      std::uint64_t prefix = mid == 0 ? 0 : (keys[i] >> (width_ - mid));
      return std::pair<unsigned, std::uint64_t>{mid, prefix};
    };
    auto layout = core::parallel_bucket_offsets(
        active_q.size(), sys_->p(),
        [&](std::size_t j) {
          auto [mid, prefix] = probe(active_q[j]);
          return module_of(mid, prefix);
        },
        [](std::size_t) { return std::size_t{1}; });
    for (std::size_t m = 0; m < sys_->p(); ++m) {
      buffers[m].resize(layout.total[m]);
      sent[m].resize(layout.total[m]);
    }
    core::parallel_for(
        0, active_q.size(),
        [&](std::size_t j) {
          std::size_t i = active_q[j];
          auto [mid, prefix] = probe(i);
          std::uint32_t module = module_of(mid, prefix);
          std::size_t off = layout.offset[j];
          buffers[module][off] = slot_key(mid, prefix);
          sent[module][off] = i;
        },
        /*grain=*/1024);
    std::string lbl = "xfast.lcp" + std::to_string(round);
    auto results = sys_->round(lbl, std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
      auto& st = m.state<XFastModuleState>(inst);
      pim::Buffer out;
      for (std::uint64_t key : in) {
        out.push_back(st.prefixes.contains(key) ? 1 : 0);
        m.work(1);
      }
      return out;
    });
    core::parallel_for(
        0, sys_->p(),
        [&](std::size_t mdl) {
          for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
            std::size_t i = sent[mdl][k];
            unsigned mid = (lo[i] + hi[i] + 1) / 2;
            if (results[mdl][k] != 0)
              lo[i] = mid;
            else
              hi[i] = mid - 1;
          }
        },
        /*grain=*/1);
  }
  return lo;
}

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
DistributedXFastTrie::batch_subtree(
    const std::vector<std::pair<std::uint64_t, unsigned>>& prefixes) {
  obs::Phase op_phase("Subtree");
  std::uint64_t inst = instance_;
  // One broadcast round: every module scans its leaves for each prefix.
  pim::Buffer payload;
  for (const auto& [prefix, len] : prefixes) {
    payload.push_back(prefix);
    payload.push_back(len);
  }
  unsigned width = width_;
  auto results = sys_->broadcast_round(
      "xfast.subtree", payload, [inst, width](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<XFastModuleState>(inst);
        pim::Buffer out;
        for (std::size_t q = 0; q + 1 < in.size() + 0; q += 2) {
          std::uint64_t prefix = in[q];
          unsigned len = static_cast<unsigned>(in[q + 1]);
          std::size_t mark = out.size();
          out.push_back(0);  // count placeholder
          for (const auto& [key, value] : st.leaves) {
            bool match = len == 0 || (key >> (width - len)) == prefix;
            if (match) {
              out.push_back(key);
              out.push_back(value);
            }
            m.work(1);
          }
          out[mark] = (out.size() - mark - 1) / 2;
        }
        return out;
      });
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> out(prefixes.size());
  for (const auto& buf : results) {
    std::size_t i = 0;
    for (std::size_t q = 0; q < prefixes.size(); ++q) {
      std::uint64_t count = buf[i++];
      for (std::uint64_t k = 0; k < count; ++k) {
        out[q].emplace_back(buf[i], buf[i + 1]);
        i += 2;
      }
    }
  }
  for (auto& v : out) std::sort(v.begin(), v.end());
  return out;
}

namespace {
// Shared host-side reduce for the pred/succ broadcast: per module one
// (found, key, value) triple per query.
std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>> reduce_neighbor(
    const std::vector<pim::Buffer>& results, std::size_t n, bool want_max) {
  std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>> out(n);
  for (const auto& buf : results) {
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[3 * i] == 0) continue;
      std::uint64_t key = buf[3 * i + 1], value = buf[3 * i + 2];
      if (!out[i] || (want_max ? out[i]->first < key : key < out[i]->first))
        out[i] = std::make_pair(key, value);
    }
  }
  return out;
}
}  // namespace

std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>>
DistributedXFastTrie::batch_pred(const std::vector<std::uint64_t>& keys) {
  obs::Phase op_phase("Pred");
  std::uint64_t inst = instance_;
  auto results = sys_->broadcast_round(
      "xfast.pred", pim::Buffer(keys), [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<XFastModuleState>(inst);
        pim::Buffer out;
        for (std::uint64_t x : in) {
          bool found = false;
          std::uint64_t bk = 0, bv = 0;
          for (const auto& [key, value] : st.leaves) {
            if (key < x && (!found || bk < key)) {
              found = true;
              bk = key;
              bv = value;
            }
            m.work(1);
          }
          out.push_back(found ? 1 : 0);
          out.push_back(bk);
          out.push_back(bv);
        }
        return out;
      });
  return reduce_neighbor(results, keys.size(), /*want_max=*/true);
}

std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>>
DistributedXFastTrie::batch_succ(const std::vector<std::uint64_t>& keys) {
  obs::Phase op_phase("Succ");
  std::uint64_t inst = instance_;
  auto results = sys_->broadcast_round(
      "xfast.succ", pim::Buffer(keys), [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<XFastModuleState>(inst);
        pim::Buffer out;
        for (std::uint64_t x : in) {
          bool found = false;
          std::uint64_t bk = 0, bv = 0;
          for (const auto& [key, value] : st.leaves) {
            if (key > x && (!found || key < bk)) {
              found = true;
              bk = key;
              bv = value;
            }
            m.work(1);
          }
          out.push_back(found ? 1 : 0);
          out.push_back(bk);
          out.push_back(bv);
        }
        return out;
      });
  return reduce_neighbor(results, keys.size(), /*want_max=*/false);
}

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
DistributedXFastTrie::batch_range(const std::vector<std::uint64_t>& los,
                                  const std::vector<std::uint64_t>& his,
                                  const std::vector<std::size_t>& limits) {
  obs::Phase op_phase("Range");
  std::uint64_t inst = instance_;
  pim::Buffer payload;
  for (std::size_t i = 0; i < los.size(); ++i) {
    payload.push_back(los[i]);
    payload.push_back(his[i]);
    payload.push_back(limits[i]);
  }
  // Each module sorts its local in-range leaves and ships only its
  // `limit` smallest: the global `limit` smallest are a subset of the
  // per-module `limit` smallest, so the host merge stays exact.
  auto results = sys_->broadcast_round(
      "xfast.range", payload, [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<XFastModuleState>(inst);
        pim::Buffer out;
        for (std::size_t q = 0; q + 2 < in.size() + 0; q += 3) {
          std::uint64_t lo = in[q], hi = in[q + 1], limit = in[q + 2];
          std::vector<std::pair<std::uint64_t, std::uint64_t>> matches;
          for (const auto& [key, value] : st.leaves) {
            if (key >= lo && key <= hi) matches.emplace_back(key, value);
            m.work(1);
          }
          std::sort(matches.begin(), matches.end());
          if (matches.size() > limit) matches.resize(limit);
          out.push_back(matches.size());
          for (const auto& [key, value] : matches) {
            out.push_back(key);
            out.push_back(value);
          }
        }
        return out;
      });
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> out(los.size());
  for (const auto& buf : results) {
    std::size_t i = 0;
    for (std::size_t q = 0; q < los.size(); ++q) {
      std::uint64_t count = buf[i++];
      for (std::uint64_t k = 0; k < count; ++k) {
        out[q].emplace_back(buf[i], buf[i + 1]);
        i += 2;
      }
    }
  }
  for (std::size_t q = 0; q < out.size(); ++q) {
    std::sort(out[q].begin(), out[q].end());
    if (out[q].size() > limits[q]) out[q].resize(limits[q]);
  }
  return out;
}

std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
DistributedXFastTrie::batch_topk(
    const std::vector<std::pair<std::uint64_t, unsigned>>& prefixes,
    const std::vector<std::size_t>& ks) {
  obs::Phase op_phase("TopK");
  std::uint64_t inst = instance_;
  pim::Buffer payload;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    payload.push_back(prefixes[i].first);
    payload.push_back(prefixes[i].second);
    payload.push_back(ks[i]);
  }
  unsigned width = width_;
  auto results = sys_->broadcast_round(
      "xfast.topk", payload, [inst, width](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<XFastModuleState>(inst);
        pim::Buffer out;
        for (std::size_t q = 0; q + 2 < in.size() + 0; q += 3) {
          std::uint64_t prefix = in[q], k = in[q + 2];
          unsigned len = static_cast<unsigned>(in[q + 1]);
          std::vector<std::pair<std::uint64_t, std::uint64_t>> matches;
          for (const auto& [key, value] : st.leaves) {
            bool match = len == 0 || (key >> (width - len)) == prefix;
            if (match) matches.emplace_back(key, value);
            m.work(1);
          }
          std::sort(matches.begin(), matches.end());
          if (matches.size() > k) matches.resize(k);
          out.push_back(matches.size());
          for (const auto& [key, value] : matches) {
            out.push_back(key);
            out.push_back(value);
          }
        }
        return out;
      });
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> out(prefixes.size());
  for (const auto& buf : results) {
    std::size_t i = 0;
    for (std::size_t q = 0; q < prefixes.size(); ++q) {
      std::uint64_t count = buf[i++];
      for (std::uint64_t k = 0; k < count; ++k) {
        out[q].emplace_back(buf[i], buf[i + 1]);
        i += 2;
      }
    }
  }
  for (std::size_t q = 0; q < out.size(); ++q) {
    std::sort(out[q].begin(), out[q].end());
    if (out[q].size() > ks[q]) out[q].resize(ks[q]);
  }
  return out;
}

std::string DistributedXFastTrie::debug_check() const {
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 4000) problems += s + "\n";
  };
  if (host_keys_.size() != n_keys_) complain("host key set size != key_count");
  // Expected per-module slot reference counts, computed exactly from the
  // host key set (slot-key collisions merge counts on both sides).
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> want_prefixes(sys_->p());
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> want_leaves(sys_->p());
  for (std::uint64_t k : host_keys_) {
    for (unsigned level = 0; level <= width_; ++level) {
      std::uint64_t prefix = level == 0 ? 0 : (k >> (width_ - level));
      ++want_prefixes[module_of(level, prefix)][slot_key(level, prefix)];
    }
    want_leaves[module_of(width_, k)][k] = 1;
  }
  for (std::size_t m = 0; m < sys_->p(); ++m) {
    auto& mod = const_cast<pim::System*>(sys_)->module(m);
    bool empty_state = !mod.has_state<XFastModuleState>(instance_);
    if (empty_state) {
      if (!want_prefixes[m].empty())
        complain("module " + std::to_string(m) + " missing expected state");
      continue;
    }
    const auto& st = mod.state<XFastModuleState>(instance_);
    if (st.prefixes.size() != want_prefixes[m].size())
      complain("module " + std::to_string(m) + " prefix table size " +
               std::to_string(st.prefixes.size()) + " != expected " +
               std::to_string(want_prefixes[m].size()));
    for (const auto& [slot, count] : want_prefixes[m]) {
      auto it = st.prefixes.find(slot);
      if (it == st.prefixes.end())
        complain("module " + std::to_string(m) + " missing prefix slot");
      else if (it->second != count)
        complain("module " + std::to_string(m) + " refcount " + std::to_string(it->second) +
                 " != expected " + std::to_string(count));
    }
    if (st.leaves.size() != want_leaves[m].size())
      complain("module " + std::to_string(m) + " leaf table size mismatch");
    for (const auto& [key, value] : st.leaves) {
      if (!want_leaves[m].contains(key))
        complain("module " + std::to_string(m) + " orphan leaf " + std::to_string(key));
    }
  }
  return problems;
}

std::size_t DistributedXFastTrie::space_words() const {
  std::size_t words = 0;
  for (std::size_t i = 0; i < sys_->p(); ++i) {
    auto& mod = const_cast<pim::System*>(sys_)->module(i);
    if (!mod.has_state<XFastModuleState>(instance_)) continue;
    const auto& st = mod.state<XFastModuleState>(instance_);
    words += st.prefixes.size() + st.leaves.size() * 2;
  }
  return words;
}

}  // namespace ptrie::baselines
