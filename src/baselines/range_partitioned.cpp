#include "baselines/range_partitioned.hpp"

#include <algorithm>
#include <atomic>

#include "core/parallel.hpp"
#include "obs/phase.hpp"
#include "pimtrie/types.hpp"

namespace ptrie::baselines {

using core::BitString;
using pimtrie::BufReader;
using pimtrie::BufWriter;

namespace {
std::atomic<std::uint64_t> g_instance{1u << 28};

struct RangeModuleState {
  trie::Patricia local;
};

// Message: op (0 lcp, 1 insert, 2 subtree), key bits [, value].
}  // namespace

RangePartitionedIndex::RangePartitionedIndex(pim::System& sys, std::uint64_t seed)
    : sys_(&sys), instance_(g_instance.fetch_add(1)) {
  (void)seed;
}

std::uint32_t RangePartitionedIndex::route(const BitString& key) const {
  // First separator greater than key decides the module.
  auto it = std::upper_bound(separators_.begin(), separators_.end(), key);
  return static_cast<std::uint32_t>(it - separators_.begin());
}

void RangePartitionedIndex::build(const std::vector<BitString>& keys,
                                  const std::vector<std::uint64_t>& values) {
  obs::Phase op_phase("Build");
  // Separators: evenly spaced sample of the sorted keys.
  std::vector<std::size_t> perm(keys.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  core::parallel_stable_sort(perm.begin(), perm.end(),
                             [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  separators_.clear();
  for (std::size_t m = 1; m < sys_->p(); ++m) {
    std::size_t pos = m * keys.size() / sys_->p();
    if (pos < keys.size()) separators_.push_back(keys[perm[pos]]);
  }
  separators_.erase(std::unique(separators_.begin(), separators_.end()), separators_.end());
  batch_insert(keys, values);  // counts fresh keys exactly (duplicates overwrite)
}

void RangePartitionedIndex::batch_insert(const std::vector<BitString>& keys,
                                         const std::vector<std::uint64_t>& values) {
  obs::Phase op_phase("Insert");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  // Variable-size items (op word + bits + value word); the bucket offsets
  // account for each item's exact wire size, so the parallel scatter lays
  // bytes out exactly as the serial BufWriter loop did.
  auto layout = core::parallel_bucket_offsets(
      keys.size(), sys_->p(), [&](std::size_t i) { return route(keys[i]); },
      [&](std::size_t i) { return 3 + keys[i].word_count(); });
  for (std::size_t m = 0; m < sys_->p(); ++m) buffers[m].resize(layout.total[m]);
  core::parallel_for(
      0, keys.size(),
      [&](std::size_t i) {
        auto& buf = buffers[route(keys[i])];
        std::size_t off = layout.offset[i];
        buf[off] = 1;
        buf[off + 1] = keys[i].size();
        for (std::size_t w = 0; w < keys[i].word_count(); ++w)
          buf[off + 2 + w] = keys[i].word(w);
        buf[off + 2 + keys[i].word_count()] = values[i];
      },
      /*grain=*/512);
  auto results = sys_->round("range.insert", std::move(buffers),
                             [inst](pim::Module& m, pim::Buffer in) {
    auto& st = m.state<RangeModuleState>(inst);
    BufReader r{in};
    pim::Buffer out;
    while (!r.done()) {
      r.u64();
      BitString key = r.bits();
      std::uint64_t value = r.u64();
      out.push_back(st.local.insert(key, value) ? 1 : 0);  // fresh?
      m.work(key.word_count() + 2);
    }
    return out;
  });
  for (const auto& buf : results)
    for (std::uint64_t fresh : buf) n_keys_ += fresh;
}

void RangePartitionedIndex::batch_erase(const std::vector<BitString>& keys) {
  obs::Phase op_phase("Delete");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  auto layout = core::parallel_bucket_offsets(
      keys.size(), sys_->p(), [&](std::size_t i) { return route(keys[i]); },
      [&](std::size_t i) { return 1 + keys[i].word_count(); });
  for (std::size_t m = 0; m < sys_->p(); ++m) buffers[m].resize(layout.total[m]);
  core::parallel_for(
      0, keys.size(),
      [&](std::size_t i) {
        auto& buf = buffers[route(keys[i])];
        std::size_t off = layout.offset[i];
        buf[off] = keys[i].size();
        for (std::size_t w = 0; w < keys[i].word_count(); ++w)
          buf[off + 1 + w] = keys[i].word(w);
      },
      /*grain=*/512);
  auto results = sys_->round("range.erase", std::move(buffers),
                             [inst](pim::Module& m, pim::Buffer in) {
    auto& st = m.state<RangeModuleState>(inst);
    BufReader r{in};
    pim::Buffer out;
    while (!r.done()) {
      BitString key = r.bits();
      out.push_back(st.local.erase(key) ? 1 : 0);
      m.work(key.word_count() + 2);
    }
    return out;
  });
  for (const auto& buf : results)
    for (std::uint64_t removed : buf) n_keys_ -= removed;
}

std::vector<std::size_t> RangePartitionedIndex::batch_lcp(const std::vector<BitString>& keys) {
  obs::Phase op_phase("LCP");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::vector<std::size_t>> sent(sys_->p());
  auto probe_layout = core::parallel_bucket_offsets(
      keys.size(), sys_->p(), [&](std::size_t i) { return route(keys[i]); },
      [&](std::size_t i) { return 1 + keys[i].word_count(); });
  // Replies are one word per query, so the k-th probe written to a module
  // maps to reply slot k; count probes per module with a second layout.
  auto slot_layout = core::parallel_bucket_offsets(
      keys.size(), sys_->p(), [&](std::size_t i) { return route(keys[i]); },
      [](std::size_t) { return std::size_t{1}; });
  for (std::size_t m = 0; m < sys_->p(); ++m) {
    buffers[m].resize(probe_layout.total[m]);
    sent[m].resize(slot_layout.total[m]);
  }
  core::parallel_for(
      0, keys.size(),
      [&](std::size_t i) {
        std::uint32_t module = route(keys[i]);
        auto& buf = buffers[module];
        std::size_t off = probe_layout.offset[i];
        buf[off] = keys[i].size();
        for (std::size_t w = 0; w < keys[i].word_count(); ++w)
          buf[off + 1 + w] = keys[i].word(w);
        sent[module][slot_layout.offset[i]] = i;
      },
      /*grain=*/512);
  auto results = sys_->round("range.lcp", std::move(buffers),
                             [inst](pim::Module& m, pim::Buffer in) {
                               auto& st = m.state<RangeModuleState>(inst);
                               BufReader r{in};
                               pim::Buffer out;
                               while (!r.done()) {
                                 BitString key = r.bits();
                                 auto [len, pos] = st.local.lcp(key);
                                 (void)pos;
                                 out.push_back(len);
                                 m.work(key.word_count() + 2);
                               }
                               return out;
                             });
  std::vector<std::size_t> out(keys.size(), 0);
  core::parallel_for(
      0, sys_->p(),
      [&](std::size_t mdl) {
        for (std::size_t k = 0; k < sent[mdl].size(); ++k) out[sent[mdl][k]] = results[mdl][k];
      },
      /*grain=*/1);
  // Note: keys straddling a separator boundary can have their true LCP
  // partner in the neighbor range; a production range index stores
  // boundary fences. For the load-balance experiments this boundary
  // effect is negligible and ignored, as in the paper's sketch.
  return out;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_subtree(const std::vector<BitString>& prefixes) {
  obs::Phase op_phase("Subtree");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::vector<std::size_t>> sent(sys_->p());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    // A prefix range can span several modules: send to every module
    // whose range intersects [prefix, successor(prefix)).
    BitString lo = prefixes[i];
    std::uint32_t first = route(lo);
    // Upper bound: prefix with a trailing run of 1s appended.
    BitString hi = prefixes[i];
    for (int b = 0; b < 64; ++b) hi.push_back(true);
    std::uint32_t last = route(hi);
    for (std::uint32_t mdl = first; mdl <= last && mdl < sys_->p(); ++mdl) {
      BufWriter w{buffers[mdl]};
      w.bits(prefixes[i]);
      sent[mdl].push_back(i);
    }
  }
  auto results = sys_->round(
      "range.subtree", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<RangeModuleState>(inst);
        BufReader r{in};
        pim::Buffer out;
        while (!r.done()) {
          BitString prefix = r.bits();
          auto matches = st.local.subtree(prefix);
          BufWriter w{out};
          w.u64(matches.size());
          for (const auto& [k, v] : matches) {
            w.bits(k);
            w.u64(v);
          }
          m.work(prefix.word_count() + matches.size() + 2);
        }
        return out;
      });
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(prefixes.size());
  for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
    BufReader r{results[mdl]};
    for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
      std::uint64_t count = r.u64();
      for (std::uint64_t j = 0; j < count; ++j) {
        BitString key = r.bits();
        std::uint64_t value = r.u64();
        out[sent[mdl][k]].emplace_back(std::move(key), value);
      }
    }
  }
  for (auto& v : out)
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_pred(const std::vector<BitString>& keys) {
  return batch_neighbor(keys, /*dir=*/1);
}

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_succ(const std::vector<BitString>& keys) {
  return batch_neighbor(keys, /*dir=*/0);
}

std::vector<std::optional<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_neighbor(const std::vector<BitString>& keys, int dir) {
  obs::Phase op_phase(dir ? "Pred" : "Succ");
  std::uint64_t inst = instance_;
  std::uint64_t d = static_cast<std::uint64_t>(dir);
  // Broadcast: a query's true neighbor can sit on the far side of a
  // separator (e.g. pred of a range's minimum), so every module answers
  // from its local trie and the host keeps the best.
  std::vector<pim::Buffer> buffers(sys_->p());
  for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
    BufWriter w{buffers[mdl]};
    for (const auto& key : keys) w.bits(key);
  }
  auto results = sys_->round(dir ? "range.pred" : "range.succ", std::move(buffers),
                             [inst, d](pim::Module& m, pim::Buffer in) {
                               auto& st = m.state<RangeModuleState>(inst);
                               BufReader r{in};
                               pim::Buffer out;
                               while (!r.done()) {
                                 BitString key = r.bits();
                                 auto ans = d ? st.local.pred(key) : st.local.succ(key);
                                 BufWriter w{out};
                                 w.u64(ans ? 1 : 0);
                                 if (ans) {
                                   w.bits(ans->first);
                                   w.u64(ans->second);
                                 }
                                 m.work(key.word_count() + 2);
                               }
                               return out;
                             });
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> out(keys.size());
  for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
    BufReader r{results[mdl]};
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (!r.u64()) continue;
      BitString k = r.bits();
      std::uint64_t v = r.u64();
      if (!out[i] || (dir ? out[i]->first < k : k < out[i]->first))
        out[i] = std::make_pair(std::move(k), v);
    }
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_range(const std::vector<BitString>& los,
                                   const std::vector<BitString>& his,
                                   const std::vector<std::size_t>& limits) {
  obs::Phase op_phase("Range");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::vector<std::size_t>> sent(sys_->p());
  for (std::size_t i = 0; i < los.size(); ++i) {
    if (his[i] < los[i] || limits[i] == 0) continue;
    // Routing is monotone, so every key in [lo, hi] lives on the module
    // span [route(lo), route(hi)].
    std::uint32_t first = route(los[i]);
    std::uint32_t last = route(his[i]);
    for (std::uint32_t mdl = first; mdl <= last && mdl < sys_->p(); ++mdl) {
      BufWriter w{buffers[mdl]};
      w.bits(los[i]);
      w.bits(his[i]);
      w.u64(limits[i]);
      sent[mdl].push_back(i);
    }
  }
  auto results = sys_->round(
      "range.range", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<RangeModuleState>(inst);
        BufReader r{in};
        pim::Buffer out;
        while (!r.done()) {
          BitString lo = r.bits();
          BitString hi = r.bits();
          std::uint64_t limit = r.u64();
          auto matches = st.local.range(lo, hi, limit);
          BufWriter w{out};
          w.u64(matches.size());
          for (const auto& [k, v] : matches) {
            w.bits(k);
            w.u64(v);
          }
          m.work(lo.word_count() + hi.word_count() + matches.size() + 2);
        }
        return out;
      });
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(los.size());
  // Module order is key order, and each module's answer is ascending, so
  // plain concatenation in module order is the ascending range.
  for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
    BufReader r{results[mdl]};
    for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
      std::uint64_t count = r.u64();
      for (std::uint64_t j = 0; j < count; ++j) {
        BitString key = r.bits();
        std::uint64_t value = r.u64();
        out[sent[mdl][k]].emplace_back(std::move(key), value);
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i].size() > limits[i]) out[i].resize(limits[i]);
  return out;
}

std::vector<std::vector<std::pair<BitString, std::uint64_t>>>
RangePartitionedIndex::batch_topk(const std::vector<BitString>& prefixes,
                                  const std::vector<std::size_t>& ks) {
  obs::Phase op_phase("TopK");
  std::uint64_t inst = instance_;
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::vector<std::size_t>> sent(sys_->p());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    if (ks[i] == 0) continue;
    // Same module span as batch_subtree: [prefix, prefix + 64 ones].
    std::uint32_t first = route(prefixes[i]);
    BitString hi = prefixes[i];
    for (int b = 0; b < 64; ++b) hi.push_back(true);
    std::uint32_t last = route(hi);
    for (std::uint32_t mdl = first; mdl <= last && mdl < sys_->p(); ++mdl) {
      BufWriter w{buffers[mdl]};
      w.bits(prefixes[i]);
      w.u64(ks[i]);
      sent[mdl].push_back(i);
    }
  }
  auto results = sys_->round(
      "range.topk", std::move(buffers), [inst](pim::Module& m, pim::Buffer in) {
        auto& st = m.state<RangeModuleState>(inst);
        BufReader r{in};
        pim::Buffer out;
        while (!r.done()) {
          BitString prefix = r.bits();
          std::uint64_t k = r.u64();
          auto matches = st.local.topk(prefix, k);
          BufWriter w{out};
          w.u64(matches.size());
          for (const auto& [key, v] : matches) {
            w.bits(key);
            w.u64(v);
          }
          m.work(prefix.word_count() + matches.size() + 2);
        }
        return out;
      });
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(prefixes.size());
  for (std::size_t mdl = 0; mdl < sys_->p(); ++mdl) {
    BufReader r{results[mdl]};
    for (std::size_t k = 0; k < sent[mdl].size(); ++k) {
      std::uint64_t count = r.u64();
      for (std::uint64_t j = 0; j < count; ++j) {
        BitString key = r.bits();
        std::uint64_t value = r.u64();
        out[sent[mdl][k]].emplace_back(std::move(key), value);
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i].size() > ks[i]) out[i].resize(ks[i]);
  return out;
}

std::string RangePartitionedIndex::debug_check() const {
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 4000) problems += s + "\n";
  };
  for (std::size_t s = 1; s < separators_.size(); ++s) {
    if (!(separators_[s - 1] < separators_[s])) complain("separators not strictly sorted");
  }
  std::size_t keysum = 0;
  for (std::size_t m = 0; m < sys_->p(); ++m) {
    auto& mod = const_cast<pim::System*>(sys_)->module(m);
    if (!mod.has_state<RangeModuleState>(instance_)) continue;
    const auto& st = mod.state<RangeModuleState>(instance_);
    keysum += st.local.key_count();
    for (const auto& [k, v] : st.local.subtree(core::BitString())) {
      if (route(k) != m)
        complain("key on module " + std::to_string(m) + " routes to module " +
                 std::to_string(route(k)));
    }
  }
  if (keysum != n_keys_)
    complain("per-module key counts sum " + std::to_string(keysum) + " != key_count " +
             std::to_string(n_keys_));
  return problems;
}

std::size_t RangePartitionedIndex::space_words() const {
  std::size_t words = 0;
  for (std::size_t i = 0; i < sys_->p(); ++i) {
    auto& mod = const_cast<pim::System*>(sys_)->module(i);
    if (mod.has_state<RangeModuleState>(instance_))
      words += mod.state<RangeModuleState>(instance_).local.space_words();
  }
  for (const auto& s : separators_) words += s.space_words();
  return words;
}

}  // namespace ptrie::baselines
