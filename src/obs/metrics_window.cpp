#include "obs/metrics_window.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "obs/counters.hpp"
#include "obs/env.hpp"

namespace ptrie::obs {

namespace {

double env_f64(const char* name, double def, const char* help) {
  std::string s = env::str(name, help);
  if (s.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() ? def : v;
}

// Linear-interpolation percentile over an unsorted sample vector.
double pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double rank = p / 100.0 * double(v.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - double(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

void append_f(std::string* out, const char* key, double v, const char* fmt = "%.1f") {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":", key);
  *out += buf;
  std::snprintf(buf, sizeof buf, fmt, v);
  *out += buf;
}

void append_stage(std::string* out, const char* key, std::vector<double>& v) {
  // Sort before building the argument list: snprintf argument evaluation
  // order is unspecified, so back() must not race the pct() sorts.
  std::sort(v.begin(), v.end());
  double mx = v.empty() ? 0.0 : v.back();
  char buf[160];
  std::snprintf(buf, sizeof buf, "\"%s\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"max\":%.1f}",
                key, pct(v, 50), pct(v, 95), pct(v, 99), mx);
  *out += buf;
}

}  // namespace

AlertConfig AlertConfig::from_env() {
  AlertConfig c;
  c.hot_key_frac = env_f64(
      "PTRIE_ALERT_HOTKEY", c.hot_key_frac,
      "skew alert when one key exceeds this fraction of a tenant's window ops (default 0.25)");
  c.module_imbalance = env_f64(
      "PTRIE_ALERT_IMBALANCE", c.module_imbalance,
      "skew alert when window per-module word imbalance max/mean exceeds this (default 3.0)");
  c.min_ops = env::u64("PTRIE_ALERT_MIN_OPS", c.min_ops,
                       "minimum window ops before skew alerts can fire (default 50)");
  c.shed_frac = env_f64(
      "PTRIE_ALERT_SHED", c.shed_frac,
      "overload alert when shed requests exceed this fraction of window admissions (default 0.05)");
  return c;
}

void MetricsWindow::record(const RequestSample& s) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantAgg& t = tenants_[s.tenant];
  ++t.ops;
  ++t.by_op[s.op];
  t.queue.push_back(s.queue_us);
  t.coalesce.push_back(s.coalesce_us);
  t.prep.push_back(s.prep_us);
  t.exec.push_back(s.exec_us);
  t.total.push_back(s.total_us);
  t.words += s.words;
  t.batch_sum += s.batch_size;
  auto it = t.key_counts.find(s.key_hash);
  if (it != t.key_counts.end())
    ++it->second;
  else if (t.key_counts.size() < TenantAgg::kMaxKeys)
    t.key_counts.emplace(s.key_hash, 1);
  if (s.status != nullptr && std::string_view(s.status) == "failed") ++t.failed;
}

void MetricsWindow::record_admission(std::uint32_t tenant, const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantAgg& t = tenants_[tenant];
  if (std::string_view(what) == "shed")
    ++t.shed;
  else
    ++t.expired;
}

void MetricsWindow::record_batch_module_words(const std::vector<std::uint64_t>& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (module_words_.size() < delta.size()) module_words_.resize(delta.size(), 0);
  for (std::size_t m = 0; m < delta.size(); ++m) module_words_[m] += delta[m];
}

std::uint64_t MetricsWindow::windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_seq_;
}

std::vector<Alert> MetricsWindow::roll(double t_ms, const WindowGauges& g, std::string* out) {
  std::map<std::uint32_t, TenantAgg> tenants;
  std::vector<std::uint64_t> module_words;
  std::uint64_t window;
  double span_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenants.swap(tenants_);
    module_words.swap(module_words_);
    window = window_seq_++;
    span_ms = t_ms - last_roll_ms_;
    last_roll_ms_ = t_ms;
  }

  std::uint64_t total_ops = 0, total_shed = 0, total_expired = 0, total_failed = 0;
  for (const auto& [id, t] : tenants) {
    total_ops += t.ops;
    total_shed += t.shed;
    total_expired += t.expired;
    total_failed += t.failed;
  }

  // ---- skew detector ----
  std::vector<Alert> alerts;
  double imbalance = 1.0;
  if (!module_words.empty()) {
    std::uint64_t max = 0, sum = 0;
    for (std::uint64_t w : module_words) {
      sum += w;
      max = std::max(max, w);
    }
    double mean = double(sum) / double(module_words.size());
    imbalance = mean > 0 ? double(max) / mean : 1.0;
  }
  if (total_ops >= cfg_.min_ops && imbalance > cfg_.module_imbalance) {
    Alert a;
    a.kind = "module_imbalance";
    a.value = imbalance;
    a.threshold = cfg_.module_imbalance;
    a.window = window;
    alerts.push_back(std::move(a));
  }
  for (auto& [id, t] : tenants) {
    if (t.ops < cfg_.min_ops || t.key_counts.empty()) continue;
    auto hot = std::max_element(
        t.key_counts.begin(), t.key_counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    double frac = double(hot->second) / double(t.ops);
    if (frac > cfg_.hot_key_frac) {
      Alert a;
      a.kind = "hot_key";
      a.has_tenant = true;
      a.tenant = id;
      a.value = frac;
      a.threshold = cfg_.hot_key_frac;
      a.hot_hash = hot->first;
      a.window = window;
      alerts.push_back(std::move(a));
    }
  }
  // Overload detector: shed fraction of this window's admission attempts.
  if (total_shed > 0 && total_ops + total_shed >= cfg_.min_ops) {
    double frac = double(total_shed) / double(total_ops + total_shed);
    if (frac > cfg_.shed_frac) {
      Alert a;
      a.kind = "shed_rate";
      a.value = frac;
      a.threshold = cfg_.shed_frac;
      a.window = window;
      alerts.push_back(std::move(a));
    }
  }
  for (const Alert& a : alerts) {
    counter(a.kind == "hot_key"            ? "serve/alert_hot_key"
            : a.kind == "module_imbalance" ? "serve/alert_imbalance"
                                           : "serve/alert_shed_rate")
        .add();
    std::string tenant = a.has_tenant ? std::to_string(a.tenant) : "-";
    logf(LogLevel::kWarn, "skew",
         "window %llu: %s alert value=%.3f threshold=%.3f tenant=%s",
         (unsigned long long)a.window, a.kind.c_str(), a.value, a.threshold, tenant.c_str());
  }

  if (!out) return alerts;

  // ---- JSON-lines rendering ----
  char buf[384];
  std::string& o = *out;
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"window\",\"window\":%llu,\"t_ms\":%.1f,\"span_ms\":%.1f,"
                "\"ops\":%llu,\"in_flight\":%llu,\"queue_depth\":%llu,"
                "\"shed\":%llu,\"expired\":%llu,\"failed\":%llu,"
                "\"module_imbalance\":%.3f,\"alerts\":%zu}\n",
                (unsigned long long)window, t_ms, span_ms, (unsigned long long)total_ops,
                (unsigned long long)g.in_flight, (unsigned long long)g.queue_depth,
                (unsigned long long)total_shed, (unsigned long long)total_expired,
                (unsigned long long)total_failed, imbalance, alerts.size());
  o += buf;
  for (auto& [id, t] : tenants) {
    // Tenants whose window was all sheds/expiries still get a line — an
    // all-shed tenant is exactly the one an operator needs to see.
    if (t.ops == 0 && t.shed == 0 && t.expired == 0 && t.failed == 0) continue;
    std::snprintf(buf, sizeof buf, "{\"type\":\"tenant\",\"window\":%llu,\"t_ms\":%.1f,"
                  "\"tenant\":%u,\"ops\":%llu,\"shed\":%llu,\"expired\":%llu,\"failed\":%llu,",
                  (unsigned long long)window, t_ms, id, (unsigned long long)t.ops,
                  (unsigned long long)t.shed, (unsigned long long)t.expired,
                  (unsigned long long)t.failed);
    o += buf;
    append_f(&o, "ops_per_sec", span_ms > 0 ? double(t.ops) / (span_ms / 1000.0) : 0.0);
    o += ",\"by_op\":{";
    bool first = true;
    for (const auto& [op, n] : t.by_op) {
      std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", first ? "" : ",", op.c_str(),
                    (unsigned long long)n);
      o += buf;
      first = false;
    }
    o += "},\"lat_us\":{";
    append_stage(&o, "total", t.total);
    o += ",";
    append_stage(&o, "queue", t.queue);
    o += ",";
    append_stage(&o, "coalesce", t.coalesce);
    o += ",";
    append_stage(&o, "prep", t.prep);
    o += ",";
    append_stage(&o, "exec", t.exec);
    o += "},";
    append_f(&o, "words_per_op", t.ops > 0 ? t.words / double(t.ops) : 0.0);
    o += ",";
    append_f(&o, "mean_batch", t.ops > 0 ? double(t.batch_sum) / double(t.ops) : 0.0);
    double hot_frac = 0;
    std::uint64_t hot_hash = 0;
    if (!t.key_counts.empty() && t.ops > 0) {
      auto hot = std::max_element(
          t.key_counts.begin(), t.key_counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      hot_frac = double(hot->second) / double(t.ops);
      hot_hash = hot->first;
    }
    std::snprintf(buf, sizeof buf, ",\"hot_frac\":%.3f,\"hot_hash\":%llu}\n", hot_frac,
                  (unsigned long long)hot_hash);
    o += buf;
  }
  for (const Alert& a : alerts) {
    std::snprintf(buf, sizeof buf, "{\"type\":\"alert\",\"window\":%llu,\"t_ms\":%.1f,"
                  "\"kind\":\"%s\",",
                  (unsigned long long)a.window, t_ms, a.kind.c_str());
    o += buf;
    if (a.has_tenant) {
      std::snprintf(buf, sizeof buf, "\"tenant\":%u,", a.tenant);
      o += buf;
    }
    std::snprintf(buf, sizeof buf, "\"value\":%.3f,\"threshold\":%.3f,\"hot_hash\":%llu}\n",
                  a.value, a.threshold, (unsigned long long)a.hot_hash);
    o += buf;
  }
  return alerts;
}

}  // namespace ptrie::obs
