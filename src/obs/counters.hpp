#pragma once
// Structured counters and leveled logging, replacing the ad-hoc
// PTRIE_DEBUG fprintf guards that used to sit in kernel.cpp,
// meta_index.cpp and pim_trie_match.cpp.
//
//   obs::counter("hash/rejected_collisions").add();   // thread-safe
//   obs::logf(obs::LogLevel::kDebug, "phaseA", "criticals=%zu", n);
//
// Counters are process-global, created on first use, and safe to bump
// from pool workers (kernels run in parallel across modules). The log
// level comes from PTRIE_LOG (error/warn/info/debug); PTRIE_DEBUG
// implies debug for backward compatibility with the old guards.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptrie::obs {

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// Registry lookup; creates the counter on first use. The reference stays
// valid for the process lifetime, so hot paths cache it:
//   static obs::Counter& c = obs::counter("kernel/hash_match");
Counter& counter(std::string_view name);

// (name, value) for every registered counter, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot();

// Zeroes every registered counter (tests, per-run deltas).
void counters_reset();

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// True when `level` messages are emitted. Cheap (cached atomic).
bool log_enabled(LogLevel level);

// "[ptrie][debug][tag] message\n" on stderr when the level is enabled.
#if defined(__GNUC__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel level, const char* tag, const char* fmt, ...);

}  // namespace ptrie::obs
