#pragma once
// Sliding-window serving telemetry: per-tenant / per-op throughput,
// stage-latency percentiles (queue / coalesce / prep / exec / total),
// words charged, batch occupancy, hot-key concentration — plus the skew
// anomaly detector that watches per-module word imbalance and per-tenant
// key concentration over each window and emits structured alerts when
// configurable thresholds are crossed.
//
// The aggregator is passive and thread-safe: the serving executor calls
// record() per completed request and record_batch_module_words() per
// batch; a snapshot thread (owned by serve::Server) calls roll()
// periodically, which closes the window and renders one JSON line per
// tenant plus a global line and any alert lines — the PTRIE_METRICS
// sink format that `ptrie_report --top` tails.
//
// Alert thresholds come from PTRIE_ALERT_* (see AlertConfig::from_env);
// every alert also bumps an obs::counter and logs at warn level. The
// caller is responsible for mirroring alerts into the trace as instant
// events (serve::Server does, when tracing is on).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ptrie::obs {

struct AlertConfig {
  // Alert when one key exceeds this fraction of a tenant's window ops.
  double hot_key_frac = 0.25;
  // Alert when the window's per-module word imbalance (max/mean over
  // modules, writes+reads) exceeds this.
  double module_imbalance = 3.0;
  // Minimum ops in the window (per tenant for hot-key, global for
  // imbalance) before an alert can fire — suppresses cold-start noise.
  std::uint64_t min_ops = 50;
  // Alert when shed requests exceed this fraction of the window's
  // admission attempts (ops + shed) — the overload signal.
  double shed_frac = 0.05;

  static AlertConfig from_env();  // PTRIE_ALERT_{HOTKEY,IMBALANCE,MIN_OPS,SHED}
};

// One completed request, as reported by the serving executor. Stage
// intervals tile [submit, done]; `words` is the request's equal share of
// its batch's model-word delta.
struct RequestSample {
  std::uint32_t tenant = 0;
  const char* op = "?";      // static string (serve::op_name)
  const char* status = "ok"; // static string (serve::status_name)
  double queue_us = 0, coalesce_us = 0, prep_us = 0, exec_us = 0, total_us = 0;
  double words = 0;
  std::size_t batch_size = 0;
  std::uint64_t key_hash = 0;
};

struct Alert {
  std::string kind;  // "hot_key" | "module_imbalance" | "shed_rate"
  bool has_tenant = false;
  std::uint32_t tenant = 0;   // hot_key only
  double value = 0;           // observed concentration / imbalance
  double threshold = 0;
  std::uint64_t hot_hash = 0; // hot_key only: hash of the offending key
  std::uint64_t window = 0;
};

// Gauges sampled by the caller at roll time (they live in the server's
// queueing state, not in per-request samples).
struct WindowGauges {
  std::uint64_t in_flight = 0;    // submitted, not yet completed
  std::uint64_t queue_depth = 0;  // admitted, not yet executing
};

class MetricsWindow {
 public:
  explicit MetricsWindow(AlertConfig cfg = AlertConfig()) : cfg_(cfg) {}

  void record(const RequestSample& s);
  void record_batch_module_words(const std::vector<std::uint64_t>& delta);
  // Admission-path outcomes that never reach the executor (so carry no
  // stage timings): `what` is "shed" or "expired".
  void record_admission(std::uint32_t tenant, const char* what);

  // Closes the current window: evaluates the skew detector, appends the
  // window's JSON lines (global "window" line, one "tenant" line per
  // active tenant, one "alert" line per fired alert) to *out, and
  // returns the alerts. `t_ms` is the roll timestamp (server clock).
  std::vector<Alert> roll(double t_ms, const WindowGauges& g, std::string* out);

  std::uint64_t windows() const;

 private:
  struct TenantAgg {
    std::uint64_t ops = 0;
    std::map<std::string, std::uint64_t> by_op;
    std::vector<double> queue, coalesce, prep, exec, total;  // us
    double words = 0;
    std::uint64_t batch_sum = 0;
    // Overload / fault outcomes (shed + expired never executed; failed
    // executed but resolved with Status::kFailed).
    std::uint64_t shed = 0, expired = 0, failed = 0;
    // Hot-key tracking, capped so adversarial key churn cannot balloon
    // memory; overflowed keys only lower the reported concentration.
    std::map<std::uint64_t, std::uint64_t> key_counts;
    static constexpr std::size_t kMaxKeys = 4096;
  };

  mutable std::mutex mu_;
  AlertConfig cfg_;
  std::map<std::uint32_t, TenantAgg> tenants_;
  std::vector<std::uint64_t> module_words_;  // window per-module word deltas
  std::uint64_t window_seq_ = 0;
  double last_roll_ms_ = 0;
};

}  // namespace ptrie::obs
