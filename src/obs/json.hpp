#pragma once
// Minimal JSON DOM + recursive-descent parser, enough to read back the
// trace and bench files this repo writes (objects, arrays, strings with
// the escapes we emit, integers, doubles, bools, null). Integers are
// kept exactly in `inum` so ptrie_report can reconcile phase totals with
// Metrics aggregates word-for-word; `num` always holds the double view.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ptrie::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double num = 0.0;
  std::int64_t inum = 0;  // exact when is_int
  bool is_int = false;
  std::string str;
  std::vector<Value> arr;
  // Insertion order preserved (traces rely on event order).
  std::vector<std::pair<std::string, Value>> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  std::int64_t as_int(std::int64_t def = 0) const {
    if (kind != Kind::kNumber) return def;
    return is_int ? inum : static_cast<std::int64_t>(num);
  }
  double as_double(double def = 0.0) const { return kind == Kind::kNumber ? num : def; }
  std::string as_string(const std::string& def = "") const {
    return kind == Kind::kString ? str : def;
  }
};

// Parses `text`; on failure returns false and sets `error` to a
// position-annotated message. `out` is valid only on success.
bool parse(const std::string& text, Value& out, std::string& error);

// Serializes a string with JSON escaping (quotes included). Shared by
// every writer in the repo so output stays parseable by this parser.
std::string escape(const std::string& s);

}  // namespace ptrie::obs::json
