#include "obs/phase.hpp"

namespace ptrie::obs {

std::vector<std::string>& Phase::stack() {
  thread_local std::vector<std::string> s;
  return s;
}

Phase::Phase(std::string name) { stack().push_back(std::move(name)); }

Phase::~Phase() { stack().pop_back(); }

std::string Phase::current_path() {
  const auto& s = stack();
  std::string path;
  for (const auto& n : s) {
    if (!path.empty()) path += '/';
    path += n;
  }
  return path;
}

std::size_t Phase::depth() { return stack().size(); }

}  // namespace ptrie::obs
