#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/env.hpp"
#include "obs/json.hpp"

namespace ptrie::obs {

namespace {
// Chrome tid layout per system: tid 0 is the phase track, module m maps
// to tid m + 1.
constexpr std::uint32_t kPhaseTid = 0;
constexpr std::uint32_t kModuleTidBase = 1;
}  // namespace

struct TraceAtExit {
  ~TraceAtExit() { Trace::instance().flush_to_path(); }
};

Trace::Trace() {
  path_ = env::str("PTRIE_TRACE",
                   "write a phase-attributed trace on exit (*.csv -> CSV, else Chrome JSON)");
  enabled_ = !path_.empty();
}

Trace& Trace::instance() {
  // Intentionally leaked so late recorders (static destructors, atexit
  // handlers) never touch a destructed object; the flusher below still
  // destructs normally and writes the file.
  static Trace* t = new Trace;
  static TraceAtExit flusher;
  (void)flusher;
  return *t;
}

std::uint32_t Trace::register_system(std::size_t p) {
  std::lock_guard<std::mutex> lock(mu_);
  system_p_.push_back(p);
  return static_cast<std::uint32_t>(system_p_.size());
}

void Trace::record(TraceRound r) {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_.push_back(std::move(r));
}

void Trace::record_span(SpanEvent s) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(s));
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_.clear();
  spans_.clear();
  system_p_.clear();
}

std::size_t Trace::round_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_.size();
}

std::size_t Trace::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Trace::write_chrome(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  // Metadata: name each system's process and its tracks.
  for (std::size_t s = 0; s < system_p_.size(); ++s) {
    std::uint32_t pid = static_cast<std::uint32_t>(s + 1);
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,\"name\":\"process_name\","
        << "\"args\":{\"name\":\"pim-system-" << pid << " (P=" << system_p_[s] << ")\"}}";
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << kPhaseTid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rounds\"}}";
    for (std::size_t m = 0; m < system_p_[s]; ++m) {
      sep();
      out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << (kModuleTidBase + m)
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"module " << m << "\"}}";
    }
  }
  // Serving-layer track metadata (only when spans were recorded).
  if (!spans_.empty()) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << kServePid << ",\"tid\":0,\"name\":\"process_name\","
        << "\"args\":{\"name\":\"serving\"}}";
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << kServePid
        << ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"batches\"}}";
    for (std::uint32_t l = 1; l <= kSpanReqLanes; ++l) {
      sep();
      out << "{\"ph\":\"M\",\"pid\":" << kServePid << ",\"tid\":" << l
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"requests " << l << "\"}}";
    }
  }
  std::size_t round_idx = 0;
  for (const auto& r : rounds_) {
    std::string cat = r.phase.empty() ? std::string("unphased") : r.phase;
    std::uint64_t dur = r.io_dur + r.pim_dur;
    sep();
    out << "{\"ph\":\"X\",\"pid\":" << r.system << ",\"tid\":" << kPhaseTid
        << ",\"ts\":" << r.ts << ",\"dur\":" << dur << ",\"name\":" << json::escape(r.label)
        << ",\"cat\":" << json::escape(cat) << ",\"args\":{\"round\":" << round_idx
        << ",\"total_words\":" << r.total_words << ",\"io_time\":" << r.io_dur
        << ",\"total_work\":" << r.total_work << ",\"pim_time\":" << r.pim_dur
        << ",\"touched_modules\":" << r.touched;
    if (r.modelled_ns != 0) out << ",\"modelled_ns\":" << r.modelled_ns;
    out << "}}";
    // Per-module lanes: words define the span; work rides in args. The
    // work vector is sparse and may touch modules the word vector does
    // not (and vice versa), so join by walking both.
    std::size_t wi = 0;
    for (const auto& [m, words] : r.module_words) {
      std::uint64_t work = 0;
      while (wi < r.module_work.size() && r.module_work[wi].first < m) ++wi;
      if (wi < r.module_work.size() && r.module_work[wi].first == m)
        work = r.module_work[wi].second;
      sep();
      out << "{\"ph\":\"X\",\"pid\":" << r.system << ",\"tid\":" << (kModuleTidBase + m)
          << ",\"ts\":" << r.ts << ",\"dur\":" << (words + work)
          << ",\"name\":" << json::escape(r.label) << ",\"cat\":" << json::escape(cat)
          << ",\"args\":{\"round\":" << round_idx << ",\"words\":" << words
          << ",\"work\":" << work << "}}";
    }
    ++round_idx;
  }
  for (const auto& s : spans_) {
    sep();
    char ts[64];
    std::snprintf(ts, sizeof ts, "%.3f", s.ts_us);
    out << "{\"ph\":" << (s.kind == SpanEvent::Kind::kInstant ? "\"i\"" : "\"X\"")
        << ",\"pid\":" << kServePid << ",\"tid\":" << s.lane << ",\"ts\":" << ts;
    if (s.kind == SpanEvent::Kind::kInstant) {
      out << ",\"s\":\"t\"";
    } else {
      std::snprintf(ts, sizeof ts, "%.3f", s.dur_us);
      out << ",\"dur\":" << ts;
    }
    out << ",\"name\":" << json::escape(s.name) << ",\"cat\":" << json::escape(s.cat)
        << ",\"args\":{" << s.args_json << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"clock\":\"pim-model-words\",\"source\":\"pim-trie simulator\"}}\n";
}

void Trace::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "system,round,label,phase,ts,io_time,pim_time,total_words,total_work,"
         "touched_modules,module,module_words,module_work\n";
  std::size_t round_idx = 0;
  for (const auto& r : rounds_) {
    std::string prefix;
    {
      std::ostringstream os;
      os << r.system << ',' << round_idx << ',' << r.label << ',' << r.phase << ','
         << r.ts << ',' << r.io_dur << ',' << r.pim_dur << ',' << r.total_words << ','
         << r.total_work << ',' << r.touched;
      prefix = os.str();
    }
    if (r.module_words.empty()) {
      out << prefix << ",,,\n";
    } else {
      std::size_t wi = 0;
      for (const auto& [m, words] : r.module_words) {
        std::uint64_t work = 0;
        while (wi < r.module_work.size() && r.module_work[wi].first < m) ++wi;
        if (wi < r.module_work.size() && r.module_work[wi].first == m)
          work = r.module_work[wi].second;
        out << prefix << ',' << m << ',' << words << ',' << work << '\n';
      }
    }
    ++round_idx;
  }
}

std::string Trace::chrome_json() const {
  std::ostringstream os;
  write_chrome(os);
  return os.str();
}

void Trace::flush_to_path() const {
  if (path_.empty()) return;
  std::ofstream f(path_);
  if (!f) {
    std::fprintf(stderr, "[ptrie][warn][trace] cannot open %s for writing\n", path_.c_str());
    return;
  }
  if (path_.size() >= 4 && path_.compare(path_.size() - 4, 4, ".csv") == 0)
    write_csv(f);
  else
    write_chrome(f);
}

}  // namespace ptrie::obs
