#pragma once
// Single parse point for every PTRIE_* environment variable. Call sites
// declare the variable with a help string; the registry caches the parsed
// value (first declaration wins the help text) and `dump` prints every
// recognized variable with its current setting — the `--help`-style
// listing that bench::init and ptrie_report expose.
//
// Semantics: flag() is true when the variable is set to anything other
// than "" or "0" (so PTRIE_DEBUG=0 now reads as off; the legacy guards
// treated any setting as on).

#include <cstdio>
#include <string>

namespace ptrie::obs::env {

// Raw value, or empty string when unset. Registers `name` with `help`.
std::string str(const char* name, const char* help);

// True when set and neither "" nor "0".
bool flag(const char* name, const char* help);

// Unsigned integer value, or `def` when unset/unparsable (values < 1
// fall back to `def` as well, matching the PTRIE_WORKERS contract).
std::size_t u64(const char* name, std::size_t def, const char* help);

// Prints every registered variable as "NAME=value  help" (unset values
// shown as "<unset>"), sorted by name.
void dump(std::FILE* out);

}  // namespace ptrie::obs::env
