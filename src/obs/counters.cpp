#include "obs/counters.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

#include "obs/env.hpp"

namespace ptrie::obs {

namespace {

struct CounterRegistry {
  std::mutex mu;
  // deque: stable addresses across growth (callers hold references).
  std::deque<Counter> storage;
  std::map<std::string, Counter*, std::less<>> by_name;

  static CounterRegistry& instance() {
    // Intentionally leaked: counters are read from atexit handlers (bench
    // --json flush), which can run after function-local statics destruct.
    static CounterRegistry* r = new CounterRegistry;
    return *r;
  }
};

LogLevel parse_level() {
  std::string s = env::str("PTRIE_LOG", "log level: error, warn, info, debug (default: warn)");
  if (s == "error") return LogLevel::kError;
  if (s == "warn" || s.empty()) {
    // Legacy escape hatch: PTRIE_DEBUG turns on full debug output.
    if (env::flag("PTRIE_DEBUG",
                  "verbose matching/kernel diagnostics on stderr (implies PTRIE_LOG=debug)"))
      return LogLevel::kDebug;
    return LogLevel::kWarn;
  }
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

LogLevel active_level() {
  static LogLevel level = parse_level();
  return level;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

Counter& counter(std::string_view name) {
  CounterRegistry& r = CounterRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return *it->second;
  r.storage.emplace_back(std::string(name));
  Counter* c = &r.storage.back();
  r.by_name.emplace(c->name(), c);
  return *c;
}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  CounterRegistry& r = CounterRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.by_name.size());
  for (const auto& [name, c] : r.by_name) out.emplace_back(name, c->get());
  return out;
}

void counters_reset() {
  CounterRegistry& r = CounterRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.storage) c.reset();
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(active_level());
}

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  // One formatted write so concurrent module kernels don't interleave.
  char buf[1024];
  int off = std::snprintf(buf, sizeof buf, "[ptrie][%s][%s] ", level_name(level), tag);
  if (off < 0) return;
  std::va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf + off, sizeof buf - static_cast<std::size_t>(off), fmt, args);
  va_end(args);
  if (n < 0) return;
  std::size_t len = std::min(sizeof buf - 2, static_cast<std::size_t>(off + n));
  buf[len] = '\n';
  std::fwrite(buf, 1, len + 1, stderr);
}

}  // namespace ptrie::obs
