#pragma once
// Request-lifecycle spans for the serving layer. A sampled request
// renders in the Chrome trace as one parent slice (submit -> done) with
// four children that exactly tile it:
//
//   queue     submit      -> batch close   (waiting in the open batch)
//   coalesce  batch close -> prep start    (closed, waiting for the prep stage)
//   prep      prep start  -> exec start    (host preparation + pipeline wait)
//   exec      exec start  -> done          (PIM rounds of the batch)
//
// Spans live in the same trace stream as the model-time BSP rounds
// (obs/trace.hpp) but on their own "serving" process track, stamped with
// the server wall clock (microseconds since Server construction): the
// simulator tracks stay byte-deterministic, and a serving run renders as
// one flame view per sampled request.
//
// Sampling is 1-in-N on the request's global submission sequence number
// through a fixed mixer, so the sampled *set* depends only on (seed, N,
// submission order) — never on PTRIE_WORKERS, pipeline scheduling, or
// wall-clock (asserted by tests/test_serve.cpp).

#include <cstdint>
#include <string>

#include "core/bitstring.hpp"

namespace ptrie::obs {

// Chrome pid reserved for the serving-layer track (simulator systems are
// registered 1..N; this sits far above them). tid 0 carries batch spans
// and alert instants; tids 1..kSpanReqLanes carry request flames.
constexpr std::uint32_t kServePid = 1000;
constexpr std::uint32_t kSpanReqLanes = 8;

struct SpanEvent {
  enum class Kind : std::uint8_t { kComplete, kInstant };
  Kind kind = Kind::kComplete;
  std::uint32_t lane = 0;  // tid within the serving process track
  std::string name;        // "req/lcp", "queue", "batch 7 exec", "alert/hot_key"
  std::string cat;         // "request" | "stage" | "batch" | "alert"
  double ts_us = 0;        // server clock, microseconds
  double dur_us = 0;       // kComplete only
  // Extra members for the Chrome "args" object, pre-rendered as JSON
  // ("\"tenant\":3,\"batch\":7"); may be empty.
  std::string args_json;
};

// SplitMix64 finalizer: the mixer behind span sampling and key hashing.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Order-independent-ish content hash of a key's bits (used for hot-key
// concentration tracking; never for placement).
inline std::uint64_t key_hash(const core::BitString& k) {
  std::uint64_t h = 0x5E64E57ull ^ static_cast<std::uint64_t>(k.size());
  for (std::size_t w = 0; w < k.word_count(); ++w) h = mix64(h ^ k.word(w));
  return h;
}

// Deterministic 1-in-N sampler over request sequence numbers.
class SpanSampler {
 public:
  SpanSampler() = default;
  SpanSampler(std::uint64_t seed, std::uint64_t n) : seed_(seed), n_(n) {}

  bool sampled(std::uint64_t seq) const { return n_ <= 1 || mix64(seed_ ^ seq) % n_ == 0; }
  std::uint64_t every() const { return n_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t n_ = 1;
};

// Env-configured defaults (PTRIE_SPAN_SAMPLE / PTRIE_SPAN_SEED).
std::uint64_t span_sample_from_env();
std::uint64_t span_seed_from_env();

}  // namespace ptrie::obs
