#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ptrie::obs::json {

namespace {

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    char c = s[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (pos >= s.size() || s[pos] != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      Value v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (pos >= s.size() || s[pos] != '"') return fail("expected '\"'");
    ++pos;
    out.clear();
    while (pos < s.size()) {
      char c = s[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return fail("dangling escape");
        char e = s[pos];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 >= s.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = s[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // We only ever emit \u00XX for control bytes; decode BMP code
            // points as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        ++pos;
        continue;
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    out.kind = Value::Kind::kBool;
    if (s.compare(pos, 4, "true") == 0) {
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out.boolean = false;
      pos += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(Value& out) {
    out.kind = Value::Kind::kNull;
    if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(Value& out) {
    out.kind = Value::Kind::kNumber;
    std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    bool digits = false, frac = false;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
      digits = true;
    }
    if (pos < s.size() && s[pos] == '.') {
      frac = true;
      ++pos;
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      frac = true;
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    }
    if (!digits) return fail("expected number");
    std::string tok = s.substr(start, pos - start);
    out.num = std::strtod(tok.c_str(), nullptr);
    out.is_int = !frac;
    if (out.is_int) out.inum = std::strtoll(tok.c_str(), nullptr, 10);
    return true;
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string& error) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out)) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    error = "trailing content at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

std::string escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace ptrie::obs::json
