#include "obs/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace ptrie::obs::env {

namespace {

struct Entry {
  std::string help;
  std::string value;
  bool set = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> entries;

  static Registry& instance() {
    // Leaked on purpose: consulted from atexit flushes and static
    // destructors, which may run after local statics are gone.
    static Registry* r = new Registry;
    return *r;
  }

  // Known variables are pre-registered so `dump` is complete even before
  // their first use in this process.
  Registry() {
    pre("PTRIE_WORKERS", "host worker threads (default: hardware concurrency)");
    pre("PTRIE_DEBUG", "verbose matching/kernel diagnostics on stderr (implies PTRIE_LOG=debug)");
    pre("PTRIE_LOG", "log level: error, warn, info, debug (default: warn)");
    pre("PTRIE_NO_MAINT", "disable all insert-time maintenance (repartition/split/rebuild)");
    pre("PTRIE_NO_PSPLIT", "disable piece splits + meta-tree rebuilds (keep block repartition)");
    pre("PTRIE_TRACE", "write a phase-attributed trace on exit (*.csv -> CSV, else Chrome JSON)");
    pre("PTRIE_TELEMETRY", "retain per-round per-module words/work for phase imbalance reports");
    pre("PTRIE_METRICS",
        "per-tenant serving metrics JSON-lines sink (file path, or '-' for stderr)");
    pre("PTRIE_METRICS_INTERVAL_MS", "serving metrics snapshot period in ms (default 500)");
    pre("PTRIE_SPAN_SAMPLE",
        "sample 1-in-N serving requests into the trace as lifecycle spans (default 16; 1 = every request)");
    pre("PTRIE_SPAN_SEED", "seed for the deterministic span-sampling hash (default 1)");
    pre("PTRIE_ALERT_HOTKEY",
        "skew alert when one key exceeds this fraction of a tenant's window ops (default 0.25)");
    pre("PTRIE_ALERT_IMBALANCE",
        "skew alert when window per-module word imbalance max/mean exceeds this (default 3.0)");
    pre("PTRIE_ALERT_MIN_OPS", "minimum window ops before skew alerts can fire (default 50)");
    pre("PTRIE_ALERT_SHED",
        "overload alert when shed requests exceed this fraction of window admissions (default 0.05)");
    pre("PTRIE_BACKEND", "execution backend: exact (default), wallclock, threaded");
    pre("PTRIE_FAULTS",
        "deterministic PIM fault plan, e.g. 'corrupt@round=5,module=2;retries=4' (pim/fault.hpp)");
    pre("PTRIE_BENCH_N", "key count for bench_host_scaling datasets (default 1000000)");
    pre("PTRIE_STRESS_ITERS", "stress-test iterations per randomized sequence (default 8)");
  }

  void pre(const char* name, const char* help) {
    Entry e;
    e.help = help;
    if (const char* v = std::getenv(name)) {
      e.value = v;
      e.set = true;
    }
    entries.emplace(name, std::move(e));
  }

  const Entry& lookup(const char* name, const char* help) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end()) {
      Entry e;
      e.help = help;
      if (const char* v = std::getenv(name)) {
        e.value = v;
        e.set = true;
      }
      it = entries.emplace(name, std::move(e)).first;
    } else if (it->second.help.empty()) {
      it->second.help = help;
    }
    return it->second;
  }
};

}  // namespace

std::string str(const char* name, const char* help) {
  return Registry::instance().lookup(name, help).value;
}

bool flag(const char* name, const char* help) {
  const Entry& e = Registry::instance().lookup(name, help);
  return e.set && !e.value.empty() && e.value != "0";
}

std::size_t u64(const char* name, std::size_t def, const char* help) {
  const Entry& e = Registry::instance().lookup(name, help);
  if (!e.set) return def;
  char* end = nullptr;
  long v = std::strtol(e.value.c_str(), &end, 10);
  if (end == e.value.c_str() || v < 1) return def;
  return static_cast<std::size_t>(v);
}

void dump(std::FILE* out) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  std::fprintf(out, "Recognized PTRIE_* environment variables:\n");
  for (const auto& [name, e] : r.entries)
    std::fprintf(out, "  %-18s %-12s %s\n", name.c_str(),
                 e.set ? ("=" + e.value).c_str() : "<unset>", e.help.c_str());
}

}  // namespace ptrie::obs::env
