#pragma once
// Process-global trace recorder. pim::System registers itself on
// construction and reports one TraceRound per BSP round (label, phase
// path, model timestamps, per-module word/work vectors). Sinks export
// Chrome trace_event JSON (chrome://tracing / Perfetto: one track for
// phases plus one per touched module, per system) or CSV.
//
// Enabled by PTRIE_TRACE=<path> (extension .csv selects CSV, anything
// else Chrome JSON); the file is written at process exit. When the
// variable is unset every hook reduces to a single cached-bool branch —
// no allocation, no locking, no retained memory.
//
// Determinism: timestamps are *model* time (cumulative IO + PIM time of
// the owning system), never wall-clock, and rounds are appended from the
// host thread in issue order — so trace bytes are identical for any
// PTRIE_WORKERS, matching the runtime's determinism contract.

// Besides BSP rounds, the trace also carries request-lifecycle spans
// from the serving layer (obs/spans.hpp): wall-clock slices on a
// dedicated "serving" process track (pid kServePid), so a serving run
// renders as request flames next to the deterministic simulator tracks.
// Spans exist only when a Server runs with tracing on, so the
// byte-determinism contract for pure simulator runs is untouched.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/spans.hpp"

namespace ptrie::obs {

struct TraceRound {
  std::uint32_t system = 0;  // track id from register_system
  std::string label;
  std::string phase;
  std::uint64_t ts = 0;       // model time before the round (io_time + pim_time)
  std::uint64_t io_dur = 0;   // round max over modules of words
  std::uint64_t pim_dur = 0;  // round max over modules of work
  std::uint64_t total_words = 0;
  std::uint64_t total_work = 0;
  std::uint32_t touched = 0;
  // Modelled wall-clock ns (wallclock backend; 0 elsewhere). Emitted as
  // a round arg only when nonzero so exact-backend traces keep their
  // pre-backend bytes.
  std::uint64_t modelled_ns = 0;
  // Sparse per-module detail, index order (only touched modules).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> module_words;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> module_work;
};

class Trace {
 public:
  static Trace& instance();

  // True when PTRIE_TRACE is set or a test forced recording on.
  bool enabled() const { return enabled_; }

  // Overrides the env decision (tests capture in-memory). Does not
  // change the exit-time file behavior, which follows PTRIE_TRACE only.
  void force_enabled(bool on) { enabled_ = on; }

  // Returns a fresh system track id (1-based).
  std::uint32_t register_system(std::size_t p);

  void record(TraceRound r);

  // Serving-layer lifecycle span (request/stage/batch slice or alert
  // instant); rendered on the kServePid process track.
  void record_span(SpanEvent s);

  // Drops all recorded rounds and spans and restarts system ids at 1.
  void clear();

  std::size_t round_count() const;
  std::size_t span_count() const;

  void write_chrome(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  std::string chrome_json() const;

 private:
  Trace();

  bool enabled_ = false;
  std::string path_;  // exit-time destination ("" = none)
  mutable std::mutex mu_;
  std::vector<TraceRound> rounds_;
  std::vector<SpanEvent> spans_;
  std::vector<std::size_t> system_p_;  // modules per registered system
  friend struct TraceAtExit;
  void flush_to_path() const;
};

}  // namespace ptrie::obs
