#pragma once
// Hierarchical RAII phase annotator. Algorithm code brackets each named
// step of the paper (ChunkPush, MetaQuery, HashMatching-L1/L2, Verify,
// PushPull, Rebuild, ...) in an obs::Phase; pim::System::round consults
// the innermost stack at round time, so every RoundStats carries the
// full phase path ("Insert/PushPull/Verify") and Metrics can roll costs
// up per algorithm step.
//
// The stack is thread-local: phases are pushed on whatever thread issues
// the rounds (the host thread in this codebase), and kernels running on
// pool workers never consult it.

#include <string>
#include <vector>

namespace ptrie::obs {

class Phase {
 public:
  explicit Phase(std::string name);
  ~Phase();

  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  // The calling thread's phase path, innermost last, joined with '/'.
  // Empty string outside any phase.
  static std::string current_path();
  static std::size_t depth();

 private:
  static std::vector<std::string>& stack();
};

}  // namespace ptrie::obs
