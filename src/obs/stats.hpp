#pragma once
// Distribution summaries for per-module telemetry: nearest-rank
// percentiles plus the max/mean imbalance the paper's PIM-balance
// arguments (Definition 1) are stated in. Header-only; inputs are copied
// so callers can hand in live metric vectors.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ptrie::obs {

struct DistSummary {
  std::uint64_t p50 = 0, p95 = 0, p99 = 0, max = 0;
  double mean = 0.0;
  // max/mean; 1.0 is perfect balance, and the convention for empty or
  // all-zero distributions (nothing to be imbalanced about).
  double imbalance = 1.0;
};

// Nearest-rank percentile of a sorted vector: smallest element covering
// at least q% of the mass (q in [0, 100]).
inline std::uint64_t percentile_sorted(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  double rank = q / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

inline DistSummary summarize(std::vector<std::uint64_t> v) {
  DistSummary s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  std::uint64_t total = 0;
  for (std::uint64_t x : v) total += x;
  s.p50 = percentile_sorted(v, 50);
  s.p95 = percentile_sorted(v, 95);
  s.p99 = percentile_sorted(v, 99);
  s.max = v.back();
  s.mean = static_cast<double>(total) / static_cast<double>(v.size());
  s.imbalance = total == 0 ? 1.0 : static_cast<double>(s.max) / s.mean;
  return s;
}

}  // namespace ptrie::obs
