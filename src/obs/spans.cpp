#include "obs/spans.hpp"

#include "obs/env.hpp"

namespace ptrie::obs {

std::uint64_t span_sample_from_env() {
  return env::u64("PTRIE_SPAN_SAMPLE", 16,
                  "sample 1-in-N serving requests into the trace as lifecycle spans "
                  "(default 16; 1 = every request)");
}

std::uint64_t span_seed_from_env() {
  return env::u64("PTRIE_SPAN_SEED", 1,
                  "seed for the deterministic span-sampling hash (default 1)");
}

}  // namespace ptrie::obs
