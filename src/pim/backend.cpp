#include "pim/backend.hpp"

#include <cstdlib>

#include "core/check.hpp"
#include "core/parallel.hpp"

namespace ptrie::pim {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kExact: return "exact";
    case BackendKind::kWallclock: return "wallclock";
    case BackendKind::kThreaded: return "threaded";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(const std::string& name) {
  if (name == "exact") return BackendKind::kExact;
  if (name == "wallclock") return BackendKind::kWallclock;
  if (name == "threaded") return BackendKind::kThreaded;
  return std::nullopt;
}

BackendKind backend_from_env() {
  // Raw getenv, not the caching obs::env registry: like PTRIE_FAULTS,
  // this is read fresh at every System construction so tests (and
  // embedders) can flip backends mid-process. The registry pre-registers
  // PTRIE_BACKEND for `ptrie_report --env` completeness.
  const char* v = std::getenv("PTRIE_BACKEND");
  if (v == nullptr || *v == '\0') return BackendKind::kExact;
  std::optional<BackendKind> kind = parse_backend(v);
  PTRIE_CHECK(kind.has_value(), "PTRIE_BACKEND='%s' is not exact|wallclock|threaded", v);
  return *kind;
}

namespace {

// Shared by the exact and wallclock backends: the original System::round
// execution — kernels of launched modules run under the host pool with
// grain 1, each touching only its own module. Moved here verbatim so
// `exact` stays byte-identical to the pre-backend simulator.
void pooled_execute(std::vector<Module>& modules, const std::vector<std::size_t>& launched,
                    std::vector<Buffer>& to_modules,
                    const std::function<Buffer(Module&, Buffer)>& kernel,
                    std::vector<Buffer>& results, std::vector<std::uint64_t>& words,
                    std::vector<std::uint64_t>& work) {
  core::parallel_for(
      0, launched.size(),
      [&](std::size_t k) {
        std::size_t i = launched[k];
        std::uint64_t in_words = to_modules[i].size();
        modules[i].drain_work();  // isolate this round's work
        results[i] = kernel(modules[i], std::move(to_modules[i]));
        work[k] = modules[i].drain_work();
        words[k] = in_words + results[i].size();
      },
      /*grain=*/1);
}

class ExactBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kExact; }
  void execute(std::vector<Module>& modules, const std::vector<std::size_t>& launched,
               std::vector<Buffer>& to_modules,
               const std::function<Buffer(Module&, Buffer)>& kernel,
               std::vector<Buffer>& results, std::vector<std::uint64_t>& words,
               std::vector<std::uint64_t>& work) override {
    pooled_execute(modules, launched, to_modules, kernel, results, words, work);
  }
};

class WallclockBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kWallclock; }
  void execute(std::vector<Module>& modules, const std::vector<std::size_t>& launched,
               std::vector<Buffer>& to_modules,
               const std::function<Buffer(Module&, Buffer)>& kernel,
               std::vector<Buffer>& results, std::vector<std::uint64_t>& words,
               std::vector<std::uint64_t>& work) override {
    pooled_execute(modules, launched, to_modules, kernel, results, words, work);
  }
  std::uint64_t round_ns(std::uint64_t max_words, std::uint64_t max_work) const override {
    return model_.round_ns(max_words, max_work);
  }

 private:
  CostModel model_;
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_threaded_backend();  // backend_threaded.cpp
}

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kExact: return std::make_unique<ExactBackend>();
    case BackendKind::kWallclock: return std::make_unique<WallclockBackend>();
    case BackendKind::kThreaded: return detail::make_threaded_backend();
  }
  return std::make_unique<ExactBackend>();
}

}  // namespace ptrie::pim
