#include "pim/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "core/check.hpp"

namespace ptrie::pim {

namespace {

// splitmix64-style finalizer; used to derive deterministic per-coordinate
// noise decisions from (seed, round, module).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

std::optional<FaultKind> FaultPlan::match(std::uint64_t round, const std::string& phase,
                                          std::uint32_t module, std::uint32_t attempt,
                                          std::uint64_t* magnitude) const {
  for (const FaultSpec& s : specs) {
    if (s.round != FaultSpec::kAnyRound && s.round != round) continue;
    if (s.module != FaultSpec::kAnyModule && s.module != module) continue;
    if (!s.phase.empty() && !starts_with(phase, s.phase)) continue;
    if (s.count != FaultSpec::kForever && attempt >= s.count) continue;
    *magnitude = s.magnitude;
    return s.kind;
  }
  if (noise_rate > 0.0 && attempt < noise_count) {
    std::uint64_t h = mix64(noise_seed ^ mix64(round * 0x10001ull + module));
    // Top 53 bits as a uniform double in [0, 1).
    double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < noise_rate) {
      std::uint64_t h2 = mix64(h);
      *magnitude = h2 >> 1;
      return (h2 & 1) ? FaultKind::kCorrupt : FaultKind::kDrop;
    }
  }
  return std::nullopt;
}

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  for (const FaultSpec& s : specs) {
    sep();
    os << fault_kind_name(s.kind) << '@';
    bool field = false;
    auto comma = [&] {
      if (field) os << ',';
      field = true;
    };
    if (s.round != FaultSpec::kAnyRound) {
      comma();
      os << "round=" << s.round;
    }
    if (!s.phase.empty()) {
      comma();
      os << "phase=" << s.phase;
    }
    if (s.module != FaultSpec::kAnyModule) {
      comma();
      os << "module=" << s.module;
    }
    if (s.count == FaultSpec::kForever) {
      comma();
      os << "count=always";
    } else if (s.count != 1) {
      comma();
      os << "count=" << s.count;
    }
    if (s.magnitude != 0) {
      comma();
      os << (s.kind == FaultKind::kStall ? "words=" : "bit=") << s.magnitude;
    }
    if (!field) os << "count=1";  // degenerate all-default spec still round-trips
  }
  if (noise_rate > 0.0) {
    sep();
    os << "noise@seed=" << noise_seed << ",rate=" << noise_rate;
    if (noise_count != 1) os << ",count=" << noise_count;
  }
  if (max_retries != 3) {
    sep();
    os << "retries=" << max_retries;
  }
  if (backoff_words != 64) {
    sep();
    os << "backoff=" << backoff_words;
  }
  return os.str();
}

bool FaultPlan::parse(const std::string& text, FaultPlan* out, std::string* err) {
  FaultPlan plan;
  for (const std::string& directive : split(text, ';')) {
    if (directive.empty()) {
      if (text.empty()) break;  // whole-empty input reported below
      if (err) *err = "fault plan '" + text + "': empty directive";
      return false;
    }
    std::size_t at = directive.find('@');
    std::string head = directive.substr(0, at == std::string::npos ? directive.size() : at);
    std::string body = at == std::string::npos ? std::string() : directive.substr(at + 1);

    if (at == std::string::npos) {
      // retries=N / backoff=N scalar directives.
      std::size_t eq = head.find('=');
      if (eq == std::string::npos) {
        if (err) *err = "fault directive '" + directive + "': expected kind@... or key=value";
        return false;
      }
      std::string key = head.substr(0, eq);
      std::uint64_t v = 0;
      if (!parse_u64(head.substr(eq + 1), &v)) {
        if (err) *err = "fault directive '" + directive + "': bad number";
        return false;
      }
      if (key == "retries") {
        plan.max_retries = static_cast<std::uint32_t>(v);
      } else if (key == "backoff") {
        plan.backoff_words = v;
      } else {
        if (err) *err = "fault directive '" + directive + "': unknown key '" + key + "'";
        return false;
      }
      continue;
    }

    if (head == "noise") {
      for (const std::string& kv : split(body, ',')) {
        if (kv.empty()) continue;
        std::size_t eq = kv.find('=');
        std::string key = eq == std::string::npos ? kv : kv.substr(0, eq);
        std::string val = eq == std::string::npos ? std::string() : kv.substr(eq + 1);
        std::uint64_t v = 0;
        if (key == "seed" && parse_u64(val, &v)) {
          plan.noise_seed = v;
        } else if (key == "rate") {
          double r = 0.0;
          if (!parse_double(val, &r) || r < 0.0 || r > 1.0) {
            if (err) *err = "noise rate '" + val + "' not in [0,1]";
            return false;
          }
          plan.noise_rate = r;
        } else if (key == "count" && parse_u64(val, &v)) {
          plan.noise_count = static_cast<std::uint32_t>(v);
        } else {
          if (err) *err = "noise directive: bad field '" + kv + "'";
          return false;
        }
      }
      continue;
    }

    FaultSpec spec;
    if (head == "stall") {
      spec.kind = FaultKind::kStall;
      spec.magnitude = 1000;  // default stall: 1000 extra words
    } else if (head == "drop") {
      spec.kind = FaultKind::kDrop;
    } else if (head == "corrupt") {
      spec.kind = FaultKind::kCorrupt;
    } else {
      if (err) *err = "unknown fault kind '" + head + "'";
      return false;
    }
    for (const std::string& kv : split(body, ',')) {
      if (kv.empty()) continue;
      std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        if (err) *err = "fault field '" + kv + "': expected key=value";
        return false;
      }
      std::string key = kv.substr(0, eq);
      std::string val = kv.substr(eq + 1);
      std::uint64_t v = 0;
      if (key == "round" && parse_u64(val, &v)) {
        spec.round = v;
      } else if (key == "module" && parse_u64(val, &v)) {
        spec.module = static_cast<std::uint32_t>(v);
      } else if (key == "phase") {
        spec.phase = val;
      } else if (key == "count") {
        if (val == "always") {
          spec.count = FaultSpec::kForever;
        } else if (parse_u64(val, &v)) {
          spec.count = static_cast<std::uint32_t>(v);
        } else {
          if (err) *err = "fault count '" + val + "': expected number or 'always'";
          return false;
        }
      } else if ((key == "words" || key == "bit" || key == "magnitude") && parse_u64(val, &v)) {
        spec.magnitude = v;
      } else {
        if (err) *err = "fault field '" + kv + "': unknown key or bad value";
        return false;
      }
    }
    plan.specs.push_back(std::move(spec));
  }
  if (!plan.enabled() && plan.max_retries == 3 && plan.backoff_words == 64) {
    if (err) *err = "fault plan '" + text + "' contains no directives";
    return false;
  }
  *out = std::move(plan);
  return true;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* v = std::getenv("PTRIE_FAULTS");
  if (v == nullptr || *v == '\0') return std::nullopt;
  FaultPlan plan;
  std::string err;
  PTRIE_CHECK(parse(v, &plan, &err), "PTRIE_FAULTS: %s", err.c_str());
  return plan;
}

}  // namespace ptrie::pim
