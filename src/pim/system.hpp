#pragma once
// The PIM Model machine (paper Section 2): a host CPU plus P modules,
// executing BSP-like synchronous rounds. In each round the host
//   (1) computes locally,
//   (2) writes a buffer of words to each module,
//   (3) launches kernels and waits,
//   (4) reads a buffer of words back from each module.
// System::round() performs (2)-(4) with exact word accounting; modules a
// round does not touch cost nothing. Kernels run in parallel across
// modules (they are independent by construction).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pim/backend.hpp"
#include "pim/fault.hpp"
#include "pim/metrics.hpp"
#include "pim/module.hpp"

namespace ptrie::pim {

// Inter-round message payloads, counted in 64-bit words.
using Buffer = std::vector<std::uint64_t>;

// Every round is tagged with the obs::Phase path active on the calling
// thread, and — when PTRIE_TRACE / PTRIE_TELEMETRY is on — retains
// per-module word/work vectors and streams the round into the global
// trace recorder (model-time stamps only, so traces are deterministic).

class System {
 public:
  // Selects the execution backend from PTRIE_BACKEND (default exact);
  // see pim/backend.hpp. Every pre-backend construction site keeps its
  // exact byte-identical behaviour because exact is the default.
  System(std::size_t p, std::uint64_t seed = 0xC0FFEE);
  // Explicit-backend overload for programmatic selection (tests, serving).
  System(std::size_t p, std::uint64_t seed, BackendKind backend);

  std::size_t p() const { return modules_.size(); }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // --- Execution backend ---------------------------------------------------
  // Swapping backends between rounds is safe: the backend owns only the
  // kernel-execution step, never cross-round state.
  void set_backend(BackendKind kind) { backend_ = make_backend(kind); }
  BackendKind backend_kind() const { return backend_->kind(); }
  const Backend& backend() const { return *backend_; }

  // One BSP round. `to_modules[i]` is pushed to module i (empty = module
  // not launched unless `launch_all`); the kernel returns the buffer read
  // back. Word counts in both directions are charged to module i.
  std::vector<Buffer> round(
      const std::string& label, std::vector<Buffer> to_modules,
      const std::function<Buffer(Module&, Buffer)>& kernel, bool launch_all = false);

  // Broadcast helper: pushes a copy of `payload` to all P modules (charged
  // P times, as the model requires) and runs the kernel everywhere.
  std::vector<Buffer> broadcast_round(const std::string& label, const Buffer& payload,
                                      const std::function<Buffer(Module&, Buffer)>& kernel);

  // Direct access for *setup/inspection only* (not part of a measured
  // operation): lets structures build initial state or report space.
  Module& module(std::size_t i) { return modules_[i]; }
  const Module& module(std::size_t i) const { return modules_[i]; }

  // Uniformly random module id (placement of blocks, Lemma 2.1 setting).
  std::size_t random_module() { return placement_rng_.below(p()); }

  // --- Deterministic fault injection (see pim/fault.hpp) -------------------
  // A plan installs automatically from PTRIE_FAULTS at construction; these
  // override it programmatically. With no plan active, round() takes the
  // exact pre-fault code path and results stay byte-identical.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  // Active plan, or nullptr when fault injection is off.
  const FaultPlan* fault_plan() const { return faults_on_ ? &fault_plan_ : nullptr; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  // Overrides the retry budget of the current plan and of any plan
  // installed later (serving Options::max_retries plumbs through here).
  void set_fault_retries(std::uint32_t n);
  // Absolute sequence number of the next round (FaultSpec::round selects
  // on the value a round observes, i.e. the current counter at its entry).
  std::uint64_t round_seq() const { return round_seq_; }

 private:
  // Ships the just-ended round (metrics_.rounds().back()) to obs::Trace.
  void record_trace(std::uint64_t ts);

  // Applies the fault plan to the reply transfers of one just-executed
  // round: stalls/drops/corruptions with CRC detection and bounded retry.
  // Returns extra model words charged per launched module; sets
  // *failed_module to the first module whose retries were exhausted (or
  // leaves it untouched). Kernels are never re-run.
  std::vector<std::uint64_t> deliver_replies(std::uint64_t rseq, const std::string& phase,
                                             const std::vector<std::size_t>& launched,
                                             std::vector<Buffer>& results,
                                             std::optional<std::size_t>* failed_module);

  std::vector<Module> modules_;
  std::unique_ptr<Backend> backend_;
  Metrics metrics_;
  core::Rng placement_rng_;
  // Track id in the global obs::Trace (0 = tracing off at construction).
  std::uint32_t trace_id_ = 0;

  FaultPlan fault_plan_;
  FaultStats fault_stats_;
  bool faults_on_ = false;
  std::optional<std::uint32_t> retries_override_;
  std::uint64_t round_seq_ = 0;
};

}  // namespace ptrie::pim
