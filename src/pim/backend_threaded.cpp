// The `threaded` execution backend (pim/backend.hpp): one OS worker
// thread per PIM module, holding that module as its private arena, with
// every IO round an actual two-phase barrier. The submitting thread
// publishes the round context under the mutex and bumps a generation
// counter; every worker wakes, runs its own module's kernel iff the
// module is in the round's launch set, and acks; the round completes
// when all workers have acked. All cross-thread data flows through the
// barrier's mutex, so the backend is TSan-clean, and each worker writes
// only its own module's slots (results[i], words[k], work[k]), so
// results are byte-identical to the exact backend for any scheduling.
//
// Workers spawn lazily on the first execute() and join in the
// destructor, so Systems that never round (or never select this
// backend) pay nothing.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "pim/backend.hpp"

namespace ptrie::pim {
namespace detail {

namespace {

class ThreadedBackend final : public Backend {
 public:
  ~ThreadedBackend() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  BackendKind kind() const override { return BackendKind::kThreaded; }

  void execute(std::vector<Module>& modules, const std::vector<std::size_t>& launched,
               std::vector<Buffer>& to_modules,
               const std::function<Buffer(Module&, Buffer)>& kernel,
               std::vector<Buffer>& results, std::vector<std::uint64_t>& words,
               std::vector<std::uint64_t>& work) override {
    ensure_workers(modules.size());
    {
      std::lock_guard<std::mutex> lk(mu_);
      modules_ = &modules;
      to_ = &to_modules;
      kernel_ = &kernel;
      results_ = &results;
      words_ = &words;
      work_ = &work;
      // Per-module slot in the round's accounting vectors; -1 = idle
      // this round. Written under the mutex, read by workers after the
      // generation bump, so the barrier orders it.
      slot_.assign(modules.size(), -1);
      for (std::size_t k = 0; k < launched.size(); ++k)
        slot_[launched[k]] = static_cast<long>(k);
      pending_ = threads_.size();
      ++gen_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }

 private:
  void ensure_workers(std::size_t p) {
    if (!threads_.empty()) return;
    threads_.reserve(p);
    for (std::size_t i = 0; i < p; ++i)
      threads_.emplace_back([this, i] { worker(i); });
  }

  void worker(std::size_t i) {
    std::uint64_t seen = 0;
    for (;;) {
      long k;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_start_.wait(lk, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        k = slot_[i];
      }
      if (k >= 0) {
        Module& m = (*modules_)[i];
        Buffer in = std::move((*to_)[i]);
        std::uint64_t in_words = in.size();
        m.drain_work();  // isolate this round's work
        (*results_)[i] = (*kernel_)(m, std::move(in));
        (*work_)[static_cast<std::size_t>(k)] = m.drain_work();
        (*words_)[static_cast<std::size_t>(k)] = in_words + (*results_)[i].size();
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> threads_;
  std::vector<long> slot_;
  std::uint64_t gen_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;

  // Round context, valid between the generation bump and the last ack.
  std::vector<Module>* modules_ = nullptr;
  std::vector<Buffer>* to_ = nullptr;
  const std::function<Buffer(Module&, Buffer)>* kernel_ = nullptr;
  std::vector<Buffer>* results_ = nullptr;
  std::vector<std::uint64_t>* words_ = nullptr;
  std::vector<std::uint64_t>* work_ = nullptr;
};

}  // namespace

std::unique_ptr<Backend> make_threaded_backend() {
  return std::make_unique<ThreadedBackend>();
}

}  // namespace detail
}  // namespace ptrie::pim
