#pragma once
// One PIM module: a private state arena plus a work counter. Kernels run
// host-side as C++ callables but receive only this object, so they can
// touch nothing except their own module's state — the same isolation the
// PIM Model imposes (a module can access only its own PIM memory).

#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>

#include "core/rng.hpp"

namespace ptrie::pim {

class Module {
 public:
  Module(std::size_t id, std::uint64_t seed) : id_(id), rng_(seed) {}

  std::size_t id() const { return id_; }

  // Charges `n` units of PIM work (roughly: instructions executed).
  void work(std::uint64_t n) { work_ += n; }
  std::uint64_t drain_work() {
    std::uint64_t w = work_;
    work_ = 0;
    return w;
  }

  core::Rng& rng() { return rng_; }

  // Typed state slots. A data structure creates its per-module state once
  // (via System::install) and kernels retrieve it by type + slot key.
  template <class T, class... Args>
  T& emplace_state(std::uint64_t slot, Args&&... args) {
    auto ptr = std::make_unique<Holder<T>>(std::forward<Args>(args)...);
    T& ref = ptr->value;
    state_[key<T>(slot)] = std::move(ptr);
    return ref;
  }

  template <class T>
  T& state(std::uint64_t slot = 0) {
    auto it = state_.find(key<T>(slot));
    if (it == state_.end()) return emplace_state<T>(slot);
    return static_cast<Holder<T>*>(it->second.get())->value;
  }

  template <class T>
  bool has_state(std::uint64_t slot = 0) const {
    return state_.contains(key<T>(slot));
  }

  template <class T>
  void drop_state(std::uint64_t slot = 0) {
    state_.erase(key<T>(slot));
  }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <class T>
  struct Holder : HolderBase {
    template <class... Args>
    explicit Holder(Args&&... args) : value(std::forward<Args>(args)...) {}
    T value;
  };

  template <class T>
  static std::pair<std::type_index, std::uint64_t> key(std::uint64_t slot) {
    return {std::type_index(typeid(T)), slot};
  }

  struct KeyHash {
    std::size_t operator()(const std::pair<std::type_index, std::uint64_t>& k) const {
      return k.first.hash_code() * 0x9E3779B97F4A7C15ull + k.second;
    }
  };

  std::size_t id_;
  std::uint64_t work_ = 0;
  core::Rng rng_;
  std::unordered_map<std::pair<std::type_index, std::uint64_t>, std::unique_ptr<HolderBase>,
                     KeyHash>
      state_;
};

}  // namespace ptrie::pim
