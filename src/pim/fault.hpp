#pragma once
// Deterministic PIM fault injection. A FaultPlan describes, ahead of time,
// which (round, phase, module) coordinates misbehave and how:
//
//   stall    — the module's reply transfer takes extra model-time words
//              (a latency spike; data arrives intact)
//   drop     — the reply transfer is lost; the host notices (transfer
//              layer reports no data) and retries
//   corrupt  — a single bit of the reply payload (or of its checksum
//              word) is flipped in flight; the crc64 reply checksum is
//              expected to catch it, triggering a retry
//
// Plans are seeded and deterministic: the same plan against the same
// schedule injects the same faults regardless of PTRIE_WORKERS, so fuzz
// failures replay exactly. Plans come from the PTRIE_FAULTS env var or
// are installed programmatically (System::set_fault_plan). Text format,
// ';'-separated directives in one token:
//
//   corrupt@round=5,module=2,count=2;stall@phase=Serve/LCP,words=5000
//   noise@seed=7,rate=0.01,count=2;retries=4;backoff=128
//
// Selectors: round= (absolute round sequence number), phase= (prefix
// match on the obs phase path), module= (module id); omitted selectors
// match anything. count=N fires on the first N matching delivery
// attempts per (round, module) coordinate (count=always never stops —
// such a fault exhausts retries and fails the round for the modules it
// hits). 'noise' sprinkles random drop/corrupt faults over all
// coordinates at the given rate, each recoverable within `count`
// attempts. 'retries'/'backoff' override the executor's retry budget
// and base backoff charge (words, doubled per attempt).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ptrie::pim {

enum class FaultKind : std::uint8_t { kStall, kDrop, kCorrupt };

const char* fault_kind_name(FaultKind k);

struct FaultSpec {
  static constexpr std::uint64_t kAnyRound = ~0ull;
  static constexpr std::uint32_t kAnyModule = ~0u;
  static constexpr std::uint32_t kForever = ~0u;

  FaultKind kind = FaultKind::kDrop;
  std::uint64_t round = kAnyRound;  // absolute round sequence number
  std::string phase;                // prefix match on phase path; empty = any
  std::uint32_t module = kAnyModule;
  std::uint32_t count = 1;       // attempts affected per (round, module); kForever = always
  std::uint64_t magnitude = 0;   // stall: extra words; corrupt: bit index hint
};

struct FaultStats {
  std::uint64_t stalls = 0;           // stall faults applied
  std::uint64_t drops = 0;            // reply transfers dropped
  std::uint64_t corruptions = 0;      // bits flipped in flight
  std::uint64_t crc_mismatches = 0;   // corruptions caught by the reply checksum
  std::uint64_t retries = 0;          // reply re-transfers issued
  std::uint64_t backoff_words = 0;    // model words charged to backoff
  std::uint64_t failed_rounds = 0;    // rounds abandoned after retry exhaustion
};

// Thrown by System::round when a module's reply cannot be delivered within
// the retry budget. Metrics for the round are already recorded when this
// is thrown; module state is consistent (kernels ran exactly once).
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string what, std::uint64_t round, std::uint32_t module, std::string label)
      : std::runtime_error(std::move(what)),
        round_(round),
        module_(module),
        label_(std::move(label)) {}

  std::uint64_t round() const { return round_; }
  std::uint32_t module() const { return module_; }
  const std::string& label() const { return label_; }

 private:
  std::uint64_t round_;
  std::uint32_t module_;
  std::string label_;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  // Background noise: deterministic pseudo-random drop/corrupt faults at
  // `noise_rate` per (round, module) delivery, each affecting the first
  // `noise_count` attempts (so noise_count <= retries stays recoverable).
  std::uint64_t noise_seed = 0;
  double noise_rate = 0.0;
  std::uint32_t noise_count = 1;

  // Executor retry budget and base backoff charge in model words.
  std::uint32_t max_retries = 3;
  std::uint64_t backoff_words = 64;

  bool enabled() const { return !specs.empty() || noise_rate > 0.0; }

  // Decides the fate of delivery `attempt` (0-based) of module `module`'s
  // reply in round `round` running under `phase`. Returns the fault to
  // apply, filling *magnitude, or nullopt for a clean delivery.
  std::optional<FaultKind> match(std::uint64_t round, const std::string& phase,
                                 std::uint32_t module, std::uint32_t attempt,
                                 std::uint64_t* magnitude) const;

  std::string serialize() const;

  // Parses the text format above. Returns false and fills *err on bad
  // input; *out is untouched on failure.
  static bool parse(const std::string& text, FaultPlan* out, std::string* err);

  // Builds a plan from PTRIE_FAULTS, or nullopt when unset/empty. Throws
  // CheckError on a malformed value (a typo'd fault plan silently running
  // fault-free would defeat the point).
  static std::optional<FaultPlan> from_env();
};

}  // namespace ptrie::pim
