#pragma once
// Execution-backend seam for the PIM machine (ROADMAP item 2). A
// Backend owns *how* one BSP round's kernels run and *what wall-clock
// cost the round is modelled to take*; pim::System owns everything else
// (launch-set selection, fault delivery, metrics, tracing), so all
// three backends share identical round semantics by construction:
//
//   exact     — the original word-accounting simulator: kernels run via
//               the shared core::parallel pool, no modelled time. The
//               default; byte-identical to the pre-backend System.
//   wallclock — same execution as exact, plus each completed round is
//               charged calibrated UPMEM-shaped nanoseconds (constants
//               + citations in pim/cost_model.hpp), surfaced as
//               RoundStats::modelled_ns / Metrics::modelled_ns().
//   threaded  — each module is a real worker thread with its private
//               arena (its Module), and IO rounds are actual barriers:
//               the submitting thread publishes the round, every worker
//               rendezvouses, launched workers run their own module's
//               kernel, and the round ends when all workers ack. The
//               simulator becomes a parallel machine instead of a
//               round-robin loop; results are byte-identical to exact.
//
// Invariants every backend must uphold (asserted by the fuzz
// differential `ptrie_fuzz --backend` and tests/test_backend.cpp):
//   1. Determinism: identical inputs produce identical results, words,
//      and work, regardless of PTRIE_WORKERS or scheduling.
//   2. Isolation: a kernel for module i touches only modules[i].
//   3. Exactly-once: each launched module's kernel runs exactly once
//      per round (fault injection replays transfers, never kernels).
//   4. Attribution: words[k] = input words + reply words of
//      launched[k]; work[k] = the work its kernel drained.
//
// Selection: PTRIE_BACKEND=exact|wallclock|threaded (default exact),
// or programmatically via System(p, seed, kind) / System::set_backend /
// serve::Server::Options::backend.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pim/cost_model.hpp"
#include "pim/module.hpp"

namespace ptrie::pim {

using Buffer = std::vector<std::uint64_t>;

enum class BackendKind : std::uint8_t { kExact, kWallclock, kThreaded };

// "exact" | "wallclock" | "threaded".
const char* backend_name(BackendKind kind);

// Parses a backend name; nullopt on anything unrecognized.
std::optional<BackendKind> parse_backend(const std::string& name);

// Reads PTRIE_BACKEND (default kExact). Throws ptrie::CheckError on an
// unrecognized value — a typo'd backend silently running exact would
// invalidate every wall-clock number downstream.
BackendKind backend_from_env();

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_name(kind()); }

  // Runs the kernels of one BSP round. `launched` holds the ascending
  // module indices this round touches; for each position k with
  // i = launched[k] the backend must set
  //   results[i] = kernel(modules[i], std::move(to_modules[i]))
  //   words[k]   = to_modules[i].size() before the move + results[i].size()
  //   work[k]    = modules[i] work drained across the kernel call
  // exactly as the exact backend does (invariants 1-4 above). Called
  // from one submitting thread at a time per System.
  virtual void execute(std::vector<Module>& modules,
                       const std::vector<std::size_t>& launched,
                       std::vector<Buffer>& to_modules,
                       const std::function<Buffer(Module&, Buffer)>& kernel,
                       std::vector<Buffer>& results, std::vector<std::uint64_t>& words,
                       std::vector<std::uint64_t>& work) = 0;

  // Modelled wall-clock charge (ns) for a completed round whose
  // most-loaded module moved `max_words` words and ran `max_work`
  // instructions. 0 = this backend does not model time (exact,
  // threaded). Must be monotone in both arguments.
  virtual std::uint64_t round_ns(std::uint64_t max_words, std::uint64_t max_work) const {
    (void)max_words;
    (void)max_work;
    return 0;
  }
};

// Factory. The threaded backend spawns its per-module workers lazily on
// first execute(), so constructing a System never pays for threads it
// does not use.
std::unique_ptr<Backend> make_backend(BackendKind kind);

}  // namespace ptrie::pim
