#pragma once
// Calibrated wall-clock cost model for the `wallclock` execution backend
// (pim/backend.hpp). The exact-accounting simulator states every cost in
// model units (words, instructions); this header is the single place
// where those units are converted into modelled nanoseconds, using
// UPMEM-shaped constants borrowed from published measurements. Every
// constant cites its source; DESIGN.md ("Execution backends") carries
// the same table with the derivations spelled out.
//
// The model charges one completed BSP round as
//
//   round_ns = round_latency_ns
//            + max_words_per_module * transfer_ns_per_word
//            + max_work_per_module  * dpu_ns_per_instr
//
// i.e. the per-round fixed cost of launching kernels and synchronizing,
// plus the CPU<->rank transfer time of the most-loaded module (ranks
// transfer in parallel, so the max — the model's IO time — is the
// straggler that gates the round), plus the kernel time of the
// most-loaded module (DPUs run in parallel too). This is deliberately
// the same max-over-modules aggregation the PIM model uses for IO/PIM
// time, so modelled milliseconds inherit the simulator's determinism:
// identical word/work counts always map to identical modelled time.
//
// The model is monotone by construction: more words or more work in a
// round can never yield a smaller round_ns (all three constants are
// non-negative), a property tests/test_backend.cpp asserts.

#include <cstdint>

namespace ptrie::pim {

struct CostModel {
  // Fixed per-round cost of a host->DPU kernel launch plus the
  // closing barrier/sync. PIM-tree (Kang et al., VLDB 2023, §6: UPMEM
  // server, 2x Xeon 4215 + 2048 DPUs) reports that each host-initiated
  // round trip costs tens of microseconds regardless of payload; UPMEM's
  // own SDK documentation attributes ~10-50us to dpu_launch/dpu_sync.
  // We use 20us as the midpoint.
  std::uint64_t round_latency_ns = 20'000;

  // CPU<->rank DMA transfer cost per 64-bit word, per module. UPMEM
  // measured sustained parallel-transfer bandwidth is ~0.6-1 GB/s per
  // rank direction for batched transfers (PIM-tree §6 reports 0.3-2
  // GB/s depending on transfer size; Gomez-Luna et al., "Benchmarking a
  // New Paradigm" (PRIM, IEEE Access 2022) measure ~0.7 GB/s/rank
  // sustained). 8 bytes / 0.8 GB/s = 10 ns per word.
  std::uint64_t transfer_ns_per_word = 10;

  // Per-instruction DPU execution cost. A DPU clocks at ~350 MHz and
  // sustains ~1 instruction/cycle across its 11+ hardware tasklets once
  // the pipeline is full (UPMEM DPU datasheet; PRIM fig. 4), i.e.
  // ~2.86 ns/instruction aggregate; rounded to 3. Module::work() counts
  // roughly instructions executed, so this converts work directly.
  std::uint64_t dpu_ns_per_instr = 3;

  // Modelled duration of one completed round whose most-loaded module
  // moved `max_words` words and executed `max_work` instructions.
  // Rounds that launch no module cost nothing (the host skips the
  // launch entirely), which System::round enforces by never charging
  // all-idle rounds.
  std::uint64_t round_ns(std::uint64_t max_words, std::uint64_t max_work) const {
    return round_latency_ns + max_words * transfer_ns_per_word + max_work * dpu_ns_per_instr;
  }
};

}  // namespace ptrie::pim
