#include "pim/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

namespace ptrie::pim {

void Metrics::begin_round(const std::string& label, std::string phase) {
  assert(!in_round_);
  in_round_ = true;
  current_ = RoundStats{};
  current_.label = label;
  current_.phase = std::move(phase);
}

void Metrics::record_module(std::size_t module, std::uint64_t words, std::uint64_t work) {
  assert(in_round_);
  current_.total_words += words;
  current_.total_work += work;
  current_.max_words = std::max(current_.max_words, words);
  current_.max_work = std::max(current_.max_work, work);
  if (words != 0 || work != 0) ++current_.touched_modules;
  per_module_words_[module] += words;
  per_module_work_[module] += work;
  if (round_detail_) {
    // Callers record modules in index order (System::round walks the
    // launched set ascending), so the sparse vectors stay sorted.
    if (words != 0)
      current_.module_words.emplace_back(static_cast<std::uint32_t>(module), words);
    if (work != 0)
      current_.module_work.emplace_back(static_cast<std::uint32_t>(module), work);
  }
}

void Metrics::end_round() {
  assert(in_round_);
  in_round_ = false;
  io_time_ += current_.max_words;
  total_words_ += current_.total_words;
  pim_time_ += current_.max_work;
  total_work_ += current_.total_work;
  rounds_.push_back(std::move(current_));
}

void Metrics::charge_modelled_ns(std::uint64_t ns) {
  assert(!in_round_ && !rounds_.empty());
  rounds_.back().modelled_ns += ns;
  modelled_ns_ += ns;
}

namespace {
double imbalance(const std::vector<std::uint64_t>& v) {
  if (v.empty()) return 1.0;
  std::uint64_t total = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  if (total == 0) return 1.0;
  std::uint64_t mx = *std::max_element(v.begin(), v.end());
  double mean = static_cast<double>(total) / static_cast<double>(v.size());
  return static_cast<double>(mx) / mean;
}
}  // namespace

double Metrics::comm_imbalance() const { return imbalance(per_module_words_); }
double Metrics::work_imbalance() const { return imbalance(per_module_work_); }

std::vector<PhaseRollup> Metrics::phase_rollups() const {
  std::vector<PhaseRollup> out;
  std::unordered_map<std::string, std::size_t> idx;
  // Per-phase per-module word totals, dense over all P modules so the
  // imbalance denominator matches Definition 1 (mean over the machine).
  std::vector<std::vector<std::uint64_t>> phase_module_words;
  for (const auto& r : rounds_) {
    auto [it, fresh] = idx.try_emplace(r.phase, out.size());
    if (fresh) {
      PhaseRollup pr;
      pr.phase = r.phase;
      out.push_back(std::move(pr));
      phase_module_words.emplace_back(per_module_words_.size(), 0);
    }
    PhaseRollup& pr = out[it->second];
    ++pr.rounds;
    pr.words += r.total_words;
    pr.io_time += r.max_words;
    pr.work += r.total_work;
    pr.pim_time += r.max_work;
    pr.touched_modules += r.touched_modules;
    pr.modelled_ns += r.modelled_ns;
    for (const auto& [m, w] : r.module_words) phase_module_words[it->second][m] += w;
  }
  if (round_detail_)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i].words_dist = obs::summarize(phase_module_words[i]);
  return out;
}

void Metrics::reset() {
  rounds_.clear();
  in_round_ = false;
  io_time_ = total_words_ = pim_time_ = total_work_ = cpu_work_ = modelled_ns_ = 0;
  std::fill(per_module_words_.begin(), per_module_words_.end(), 0);
  std::fill(per_module_work_.begin(), per_module_work_.end(), 0);
}

}  // namespace ptrie::pim
