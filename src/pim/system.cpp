#include "pim/system.hpp"

#include <cassert>

#include "core/parallel.hpp"

namespace ptrie::pim {

System::System(std::size_t p, std::uint64_t seed) : metrics_(p), placement_rng_(seed) {
  assert(p >= 1);
  core::Rng seeder(seed ^ 0xD1B54A32D192ED03ull);
  modules_.reserve(p);
  for (std::size_t i = 0; i < p; ++i) modules_.emplace_back(i, seeder());
}

std::vector<Buffer> System::round(const std::string& label, std::vector<Buffer> to_modules,
                                  const std::function<Buffer(Module&, Buffer)>& kernel,
                                  bool launch_all) {
  assert(to_modules.size() == p());
  std::vector<Buffer> results(p());
  std::vector<std::uint64_t> words(p(), 0), work(p(), 0);

  core::parallel_for(
      0, p(),
      [&](std::size_t i) {
        bool launched = launch_all || !to_modules[i].empty();
        if (!launched) return;
        std::uint64_t in_words = to_modules[i].size();
        modules_[i].drain_work();  // isolate this round's work
        results[i] = kernel(modules_[i], std::move(to_modules[i]));
        work[i] = modules_[i].drain_work();
        words[i] = in_words + results[i].size();
      },
      /*grain=*/1);

  metrics_.begin_round(label);
  for (std::size_t i = 0; i < p(); ++i) metrics_.record_module(i, words[i], work[i]);
  metrics_.end_round();
  return results;
}

std::vector<Buffer> System::broadcast_round(
    const std::string& label, const Buffer& payload,
    const std::function<Buffer(Module&, Buffer)>& kernel) {
  std::vector<Buffer> to(p(), payload);
  return round(label, std::move(to), kernel, /*launch_all=*/true);
}

}  // namespace ptrie::pim
