#include "pim/system.hpp"

#include <cstdio>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "hash/crc64.hpp"
#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace ptrie::pim {

namespace {
bool telemetry_requested() {
  static const bool on = obs::env::flag(
      "PTRIE_TELEMETRY", "retain per-round per-module words/work for phase imbalance reports");
  return on;
}
}  // namespace

System::System(std::size_t p, std::uint64_t seed)
    : System(p, seed, backend_from_env()) {}

System::System(std::size_t p, std::uint64_t seed, BackendKind backend)
    : backend_(make_backend(backend)), metrics_(p), placement_rng_(seed) {
  PTRIE_CHECK(p >= 1, "System needs at least one module (p=%zu)", p);
  core::Rng seeder(seed ^ 0xD1B54A32D192ED03ull);
  modules_.reserve(p);
  for (std::size_t i = 0; i < p; ++i) modules_.emplace_back(i, seeder());
  // Tracing needs per-module detail; PTRIE_TELEMETRY asks for it without
  // the export file. Both off -> metrics behave exactly as pre-obs.
  if (obs::Trace::instance().enabled()) {
    trace_id_ = obs::Trace::instance().register_system(p);
    metrics_.set_round_detail(true);
  } else if (telemetry_requested()) {
    metrics_.set_round_detail(true);
  }
  if (auto plan = FaultPlan::from_env()) set_fault_plan(std::move(*plan));
}

void System::set_fault_plan(FaultPlan plan) {
  fault_plan_ = std::move(plan);
  if (retries_override_) fault_plan_.max_retries = *retries_override_;
  faults_on_ = fault_plan_.enabled();
}

void System::clear_fault_plan() {
  fault_plan_ = FaultPlan{};
  faults_on_ = false;
}

void System::set_fault_retries(std::uint32_t n) {
  retries_override_ = n;
  fault_plan_.max_retries = n;
}

std::vector<Buffer> System::round(const std::string& label, std::vector<Buffer> to_modules,
                                  const std::function<Buffer(Module&, Buffer)>& kernel,
                                  bool launch_all) {
  PTRIE_CHECK(to_modules.size() == p(),
              "round '%s': to_modules has %zu entries for a %zu-module machine",
              label.c_str(), to_modules.size(), p());
  const std::uint64_t rseq = round_seq_++;
  std::vector<Buffer> results(p());

  std::string phase = obs::Phase::current_path();
  // Model time before this round; trace spans start here.
  std::uint64_t ts = metrics_.io_time() + metrics_.pim_time();

  // Decide the launch set up front so an all-idle round (common during
  // convergence loops) skips the per-module accounting vectors entirely,
  // and the kernel loop only visits launched modules.
  std::vector<std::size_t> launched = core::parallel_pack<std::size_t>(
      p(), [&](std::size_t i) { return launch_all || !to_modules[i].empty(); },
      [](std::size_t i) { return i; });
  if (launched.empty()) {
    metrics_.begin_round(label, std::move(phase));
    metrics_.end_round();
    if (trace_id_ != 0) record_trace(ts);
    return results;
  }

  std::vector<std::uint64_t> words(launched.size(), 0), work(launched.size(), 0);
  backend_->execute(modules_, launched, to_modules, kernel, results, words, work);

  // Reply delivery: with a fault plan active, transfers may stall, drop,
  // or corrupt; retries re-charge the reply words plus exponential backoff.
  // Kernels already ran exactly once — only the read-back is replayed.
  std::optional<std::size_t> failed_module;
  if (faults_on_) {
    std::vector<std::uint64_t> extra =
        deliver_replies(rseq, phase, launched, results, &failed_module);
    for (std::size_t k = 0; k < launched.size(); ++k) words[k] += extra[k];
  }

  metrics_.begin_round(label, std::move(phase));
  // record_module(i, 0, 0) is a no-op, so recording only launched modules
  // yields metrics identical to the old full sweep. `launched` ascends,
  // keeping the retained per-module vectors in module-index order.
  for (std::size_t k = 0; k < launched.size(); ++k)
    metrics_.record_module(launched[k], words[k], work[k]);
  metrics_.end_round();
  // Wall-clock charge (wallclock backend only; 0 elsewhere). Uses the
  // round's straggler words/work — including fault-retry re-transfers,
  // which on hardware really would re-occupy the rank channel.
  {
    const RoundStats& r = metrics_.rounds().back();
    std::uint64_t ns = backend_->round_ns(r.max_words, r.max_work);
    if (ns != 0) metrics_.charge_modelled_ns(ns);
  }
  if (trace_id_ != 0) record_trace(ts);

  if (failed_module) {
    ++fault_stats_.failed_rounds;
    obs::counter("pim/fault_failed_rounds").add(1);
    char what[256];
    std::snprintf(what, sizeof what,
                  "PIM reply from module %zu lost in round %llu ('%s'): retries exhausted",
                  *failed_module, static_cast<unsigned long long>(rseq), label.c_str());
    throw FaultError(what, rseq, static_cast<std::uint32_t>(*failed_module), label);
  }
  return results;
}

std::vector<std::uint64_t> System::deliver_replies(std::uint64_t rseq, const std::string& phase,
                                                   const std::vector<std::size_t>& launched,
                                                   std::vector<Buffer>& results,
                                                   std::optional<std::size_t>* failed_module) {
  std::vector<std::uint64_t> extra(launched.size(), 0);
  const std::uint32_t max_retries = fault_plan_.max_retries;
  for (std::size_t k = 0; k < launched.size(); ++k) {
    std::size_t i = launched[k];
    std::uint32_t module = static_cast<std::uint32_t>(i);
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::uint64_t mag = 0;
      std::optional<FaultKind> f = fault_plan_.match(rseq, phase, module, attempt, &mag);
      if (!f) break;  // clean delivery
      if (*f == FaultKind::kStall) {
        // Latency spike: data arrives intact after `mag` extra word-times.
        ++fault_stats_.stalls;
        obs::counter("pim/fault_stalls").add(1);
        extra[k] += mag;
        break;
      }
      bool detected;
      if (*f == FaultKind::kDrop) {
        ++fault_stats_.drops;
        obs::counter("pim/fault_drops").add(1);
        detected = true;  // a missing transfer is always noticed
      } else {
        // Corrupt: actually flip one bit of the transferred frame (payload
        // words followed by their crc64 checksum word) and honestly check
        // whether the checksum catches it. A slip-through delivers the
        // corrupted payload so downstream oracles can expose silent
        // wrongness — detection must never be assumed.
        ++fault_stats_.corruptions;
        obs::counter("pim/fault_corruptions").add(1);
        const Buffer& reply = results[i];
        std::uint64_t sent_crc = hash::crc64_words(reply.data(), reply.size());
        Buffer frame = reply;
        frame.push_back(sent_crc);
        std::uint64_t bit = mag % (64ull * frame.size());
        frame[bit / 64] ^= (std::uint64_t{1} << (bit % 64));
        std::uint64_t got_crc = frame.back();
        frame.pop_back();
        detected = hash::crc64_words(frame.data(), frame.size()) != got_crc;
        if (!detected) {
          results[i] = std::move(frame);
          break;
        }
        ++fault_stats_.crc_mismatches;
        obs::counter("pim/fault_crc_mismatches").add(1);
      }
      (void)detected;
      if (attempt >= max_retries) {
        if (!failed_module->has_value()) *failed_module = i;
        break;
      }
      // Retry: re-transfer the reply, plus an exponential backoff charge.
      std::uint64_t backoff = fault_plan_.backoff_words << attempt;
      extra[k] += results[i].size() + backoff;
      ++fault_stats_.retries;
      fault_stats_.backoff_words += backoff;
      obs::counter("pim/fault_retries").add(1);
    }
  }
  return extra;
}

void System::record_trace(std::uint64_t ts) {
  const RoundStats& r = metrics_.rounds().back();
  obs::TraceRound tr;
  tr.system = trace_id_;
  tr.label = r.label;
  tr.phase = r.phase;
  tr.ts = ts;
  tr.io_dur = r.max_words;
  tr.pim_dur = r.max_work;
  tr.total_words = r.total_words;
  tr.total_work = r.total_work;
  tr.touched = static_cast<std::uint32_t>(r.touched_modules);
  tr.modelled_ns = r.modelled_ns;
  tr.module_words = r.module_words;
  tr.module_work = r.module_work;
  obs::Trace::instance().record(std::move(tr));
}

std::vector<Buffer> System::broadcast_round(
    const std::string& label, const Buffer& payload,
    const std::function<Buffer(Module&, Buffer)>& kernel) {
  std::vector<Buffer> to(p(), payload);
  return round(label, std::move(to), kernel, /*launch_all=*/true);
}

}  // namespace ptrie::pim
