#include "pim/system.hpp"

#include <cassert>

#include "core/parallel.hpp"

namespace ptrie::pim {

System::System(std::size_t p, std::uint64_t seed) : metrics_(p), placement_rng_(seed) {
  assert(p >= 1);
  core::Rng seeder(seed ^ 0xD1B54A32D192ED03ull);
  modules_.reserve(p);
  for (std::size_t i = 0; i < p; ++i) modules_.emplace_back(i, seeder());
}

std::vector<Buffer> System::round(const std::string& label, std::vector<Buffer> to_modules,
                                  const std::function<Buffer(Module&, Buffer)>& kernel,
                                  bool launch_all) {
  assert(to_modules.size() == p());
  std::vector<Buffer> results(p());

  // Decide the launch set up front so an all-idle round (common during
  // convergence loops) skips the per-module accounting vectors entirely,
  // and the kernel loop only visits launched modules.
  std::vector<std::size_t> launched = core::parallel_pack<std::size_t>(
      p(), [&](std::size_t i) { return launch_all || !to_modules[i].empty(); },
      [](std::size_t i) { return i; });
  if (launched.empty()) {
    metrics_.begin_round(label);
    metrics_.end_round();
    return results;
  }

  std::vector<std::uint64_t> words(launched.size(), 0), work(launched.size(), 0);
  core::parallel_for(
      0, launched.size(),
      [&](std::size_t k) {
        std::size_t i = launched[k];
        std::uint64_t in_words = to_modules[i].size();
        modules_[i].drain_work();  // isolate this round's work
        results[i] = kernel(modules_[i], std::move(to_modules[i]));
        work[k] = modules_[i].drain_work();
        words[k] = in_words + results[i].size();
      },
      /*grain=*/1);

  metrics_.begin_round(label);
  // record_module(i, 0, 0) is a no-op, so recording only launched modules
  // yields metrics identical to the old full sweep.
  for (std::size_t k = 0; k < launched.size(); ++k)
    metrics_.record_module(launched[k], words[k], work[k]);
  metrics_.end_round();
  return results;
}

std::vector<Buffer> System::broadcast_round(
    const std::string& label, const Buffer& payload,
    const std::function<Buffer(Module&, Buffer)>& kernel) {
  std::vector<Buffer> to(p(), payload);
  return round(label, std::move(to), kernel, /*launch_all=*/true);
}

}  // namespace ptrie::pim
