#include "pim/system.hpp"

#include <cassert>

#include "core/parallel.hpp"
#include "obs/env.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace ptrie::pim {

namespace {
bool telemetry_requested() {
  static const bool on = obs::env::flag(
      "PTRIE_TELEMETRY", "retain per-round per-module words/work for phase imbalance reports");
  return on;
}
}  // namespace

System::System(std::size_t p, std::uint64_t seed) : metrics_(p), placement_rng_(seed) {
  assert(p >= 1);
  core::Rng seeder(seed ^ 0xD1B54A32D192ED03ull);
  modules_.reserve(p);
  for (std::size_t i = 0; i < p; ++i) modules_.emplace_back(i, seeder());
  // Tracing needs per-module detail; PTRIE_TELEMETRY asks for it without
  // the export file. Both off -> metrics behave exactly as pre-obs.
  if (obs::Trace::instance().enabled()) {
    trace_id_ = obs::Trace::instance().register_system(p);
    metrics_.set_round_detail(true);
  } else if (telemetry_requested()) {
    metrics_.set_round_detail(true);
  }
}

std::vector<Buffer> System::round(const std::string& label, std::vector<Buffer> to_modules,
                                  const std::function<Buffer(Module&, Buffer)>& kernel,
                                  bool launch_all) {
  assert(to_modules.size() == p());
  std::vector<Buffer> results(p());

  std::string phase = obs::Phase::current_path();
  // Model time before this round; trace spans start here.
  std::uint64_t ts = metrics_.io_time() + metrics_.pim_time();

  // Decide the launch set up front so an all-idle round (common during
  // convergence loops) skips the per-module accounting vectors entirely,
  // and the kernel loop only visits launched modules.
  std::vector<std::size_t> launched = core::parallel_pack<std::size_t>(
      p(), [&](std::size_t i) { return launch_all || !to_modules[i].empty(); },
      [](std::size_t i) { return i; });
  if (launched.empty()) {
    metrics_.begin_round(label, std::move(phase));
    metrics_.end_round();
    if (trace_id_ != 0) record_trace(ts);
    return results;
  }

  std::vector<std::uint64_t> words(launched.size(), 0), work(launched.size(), 0);
  core::parallel_for(
      0, launched.size(),
      [&](std::size_t k) {
        std::size_t i = launched[k];
        std::uint64_t in_words = to_modules[i].size();
        modules_[i].drain_work();  // isolate this round's work
        results[i] = kernel(modules_[i], std::move(to_modules[i]));
        work[k] = modules_[i].drain_work();
        words[k] = in_words + results[i].size();
      },
      /*grain=*/1);

  metrics_.begin_round(label, std::move(phase));
  // record_module(i, 0, 0) is a no-op, so recording only launched modules
  // yields metrics identical to the old full sweep. `launched` ascends,
  // keeping the retained per-module vectors in module-index order.
  for (std::size_t k = 0; k < launched.size(); ++k)
    metrics_.record_module(launched[k], words[k], work[k]);
  metrics_.end_round();
  if (trace_id_ != 0) record_trace(ts);
  return results;
}

void System::record_trace(std::uint64_t ts) {
  const RoundStats& r = metrics_.rounds().back();
  obs::TraceRound tr;
  tr.system = trace_id_;
  tr.label = r.label;
  tr.phase = r.phase;
  tr.ts = ts;
  tr.io_dur = r.max_words;
  tr.pim_dur = r.max_work;
  tr.total_words = r.total_words;
  tr.total_work = r.total_work;
  tr.touched = static_cast<std::uint32_t>(r.touched_modules);
  tr.module_words = r.module_words;
  tr.module_work = r.module_work;
  obs::Trace::instance().record(std::move(tr));
}

std::vector<Buffer> System::broadcast_round(
    const std::string& label, const Buffer& payload,
    const std::function<Buffer(Module&, Buffer)>& kernel) {
  std::vector<Buffer> to(p(), payload);
  return round(label, std::move(to), kernel, /*launch_all=*/true);
}

}  // namespace ptrie::pim
