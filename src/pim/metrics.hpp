#pragma once
// Cost accounting for the PIM Model (paper Section 2).
//
// Per BSP round we record, for every module, the number of 64-bit words
// written to it plus read from it; the model's "IO time" of a round is the
// maximum over modules, and rounds' maxima add up. "PIM time" is likewise
// the per-round maximum of per-module work counters, summed over rounds.
// CPU work is a plain counter bumped by host-side algorithms.
//
// The balance report (max/mean per-module totals) is how we check the
// paper's PIM-balance claims (Definition 1) under skew.
//
// Every round additionally carries the algorithm phase path active when
// it ran (see obs/phase.hpp), and — when per-round detail is enabled —
// the sparse per-module word/work vectors, which make PIM-balance
// checkable *per algorithm step* via phase_rollups().

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.hpp"

namespace ptrie::pim {

struct RoundStats {
  std::string label;
  std::string phase;               // obs::Phase path active at round time
  std::uint64_t total_words = 0;   // sum over modules of in+out words
  std::uint64_t max_words = 0;     // max over modules (the round's IO time)
  std::uint64_t total_work = 0;    // sum over modules of PIM work
  std::uint64_t max_work = 0;      // max over modules (the round's PIM time)
  std::size_t touched_modules = 0;
  // Modelled wall-clock duration of the round in nanoseconds. 0 unless
  // the wallclock execution backend is active (pim/cost_model.hpp), so
  // exact-backend metrics stay byte-identical to the pre-backend ones.
  std::uint64_t modelled_ns = 0;
  // Sparse per-module detail in module-index order; retained only when
  // Metrics::set_round_detail(true) (opt-in: it costs memory per round).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> module_words;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> module_work;
};

// Per-phase aggregate over all recorded rounds, in first-seen order.
struct PhaseRollup {
  std::string phase;
  std::size_t rounds = 0;
  std::uint64_t words = 0;     // sum of total_words
  std::uint64_t io_time = 0;   // sum of per-round maxima
  std::uint64_t work = 0;      // sum of total_work
  std::uint64_t pim_time = 0;  // sum of per-round max work
  std::size_t touched_modules = 0;  // sum over rounds
  std::uint64_t modelled_ns = 0;    // sum of modelled round durations (wallclock backend)
  // Distribution of this phase's per-module word totals (p50/p95/p99/max
  // + max/mean imbalance). Meaningful only when round detail was on;
  // otherwise a default (balanced) summary.
  obs::DistSummary words_dist;
};

class Metrics {
 public:
  explicit Metrics(std::size_t p) : per_module_words_(p, 0), per_module_work_(p, 0) {}

  void begin_round(const std::string& label) { begin_round(label, std::string()); }
  void begin_round(const std::string& label, std::string phase);
  void record_module(std::size_t module, std::uint64_t words, std::uint64_t work);
  void end_round();

  void add_cpu_work(std::uint64_t w) { cpu_work_ += w; }

  // Attributes modelled wall-clock nanoseconds to the round that just
  // ended (rounds().back()). Only the wallclock backend charges this;
  // with no charges everything modelled_ns-related reads 0.
  void charge_modelled_ns(std::uint64_t ns);

  // Opt-in retention of per-round per-module vectors (phase imbalance,
  // trace export). Off by default: with it off, metrics behave exactly
  // as before this knob existed.
  void set_round_detail(bool on) { round_detail_ = on; }
  bool round_detail() const { return round_detail_; }

  std::size_t io_rounds() const { return rounds_.size(); }
  std::uint64_t io_time() const { return io_time_; }          // sum of per-round maxima
  std::uint64_t total_comm_words() const { return total_words_; }
  std::uint64_t pim_time() const { return pim_time_; }        // sum of per-round max work
  std::uint64_t total_pim_work() const { return total_work_; }
  std::uint64_t cpu_work() const { return cpu_work_; }
  // Total modelled wall-clock ns across rounds (0 unless wallclock backend).
  std::uint64_t modelled_ns() const { return modelled_ns_; }

  const std::vector<std::uint64_t>& per_module_words() const { return per_module_words_; }
  const std::vector<std::uint64_t>& per_module_work() const { return per_module_work_; }
  const std::vector<RoundStats>& rounds() const { return rounds_; }

  // max / mean of per-module communication; 1.0 is perfect balance.
  double comm_imbalance() const;
  double work_imbalance() const;

  // Aggregates rounds by phase path, first-seen order. Phase totals sum
  // exactly to the global aggregates above (every round has exactly one
  // phase; rounds outside any obs::Phase group under "").
  std::vector<PhaseRollup> phase_rollups() const;

  void reset();

  // Captures a snapshot so callers can measure deltas across an operation.
  // Includes the per-module word totals so delta imbalance can be computed
  // over just the measured window (not cumulatively since construction).
  struct Snapshot {
    std::size_t rounds = 0;
    std::uint64_t io_time = 0, words = 0, pim_time = 0, pim_work = 0, cpu = 0;
    std::vector<std::uint64_t> module_words;
    std::uint64_t modelled_ns = 0;
  };
  Snapshot snapshot() const {
    return {io_rounds(), io_time(),       total_comm_words(), pim_time(),
            total_pim_work(), cpu_work(), per_module_words_,  modelled_ns()};
  }

 private:
  std::vector<RoundStats> rounds_;
  RoundStats current_;
  bool in_round_ = false;
  bool round_detail_ = false;
  std::uint64_t io_time_ = 0, total_words_ = 0, pim_time_ = 0, total_work_ = 0,
                cpu_work_ = 0, modelled_ns_ = 0;
  std::vector<std::uint64_t> per_module_words_;
  std::vector<std::uint64_t> per_module_work_;
};

}  // namespace ptrie::pim
