#pragma once
// y-fast trie [Willard 83]: an x-fast trie over O(n/w) bucket
// representatives plus balanced ordered buckets of Theta(w) keys.
// O(n) space, O(log w) queries, amortized O(log w) updates — the
// second-layer ordered component of the paper's HashMatching index
// (Section 4.4.2) and the "Distributed x-fast trie" baseline's building
// block.

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "fasttrie/xfast.hpp"

namespace ptrie::fasttrie {

class YFastTrie {
 public:
  explicit YFastTrie(unsigned width = 64);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  unsigned width() const { return width_; }

  bool insert(std::uint64_t key);
  bool erase(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  std::optional<std::uint64_t> pred(std::uint64_t key) const;  // largest <= key
  std::optional<std::uint64_t> succ(std::uint64_t key) const;  // smallest >= key

  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t space_words() const;

 private:
  using Bucket = std::set<std::uint64_t>;
  // Representative = the bucket's minimum, stored in the x-fast top.
  std::map<std::uint64_t, Bucket>::const_iterator bucket_for(std::uint64_t key) const;
  void split_if_needed(std::map<std::uint64_t, Bucket>::iterator it);
  void merge_if_needed(std::map<std::uint64_t, Bucket>::iterator it);
  // Re-keys the bucket under its current minimum; returns the (possibly
  // re-created) iterator.
  std::map<std::uint64_t, Bucket>::iterator rekey(std::map<std::uint64_t, Bucket>::iterator it);

  unsigned width_;
  std::size_t size_ = 0;
  XFastTrie top_;
  std::map<std::uint64_t, Bucket> buckets_;  // rep -> bucket
};

}  // namespace ptrie::fasttrie
