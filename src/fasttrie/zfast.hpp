#pragma once
// z-fast trie search structure [Belazzougui-Boldi-Vigna 10] over a
// Patricia trie: a dictionary of node *handles* (the hash of each node's
// string prefix of 2-fattest length within its edge interval) enabling fat
// binary search — locating the deepest trie position along a query string
// in O(log h) hash probes for height h, instead of walking the path.
//
// PIM-trie uses z-fast tries of height w as per-pivot shortcuts in both
// the CPU-side pull HashMatching and the local block matching on PIM
// modules (Section 4.4.2). Results are verified against the actual edge
// bits, so a hash collision degrades to a plain walk, never to a wrong
// answer (the paper's verification stance).

#include <cstdint>
#include <unordered_map>

#include "hash/prefix_hashes.hpp"
#include "trie/patricia.hpp"

namespace ptrie::fasttrie {

// The 2-fattest number in (a, b]: the one divisible by the largest power
// of two. Defined for a < b.
std::uint64_t two_fattest(std::uint64_t a, std::uint64_t b);

class ZFastTrie {
 public:
  // Indexes all non-root nodes of `t`. The trie must outlive this index
  // and not mutate while it is in use.
  ZFastTrie(const trie::Patricia& t, const hash::PolyHasher& hasher);

  // Deepest position along `key` (same contract as Patricia::lcp): the
  // matched length in bits and the trie position where the match ends.
  // `probes` (optional) counts hash probes, for the work-bound tests.
  std::pair<std::size_t, trie::Position> locate(const core::BitString& key,
                                                std::size_t* probes = nullptr) const;

  std::size_t handle_count() const { return handles_.size(); }
  std::size_t space_words() const { return handles_.size() * 2 + 2; }

 private:
  const trie::Patricia* trie_;
  const hash::PolyHasher* hasher_;
  // handle hash -> node id (collisions resolved by verification).
  std::unordered_map<std::uint64_t, trie::NodeId> handles_;
  std::uint64_t max_depth_ = 0;
};

}  // namespace ptrie::fasttrie
