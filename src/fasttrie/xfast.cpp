#include "fasttrie/xfast.hpp"

#include <cassert>
#include <vector>

namespace ptrie::fasttrie {

XFastTrie::XFastTrie(unsigned width) : width_(width) {
  assert(width_ >= 1 && width_ <= 64);
  levels_.resize(width_ + 1);
}

bool XFastTrie::contains(std::uint64_t key) const {
  auto it = levels_[width_].find(prefix_of(key, width_));
  return it != levels_[width_].end();
}

unsigned XFastTrie::lcp_level(std::uint64_t key) const {
  // Binary search for the deepest level whose table holds key's prefix.
  unsigned lo = 0, hi = width_;
  // Level 0 is present iff the trie is non-empty.
  if (empty()) return 0;
  while (lo < hi) {
    unsigned mid = (lo + hi + 1) / 2;
    if (levels_[mid].contains(prefix_of(key, mid)))
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

std::optional<std::uint64_t> XFastTrie::pred(std::uint64_t key) const {
  if (empty()) return std::nullopt;
  if (contains(key)) return key;
  unsigned l = lcp_level(key);
  if (l == width_) return key;  // exact (handled above, defensive)
  // The first differing bit is at position l (0-based from MSB of width_).
  bool next_bit = (key >> (width_ - 1 - l)) & 1;
  if (next_bit) {
    // key goes right where subtree may only have left content <= key:
    // everything under this prefix with a 0 at position l is smaller.
    std::uint64_t left_prefix = (prefix_of(key, l) << 1);  // 0-extended
    auto it = levels_[l + 1].find(left_prefix);
    if (it != levels_[l + 1].end()) return it->second.max_leaf;
    // No left child: all stored keys under prefix are in the right subtree
    // but key diverged left of... cannot happen: l is the deepest match, so
    // one child must exist and it is not key's side.
    // Fall through to linked-list step via subtree min.
    std::uint64_t right_prefix = left_prefix | 1;
    const PrefixInfo& r = levels_[l + 1].at(right_prefix);
    // right subtree's keys all share key's prefix then have bit 1 = key's
    // bit, contradiction with l maximal; defensive:
    auto leaf_it = leaves_.find(r.min_leaf);
    if (leaf_it != leaves_.end() && leaf_it->second.has_prev) return leaf_it->second.prev;
    return std::nullopt;
  }
  // key goes left; the subtree's right part is > key, left part doesn't
  // exist below l. Successor = min leaf of right child; pred = its prev.
  std::uint64_t right_prefix = (prefix_of(key, l) << 1) | 1;
  auto it = levels_[l + 1].find(right_prefix);
  std::uint64_t succ_leaf;
  if (it != levels_[l + 1].end()) {
    succ_leaf = it->second.min_leaf;
  } else {
    // Defensive (mirror of above).
    const PrefixInfo& lft = levels_[l + 1].at(prefix_of(key, l) << 1);
    succ_leaf = lft.min_leaf;
  }
  auto leaf_it = leaves_.find(succ_leaf);
  if (leaf_it != leaves_.end() && leaf_it->second.has_prev) return leaf_it->second.prev;
  return std::nullopt;
}

std::optional<std::uint64_t> XFastTrie::succ(std::uint64_t key) const {
  if (empty()) return std::nullopt;
  if (contains(key)) return key;
  unsigned l = lcp_level(key);
  bool next_bit = (key >> (width_ - 1 - l)) & 1;
  if (!next_bit) {
    std::uint64_t right_prefix = (prefix_of(key, l) << 1) | 1;
    auto it = levels_[l + 1].find(right_prefix);
    if (it != levels_[l + 1].end()) return it->second.min_leaf;
    std::uint64_t left_prefix = prefix_of(key, l) << 1;
    const PrefixInfo& lft = levels_[l + 1].at(left_prefix);
    auto leaf_it = leaves_.find(lft.max_leaf);
    if (leaf_it != leaves_.end() && leaf_it->second.has_next) return leaf_it->second.next;
    return std::nullopt;
  }
  std::uint64_t left_prefix = prefix_of(key, l) << 1;
  auto it = levels_[l + 1].find(left_prefix);
  std::uint64_t pred_leaf;
  if (it != levels_[l + 1].end()) {
    pred_leaf = it->second.max_leaf;
  } else {
    const PrefixInfo& r = levels_[l + 1].at((prefix_of(key, l) << 1) | 1);
    pred_leaf = r.max_leaf;
  }
  auto leaf_it = leaves_.find(pred_leaf);
  if (leaf_it != leaves_.end() && leaf_it->second.has_next) return leaf_it->second.next;
  return std::nullopt;
}

std::optional<std::uint64_t> XFastTrie::min() const {
  if (empty()) return std::nullopt;
  return levels_[0].at(0).min_leaf;
}

std::optional<std::uint64_t> XFastTrie::max() const {
  if (empty()) return std::nullopt;
  return levels_[0].at(0).max_leaf;
}

bool XFastTrie::insert(std::uint64_t key) {
  if (contains(key)) return false;
  // Wire the leaf list first (find neighbors before tables change).
  std::optional<std::uint64_t> p = pred(key), s = succ(key);
  LeafLinks links;
  if (p) {
    links.has_prev = true;
    links.prev = *p;
    leaves_[*p].has_next = true;
    leaves_[*p].next = key;
  }
  if (s) {
    links.has_next = true;
    links.next = *s;
    leaves_[*s].has_prev = true;
    leaves_[*s].prev = key;
  }
  leaves_[key] = links;
  for (unsigned l = 0; l <= width_; ++l) {
    auto [it, fresh] = levels_[l].try_emplace(prefix_of(key, l), PrefixInfo{key, key, 0});
    PrefixInfo& info = it->second;
    if (!fresh) {
      info.min_leaf = std::min(info.min_leaf, key);
      info.max_leaf = std::max(info.max_leaf, key);
    }
    ++info.count;
  }
  ++size_;
  return true;
}

bool XFastTrie::erase(std::uint64_t key) {
  if (!contains(key)) return false;
  auto links = leaves_.at(key);
  if (links.has_prev) {
    leaves_[links.prev].has_next = links.has_next;
    leaves_[links.prev].next = links.next;
  }
  if (links.has_next) {
    leaves_[links.next].has_prev = links.has_prev;
    leaves_[links.next].prev = links.prev;
  }
  leaves_.erase(key);
  for (unsigned l = 0; l <= width_; ++l) {
    auto it = levels_[l].find(prefix_of(key, l));
    PrefixInfo& info = it->second;
    if (--info.count == 0) {
      levels_[l].erase(it);
      continue;
    }
    if (info.min_leaf == key) info.min_leaf = links.has_next ? links.next : info.max_leaf;
    if (info.max_leaf == key) info.max_leaf = links.has_prev ? links.prev : info.min_leaf;
  }
  --size_;
  return true;
}

std::size_t XFastTrie::space_words() const {
  std::size_t words = 0;
  for (const auto& level : levels_) words += level.size() * 3;
  words += leaves_.size() * 3;
  return words;
}

}  // namespace ptrie::fasttrie
