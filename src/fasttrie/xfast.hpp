#pragma once
// x-fast trie [Willard 83] over fixed-width integer keys: one hash table
// per level storing every present prefix, leaf doubly-linked list, and
// per-prefix subtree min/max so predecessor/successor resolve after the
// binary search over levels. O(log w) queries, O(w) updates, O(n w)
// space — exactly the profile the paper's Table 1 row two exhibits, and
// the top structure of our y-fast trie.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace ptrie::fasttrie {

class XFastTrie {
 public:
  // width in [1, 64]; keys must be < 2^width.
  explicit XFastTrie(unsigned width = 64);

  unsigned width() const { return width_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool insert(std::uint64_t key);
  bool erase(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  // Longest prefix of `key` present as a prefix of some stored key, found
  // by binary search over levels: returns its length in bits (0..width).
  unsigned lcp_level(std::uint64_t key) const;

  // Largest stored key <= key / smallest stored key >= key.
  std::optional<std::uint64_t> pred(std::uint64_t key) const;
  std::optional<std::uint64_t> succ(std::uint64_t key) const;

  std::optional<std::uint64_t> min() const;
  std::optional<std::uint64_t> max() const;

  // Space in words, for Table 1's space column (O(n w)).
  std::size_t space_words() const;

 private:
  struct PrefixInfo {
    std::uint64_t min_leaf;
    std::uint64_t max_leaf;
    std::uint32_t count = 0;  // number of stored keys under this prefix
  };
  struct LeafLinks {
    bool has_prev = false, has_next = false;
    std::uint64_t prev = 0, next = 0;
  };

  std::uint64_t prefix_of(std::uint64_t key, unsigned level) const {
    return level == 0 ? 0 : (key >> (width_ - level));
  }

  unsigned width_;
  std::size_t size_ = 0;
  // levels_[l] maps l-bit prefixes to subtree info (level 0 = root).
  std::vector<std::unordered_map<std::uint64_t, PrefixInfo>> levels_;
  std::unordered_map<std::uint64_t, LeafLinks> leaves_;
};

}  // namespace ptrie::fasttrie
