#include "fasttrie/zfast.hpp"

#include <cassert>

namespace ptrie::fasttrie {

using trie::kNil;
using trie::NodeId;
using trie::Position;

std::uint64_t two_fattest(std::uint64_t a, std::uint64_t b) {
  assert(a < b);
  // Clear b's bits below the highest bit where a and b differ.
  std::uint64_t d = a ^ b;
  int msb = 63 - __builtin_clzll(d);
  return b & (~std::uint64_t{0} << msb);
}

ZFastTrie::ZFastTrie(const trie::Patricia& t, const hash::PolyHasher& hasher)
    : trie_(&t), hasher_(&hasher) {
  // Handle of node v: hash of v's string prefix of length
  // two_fattest(depth(parent(v)), depth(v)]. Computed top-down so each
  // node's full-string hash extends its parent's.
  std::vector<hash::HashVal> node_hash(t.slot_count(), 0);
  for (NodeId id : t.preorder_ids()) {
    const auto& n = t.node(id);
    if (n.parent == kNil) {
      node_hash[id] = hasher.empty();
      max_depth_ = std::max(max_depth_, n.depth);
      continue;
    }
    node_hash[id] = hasher.extend(node_hash[n.parent], n.edge, 0, n.edge.size());
    max_depth_ = std::max(max_depth_, n.depth);
    std::uint64_t pd = t.node(n.parent).depth;
    std::uint64_t f = two_fattest(pd, n.depth);
    // Hash of the prefix of length f = parent's hash extended over the
    // first (f - pd) bits of the edge.
    hash::HashVal hf = hasher.extend(node_hash[n.parent], n.edge, 0, f - pd);
    handles_.emplace(hf, id);
  }
}

std::pair<std::size_t, Position> ZFastTrie::locate(const core::BitString& key,
                                                   std::size_t* probes) const {
  const trie::Patricia& t = *trie_;
  hash::PrefixHashes ph(*hasher_, key);
  std::size_t nprobes = 0;

  // Fat binary search over prefix lengths for the deepest node whose
  // handle is a prefix of `key`.
  std::uint64_t lo = 0, hi = std::min<std::uint64_t>(key.size(), max_depth_);
  NodeId candidate = t.root();
  while (lo < hi) {
    std::uint64_t f = two_fattest(lo, hi);
    auto it = handles_.find(ph.prefix(f));
    ++nprobes;
    if (it != handles_.end()) {
      candidate = it->second;
      lo = std::min<std::uint64_t>(t.node(candidate).depth, hi);
      if (t.node(candidate).depth >= hi) break;
    } else {
      hi = f - 1;
    }
  }
  if (probes) *probes = nprobes;

  // Verify: hash matches can be false positives, and even a true handle
  // match only certifies the prefix up to the handle length. Walk up from
  // the candidate to the deepest ancestor consistent with `key`, then walk
  // down plainly. With sound hashes the down-walk is O(1) edges.
  NodeId anchor = candidate;
  while (anchor != t.root()) {
    const auto& n = t.node(anchor);
    std::uint64_t pd = t.node(n.parent).depth;
    if (pd < key.size()) {
      // Check the edge bits against key[pd, min(depth, |key|)).
      std::uint64_t span = std::min<std::uint64_t>(n.depth, key.size()) - pd;
      if (key.lcp_at(pd, n.edge) >= span && span == n.depth - pd) {
        break;  // fully consistent through this node
      }
      if (key.lcp_at(pd, n.edge) >= span) {
        // Consistent into the middle of this edge: the match ends here.
        break;
      }
    }
    anchor = n.parent;
  }
  // Plain walk from `anchor` (its represented string is a verified prefix
  // of key, except possibly a partial last edge handled below).
  std::uint64_t pos;
  if (anchor == t.root()) {
    pos = 0;
  } else {
    const auto& n = t.node(anchor);
    std::uint64_t pd = t.node(n.parent).depth;
    std::uint64_t span = std::min<std::uint64_t>(n.depth, key.size()) - pd;
    std::uint64_t matched = key.lcp_at(pd, n.edge);
    if (matched < span || n.depth > key.size()) {
      // Ends inside anchor's edge.
      std::uint64_t end = pd + std::min(matched, span);
      if (end == t.node(n.parent).depth) return {end, Position{n.parent, 0}};
      return {end, Position{anchor, n.depth - end}};
    }
    pos = n.depth;
  }
  NodeId cur = anchor;
  while (pos < key.size()) {
    int b = key.bit(pos) ? 1 : 0;
    NodeId child = t.node(cur).child[b];
    if (child == kNil) return {pos, Position{cur, 0}};
    const auto& e = t.node(child).edge;
    std::size_t m = key.lcp_at(pos, e);
    pos += m;
    if (m == e.size()) {
      cur = child;
      continue;
    }
    if (m == 0) return {pos, Position{cur, 0}};
    return {pos, Position{child, e.size() - m}};
  }
  return {pos, Position{cur, 0}};
}

}  // namespace ptrie::fasttrie
