#pragma once
// The two-layer index's *second layer* (paper Section 4.4.2, "Efficient
// HashMatching", and the worked example of Figure 5): an ordered
// dictionary over bit-strings shorter than w bits.
//
// Contract (verbatim from the paper): it maintains a set K of strings all
// shorter than w bits; for a query string Q it returns the K_i whose LCP
// with Q is longest among all of K, and such that no K_j with the same
// LCP is a proper prefix of K_i (so the caller finds the critical block
// root itself or one of its *direct children*, never an arbitrary
// descendant).
//
// Construction (also per the paper): every stored S is padded with 0s and
// with 1s to w bits; both padded integers go into a y-fast trie; each
// padded integer keeps a w-bit validity vector of the stored lengths that
// pad to it. A query pads Q both ways, takes predecessor and successor of
// each padded form, and binary-searches the validity vectors.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/bitstring.hpp"
#include "fasttrie/yfast.hpp"

namespace ptrie::fasttrie {

class SecondLayerIndex {
 public:
  explicit SecondLayerIndex(unsigned w);

  unsigned w() const { return w_; }
  std::size_t size() const { return by_string_.size(); }

  // |s| < w required. `payload` is returned on query hits (PIM-trie stores
  // the meta-tree node address here).
  void insert(const core::BitString& s, std::uint64_t payload);
  bool erase(const core::BitString& s);
  bool contains(const core::BitString& s) const { return by_string_.contains(s); }

  struct Result {
    core::BitString str;
    std::uint64_t payload = 0;
    std::size_t lcp = 0;  // LCP(str, Q) in bits
  };
  // |q| <= w. Empty result only when the index is empty.
  std::optional<Result> query(const core::BitString& q) const;

  std::size_t space_words() const;

  // Structural invariants: every stored string owns validity bits at both
  // paddings, every validity bit reconstructs to a stored string, and the
  // y-fast trie holds exactly the validity keys. Returns a human-readable
  // violation description, or "" if healthy.
  std::string debug_check() const;

 private:
  std::uint64_t pad(const core::BitString& s, bool ones) const;
  void add_validity(std::uint64_t padded, unsigned len);
  void remove_validity(std::uint64_t padded, unsigned len);

  unsigned w_;
  YFastTrie order_;                                        // padded integers
  std::unordered_map<std::uint64_t, std::uint64_t> validity_;  // padded -> length mask
  std::unordered_map<core::BitString, std::uint64_t, core::BitStringHash> by_string_;
};

}  // namespace ptrie::fasttrie
