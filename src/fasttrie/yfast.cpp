#include "fasttrie/yfast.hpp"

#include <cassert>

namespace ptrie::fasttrie {

YFastTrie::YFastTrie(unsigned width) : width_(width), top_(width) {}

std::map<std::uint64_t, YFastTrie::Bucket>::const_iterator YFastTrie::bucket_for(
    std::uint64_t key) const {
  // The bucket whose representative (minimum) is the largest <= key; if key
  // precedes every representative, the first bucket.
  if (buckets_.empty()) return buckets_.end();
  auto rep = top_.pred(key);
  if (!rep) return buckets_.begin();
  return buckets_.find(*rep);
}

bool YFastTrie::contains(std::uint64_t key) const {
  auto it = bucket_for(key);
  return it != buckets_.end() && it->second.contains(key);
}

std::optional<std::uint64_t> YFastTrie::pred(std::uint64_t key) const {
  auto it = bucket_for(key);
  if (it == buckets_.end()) return std::nullopt;
  auto bit = it->second.upper_bound(key);
  if (bit != it->second.begin()) return *std::prev(bit);
  // key precedes this bucket's minimum: only possible for the first bucket.
  return std::nullopt;
}

std::optional<std::uint64_t> YFastTrie::succ(std::uint64_t key) const {
  auto it = bucket_for(key);
  if (it == buckets_.end()) return std::nullopt;
  auto bit = it->second.lower_bound(key);
  if (bit != it->second.end()) return *bit;
  auto next = std::next(it);
  if (next == buckets_.end()) return std::nullopt;
  return *next->second.begin();
}

std::map<std::uint64_t, YFastTrie::Bucket>::iterator YFastTrie::rekey(
    std::map<std::uint64_t, Bucket>::iterator it) {
  std::uint64_t old_rep = it->first;
  std::uint64_t new_rep = *it->second.begin();
  if (old_rep == new_rep) return it;
  Bucket b = std::move(it->second);
  buckets_.erase(it);
  top_.erase(old_rep);
  top_.insert(new_rep);
  return buckets_.emplace(new_rep, std::move(b)).first;
}

void YFastTrie::split_if_needed(std::map<std::uint64_t, Bucket>::iterator it) {
  if (it->second.size() <= 2 * width_) return;
  // Split at the median into two buckets.
  Bucket& b = it->second;
  auto mid = b.begin();
  std::advance(mid, b.size() / 2);
  Bucket upper(mid, b.end());
  b.erase(mid, b.end());
  std::uint64_t rep = *upper.begin();
  top_.insert(rep);
  buckets_.emplace(rep, std::move(upper));
}

void YFastTrie::merge_if_needed(std::map<std::uint64_t, Bucket>::iterator it) {
  if (it->second.size() * 4 >= width_ || buckets_.size() <= 1) return;
  // Merge with a neighbor, then re-split if oversized.
  auto victim = it;
  auto into = it == buckets_.begin() ? std::next(it) : std::prev(it);
  std::uint64_t victim_rep = victim->first;
  into->second.insert(victim->second.begin(), victim->second.end());
  buckets_.erase(victim);
  top_.erase(victim_rep);
  into = rekey(into);
  split_if_needed(into);
}

bool YFastTrie::insert(std::uint64_t key) {
  if (buckets_.empty()) {
    top_.insert(key);
    buckets_[key].insert(key);
    ++size_;
    return true;
  }
  auto cit = bucket_for(key);
  auto it = buckets_.find(cit->first);
  if (!it->second.insert(key).second) return false;
  ++size_;
  it = rekey(it);
  split_if_needed(it);
  return true;
}

bool YFastTrie::erase(std::uint64_t key) {
  auto cit = bucket_for(key);
  if (cit == buckets_.end()) return false;
  auto it = buckets_.find(cit->first);
  if (it->second.erase(key) == 0) return false;
  --size_;
  if (it->second.empty()) {
    top_.erase(it->first);
    buckets_.erase(it);
    return true;
  }
  it = rekey(it);
  merge_if_needed(it);
  return true;
}

std::size_t YFastTrie::space_words() const {
  std::size_t words = top_.space_words();
  for (const auto& [rep, b] : buckets_) words += 1 + b.size();
  return words;
}

}  // namespace ptrie::fasttrie
