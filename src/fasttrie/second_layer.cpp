#include "fasttrie/second_layer.hpp"

#include <bit>
#include <cassert>

namespace ptrie::fasttrie {

using core::BitString;

SecondLayerIndex::SecondLayerIndex(unsigned w) : w_(w), order_(w) {
  assert(w_ >= 1 && w_ <= 64);
}

std::uint64_t SecondLayerIndex::pad(const BitString& s, bool ones) const {
  assert(s.size() <= w_);
  // String bits occupy the high |s| bits of a w_-bit integer.
  std::uint64_t v = s.size() == 0 ? 0 : (s.word(0) >> (64 - w_));
  // word(0) already has bits MSB-aligned in 64; shifting by (64-w_) puts
  // bit 0 of the string at integer bit w_-1. Bits below |s| are zero.
  if (ones && s.size() < w_) {
    // w_ - |s| can be 64 (empty string, full-width index): a plain shift
    // would be UB and silently produce an all-zeros fill on x86.
    std::uint64_t fill = w_ - s.size() >= 64 ? ~std::uint64_t{0}
                                             : (std::uint64_t{1} << (w_ - s.size())) - 1;
    v |= fill;
  }
  return v;
}

void SecondLayerIndex::add_validity(std::uint64_t padded, unsigned len) {
  auto [it, fresh] = validity_.try_emplace(padded, 0);
  if (fresh) order_.insert(padded);
  it->second |= std::uint64_t{1} << len;
}

void SecondLayerIndex::remove_validity(std::uint64_t padded, unsigned len) {
  auto it = validity_.find(padded);
  if (it == validity_.end()) return;
  it->second &= ~(std::uint64_t{1} << len);
  if (it->second == 0) {
    validity_.erase(it);
    order_.erase(padded);
  }
}

void SecondLayerIndex::insert(const BitString& s, std::uint64_t payload) {
  assert(s.size() < w_);
  auto [it, fresh] = by_string_.try_emplace(s, payload);
  if (!fresh) {
    it->second = payload;
    return;
  }
  unsigned len = static_cast<unsigned>(s.size());
  add_validity(pad(s, false), len);
  add_validity(pad(s, true), len);
}

bool SecondLayerIndex::erase(const BitString& s) {
  auto it = by_string_.find(s);
  if (it == by_string_.end()) return false;
  by_string_.erase(it);
  unsigned len = static_cast<unsigned>(s.size());
  remove_validity(pad(s, false), len);
  remove_validity(pad(s, true), len);
  return true;
}

namespace {
// LCP of two w-bit integers viewed as bit-strings of length w.
unsigned int_lcp(std::uint64_t a, std::uint64_t b, unsigned w) {
  std::uint64_t d = (a ^ b) << (64 - w);
  if (d == 0) return w;
  return static_cast<unsigned>(std::countl_zero(d));
}
}  // namespace

std::optional<SecondLayerIndex::Result> SecondLayerIndex::query(const BitString& q) const {
  assert(q.size() <= w_);
  if (by_string_.empty()) return std::nullopt;

  std::uint64_t q0 = pad(q, false), q1 = pad(q, true);
  std::uint64_t candidates[16];
  std::size_t ncand = 0;
  for (std::uint64_t qq : {q0, q1}) {
    if (auto p = order_.pred(qq)) {
      candidates[ncand++] = *p;
      // Padding collapse: several short strings can pad onto qq itself
      // (e.g. every "1"-prefix of an all-ones query 1-pads to the same
      // integer). The entry *strictly* below may be the true maximizer,
      // shadowed by the exact occupant — take it as well.
      if (*p == qq && qq != 0) {
        if (auto p2 = order_.pred(qq - 1)) candidates[ncand++] = *p2;
      }
    }
    std::uint64_t top = w_ == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w_) - 1);
    if (auto s = order_.succ(qq)) {
      candidates[ncand++] = *s;
      if (*s == qq && qq != top) {
        if (auto s2 = order_.succ(qq + 1)) candidates[ncand++] = *s2;
      }
    }
  }

  bool have = false;
  Result best;
  std::size_t qlen = q.size();
  for (std::size_t c = 0; c < ncand; ++c) {
    std::uint64_t padded = candidates[c];
    std::uint64_t mask = validity_.at(padded);
    // LCP between the candidate integer and Q as padded strings; against
    // both paddings of Q, take the larger (the true agreement with Q's
    // bits is the same; padding differences only matter past |Q|).
    unsigned raw = std::max(int_lcp(padded, q0, w_), int_lcp(padded, q1, w_));
    std::size_t bound = std::min<std::size_t>(raw, qlen);
    // Shortest valid length >= bound, else longest valid length < bound
    // (the paper's binary search over the validity vector).
    std::uint64_t ge = mask & (~std::uint64_t{0} << bound);
    unsigned len;
    if (bound < 64 && ge != 0) {
      len = static_cast<unsigned>(std::countr_zero(ge));
    } else {
      std::uint64_t lt = bound >= 64 ? mask : mask & ((std::uint64_t{1} << bound) - 1);
      if (lt == 0) continue;  // no valid prefix on this candidate
      len = 63 - static_cast<unsigned>(std::countl_zero(lt));
    }
    std::size_t lcp = std::min<std::size_t>(len, bound);
    if (!have || lcp > best.lcp || (lcp == best.lcp && len < best.str.size())) {
      // Reconstruct the stored string: the first `len` bits of `padded`.
      BitString s = BitString::from_uint(padded >> (w_ - len), len);
      // Guard: only accept genuinely stored strings (validity guarantees
      // this by construction).
      auto it = by_string_.find(s);
      if (it == by_string_.end()) continue;
      best = Result{std::move(s), it->second, lcp};
      have = true;
    }
  }
  if (!have) {
    // All candidates lacked valid prefixes under the bound; fall back to
    // the globally shortest stored string reachable via length-0/least
    // mask bits. Scan candidates for any valid length.
    for (std::size_t c = 0; c < ncand; ++c) {
      std::uint64_t padded = candidates[c];
      std::uint64_t mask = validity_.at(padded);
      unsigned len = static_cast<unsigned>(std::countr_zero(mask));
      BitString s = BitString::from_uint(len == 0 ? 0 : (padded >> (w_ - len)), len);
      auto it = by_string_.find(s);
      if (it == by_string_.end()) continue;
      std::size_t lcp = std::min(std::min<std::size_t>(s.size(), qlen),
                                 static_cast<std::size_t>(int_lcp(padded, q0, w_)));
      if (!have || lcp > best.lcp) {
        best = Result{std::move(s), it->second, lcp};
        have = true;
      }
    }
  }
  if (!have) return std::nullopt;
  return best;
}

std::string SecondLayerIndex::debug_check() const {
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 2000) problems += s + "\n";
  };
  for (const auto& [s, payload] : by_string_) {
    if (s.size() >= w_) complain("stored string as long as w: " + s.to_binary());
    unsigned len = static_cast<unsigned>(s.size());
    for (bool ones : {false, true}) {
      std::uint64_t padded = pad(s, ones);
      auto it = validity_.find(padded);
      if (it == validity_.end() || !(it->second >> len & 1)) {
        complain("missing validity bit for " + s.to_binary());
      } else if (!order_.contains(padded)) {
        complain("padded key absent from y-fast trie for " + s.to_binary());
      }
    }
  }
  std::size_t bits = 0;
  for (const auto& [padded, mask] : validity_) {
    if (mask == 0) complain("empty validity mask retained");
    if (!order_.contains(padded)) complain("validity key absent from y-fast trie");
    for (unsigned len = 0; len < 64; ++len) {
      if (!(mask >> len & 1)) continue;
      ++bits;
      BitString s = BitString::from_uint(len == 0 ? 0 : (padded >> (w_ - len)), len);
      if (!by_string_.contains(s))
        complain("validity bit without stored string: " + s.to_binary());
    }
  }
  // Each stored string contributes a bit at both paddings; the paddings
  // coincide exactly for full-width strings, which insert() forbids.
  if (bits != 2 * by_string_.size())
    complain("validity bit count mismatch: " + std::to_string(bits) + " bits vs " +
             std::to_string(by_string_.size()) + " strings, w=" + std::to_string(w_));
  if (order_.size() != validity_.size()) complain("y-fast size != validity size");
  return problems;
}

std::size_t SecondLayerIndex::space_words() const {
  std::size_t words = order_.space_words() + validity_.size() * 2;
  for (const auto& [s, payload] : by_string_) words += s.space_words() + 1;
  return words;
}

}  // namespace ptrie::fasttrie
