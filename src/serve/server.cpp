#include "serve/server.hpp"

#include <algorithm>
#include <cassert>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/phase.hpp"

namespace ptrie::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInsert: return "insert";
    case Op::kErase: return "erase";
    case Op::kLcp: return "lcp";
    case Op::kGet: return "get";
    case Op::kSubtree: return "subtree";
  }
  return "?";
}

namespace {
// Deadlines beyond this are treated as "no deadline" (tests use huge
// max_delay to pin batch composition; adding it to now() would overflow).
constexpr std::chrono::microseconds kNoDeadline = std::chrono::hours(1);
}  // namespace

Server::Server(pimtrie::PimTrie& trie) : Server(trie, Options()) {}

Server::Server(pimtrie::PimTrie& trie, Options opt)
    : trie_(&trie), opt_(opt), t0_(std::chrono::steady_clock::now()) {
  opt_.max_batch = std::max<std::size_t>(1, opt_.max_batch);
  opt_.max_backlog = std::max<std::size_t>(1, opt_.max_backlog);
  if (opt_.pipelined) prep_thread_ = std::thread([this] { prep_loop(); });
  exec_thread_ = std::thread([this] { exec_loop(); });
}

Server::~Server() { stop(); }

double Server::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void Server::close_open_locked(Close why) {
  if (open_.empty()) return;
  raw_q_.push_back(std::move(open_));
  open_.clear();
  {
    std::lock_guard slk(stats_mu_);
    switch (why) {
      case Close::kSize: ++stats_.close_size; break;
      case Close::kDeadline: ++stats_.close_deadline; break;
      case Close::kFlush: ++stats_.close_flush; break;
    }
  }
  cv_raw_.notify_all();
}

std::future<Response> Server::submit(Op op, core::BitString key, trie::Value value) {
  PendingReq r;
  r.op = op;
  r.key = std::move(key);
  r.value = value;
  std::future<Response> fut = r.promise.get_future();
  {
    std::unique_lock lk(mu_);
    assert(!stopping_ && "submit() after stop()");
    cv_space_.wait(lk, [&] { return raw_q_.size() < opt_.max_backlog; });
    if (open_.empty()) open_since_ = std::chrono::steady_clock::now();
    ++submitted_;
    open_.push_back(std::move(r));
    if (open_.size() >= opt_.max_batch)
      close_open_locked(Close::kSize);
    else
      cv_raw_.notify_one();  // (re)arm the deadline waiter
  }
  {
    std::lock_guard slk(stats_mu_);
    if (first_submit_ms_ < 0) first_submit_ms_ = now_ms();
  }
  obs::counter("serve/submitted").add();
  return fut;
}

void Server::flush() {
  std::lock_guard lk(mu_);
  close_open_locked(Close::kFlush);
}

void Server::drain() {
  flush();
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return completed_ == submitted_; });
}

void Server::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_raw_.notify_all();
  if (prep_thread_.joinable()) prep_thread_.join();
  {
    std::lock_guard lk(mu_);
    prep_done_ = true;
  }
  cv_prep_.notify_all();
  if (exec_thread_.joinable()) exec_thread_.join();
  {
    std::lock_guard lk(mu_);
    stopped_ = true;
  }
}

// Pops the next closed batch, closing the open batch when its deadline
// expires (or unconditionally once stopping). Returns false when
// stopping and fully drained of raw input.
bool Server::next_raw(std::vector<PendingReq>* out) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (!raw_q_.empty()) {
      *out = std::move(raw_q_.front());
      raw_q_.pop_front();
      cv_space_.notify_all();
      return true;
    }
    if (!open_.empty()) {
      if (stopping_) {
        close_open_locked(Close::kFlush);
        continue;
      }
      if (opt_.max_delay >= kNoDeadline) {
        cv_raw_.wait(lk);
        continue;
      }
      auto deadline = open_since_ + opt_.max_delay;
      if (cv_raw_.wait_until(lk, deadline) == std::cv_status::timeout && raw_q_.empty() &&
          !open_.empty() && std::chrono::steady_clock::now() >= open_since_ + opt_.max_delay)
        close_open_locked(Close::kDeadline);
    } else {
      if (stopping_) return false;
      cv_raw_.wait(lk);
    }
  }
}

Server::Prepared Server::prepare(std::vector<PendingReq> raw) {
  double a = now_ms();
  Prepared p;
  p.reqs = std::move(raw);
  // Execution order within the batch: by default group the concurrent
  // window by op kind (writes first, stable within a kind) so the large
  // fixed per-batch cost of sparse writes amortizes; strict_order keeps
  // the exact arrival interleaving instead.
  std::vector<std::size_t> order(p.reqs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!opt_.strict_order) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return static_cast<std::uint8_t>(p.reqs[x].op) < static_cast<std::uint8_t>(p.reqs[y].op);
    });
  }
  for (std::size_t i : order) {
    if (p.runs.empty() || p.runs.back().op != p.reqs[i].op)
      p.runs.push_back(Run{p.reqs[i].op, {}, {}, {}, {}});
    Run& run = p.runs.back();
    run.idx.push_back(i);
    run.keys.push_back(std::move(p.reqs[i].key));
    if (run.op == Op::kInsert) run.values.push_back(p.reqs[i].value);
  }
  {
    // Keep the pool dedicated to the executor unless asked otherwise;
    // serial preparation produces byte-identical query tries.
    std::optional<core::SerialRegion> serial;
    if (!opt_.parallel_prepare) serial.emplace();
    obs::Phase prep_phase("ServePrep");
    for (Run& run : p.runs) run.qt = trie_->prepare_batch(run.keys);
  }
  double b = now_ms();
  {
    std::lock_guard slk(stats_mu_);
    prep_iv_.push_back({a, b});
    stats_.prep_ms += b - a;
  }
  obs::counter("serve/prepared_batches").add();
  return p;
}

void Server::execute(Prepared p) {
  double a = now_ms();
  {
    obs::Phase serve_phase("Serve");
    for (Run& run : p.runs) {
      switch (run.op) {
        case Op::kInsert: {
          trie_->batch_insert_prepared(run.keys, run.values, std::move(run.qt));
          double done = now_ms();
          for (std::size_t i : run.idx) {
            Response r;
            r.op = Op::kInsert;
            r.done_ms = done;
            p.reqs[i].promise.set_value(std::move(r));
          }
          break;
        }
        case Op::kErase: {
          trie_->batch_erase_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          for (std::size_t i : run.idx) {
            Response r;
            r.op = Op::kErase;
            r.done_ms = done;
            p.reqs[i].promise.set_value(std::move(r));
          }
          break;
        }
        case Op::kLcp: {
          auto out = trie_->batch_lcp_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kLcp;
            r.lcp = out[j];
            r.done_ms = done;
            p.reqs[run.idx[j]].promise.set_value(std::move(r));
          }
          break;
        }
        case Op::kGet: {
          auto out = trie_->batch_get_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kGet;
            r.value = out[j];
            r.done_ms = done;
            p.reqs[run.idx[j]].promise.set_value(std::move(r));
          }
          break;
        }
        case Op::kSubtree: {
          auto out = trie_->batch_subtree_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kSubtree;
            r.subtree = std::move(out[j]);
            r.done_ms = done;
            p.reqs[run.idx[j]].promise.set_value(std::move(r));
          }
          break;
        }
      }
    }
  }
  double b = now_ms();
  {
    std::lock_guard slk(stats_mu_);
    exec_iv_.push_back({a, b});
    stats_.exec_ms += b - a;
    stats_.batch_sizes.push_back(p.reqs.size());
    stats_.ops += p.reqs.size();
    ++stats_.batches;
    stats_.runs += p.runs.size();
    last_complete_ms_ = b;
  }
  obs::counter("serve/executed_batches").add();
  obs::counter("serve/executed_ops").add(p.reqs.size());
  {
    std::lock_guard lk(mu_);
    completed_ += p.reqs.size();
  }
  cv_done_.notify_all();
}

void Server::prep_loop() {
  std::vector<PendingReq> raw;
  while (next_raw(&raw)) {
    Prepared p = prepare(std::move(raw));
    {
      std::unique_lock lk(mu_);
      // Pipeline depth 1: at most one prepared batch waits ahead of the
      // executor (the raw backlog bounds total run-ahead).
      cv_prep_.wait(lk, [&] { return prep_q_.empty(); });
      prep_q_.push_back(std::move(p));
    }
    cv_prep_.notify_all();
  }
}

void Server::exec_loop() {
  for (;;) {
    Prepared p;
    if (opt_.pipelined) {
      {
        std::unique_lock lk(mu_);
        cv_prep_.wait(lk, [&] { return !prep_q_.empty() || prep_done_; });
        if (prep_q_.empty()) return;  // prep exited and nothing left
        p = std::move(prep_q_.front());
        prep_q_.pop_front();
      }
      cv_prep_.notify_all();
    } else {
      std::vector<PendingReq> raw;
      if (!next_raw(&raw)) return;
      p = prepare(std::move(raw));
    }
    execute(std::move(p));
  }
}

Server::Stats Server::stats() const {
  std::lock_guard slk(stats_mu_);
  Stats s = stats_;
  s.span_ms = (first_submit_ms_ >= 0 && last_complete_ms_ > first_submit_ms_)
                  ? last_complete_ms_ - first_submit_ms_
                  : 0.0;
  // Overlap: both stages emit time-ordered disjoint busy intervals; sum
  // the pairwise intersections with a linear merge.
  double overlap = 0;
  std::size_t i = 0, j = 0;
  while (i < prep_iv_.size() && j < exec_iv_.size()) {
    double lo = std::max(prep_iv_[i].a, exec_iv_[j].a);
    double hi = std::min(prep_iv_[i].b, exec_iv_[j].b);
    if (hi > lo) overlap += hi - lo;
    if (prep_iv_[i].b < exec_iv_[j].b)
      ++i;
    else
      ++j;
  }
  s.overlap_ms = overlap;
  return s;
}

}  // namespace ptrie::serve
