#include "serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace ptrie::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInsert: return "insert";
    case Op::kErase: return "erase";
    case Op::kLcp: return "lcp";
    case Op::kGet: return "get";
    case Op::kSubtree: return "subtree";
    case Op::kPred: return "pred";
    case Op::kSucc: return "succ";
    case Op::kRange: return "range";
    case Op::kTopK: return "topk";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kShed: return "shed";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kFailed: return "failed";
  }
  return "?";
}

namespace {
// Deadlines beyond this are treated as "no deadline" (tests use huge
// max_delay to pin batch composition; adding it to now() would overflow).
constexpr std::chrono::microseconds kNoDeadline = std::chrono::hours(1);
}  // namespace

Server::Server(pimtrie::PimTrie& trie) : Server(trie, Options()) {}

Server::Server(pimtrie::PimTrie& trie, Options opt)
    : trie_(&trie), opt_(opt), t0_(std::chrono::steady_clock::now()) {
  opt_.max_batch = std::max<std::size_t>(1, opt_.max_batch);
  // Under kBlock a zero backlog would deadlock submit, so clamp; under
  // the shed policies max_backlog = 0 is meaningful (shed everything).
  if (opt_.overload_policy == OverloadPolicy::kBlock)
    opt_.max_backlog = std::max<std::size_t>(1, opt_.max_backlog);
  if (opt_.max_retries) trie_->system().set_fault_retries(*opt_.max_retries);
  if (opt_.backend) trie_->system().set_backend(*opt_.backend);

  // Resolve the lifecycle-telemetry toggle (Options override, else env).
  const bool trace_on = obs::Trace::instance().enabled();
  std::string mpath = opt_.metrics_path;
  if (mpath.empty())
    mpath = obs::env::str("PTRIE_METRICS",
                          "per-tenant serving metrics JSON-lines sink (file path, or '-' for stderr)");
  switch (opt_.lifecycle) {
    case Options::Toggle::kOff: lifecycle_on_ = false; break;
    case Options::Toggle::kOn: lifecycle_on_ = true; break;
    case Options::Toggle::kAuto: lifecycle_on_ = trace_on || !mpath.empty(); break;
  }
  if (lifecycle_on_) {
    spans_on_ = trace_on;
    sampler_ = obs::SpanSampler(
        opt_.span_seed != 0 ? opt_.span_seed : obs::span_seed_from_env(),
        opt_.span_sample != 0 ? opt_.span_sample : obs::span_sample_from_env());
    window_ = std::make_unique<obs::MetricsWindow>(opt_.alerts ? *opt_.alerts
                                                              : obs::AlertConfig::from_env());
    if (!mpath.empty()) {
      if (mpath == "-") {
        metrics_file_ = stderr;
      } else {
        metrics_file_ = std::fopen(mpath.c_str(), "a");
        metrics_close_ = metrics_file_ != nullptr;
      }
    }
    if (opt_.metrics_interval.count() > 0)
      metrics_interval_ = opt_.metrics_interval;
    else
      metrics_interval_ = std::chrono::milliseconds(obs::env::u64(
          "PTRIE_METRICS_INTERVAL_MS", 500, "serving metrics snapshot period in ms (default 500)"));
  }

  start();
}

Server::~Server() {
  stop();
  if (metrics_close_ && metrics_file_) {
    std::fclose(metrics_file_);
    metrics_file_ = nullptr;
    metrics_close_ = false;
  }
}

void Server::start() {
  {
    std::lock_guard lk(mu_);
    if (exec_thread_.joinable()) return;  // already running
    stopping_ = false;
    stopped_ = false;
    prep_done_ = false;
    paused_ = false;
    // A new serving episode starts with its own high-water marks: the
    // peaks reset to the current gauge values (zero after a drained
    // stop()), while the lifetime counters keep accumulating.
    std::lock_guard slk(stats_mu_);
    stats_.in_flight = submitted_ - completed_;
    stats_.max_in_flight = stats_.in_flight;
    stats_.queue_depth = queue_depth_locked();
    stats_.max_queue_depth = stats_.queue_depth;
    stats_.max_backlog = raw_q_.size();
  }
  if (lifecycle_on_) {
    {
      std::lock_guard mlk(metrics_mu_);
      metrics_stop_ = false;
    }
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }
  if (opt_.pipelined) prep_thread_ = std::thread([this] { prep_loop(); });
  exec_thread_ = std::thread([this] { exec_loop(); });
}

double Server::now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
      .count();
}

std::uint64_t Server::queue_depth_locked() const {
  std::uint64_t qd = open_.size();
  for (const RawBatch& b : raw_q_) qd += b.reqs.size();
  return qd;
}

void Server::refresh_gauges_locked() {
  std::lock_guard slk(stats_mu_);
  stats_.in_flight = submitted_ - completed_;
  stats_.max_in_flight = std::max(stats_.max_in_flight, stats_.in_flight);
  stats_.queue_depth = queue_depth_locked();
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, stats_.queue_depth);
  stats_.max_backlog = std::max<std::uint64_t>(stats_.max_backlog, raw_q_.size());
}

void Server::close_open_locked(Close why) {
  if (open_.empty()) return;
  RawBatch b;
  b.reqs = std::move(open_);
  open_.clear();
  b.id = next_batch_++;
  if (lifecycle_on_) b.close_ms = now_ms();
  raw_q_.push_back(std::move(b));
  {
    std::lock_guard slk(stats_mu_);
    switch (why) {
      case Close::kSize: ++stats_.close_size; break;
      case Close::kDeadline: ++stats_.close_deadline; break;
      case Close::kFlush: ++stats_.close_flush; break;
    }
    stats_.max_backlog = std::max<std::uint64_t>(stats_.max_backlog, raw_q_.size());
  }
  cv_raw_.notify_all();
}

std::future<Response> Server::submit(Op op, core::BitString key, trie::Value value,
                                     std::uint32_t tenant, double deadline_ms) {
  PendingReq r;
  r.op = op;
  r.key = std::move(key);
  r.value = value;
  r.tenant = tenant;
  return submit_impl(std::move(r), deadline_ms);
}

std::future<Response> Server::submit(Op op, core::BitString key, core::BitString key2,
                                     std::size_t limit, std::uint32_t tenant,
                                     double deadline_ms) {
  PendingReq r;
  r.op = op;
  r.key = std::move(key);
  r.key2 = std::move(key2);
  r.limit = std::min(limit, opt_.max_scan);
  r.tenant = tenant;
  return submit_impl(std::move(r), deadline_ms);
}

std::future<Response> Server::submit_impl(PendingReq r, double deadline_ms) {
  const Op op = r.op;
  const std::uint32_t tenant = r.tenant;
  std::future<Response> fut = r.promise.get_future();
  const double deadline = deadline_ms > 0 ? deadline_ms : opt_.default_deadline_ms;
  // Admission decision under mu_; a shed request is resolved outside the
  // lock. Shed requests still consume a sequence number and count as
  // completed immediately, so drain() and the in-flight gauge stay exact.
  const char* shed_why = nullptr;
  bool deadline_shed = false;
  {
    std::unique_lock lk(mu_);
    if (opt_.overload_policy == OverloadPolicy::kBlock) {
      // Lossless backpressure; stopping_ breaks the wait so a submit
      // racing stop() resolves kShed instead of sleeping forever.
      cv_space_.wait(lk, [&] { return raw_q_.size() < opt_.max_backlog || stopping_; });
      if (stopping_) shed_why = "server stopping";
    } else if (stopping_) {
      shed_why = "server stopping";
    } else if (raw_q_.size() >= opt_.max_backlog) {
      shed_why = "backlog full";
    } else if (opt_.tenant_cap > 0 && tenant_queued_[tenant] >= opt_.tenant_cap) {
      shed_why = "tenant queue cap";
    } else if (opt_.overload_policy == OverloadPolicy::kDeadlineAware && deadline > 0) {
      // Estimated wait: batches already queued ahead (closed backlog,
      // the open batch, and this request's own batch) each cost about
      // one recent batch execution. No history yet = no estimate.
      double ewma = ewma_batch_ms_.load(std::memory_order_relaxed);
      if (ewma > 0) {
        double est = static_cast<double>(raw_q_.size() + (open_.empty() ? 0 : 1) + 1) * ewma;
        if (est > deadline) {
          shed_why = "deadline unmeetable";
          deadline_shed = true;
        }
      }
    }
    r.seq = submitted_++;
    if (shed_why == nullptr) {
      if (open_.empty()) open_since_ = std::chrono::steady_clock::now();
      if (deadline > 0) r.deadline_at_ms = now_ms() + deadline;
      if (lifecycle_on_) {
        r.submit_ms = now_ms();
        r.key_hash = obs::key_hash(r.key);
        r.sampled = sampler_.sampled(r.seq);
      }
      ++tenant_queued_[tenant];
      open_.push_back(std::move(r));
      refresh_gauges_locked();
      if (open_.size() >= opt_.max_batch)
        close_open_locked(Close::kSize);
      else
        cv_raw_.notify_one();  // (re)arm the deadline waiter
    }
  }
  if (shed_why != nullptr) {
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.shed;
      if (deadline_shed) ++stats_.shed_deadline;
      ++shed_by_tenant_[tenant];
    }
    obs::counter("serve/shed").add();
    if (window_) window_->record_admission(tenant, "shed");
    Response resp;
    resp.op = op;
    resp.status = Status::kShed;
    resp.error = shed_why;
    resp.tenant = tenant;
    resp.seq = r.seq;
    resp.done_ms = now_ms();
    r.promise.set_value(std::move(resp));
    // Completion accounting last: once drain() can observe completed_ ==
    // submitted_, every stat above is already in place.
    {
      std::lock_guard lk(mu_);
      ++completed_;
      refresh_gauges_locked();
    }
    cv_done_.notify_all();
    return fut;
  }
  {
    std::lock_guard slk(stats_mu_);
    if (first_submit_ms_ < 0) first_submit_ms_ = now_ms();
  }
  obs::counter("serve/submitted").add();
  return fut;
}

void Server::flush() {
  std::lock_guard lk(mu_);
  close_open_locked(Close::kFlush);
}

void Server::drain() {
  flush();
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return completed_ == submitted_; });
}

void Server::stop() {
  // Serialize concurrent stop() callers (destructor vs explicit stop);
  // the second caller waits for the first to finish, then returns.
  std::lock_guard stop_lk(stop_mu_);
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopping_ = true;
    paused_ = false;  // a paused pipeline must still drain and exit
  }
  cv_raw_.notify_all();
  // Submitters blocked on backpressure must observe stopping_ (they
  // resolve their request kShed); without this wake a submit racing
  // stop() would wait on cv_space_ forever.
  cv_space_.notify_all();
  if (prep_thread_.joinable()) prep_thread_.join();
  {
    std::lock_guard lk(mu_);
    prep_done_ = true;
  }
  cv_prep_.notify_all();
  if (exec_thread_.joinable()) exec_thread_.join();
  if (metrics_thread_.joinable()) {
    {
      std::lock_guard mlk(metrics_mu_);
      metrics_stop_ = true;
    }
    metrics_cv_.notify_all();
    metrics_thread_.join();
    // Final roll: short runs still flush one complete window (tests and
    // CI smoke rely on this; the thread itself may never have fired).
    // The sink file stays open so a later start() keeps appending; the
    // destructor closes it.
    roll_window();
  }
  {
    std::lock_guard lk(mu_);
    stopped_ = true;
  }
}

void Server::metrics_loop() {
  std::unique_lock lk(metrics_mu_);
  while (!metrics_stop_) {
    if (metrics_cv_.wait_for(lk, metrics_interval_, [&] { return metrics_stop_; })) break;
    lk.unlock();
    roll_window();
    lk.lock();
  }
}

void Server::roll_window() {
  if (!window_) return;
  obs::WindowGauges g;
  {
    std::lock_guard lk(mu_);
    g.in_flight = submitted_ - completed_;
    g.queue_depth = queue_depth_locked();
  }
  std::string lines;
  std::vector<obs::Alert> alerts =
      window_->roll(now_ms(), g, metrics_file_ ? &lines : nullptr);
  if (metrics_file_ && !lines.empty()) {
    std::fwrite(lines.data(), 1, lines.size(), metrics_file_);
    std::fflush(metrics_file_);
  }
  if (!alerts.empty()) {
    {
      std::lock_guard slk(stats_mu_);
      stats_.alerts += alerts.size();
    }
    if (spans_on_) {
      for (const obs::Alert& a : alerts) {
        obs::SpanEvent ev;
        ev.kind = obs::SpanEvent::Kind::kInstant;
        ev.lane = 0;
        ev.name = "alert/" + a.kind;
        ev.cat = "alert";
        ev.ts_us = now_ms() * 1000.0;
        ev.args_json = "\"window\":" + std::to_string(a.window) +
                       ",\"value\":" + std::to_string(a.value) +
                       ",\"threshold\":" + std::to_string(a.threshold);
        if (a.has_tenant) ev.args_json += ",\"tenant\":" + std::to_string(a.tenant);
        obs::Trace::instance().record_span(std::move(ev));
      }
    }
  }
}

void Server::debug_pause_pipeline() {
  std::lock_guard lk(mu_);
  paused_ = true;
}

void Server::debug_resume_pipeline() {
  {
    std::lock_guard lk(mu_);
    paused_ = false;
  }
  cv_raw_.notify_all();
}

// Pops the next closed batch, closing the open batch when its deadline
// expires (or unconditionally once stopping). Returns false when
// stopping and fully drained of raw input.
bool Server::next_raw(RawBatch* out) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (paused_ && !stopping_) {
      cv_raw_.wait(lk, [&] { return !paused_ || stopping_; });
      continue;
    }
    if (!raw_q_.empty()) {
      *out = std::move(raw_q_.front());
      raw_q_.pop_front();
      for (const PendingReq& q : out->reqs) {
        auto it = tenant_queued_.find(q.tenant);
        if (it != tenant_queued_.end() && it->second > 0) --it->second;
      }
      cv_space_.notify_all();
      return true;
    }
    if (!open_.empty()) {
      if (stopping_) {
        close_open_locked(Close::kFlush);
        continue;
      }
      if (opt_.max_delay >= kNoDeadline) {
        cv_raw_.wait(lk);
        continue;
      }
      auto deadline = open_since_ + opt_.max_delay;
      if (cv_raw_.wait_until(lk, deadline) == std::cv_status::timeout && raw_q_.empty() &&
          !open_.empty() && std::chrono::steady_clock::now() >= open_since_ + opt_.max_delay)
        close_open_locked(Close::kDeadline);
    } else {
      if (stopping_) return false;
      cv_raw_.wait(lk);
    }
  }
}

Server::Prepared Server::prepare(RawBatch raw) {
  double a = now_ms();
  Prepared p;
  p.reqs = std::move(raw.reqs);
  p.id = raw.id;
  p.close_ms = raw.close_ms;
  p.prep_start_ms = a;
  // Deadline check at coalesce time: requests that expired while queued
  // are dropped here — before any host prep or PIM round is spent on
  // them — and resolve kDeadlineExceeded immediately.
  std::vector<char> dead(p.reqs.size(), 0);
  std::size_t n_dead = 0;
  for (std::size_t i = 0; i < p.reqs.size(); ++i) {
    PendingReq& q = p.reqs[i];
    if (q.deadline_at_ms > 0 && a > q.deadline_at_ms) {
      dead[i] = 1;
      ++n_dead;
      Response resp;
      resp.op = q.op;
      resp.status = Status::kDeadlineExceeded;
      resp.error = "deadline expired while queued";
      resp.tenant = q.tenant;
      resp.seq = q.seq;
      resp.batch = p.id;
      resp.done_ms = a;
      if (window_) window_->record_admission(q.tenant, "expired");
      q.promise.set_value(std::move(resp));
    }
  }
  p.live = p.reqs.size() - n_dead;
  if (n_dead > 0) {
    // Stats before the completion signal: a drain() returning on this
    // notify must already see the expiries accounted.
    {
      std::lock_guard slk(stats_mu_);
      stats_.expired += n_dead;
    }
    obs::counter("serve/deadline_expired").add(n_dead);
    {
      std::lock_guard lk(mu_);
      completed_ += n_dead;
      refresh_gauges_locked();
    }
    cv_done_.notify_all();
  }
  // Execution order within the batch: by default group the concurrent
  // window by op kind (writes first, stable within a kind) so the large
  // fixed per-batch cost of sparse writes amortizes; strict_order keeps
  // the exact arrival interleaving instead.
  std::vector<std::size_t> order(p.reqs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!opt_.strict_order) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return static_cast<std::uint8_t>(p.reqs[x].op) < static_cast<std::uint8_t>(p.reqs[y].op);
    });
  }
  for (std::size_t i : order) {
    if (dead[i]) continue;
    if (p.runs.empty() || p.runs.back().op != p.reqs[i].op)
      p.runs.push_back(Run{p.reqs[i].op, {}, {}, {}, {}, {}, {}});
    Run& run = p.runs.back();
    run.idx.push_back(i);
    run.keys.push_back(std::move(p.reqs[i].key));
    if (run.op == Op::kRange) run.keys2.push_back(std::move(p.reqs[i].key2));
    if (run.op == Op::kRange || run.op == Op::kTopK)
      run.limits.push_back(p.reqs[i].limit);
    if (run.op == Op::kInsert) run.values.push_back(p.reqs[i].value);
  }
  {
    // Keep the pool dedicated to the executor unless asked otherwise;
    // serial preparation produces byte-identical query tries. Ordered
    // runs skip this: their cover decomposition builds fresh query
    // tries inside the batch_* call itself.
    std::optional<core::SerialRegion> serial;
    if (!opt_.parallel_prepare) serial.emplace();
    obs::Phase prep_phase("ServePrep");
    for (Run& run : p.runs)
      if (!ordered_op(run.op)) run.qt = trie_->prepare_batch(run.keys);
  }
  double b = now_ms();
  {
    std::lock_guard slk(stats_mu_);
    prep_iv_.push_back({a, b});
    stats_.prep_ms += b - a;
  }
  if (spans_on_) {
    obs::SpanEvent ev;
    ev.lane = 0;
    ev.name = "batch " + std::to_string(p.id) + " prep";
    ev.cat = "batch";
    ev.ts_us = a * 1000.0;
    ev.dur_us = (b - a) * 1000.0;
    ev.args_json = "\"batch\":" + std::to_string(p.id) +
                   ",\"size\":" + std::to_string(p.reqs.size()) +
                   ",\"runs\":" + std::to_string(p.runs.size());
    obs::Trace::instance().record_span(std::move(ev));
  }
  obs::counter("serve/prepared_batches").add();
  return p;
}

void Server::execute(Prepared p) {
  double a = now_ms();
  // Per-run model-word delta (executor thread owns the System between
  // rounds, so reading cumulative metrics here is race-free). Feeds the
  // skew detector's module-imbalance window and the per-request words
  // charge (equal split over the run).
  std::vector<std::uint64_t> words_before;
  if (lifecycle_on_ && window_) words_before = trie_->system().metrics().per_module_words();
  // Completes request i with its lifecycle stamps, metrics sample, and
  // (when sampled) its trace flame.
  auto finish = [&](std::size_t i, Response r, double done, double words_per_op) {
    PendingReq& q = p.reqs[i];
    r.done_ms = done;
    if (lifecycle_on_) {
      r.t.submit_ms = q.submit_ms;
      r.t.close_ms = p.close_ms;
      r.t.prep_ms = p.prep_start_ms;
      r.t.exec_ms = a;
      r.tenant = q.tenant;
      r.seq = q.seq;
      r.batch = p.id;
      r.sampled = q.sampled;
      if (window_) {
        obs::RequestSample s;
        s.tenant = q.tenant;
        s.op = op_name(r.op);
        s.status = status_name(r.status);
        s.queue_us = (p.close_ms - q.submit_ms) * 1000.0;
        s.coalesce_us = (p.prep_start_ms - p.close_ms) * 1000.0;
        s.prep_us = (a - p.prep_start_ms) * 1000.0;
        s.exec_us = (done - a) * 1000.0;
        s.total_us = (done - q.submit_ms) * 1000.0;
        s.words = words_per_op;
        s.batch_size = p.reqs.size();
        s.key_hash = q.key_hash;
        window_->record(s);
      }
      if (q.sampled && spans_on_) {
        obs::Trace& tr = obs::Trace::instance();
        const std::uint32_t lane =
            1 + static_cast<std::uint32_t>(q.seq % obs::kSpanReqLanes);
        auto slice = [&](const char* name, const char* cat, double t0, double t1,
                         std::string args) {
          obs::SpanEvent ev;
          ev.lane = lane;
          ev.name = name;
          ev.cat = cat;
          ev.ts_us = t0 * 1000.0;
          ev.dur_us = (t1 - t0) * 1000.0;
          ev.args_json = std::move(args);
          tr.record_span(std::move(ev));
        };
        std::string args = "\"seq\":" + std::to_string(q.seq) +
                           ",\"tenant\":" + std::to_string(q.tenant) +
                           ",\"batch\":" + std::to_string(p.id);
        std::string parent = std::string("req/") + op_name(r.op);
        slice(parent.c_str(), "request", q.submit_ms, done, std::move(args));
        slice("queue", "stage", q.submit_ms, p.close_ms, "");
        slice("coalesce", "stage", p.close_ms, p.prep_start_ms, "");
        slice("prep", "stage", p.prep_start_ms, a, "");
        slice("exec", "stage", a, done, "");
      }
    }
    q.promise.set_value(std::move(r));
  };
  // Model words charged per request of the just-executed run; also rolls
  // the delta into the metrics window and advances words_before.
  auto charge_run = [&](std::size_t run_ops) -> double {
    if (!lifecycle_on_ || !window_ || run_ops == 0) return 0;
    const std::vector<std::uint64_t>& now = trie_->system().metrics().per_module_words();
    std::vector<std::uint64_t> delta(now.size(), 0);
    std::uint64_t total = 0;
    for (std::size_t m = 0; m < now.size(); ++m) {
      std::uint64_t before = m < words_before.size() ? words_before[m] : 0;
      delta[m] = now[m] - before;
      total += delta[m];
    }
    window_->record_batch_module_words(delta);
    words_before = now;
    return static_cast<double>(total) / static_cast<double>(run_ops);
  };
  // Degrades a run whose PIM execution failed (retry budget exhausted —
  // pim::FaultError — or a structured PTRIE_CHECK violation): only the
  // requests of this run resolve kFailed; sibling runs and later batches
  // proceed. Writes may have partially applied before the failing round;
  // callers see kFailed and must treat their effect as undefined.
  auto fail_run = [&](const Run& run, const char* what) {
    double done = now_ms();
    double w = charge_run(run.idx.size());  // faulted rounds still cost words
    for (std::size_t i : run.idx) {
      Response r;
      r.op = run.op;
      r.status = Status::kFailed;
      r.error = what;
      finish(i, std::move(r), done, w);
    }
    {
      std::lock_guard slk(stats_mu_);
      stats_.failed += run.idx.size();
    }
    obs::counter("serve/failed_ops").add(run.idx.size());
    obs::logf(obs::LogLevel::kWarn, "serve", "batch %llu %s run failed (%zu reqs): %s",
              static_cast<unsigned long long>(p.id), op_name(run.op), run.idx.size(), what);
  };
  {
    obs::Phase serve_phase("Serve");
    for (Run& run : p.runs) {
      try {
      switch (run.op) {
        case Op::kInsert: {
          trie_->batch_insert_prepared(run.keys, run.values, std::move(run.qt));
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t i : run.idx) {
            Response r;
            r.op = Op::kInsert;
            finish(i, std::move(r), done, w);
          }
          break;
        }
        case Op::kErase: {
          trie_->batch_erase_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t i : run.idx) {
            Response r;
            r.op = Op::kErase;
            finish(i, std::move(r), done, w);
          }
          break;
        }
        case Op::kLcp: {
          auto out = trie_->batch_lcp_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kLcp;
            r.lcp = out[j];
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
        case Op::kGet: {
          auto out = trie_->batch_get_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kGet;
            r.value = out[j];
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
        case Op::kSubtree: {
          auto out = trie_->batch_subtree_prepared(run.keys, std::move(run.qt));
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kSubtree;
            r.subtree = std::move(out[j]);
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
        case Op::kPred:
        case Op::kSucc: {
          auto out = run.op == Op::kPred ? trie_->batch_pred(run.keys)
                                         : trie_->batch_succ(run.keys);
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = run.op;
            r.neighbor = std::move(out[j]);
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
        case Op::kRange: {
          auto out = trie_->batch_range(run.keys, run.keys2, run.limits);
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kRange;
            r.subtree = std::move(out[j]);
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
        case Op::kTopK: {
          auto out = trie_->batch_topk(run.keys, run.limits);
          double done = now_ms();
          double w = charge_run(run.idx.size());
          for (std::size_t j = 0; j < run.idx.size(); ++j) {
            Response r;
            r.op = Op::kTopK;
            r.subtree = std::move(out[j]);
            finish(run.idx[j], std::move(r), done, w);
          }
          break;
        }
      }
      } catch (const std::exception& e) {
        fail_run(run, e.what());
      }
    }
  }
  double b = now_ms();
  {
    // Recent-batch execution-time estimate for kDeadlineAware admission.
    double prev = ewma_batch_ms_.load(std::memory_order_relaxed);
    ewma_batch_ms_.store(prev > 0 ? 0.8 * prev + 0.2 * (b - a) : (b - a),
                         std::memory_order_relaxed);
  }
  if (spans_on_) {
    obs::SpanEvent ev;
    ev.lane = 0;
    ev.name = "batch " + std::to_string(p.id) + " exec";
    ev.cat = "batch";
    ev.ts_us = a * 1000.0;
    ev.dur_us = (b - a) * 1000.0;
    ev.args_json = "\"batch\":" + std::to_string(p.id) +
                   ",\"size\":" + std::to_string(p.reqs.size()) +
                   ",\"runs\":" + std::to_string(p.runs.size());
    obs::Trace::instance().record_span(std::move(ev));
  }
  {
    std::lock_guard slk(stats_mu_);
    exec_iv_.push_back({a, b});
    stats_.exec_ms += b - a;
    stats_.batch_sizes.push_back(p.live);
    stats_.ops += p.live;
    ++stats_.batches;
    stats_.runs += p.runs.size();
    last_complete_ms_ = b;
  }
  obs::counter("serve/executed_batches").add();
  obs::counter("serve/executed_ops").add(p.live);
  {
    std::lock_guard lk(mu_);
    completed_ += p.live;
    refresh_gauges_locked();
  }
  cv_done_.notify_all();
}

void Server::prep_loop() {
  RawBatch raw;
  while (next_raw(&raw)) {
    Prepared p = prepare(std::move(raw));
    {
      std::unique_lock lk(mu_);
      // Pipeline depth 1: at most one prepared batch waits ahead of the
      // executor (the raw backlog bounds total run-ahead).
      cv_prep_.wait(lk, [&] { return prep_q_.empty(); });
      prep_q_.push_back(std::move(p));
    }
    cv_prep_.notify_all();
  }
}

void Server::exec_loop() {
  for (;;) {
    Prepared p;
    if (opt_.pipelined) {
      {
        std::unique_lock lk(mu_);
        cv_prep_.wait(lk, [&] { return !prep_q_.empty() || prep_done_; });
        if (prep_q_.empty()) return;  // prep exited and nothing left
        p = std::move(prep_q_.front());
        prep_q_.pop_front();
      }
      cv_prep_.notify_all();
    } else {
      RawBatch raw;
      if (!next_raw(&raw)) return;
      p = prepare(std::move(raw));
    }
    execute(std::move(p));
  }
}

Server::Stats Server::stats() const {
  std::lock_guard slk(stats_mu_);
  Stats s = stats_;
  s.shed_by_tenant.assign(shed_by_tenant_.begin(), shed_by_tenant_.end());
  std::sort(s.shed_by_tenant.begin(), s.shed_by_tenant.end());
  s.span_ms = (first_submit_ms_ >= 0 && last_complete_ms_ > first_submit_ms_)
                  ? last_complete_ms_ - first_submit_ms_
                  : 0.0;
  // Overlap: both stages emit time-ordered disjoint busy intervals; sum
  // the pairwise intersections with a linear merge.
  double overlap = 0;
  std::size_t i = 0, j = 0;
  while (i < prep_iv_.size() && j < exec_iv_.size()) {
    double lo = std::max(prep_iv_[i].a, exec_iv_[j].a);
    double hi = std::min(prep_iv_[i].b, exec_iv_[j].b);
    if (hi > lo) overlap += hi - lo;
    if (prep_iv_[i].b < exec_iv_[j].b)
      ++i;
    else
      ++j;
  }
  s.overlap_ms = overlap;
  return s;
}

}  // namespace ptrie::serve
