#pragma once
// Streaming front-end over PimTrie (ROADMAP item 1): concurrent client
// threads submit individual Insert/Delete/LCP/Get/SubtreeQuery requests
// through future-based Sessions; a coalescer closes batches on size or
// deadline triggers; a pipelined executor overlaps the host-CPU
// preparation of batch k+1 (sort, dedup, query-trie build —
// PimTrie::prepare_batch) with the PIM rounds of batch k.
//
// Execution model: a closed batch is split into homogeneous runs and
// the runs are applied on a single executor thread via the *_prepared
// entry points. By default runs are grouped by op kind (inserts, then
// erases, then the read kinds; stable within each kind) — requests that
// were coalesced into one window are concurrent, so this is a legal
// linearization, and it is what lets tiny interleaved write stretches
// amortize their large fixed per-batch cost. Options::strict_order
// instead keeps exact arrival order (one run per maximal same-kind
// stretch) for callers that pipeline dependent requests without
// waiting on the returned futures.
//
// Preparation is state-independent (it reads only the batch keys and
// the trie's hash family), so for a fixed batch composition the
// answers, rounds, and metrics are byte-identical across
// Options::pipelined on/off and any PTRIE_WORKERS. Only wall-clock
// (and the Stats below) differ.
//
// Phase attribution: rounds issued by the executor carry a "Serve/"
// prefix on their phase path (e.g. "Serve/LCP/MetaQuery/...") and the
// preparation stage brackets itself in "ServePrep", so overlapped work
// stays distinguishable in traces and per-phase rollups.

// Request-lifecycle observability (this layer's second job): when
// tracing (PTRIE_TRACE) or the metrics sink (PTRIE_METRICS) is active —
// or Options::lifecycle forces it — every request is stamped at
// submit -> batch close -> prep start -> exec start -> done on the
// server clock. Sampled requests export as span flames into the trace
// (obs/spans.hpp), every completion feeds the per-tenant sliding-window
// aggregator + skew detector (obs/metrics_window.hpp), and a background
// snapshot thread emits periodic JSON-lines to the PTRIE_METRICS sink
// (render live with `ptrie_report --top`). With both off, all of it
// reduces to a few cached-bool branches: no stamps, no allocation, no
// extra threads — and observability never changes execution, so answers
// and model metrics are byte-identical whether it is on or off.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bitstring.hpp"
#include "obs/metrics_window.hpp"
#include "pim/backend.hpp"
#include "obs/spans.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/query_trie.hpp"

namespace ptrie::serve {

enum class Op : std::uint8_t {
  kInsert,
  kErase,
  kLcp,
  kGet,
  kSubtree,
  kPred,   // strict predecessor in bitstring order
  kSucc,   // strict successor
  kRange,  // inclusive [key, key2], ascending, truncated to `limit`
  kTopK,   // first `limit` pairs under prefix `key`, ascending
};

const char* op_name(Op op);

// The ordered read kinds execute through the non-prepared PimTrie entry
// points (their cover decomposition builds its own query tries), so
// their runs skip the preparation stage.
inline bool ordered_op(Op op) { return op >= Op::kPred; }

// Terminal state of a request. Anything other than kOk means the answer
// fields are unset: kShed = rejected at admission (overload policy),
// kDeadlineExceeded = expired in queue before execution, kFailed = its
// batch hit an unrecoverable PIM fault (see pim/fault.hpp).
enum class Status : std::uint8_t { kOk = 0, kShed, kDeadlineExceeded, kFailed };

const char* status_name(Status s);

// What submit() does when the closed-batch backlog is full:
//   kBlock         — wait for space (default; lossless backpressure)
//   kShed          — resolve the request immediately with Status::kShed
//   kDeadlineAware — kShed, and additionally reject requests whose
//                    deadline cannot be met by the estimated queue wait
enum class OverloadPolicy : std::uint8_t { kBlock, kShed, kDeadlineAware };

struct Response {
  Op op = Op::kLcp;
  Status status = Status::kOk;
  std::string error;  // human-readable cause when status != kOk
  std::size_t lcp = 0;                                           // kLcp
  std::optional<trie::Value> value;                              // kGet
  // kSubtree, and the list answers of kRange / kTopK (ascending,
  // truncated to the request's limit).
  std::vector<std::pair<core::BitString, trie::Value>> subtree;
  // kPred / kSucc: the neighboring stored pair, absent when none.
  std::optional<std::pair<core::BitString, trie::Value>> neighbor;
  // Completion stamp on the server clock (ms since Server construction;
  // see now_ms()). Lets open-loop clients compute latency against their
  // scheduled arrival time without a waiter thread per client.
  double done_ms = 0;

  // Lifecycle stamps (server clock, ms). Populated only when lifecycle
  // telemetry is active; zero otherwise. submit <= close <= prep <=
  // exec <= done_ms, and the four stage intervals tile the request's
  // end-to-end latency.
  struct Timing {
    double submit_ms = 0;  // accepted into the open batch
    double close_ms = 0;   // its batch closed (size/deadline/flush)
    double prep_ms = 0;    // host preparation of its batch began
    double exec_ms = 0;    // PIM execution of its batch began
  };
  Timing t;
  std::uint32_t tenant = 0;  // echoed from submit()
  std::uint64_t seq = 0;     // global submission sequence number
  std::uint64_t batch = 0;   // id of the coalesced batch that carried it
  bool sampled = false;      // true when this request exported a trace span
};

class Server {
 public:
  struct Options {
    std::size_t max_batch = 2048;              // size trigger
    std::chrono::microseconds max_delay{500};  // deadline trigger
    bool pipelined = true;  // overlap prepare(k+1) with execute(k)
    // Closed-but-unexecuted batches the ingest side may run ahead by;
    // submit() blocks (backpressure) once the backlog is full.
    std::size_t max_backlog = 4;
    // Let the preparation stage use the shared worker pool. Safe (the
    // pool serializes concurrent regions) but on small machines serial
    // preparation overlaps more cleanly with execution, so the default
    // keeps the pool dedicated to the executor.
    bool parallel_prepare = false;
    // Keep exact arrival order within a batch (one run per maximal
    // same-kind stretch) instead of the default group-by-kind epoch
    // semantics described in the header comment.
    bool strict_order = false;
    // Per-request cap on kRange / kTopK result limits: a submitted
    // limit is clamped to this, bounding the response volume a single
    // scan request can pull through the pipeline.
    std::size_t max_scan = 65536;

    // ---- overload protection ----
    // Reaction to a full backlog (and, for kDeadlineAware, to unmeetable
    // deadlines). kBlock preserves the original lossless behavior.
    OverloadPolicy overload_policy = OverloadPolicy::kBlock;
    // Deadline applied to requests submitted without an explicit one
    // (ms from submission; 0 = none). Expired requests are dropped when
    // their batch is prepared and resolve kDeadlineExceeded.
    double default_deadline_ms = 0;
    // Per-tenant cap on queued (admitted, not yet executing) requests
    // under the shed policies; 0 = no cap. Keeps one hot tenant from
    // consuming the whole backlog and starving the rest.
    std::size_t tenant_cap = 0;
    // Override for the PIM fault-retry budget (pim::FaultPlan
    // max_retries); unset = keep the plan's own value.
    std::optional<std::uint32_t> max_retries;

    // ---- execution backend ----
    // Overrides the trie's System execution backend (pim/backend.hpp)
    // before the pipeline starts; unset = keep whatever the System was
    // constructed with (PTRIE_BACKEND, default exact).
    std::optional<pim::BackendKind> backend;

    // ---- request-lifecycle telemetry ----
    // kAuto: active iff PTRIE_TRACE or PTRIE_METRICS is set in the
    // environment. kOn/kOff force it regardless (tests use kOn with an
    // explicit metrics_path so the cached env registry never matters).
    enum class Toggle : std::uint8_t { kAuto, kOff, kOn };
    Toggle lifecycle = Toggle::kAuto;
    // JSON-lines sink for window snapshots. Empty = take PTRIE_METRICS
    // (no sink when that is unset too); "-" = stderr.
    std::string metrics_path;
    // Snapshot period. <=0 = take PTRIE_METRICS_INTERVAL_MS (500ms).
    std::chrono::milliseconds metrics_interval{0};
    // Span sampling: 1-in-N requests export trace flames. 0 = take
    // PTRIE_SPAN_SAMPLE (16); 1 = every request.
    std::uint64_t span_sample = 0;
    std::uint64_t span_seed = 0;  // 0 = take PTRIE_SPAN_SEED (1)
    // Skew-alert thresholds; unset = obs::AlertConfig::from_env().
    std::optional<obs::AlertConfig> alerts;
  };

  explicit Server(pimtrie::PimTrie& trie);  // default Options
  Server(pimtrie::PimTrie& trie, Options opt);
  ~Server();  // stop()

  // (Re)starts the pipeline threads. The constructor calls it; after a
  // stop() it brings the server back up for a fresh serving episode:
  // lifetime counters (submitted/completed/ops) carry over, but the
  // high-water gauges (max_in_flight, max_queue_depth, max_backlog)
  // reset to the current — post-drain, zero — values so each episode's
  // peaks are its own. No-op while already running.
  void start();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Thread-safe; may block on backpressure under OverloadPolicy::kBlock
  // (under the shed policies it never blocks — the future resolves
  // immediately with Status::kShed instead). The future resolves when
  // the request's coalesced batch finishes executing. Safe against a
  // concurrent stop(): racing submissions resolve kShed. `tenant` labels
  // the request for per-tenant metrics and admission accounting; it
  // never affects execution. `deadline_ms` (0 = Options default) bounds
  // how long the request may wait before execution begins.
  std::future<Response> submit(Op op, core::BitString key, trie::Value value = 0,
                               std::uint32_t tenant = 0, double deadline_ms = 0);
  // Two-key / limited submission for the ordered kinds: kRange uses
  // (key = lo, key2 = hi, limit), kTopK uses (key = prefix, limit = k),
  // kPred / kSucc ignore key2 and limit. `limit` is clamped to
  // Options::max_scan.
  std::future<Response> submit(Op op, core::BitString key, core::BitString key2,
                               std::size_t limit, std::uint32_t tenant = 0,
                               double deadline_ms = 0);

  // Closes the currently open batch immediately (no-op when empty).
  void flush();
  // flush(), then block until every submitted request has completed.
  void drain();
  // drain(), then join the pipeline threads. Idempotent; the destructor
  // calls it. No submissions may follow.
  void stop();

  // Per-client sugar over submit().
  class Session {
   public:
    std::future<Response> insert(core::BitString key, trie::Value value) {
      return s_->submit(Op::kInsert, std::move(key), value);
    }
    std::future<Response> erase(core::BitString key) {
      return s_->submit(Op::kErase, std::move(key));
    }
    std::future<Response> lcp(core::BitString key) {
      return s_->submit(Op::kLcp, std::move(key));
    }
    std::future<Response> get(core::BitString key) {
      return s_->submit(Op::kGet, std::move(key));
    }
    std::future<Response> subtree(core::BitString prefix) {
      return s_->submit(Op::kSubtree, std::move(prefix));
    }
    std::future<Response> pred(core::BitString key) {
      return s_->submit(Op::kPred, std::move(key));
    }
    std::future<Response> succ(core::BitString key) {
      return s_->submit(Op::kSucc, std::move(key));
    }
    std::future<Response> range(core::BitString lo, core::BitString hi, std::size_t limit) {
      return s_->submit(Op::kRange, std::move(lo), std::move(hi), limit);
    }
    std::future<Response> topk(core::BitString prefix, std::size_t k) {
      return s_->submit(Op::kTopK, std::move(prefix), core::BitString(), k);
    }

   private:
    friend class Server;
    explicit Session(Server* s) : s_(s) {}
    Server* s_;
  };
  Session session() { return Session(this); }

  struct Stats {
    std::uint64_t ops = 0, batches = 0, runs = 0;
    std::uint64_t close_size = 0, close_deadline = 0, close_flush = 0;
    double prep_ms = 0;     // preparation-stage busy time
    double exec_ms = 0;     // execution-stage busy time
    double overlap_ms = 0;  // prep busy while exec concurrently busy
    double span_ms = 0;     // first submit -> last completion
    std::vector<std::size_t> batch_sizes;
    // Live gauges (always maintained, telemetry on or off): requests
    // submitted but not yet completed, requests waiting in the open
    // batch + closed-but-unprepared backlog, and high-water marks.
    std::uint64_t in_flight = 0;
    std::uint64_t max_in_flight = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t max_queue_depth = 0;
    // Deepest the closed-batch backlog ever got (backpressure trigger
    // is Options::max_backlog).
    std::uint64_t max_backlog = 0;
    std::uint64_t alerts = 0;  // skew alerts emitted by the detector
    // Overload / fault outcomes. `shed` counts all kShed resolutions
    // (shed_deadline of which were kDeadlineAware estimate rejections),
    // `expired` counts kDeadlineExceeded, `failed` counts kFailed.
    std::uint64_t shed = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t expired = 0;
    std::uint64_t failed = 0;
    // (tenant, shed count), sorted by tenant id.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> shed_by_tenant;

    double overlap_ratio() const { return exec_ms > 0 ? overlap_ms / exec_ms : 0.0; }
    double mean_batch() const {
      return batches ? static_cast<double>(ops) / static_cast<double>(batches) : 0.0;
    }
  };
  // Consistent only when no request is in flight (after drain()/stop()).
  Stats stats() const;

  // Milliseconds since Server construction (the clock Response::done_ms
  // and the Stats intervals are expressed in).
  double now_ms() const;
  std::chrono::steady_clock::time_point start_time() const { return t0_; }

  // Test/bench hook: freeze the pipeline before it pops the next closed
  // batch, so a fixed submission sequence produces deterministic shed
  // decisions (the backlog cannot drain mid-sequence). Requests already
  // being executed finish normally.
  void debug_pause_pipeline();
  void debug_resume_pipeline();

 private:
  struct PendingReq {
    Op op = Op::kLcp;
    core::BitString key;
    core::BitString key2;    // kRange upper bound
    std::size_t limit = 0;   // kRange / kTopK result cap (post-clamp)
    trie::Value value = 0;
    std::promise<Response> promise;
    std::uint32_t tenant = 0;
    std::uint64_t seq = 0;
    // Absolute expiry on the server clock (0 = no deadline). Stamped at
    // submit regardless of telemetry; checked when the batch is prepared.
    double deadline_at_ms = 0;
    // Lifecycle-only fields (zero / unused when telemetry is off). The
    // key hash is taken at submit because prepare() moves the key out.
    double submit_ms = 0;
    std::uint64_t key_hash = 0;
    bool sampled = false;
  };
  // A closed batch waiting for preparation, with its close-time stamps.
  struct RawBatch {
    std::vector<PendingReq> reqs;
    std::uint64_t id = 0;
    double close_ms = 0;  // lifecycle only
  };
  struct Run {
    Op op;
    std::vector<std::size_t> idx;  // request indices, execution order
    std::vector<core::BitString> keys;
    std::vector<core::BitString> keys2;  // kRange only
    std::vector<std::size_t> limits;     // kRange / kTopK only
    std::vector<trie::Value> values;     // kInsert only
    trie::QueryTrie qt;                  // unused for ordered_op kinds
  };
  struct Prepared {
    std::vector<PendingReq> reqs;
    std::vector<Run> runs;
    std::uint64_t id = 0;
    // Requests still live (not expired at prepare time); drives the
    // executor-side completion accounting. Expired entries keep their
    // slot in `reqs` but appear in no run and are already resolved.
    std::size_t live = 0;
    double close_ms = 0;       // lifecycle only, from RawBatch
    double prep_start_ms = 0;  // lifecycle only
  };
  struct Interval {
    double a = 0, b = 0;  // ms since server start
  };
  enum class Close { kSize, kDeadline, kFlush };

  std::future<Response> submit_impl(PendingReq r, double deadline_ms);
  void close_open_locked(Close why);
  bool next_raw(RawBatch* out);
  Prepared prepare(RawBatch raw);
  void execute(Prepared p);
  void prep_loop();
  void exec_loop();
  // Queue-depth under mu_ (open batch + closed-but-unprepared backlog).
  std::uint64_t queue_depth_locked() const;
  void refresh_gauges_locked();  // mu_ held; takes stats_mu_
  // Closes the current metrics window: snapshots gauges, runs the skew
  // detector, appends JSON lines to the sink, mirrors alerts into the
  // trace. Called by the snapshot thread and once more at stop().
  void roll_window();
  void metrics_loop();

  pimtrie::PimTrie* trie_;
  Options opt_;
  std::chrono::steady_clock::time_point t0_;

  std::mutex mu_;
  std::condition_variable cv_space_;  // backpressure: raw backlog has room
  std::condition_variable cv_raw_;    // open/raw batch activity
  std::condition_variable cv_prep_;   // prepared-queue activity
  std::condition_variable cv_done_;   // completion progress
  std::vector<PendingReq> open_;
  std::chrono::steady_clock::time_point open_since_{};
  std::deque<RawBatch> raw_q_;
  std::deque<Prepared> prep_q_;
  std::uint64_t submitted_ = 0, completed_ = 0;
  std::uint64_t next_batch_ = 0;
  bool stopping_ = false;
  bool prep_done_ = false;
  bool stopped_ = false;
  bool paused_ = false;  // debug_pause_pipeline()
  // Queued-but-not-executing requests per tenant (admission accounting
  // for Options::tenant_cap). Guarded by mu_.
  std::unordered_map<std::uint32_t, std::uint64_t> tenant_queued_;
  // Serializes concurrent stop() callers (the destructor races tests
  // that call stop() explicitly).
  std::mutex stop_mu_;

  // EWMA of recent batch execution time, the kDeadlineAware wait
  // estimator. Written by the executor, read by submit().
  std::atomic<double> ewma_batch_ms_{0};

  mutable std::mutex stats_mu_;
  Stats stats_;
  std::unordered_map<std::uint32_t, std::uint64_t> shed_by_tenant_;
  std::vector<Interval> prep_iv_, exec_iv_;
  double first_submit_ms_ = -1, last_complete_ms_ = 0;

  std::thread prep_thread_, exec_thread_;

  // ---- request-lifecycle telemetry (constructor-resolved; see the
  // Options block). All false/null when inactive. ----
  bool lifecycle_on_ = false;
  bool spans_on_ = false;  // lifecycle_on_ && obs::Trace enabled
  obs::SpanSampler sampler_;
  std::unique_ptr<obs::MetricsWindow> window_;
  std::FILE* metrics_file_ = nullptr;
  bool metrics_close_ = false;  // we own metrics_file_
  std::chrono::milliseconds metrics_interval_{500};
  std::thread metrics_thread_;
  std::mutex metrics_mu_;
  std::condition_variable metrics_cv_;
  bool metrics_stop_ = false;
};

}  // namespace ptrie::serve
