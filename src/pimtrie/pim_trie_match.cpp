// PimTrie matching pipeline: Phases A (MatchCriticalMetaBlock), B
// (MatchCriticalBlock with recursive meta-block descent) and C (block
// matching under Push-Pull, with verification + redo), plus the read
// operations batch_lcp and batch_subtree built on it.

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/phase.hpp"
#include "pimtrie/detail.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/euler_partition.hpp"

namespace {
bool debug_on() {
  static const bool on = ptrie::obs::log_enabled(ptrie::obs::LogLevel::kDebug);
  return on;
}
constexpr auto kDebug = ptrie::obs::LogLevel::kDebug;
}  // namespace

namespace ptrie::pimtrie {

using core::BitString;
using trie::kNil;
using trie::NodeId;
using trie::Patricia;

namespace {

struct WireMatch {
  NodeId origin;
  std::uint64_t abs_depth;
  bool at_node_end;
  MetaEntry entry;
  PieceId descend_piece;  // kNone when the hit is a plain entry
  std::uint32_t descend_module;
};

std::vector<WireMatch> read_resolved_matches(BufReader& r) {
  std::vector<WireMatch> out;
  std::uint64_t n = r.u64();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    WireMatch m;
    m.origin = static_cast<NodeId>(r.u64());
    m.abs_depth = r.u64();
    m.at_node_end = r.u64() != 0;
    m.entry = MetaEntry::deserialize(r);
    m.descend_piece = r.u64();
    m.descend_module = static_cast<std::uint32_t>(r.u64());
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<MatchLen> read_match_lens(BufReader& r) {
  std::vector<MatchLen> out;
  std::uint64_t n = r.u64();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MatchLen ml;
    ml.origin = static_cast<NodeId>(r.u64());
    ml.match_len = r.u64();
    std::uint64_t flags = r.u64();
    ml.full = flags & 1;
    ml.boundary = flags & 2;
    out.push_back(ml);
  }
  return out;
}

}  // namespace

// Phases A + B: returns the set of critical block roots, materialized as
// query-trie nodes.
std::vector<PimTrie::CriticalRoot> PimTrie::match_critical_roots(trie::QueryTrie& qt,
                                                                 const char* label) {
  std::vector<CriticalRoot> criticals;
  std::unordered_map<NodeId, BlockId> seen;  // qnode -> block (dedup)
  auto add_critical = [&](NodeId qnode, const MetaEntry& e) {
    auto [it, fresh] = seen.try_emplace(qnode, e.block);
    if (!fresh) {
      if (it->second != e.block) ++verify_.rejected_collisions;
      return;
    }
    criticals.push_back({qnode, e.block});
  };

  struct WorkItem {
    PieceId piece;
    std::uint32_t module;
    NodeId span_root;
    bool tried_split = false;
  };
  std::vector<WorkItem> work;

  // The data root block always matches the query root (both represent
  // the empty string); hash_match only reports matches on edges, so this
  // one — and the descent into its meta-block tree — is seeded manually.
  if (root_block_ != kNone) {
    add_critical(qt.trie.root(), make_entry(root_block_));
    for (const auto& mr : master_roots_)
      if (mr.root.block == root_block_)
        work.push_back({mr.piece, mr.module, qt.trie.root(), false});
  }

  // ---- Phase A: master matching (Algorithm 4) ----
  {
    obs::Phase phase_a("MetaQuery");
    obs::Phase phase_l1("HashMatching-L1");
    std::size_t lg = Config::log2_ceil(cfg_.p);
    std::size_t qq = qt.q_words();
    std::size_t bound = std::max<std::size_t>(16, qq / std::max<std::size_t>(1, cfg_.p * lg));
    auto weight = [&](NodeId id) -> std::uint64_t {
      return 8 + qt.trie.node(id).edge.word_count();
    };
    // Long query edges can outweigh the bound; cut them first.
    {
      std::size_t max_edge_bits = std::max<std::size_t>(64, (bound > 9 ? bound - 8 : 1) * 64);
      bool again = true;
      while (again) {
        again = false;
        for (NodeId id : qt.trie.preorder_ids()) {
          if (qt.trie.node(id).edge.size() > max_edge_bits) {
            NodeId mid = qt.trie.split_edge(id, qt.trie.node(id).edge.size() - max_edge_bits);
            if (qt.node_hash.size() < qt.trie.slot_count())
              qt.node_hash.resize(qt.trie.slot_count(), 0);
            const auto& m = qt.trie.node(mid);
            qt.node_hash[mid] = hasher_.extend(qt.node_hash[m.parent], m.edge, 0, m.edge.size());
            again = true;
          }
        }
      }
    }
    trie::PartitionResult part = trie::euler_partition(qt.trie, weight, bound);
    std::vector<pim::Buffer> buffers(sys_->p());
    // Placement consumes the RNG serially (worker-count invariant); the
    // expensive piece extraction runs in parallel; serialization appends
    // in root order so the wire bytes are canonical.
    std::vector<std::size_t> piece_module(part.roots.size());
    for (std::size_t i = 0; i < part.roots.size(); ++i)
      piece_module[i] = sys_->random_module();
    std::vector<QueryPiece> master_pieces(part.roots.size());
    core::parallel_for(
        0, part.roots.size(),
        [&](std::size_t i) {
          NodeId r = part.roots[i];
          std::vector<NodeId> cuts;
          for (NodeId other : part.roots)
            if (other != r) cuts.push_back(other);
          master_pieces[i] = make_piece(qt, r, cuts);
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < part.roots.size(); ++i) {
      std::size_t module = piece_module[i];
      detail::FrameWriter fw{buffers[module]};
      fw.begin();
      BufWriter bw{buffers[module]};
      bw.u64(detail::kMatchMaster);
      master_pieces[i].serialize(buffers[module]);
      fw.end();
    }
    std::string lbl = std::string(label) + ".master";
    auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                     hasher_, cfg_.w);
    for (const auto& buf : results) {
      BufReader r{buf};
      while (!r.done()) {
        std::uint64_t frame = r.u64();
        std::size_t end = r.pos + frame;
        auto ms = read_resolved_matches(r);
        for (auto& m : ms) {
          NodeId node = materialize(qt, m.origin, m.abs_depth);
          add_critical(node, m.entry);
          if (m.descend_piece != kNone)
            work.push_back({m.descend_piece, m.descend_module, node, false});
        }
        r.pos = end;
      }
    }
    if (debug_on())
      obs::logf(kDebug, "phaseA", "master_roots=%zu criticals=%zu work=%zu",
                master_roots_.size(), criticals.size(), work.size());
  }

  // ---- Phase B: meta-block descent (Algorithm 5) ----
  obs::Phase phase_b("MetaQuery");
  obs::Phase phase_l2("HashMatching-L2");
  std::size_t push_threshold = cfg_.push_threshold();
  int round_no = 0;
  while (!work.empty()) {
    ++round_no;
    // Span set for extraction: all known critical nodes + work roots.
    std::vector<NodeId> span_nodes;
    for (const auto& c : criticals) span_nodes.push_back(c.qnode);
    for (const auto& w : work) span_nodes.push_back(w.span_root);
    std::sort(span_nodes.begin(), span_nodes.end());
    span_nodes.erase(std::unique(span_nodes.begin(), span_nodes.end()), span_nodes.end());

    std::vector<pim::Buffer> buffers(sys_->p());
    struct Pending {
      std::size_t work_idx;
      std::uint32_t module;
      enum Kind { kPush, kPullChildren, kPullPiece } kind;
    };
    std::vector<Pending> pending;
    std::vector<QueryPiece> qpieces(work.size());

    // Piece extraction per work item is independent and dominates this
    // loop's host cost; packing below stays serial in work order.
    core::parallel_for(
        0, work.size(),
        [&](std::size_t i) {
          std::vector<NodeId> cuts;
          for (NodeId s : span_nodes)
            if (s != work[i].span_root) cuts.push_back(s);
          qpieces[i] = make_piece(qt, work[i].span_root, cuts);
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < work.size(); ++i) {
      std::size_t sz = qpieces[i].wire_words();
      std::uint32_t module = work[i].module;
      detail::FrameWriter fw{buffers[module]};
      if (sz <= push_threshold) {
        fw.begin();
        BufWriter bw{buffers[module]};
        bw.u64(detail::kMatchPiece);
        bw.u64(work[i].piece);
        qpieces[i].serialize(buffers[module]);
        fw.end();
        pending.push_back({i, module, Pending::kPush});
      } else if (!work[i].tried_split && !pieces_.at(work[i].piece).children.empty()) {
        fw.begin();
        BufWriter bw{buffers[module]};
        bw.u64(detail::kFetchPieceChildren);
        bw.u64(work[i].piece);
        fw.end();
        pending.push_back({i, module, Pending::kPullChildren});
      } else {
        fw.begin();
        BufWriter bw{buffers[module]};
        bw.u64(detail::kFetchPiece);
        bw.u64(work[i].piece);
        fw.end();
        pending.push_back({i, module, Pending::kPullPiece});
      }
    }

    std::string lbl = std::string(label) + ".meta" + std::to_string(round_no);
    auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                     hasher_, cfg_.w);

    // Responses arrive per module in send order; walk them in parallel.
    std::vector<BufReader> readers;
    readers.reserve(results.size());
    for (const auto& buf : results) readers.push_back(BufReader{buf});

    std::vector<WorkItem> next;
    for (const auto& p : pending) {
      BufReader& r = readers[p.module];
      std::uint64_t frame = r.u64();
      std::size_t end = r.pos + frame;
      const WorkItem& item = work[p.work_idx];
      if (p.kind == Pending::kPush) {
        auto ms = read_resolved_matches(r);
        for (auto& m : ms) {
          NodeId node = materialize(qt, m.origin, m.abs_depth);
          add_critical(node, m.entry);
          if (m.descend_piece != kNone)
            next.push_back({m.descend_piece, m.descend_module, node, false});
        }
      } else if (p.kind == Pending::kPullChildren) {
        std::uint64_t n = r.u64();
        std::vector<ChildPieceRef> children;
        children.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
          children.push_back(ChildPieceRef::deserialize(r));
        // CPU-side hash match against the child roots only.
        TwoLayerIndex idx(cfg_.w);
        for (std::uint32_t i = 0; i < children.size(); ++i)
          idx.insert(hasher_, children[i].root, {IndexPayload::kChild, i});
        HashMatchStats hms;
        auto ms = hash_match(
            qpieces[p.work_idx], idx, hasher_, cfg_.w,
            [&](IndexPayload pl) -> const MetaEntry* { return &children[pl.idx].root; },
            nullptr, &hms, nullptr);
        verify_.rejected_collisions += hms.rejected_collisions;
        for (auto& m : ms) {
          NodeId node = materialize(qt, m.point.origin, m.point.abs_depth);
          add_critical(node, *m.entry);
          // Recover the child ref by block id.
          for (const auto& c : children)
            if (c.root.block == m.entry->block) {
              next.push_back({c.piece, c.module, node, false});
              break;
            }
        }
        // The remaining top part stays matched to the same piece.
        next.push_back({item.piece, item.module, item.span_root, true});
      } else {  // kPullPiece
        Piece piece = Piece::deserialize(r);
        piece.build_index(hasher_, cfg_.w);
        HashMatchStats hms;
        auto ms = hash_match(
            qpieces[p.work_idx], piece.index(), hasher_, cfg_.w,
            [&](IndexPayload pl) -> const MetaEntry* {
              return pl.kind == IndexPayload::kEntry ? &piece.entries[pl.idx]
                                                     : &piece.children[pl.idx].root;
            },
            [&](BlockId b) { return piece.entry_of(b); }, &hms, nullptr);
        verify_.rejected_collisions += hms.rejected_collisions;
        for (auto& m : ms) {
          NodeId node = materialize(qt, m.point.origin, m.point.abs_depth);
          add_critical(node, *m.entry);
          if (m.point.payload.kind == IndexPayload::kChild &&
              m.entry == &piece.children[m.point.payload.idx].root) {
            const auto& c = piece.children[m.point.payload.idx];
            next.push_back({c.piece, c.module, node, false});
          }
        }
      }
      r.pos = end;
    }
    work = std::move(next);
    if (debug_on())
      obs::logf(kDebug, "phaseB", "round=%d criticals=%zu next_work=%zu", round_no,
                criticals.size(), work.size());
    // Safety valve: descent depth is bounded by the piece-tree height.
    if (round_no > 64) break;
  }
  return criticals;
}

PimTrie::MatchOutcome PimTrie::run_matching(trie::QueryTrie& qt, const char* label,
                                            int op_kind) {
  MatchOutcome out;
  std::vector<std::pair<NodeId, trie::Value>> get_hits;
  std::vector<CriticalRoot> spans = match_critical_roots(qt, label);
  obs::counter("match/spans").add(spans.size());
  if (debug_on())
    for (const auto& s : spans)
      obs::logf(kDebug, "span", "qnode=%u qdepth=%llu block=%llu bdepth=%llu", s.qnode,
                (unsigned long long)qt.trie.node(s.qnode).depth, (unsigned long long)s.block,
                (unsigned long long)blocks_.at(s.block).root_depth);

  // ---- Phase C: block matching with Push-Pull + verification/redo ----
  obs::Phase phase_c("PushPull");
  std::size_t kb = cfg_.block_bound();
  std::vector<char> rejected(spans.size(), 0);
  std::vector<char> active(spans.size(), 1);
  std::vector<std::vector<MatchLen>> reports(spans.size());

  int redo_round = 0;
  for (;;) {
    // Redo iterations re-match under the collision-verification protocol;
    // attribute their rounds to a nested Verify phase.
    std::optional<obs::Phase> verify_phase;
    if (redo_round > 0) verify_phase.emplace("Verify");
    // Span set = non-rejected span nodes.
    std::vector<NodeId> span_nodes;
    for (std::size_t i = 0; i < spans.size(); ++i)
      if (!rejected[i]) span_nodes.push_back(spans[i].qnode);

    std::vector<pim::Buffer> buffers(sys_->p());
    struct Pending {
      std::size_t span_idx;
      std::uint32_t module;
      bool push;
    };
    std::vector<Pending> pending;
    std::vector<QueryPiece> qpieces(spans.size());

    core::parallel_for(
        0, spans.size(),
        [&](std::size_t i) {
          if (rejected[i] || !active[i]) return;
          std::vector<NodeId> cuts;
          for (NodeId s : span_nodes)
            if (s != spans[i].qnode) cuts.push_back(s);
          qpieces[i] = make_piece(qt, spans[i].qnode, cuts);
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (rejected[i] || !active[i]) continue;
      const HostBlockInfo& info = blocks_.at(spans[i].block);
      std::size_t sz = qpieces[i].wire_words();
      std::uint32_t module = info.module;
      detail::FrameWriter fw{buffers[module]};
      fw.begin();
      BufWriter bw{buffers[module]};
      if (sz <= kb) {
        bw.u64(op_kind == 1   ? detail::kInsertBlock
               : op_kind == 2 ? detail::kEraseBlock
               : op_kind == 3 ? detail::kGetBlock
                              : detail::kMatchBlock);
        bw.u64(spans[i].block);
        bw.u64(hasher_.fingerprint(info.root_hash));
        qpieces[i].serialize(buffers[module]);
        pending.push_back({i, module, true});
      } else {
        bw.u64(detail::kFetchBlock);
        bw.u64(spans[i].block);
        pending.push_back({i, module, false});
      }
      fw.end();
    }
    if (pending.empty()) break;

    std::string lbl = std::string(label) + ".blocks" + std::to_string(redo_round);
    auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                     hasher_, cfg_.w);
    std::vector<BufReader> readers;
    readers.reserve(results.size());
    for (const auto& buf : results) readers.push_back(BufReader{buf});

    bool any_reject = false;
    std::vector<std::pair<std::uint32_t, Block>> writeback;  // pulled + modified
    for (const auto& p : pending) {
      BufReader& r = readers[p.module];
      std::uint64_t frame = r.u64();
      std::size_t end = r.pos + frame;
      active[p.span_idx] = 0;
      if (p.push) {
        bool ok = r.u64() != 0;
        if (!ok) {
          obs::counter("verify/span_rejects").add();
          if (debug_on())
            obs::logf(kDebug, "phaseC", "REJECT span qnode=%u block=%llu",
                      spans[p.span_idx].qnode, (unsigned long long)spans[p.span_idx].block);
          rejected[p.span_idx] = 1;
          any_reject = true;
          ++verify_.rejected_collisions;
        } else {
          reports[p.span_idx] = read_match_lens(r);
          if (debug_on())
            for (const auto& ml : reports[p.span_idx])
              obs::logf(kDebug, "report", "span_block=%llu origin=%u len=%llu full=%d bnd=%d",
                        (unsigned long long)spans[p.span_idx].block, ml.origin,
                        (unsigned long long)ml.match_len, ml.full ? 1 : 0,
                        ml.boundary ? 1 : 0);
          if (op_kind == 1) {
            r.u64();  // new_keys (tallied below via key counts)
            r.u64();  // updated
            std::uint64_t space = r.u64();
            std::uint64_t keys = r.u64();
            auto& info = blocks_.at(spans[p.span_idx].block);
            info.space = space;
            info.keys = keys;
          } else if (op_kind == 2) {
            r.u64();  // removed
            std::uint64_t keys = r.u64();
            r.u64();  // mirrors
            std::uint64_t space = r.u64();
            auto& info = blocks_.at(spans[p.span_idx].block);
            info.keys = keys;
            info.space = space;
          } else if (op_kind == 3) {
            std::uint64_t nh = r.u64();
            for (std::uint64_t k = 0; k < nh; ++k) {
              NodeId origin = static_cast<NodeId>(r.u64());
              std::uint64_t value = r.u64();
              get_hits.emplace_back(origin, value);
            }
          }
        }
      } else {
        // Pull: match (and for updates, mutate) on the CPU.
        Block blk = Block::deserialize(r);
        const HostBlockInfo& info = blocks_.at(spans[p.span_idx].block);
        bool ok = hasher_.fingerprint(blk.root_hash) == hasher_.fingerprint(info.root_hash) &&
                  blk.root_depth == qpieces[p.span_idx].root_depth;
        if (!ok) {
          rejected[p.span_idx] = 1;
          any_reject = true;
          ++verify_.rejected_collisions;
        } else {
          std::uint64_t cpu_work = 0;
          reports[p.span_idx] = match_block(qpieces[p.span_idx], blk, &cpu_work);
          if (debug_on())
            for (const auto& ml : reports[p.span_idx])
              obs::logf(kDebug, "report/pull", "span_block=%llu origin=%u len=%llu full=%d bnd=%d",
                        (unsigned long long)spans[p.span_idx].block, ml.origin,
                        (unsigned long long)ml.match_len, ml.full ? 1 : 0,
                        ml.boundary ? 1 : 0);
          if (op_kind == 1) {
            insert_into_block(qpieces[p.span_idx], blk, &cpu_work);
            auto& binfo = blocks_.at(spans[p.span_idx].block);
            binfo.space = blk.space_words();
            binfo.keys = blk.trie.key_count();
            writeback.emplace_back(p.module, std::move(blk));
          } else if (op_kind == 2) {
            erase_from_block(qpieces[p.span_idx], blk, &cpu_work);
            auto& binfo = blocks_.at(spans[p.span_idx].block);
            binfo.space = blk.space_words();
            binfo.keys = blk.trie.key_count();
            writeback.emplace_back(p.module, std::move(blk));
          } else if (op_kind == 3) {
            for (auto [origin, value] : get_from_block(qpieces[p.span_idx], blk, &cpu_work))
              get_hits.emplace_back(origin, value);
          }
          sys_->metrics().add_cpu_work(cpu_work);
        }
      }
      r.pos = end;
    }

    if (!writeback.empty()) {
      std::vector<pim::Buffer> wb(sys_->p());
      for (auto& [module, blk] : writeback) {
        detail::FrameWriter fw{wb[module]};
        fw.begin();
        BufWriter bw{wb[module]};
        bw.u64(detail::kStoreBlock);
        blk.serialize(wb[module]);
        fw.end();
      }
      std::string lbl2 = std::string(label) + ".writeback" + std::to_string(redo_round);
      detail::run_round(*sys_, lbl2.c_str(), std::move(wb), instance_, hasher_, cfg_.w);
    }

    if (!any_reject) break;
    // Redo: regions under rejected spans fold into the nearest surviving
    // ancestor span, which must re-match with updated cuts.
    ++verify_.redo_rounds;
    ++redo_round;
    obs::counter("verify/redo_rounds").add();
    // Find surviving ancestors of rejected spans and reactivate them.
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (!rejected[i]) continue;
      // Walk up the query trie to the nearest surviving span node.
      NodeId cur = spans[i].qnode;
      std::unordered_map<NodeId, std::size_t> by_node;
      for (std::size_t j = 0; j < spans.size(); ++j)
        if (!rejected[j]) by_node[spans[j].qnode] = j;
      while (cur != kNil) {
        auto it = by_node.find(cur);
        if (it != by_node.end()) {
          active[it->second] = 1;
          break;
        }
        cur = qt.trie.node(cur).parent;
      }
    }
    if (redo_round > 16) break;  // collision storm safety valve
  }

  // ---- merge reports into per-node match lengths ----
  out.match_len.assign(qt.trie.slot_count(), 0);
  out.reported.assign(qt.trie.slot_count(), false);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (rejected[i]) continue;
    for (const auto& ml : reports[i]) {
      if (ml.origin == kNil) continue;
      if (!out.reported[ml.origin] || ml.match_len > out.match_len[ml.origin]) {
        out.match_len[ml.origin] = ml.match_len;
        out.reported[ml.origin] = true;
      }
    }
  }
  // Span roots are fully matched by construction.
  std::vector<std::size_t> span_idx_of(qt.trie.slot_count(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (rejected[i]) continue;
    NodeId n = spans[i].qnode;
    out.match_len[n] = std::max(out.match_len[n], qt.trie.node(n).depth);
    out.reported[n] = true;
    span_idx_of[n] = i;
  }
  // Rootfix inheritance: unreported nodes take their parent's value; the
  // span-of map records the owning span for subtree queries.
  out.span_of.assign(qt.trie.slot_count(), static_cast<std::size_t>(-1));
  for (NodeId id : qt.trie.preorder_ids()) {
    const auto& n = qt.trie.node(id);
    if (span_idx_of[id] != static_cast<std::size_t>(-1)) {
      out.span_of[id] = span_idx_of[id];
    } else if (n.parent != kNil) {
      out.span_of[id] = out.span_of[n.parent];
    }
    if (!out.reported[id] && n.parent != kNil) {
      out.match_len[id] = std::min<std::uint64_t>(out.match_len[n.parent], n.depth);
      // A partial parent match caps descendants at the parent's value.
      out.match_len[id] = out.match_len[n.parent];
      out.reported[id] = true;
    }
  }
  // Keep surviving spans for callers.
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (!rejected[i]) out.spans.push_back(spans[i]);
  out.get_hits = std::move(get_hits);
  return out;
}

trie::QueryTrie PimTrie::prepare_batch(const std::vector<BitString>& keys) const {
  if (keys.empty()) return {};
  return trie::build_query_trie(keys, hasher_);
}

std::vector<std::size_t> PimTrie::batch_lcp(const std::vector<BitString>& keys) {
  return batch_lcp_prepared(keys, prepare_batch(keys));
}

std::vector<std::size_t> PimTrie::batch_lcp_prepared(const std::vector<BitString>& keys,
                                                     trie::QueryTrie qt) {
  std::vector<std::size_t> out(keys.size(), 0);
  if (keys.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase("LCP");
  sys_->metrics().add_cpu_work(qt.cpu_work);
  MatchOutcome mo = run_matching(qt, "lcp", /*op_kind=*/0);
  core::parallel_for(
      0, keys.size(),
      [&](std::size_t i) {
        NodeId node = qt.key_node[qt.sorted_slot_of_input[i]];
        out[i] = mo.match_len[node];
      },
      /*grain=*/2048);
  return out;
}

std::vector<std::optional<trie::Value>> PimTrie::batch_get(
    const std::vector<BitString>& keys) {
  return batch_get_prepared(keys, prepare_batch(keys));
}

std::vector<std::optional<trie::Value>> PimTrie::batch_get_prepared(
    const std::vector<BitString>& keys, trie::QueryTrie qt) {
  std::vector<std::optional<trie::Value>> out(keys.size());
  if (keys.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase("Get");
  sys_->metrics().add_cpu_work(qt.cpu_work);
  MatchOutcome mo = run_matching(qt, "get", /*op_kind=*/3);
  std::unordered_map<NodeId, trie::Value> by_origin;
  for (auto [origin, value] : mo.get_hits) by_origin[origin] = value;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    NodeId node = qt.key_node[qt.sorted_slot_of_input[i]];
    auto it = by_origin.find(node);
    if (it != by_origin.end()) out[i] = it->second;
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, trie::Value>>> PimTrie::batch_subtree(
    const std::vector<BitString>& prefixes) {
  return batch_subtree_prepared(prefixes, prepare_batch(prefixes));
}

std::vector<std::vector<std::pair<BitString, trie::Value>>> PimTrie::batch_subtree_prepared(
    const std::vector<BitString>& prefixes, trie::QueryTrie qt) {
  std::vector<std::vector<std::pair<BitString, trie::Value>>> out(prefixes.size());
  if (prefixes.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase("Subtree");
  sys_->metrics().add_cpu_work(qt.cpu_work);
  MatchOutcome mo = run_matching(qt, "subtree", /*op_kind=*/0);

  // For fully-matched prefixes: slice the owning block at the prefix end,
  // then descend the meta-block tree to collect every block underneath
  // (Section 5.3), and finally fetch those blocks in one round.
  struct Target {
    std::size_t query;          // index into prefixes (deduped rep)
    BlockId block;
    std::uint64_t abs_depth;
    BitString suffix;           // prefix bits below the block root
  };
  std::vector<Target> targets;
  std::unordered_map<std::size_t, std::size_t> target_of_slot;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    std::size_t slot = qt.sorted_slot_of_input[i];
    if (target_of_slot.contains(slot)) continue;
    NodeId node = qt.key_node[slot];
    if (mo.match_len[node] < prefixes[i].size()) continue;  // no such prefix
    std::size_t si = mo.span_of[node];
    if (si == static_cast<std::size_t>(-1)) continue;
    const CriticalRoot& span = mo.spans[si];
    const HostBlockInfo& info = blocks_.at(span.block);
    Target t;
    t.query = i;
    t.block = span.block;
    t.abs_depth = prefixes[i].size();
    t.suffix = prefixes[i].suffix(info.root_depth);
    target_of_slot[slot] = targets.size();
    targets.push_back(std::move(t));
  }

  // The slice / collect / fetch rounds below are all block traffic;
  // group them under the Push-Pull phase like run_matching's Phase C.
  obs::Phase pushpull_phase("PushPull");

  // Round 1: slices.
  struct SliceResult {
    bool found = false;
    Patricia trie;
    std::uint64_t root_depth = 0;
    std::vector<std::pair<NodeId, BlockId>> child_blocks;
  };
  std::vector<SliceResult> slices(targets.size());
  {
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::pair<std::size_t, std::uint32_t>> pend;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      std::uint32_t module = blocks_.at(targets[i].block).module;
      detail::FrameWriter fw{buffers[module]};
      fw.begin();
      BufWriter bw{buffers[module]};
      bw.u64(detail::kSliceBlock);
      bw.u64(targets[i].block);
      bw.u64(targets[i].abs_depth);
      bw.bits(targets[i].suffix);
      fw.end();
      pend.emplace_back(i, module);
    }
    auto results = detail::run_round(*sys_, "subtree.slice", std::move(buffers), instance_,
                                     hasher_, cfg_.w);
    std::vector<BufReader> readers;
    for (const auto& buf : results) readers.push_back(BufReader{buf});
    for (auto [i, module] : pend) {
      BufReader& r = readers[module];
      std::uint64_t frame = r.u64();
      std::size_t end = r.pos + frame;
      bool found = r.u64() != 0;
      slices[i].found = found;
      if (found) {
        slices[i].root_depth = r.u64();
        std::uint64_t nc = r.u64();
        for (std::uint64_t k = 0; k < nc; ++k) {
          std::uint64_t slot = r.u64();
          std::uint64_t cb = r.u64();
          slices[i].child_blocks.emplace_back(static_cast<NodeId>(slot), cb);
        }
        std::size_t used = 0;
        slices[i].trie = Patricia::deserialize(r.in.data() + r.pos, r.in.size() - r.pos, &used);
        r.pos += used;
      }
      r.pos = end;
    }
  }

  // Rounds 2..h: meta-block-tree descent collecting descendant blocks.
  // Seed: the direct child blocks of every slice; we must close over the
  // whole block subtree below them.
  std::vector<BlockId> frontier_blocks;
  for (const auto& s : slices)
    for (auto [node, cb] : s.child_blocks) frontier_blocks.push_back(cb);
  std::vector<BlockId> all_blocks = frontier_blocks;
  {
    struct Visit {
      PieceId piece;
      BlockId block;
    };
    std::vector<Visit> frontier;
    std::unordered_map<std::uint64_t, bool> seen_piece_block;
    for (BlockId b : frontier_blocks) frontier.push_back({blocks_.at(b).piece, b});
    int depth = 0;
    while (!frontier.empty() && depth < 64) {
      ++depth;
      std::vector<pim::Buffer> buffers(sys_->p());
      std::vector<std::pair<std::size_t, std::uint32_t>> pend;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        std::uint32_t module = pieces_.at(frontier[i].piece).module;
        detail::FrameWriter fw{buffers[module]};
        fw.begin();
        BufWriter bw{buffers[module]};
        bw.u64(detail::kCollectSubtree);
        bw.u64(frontier[i].piece);
        bw.u64(frontier[i].block);
        fw.end();
        pend.emplace_back(i, module);
      }
      std::string lbl = "subtree.collect" + std::to_string(depth);
      auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                       hasher_, cfg_.w);
      std::vector<BufReader> readers;
      for (const auto& buf : results) readers.push_back(BufReader{buf});
      std::vector<Visit> next;
      for (auto [i, module] : pend) {
        BufReader& r = readers[module];
        std::uint64_t frame = r.u64();
        std::size_t end = r.pos + frame;
        std::uint64_t ne = r.u64();
        for (std::uint64_t k = 0; k < ne; ++k) {
          MetaEntry e = MetaEntry::deserialize(r);
          all_blocks.push_back(e.block);
        }
        std::uint64_t nc = r.u64();
        for (std::uint64_t k = 0; k < nc; ++k) {
          ChildPieceRef c = ChildPieceRef::deserialize(r);
          // The child piece's root block is under the target; collect
          // everything below it inside the child piece next round.
          next.push_back({c.piece, c.root.block});
          all_blocks.push_back(c.root.block);
        }
        r.pos = end;
      }
      frontier = std::move(next);
    }
  }
  std::sort(all_blocks.begin(), all_blocks.end());
  all_blocks.erase(std::unique(all_blocks.begin(), all_blocks.end()), all_blocks.end());
  if (debug_on()) {
    std::size_t nslices = 0, nstubs = 0;
    for (const auto& s : slices) {
      nslices += s.found ? 1 : 0;
      nstubs += s.child_blocks.size();
    }
    obs::logf(kDebug, "subtree", "targets=%zu slices=%zu stubs=%zu all_blocks=%zu",
              targets.size(), nslices, nstubs, all_blocks.size());
  }

  // Final round: fetch all collected blocks.
  std::unordered_map<std::uint64_t, Block> fetched;
  if (!all_blocks.empty()) {
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::pair<BlockId, std::uint32_t>> pend;
    for (BlockId b : all_blocks) {
      std::uint32_t module = blocks_.at(b).module;
      detail::FrameWriter fw{buffers[module]};
      fw.begin();
      BufWriter bw{buffers[module]};
      bw.u64(detail::kFetchBlock);
      bw.u64(b);
      fw.end();
      pend.emplace_back(b, module);
    }
    auto results = detail::run_round(*sys_, "subtree.fetch", std::move(buffers), instance_,
                                     hasher_, cfg_.w);
    std::vector<BufReader> readers;
    for (const auto& buf : results) readers.push_back(BufReader{buf});
    // Frames arrive per module in send order; a cheap serial pass slices
    // the frame spans, then the heavy block deserialization runs in
    // parallel over independent spans.
    std::vector<std::pair<std::uint32_t, std::size_t>> span_at(pend.size());  // module, pos
    for (std::size_t i = 0; i < pend.size(); ++i) {
      BufReader& r = readers[pend[i].second];
      std::uint64_t frame = r.u64();
      span_at[i] = {pend[i].second, r.pos};
      r.pos += frame;
    }
    std::vector<Block> parsed(pend.size());
    core::parallel_for(
        0, pend.size(),
        [&](std::size_t i) {
          BufReader r{results[span_at[i].first], span_at[i].second};
          parsed[i] = Block::deserialize(r);
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < pend.size(); ++i)
      fetched.emplace(pend[i].first, std::move(parsed[i]));
  }

  // Assemble: DFS each slice, appending keys; recurse into fetched
  // blocks at mirror stubs.
  std::function<void(const Patricia&, NodeId, const BitString&,
                     const std::unordered_map<NodeId, BlockId>&,
                     std::vector<std::pair<BitString, trie::Value>>&)>
      emit = [&](const Patricia& t, NodeId root, const BitString& base,
                 const std::unordered_map<NodeId, BlockId>& stubs,
                 std::vector<std::pair<BitString, trie::Value>>& sink) {
        std::vector<std::pair<NodeId, BitString>> stack{{root, base}};
        while (!stack.empty()) {
          auto [id, s] = std::move(stack.back());
          stack.pop_back();
          auto stub = stubs.find(id);
          if (stub != stubs.end()) {
            auto fit = fetched.find(stub->second);
            if (fit != fetched.end()) {
              const Block& cb = fit->second;
              std::unordered_map<NodeId, BlockId> cstubs(cb.mirrors.begin(), cb.mirrors.end());
              emit(cb.trie, cb.trie.root(), s, cstubs, sink);
            }
            continue;
          }
          const auto& n = t.node(id);
          if (n.has_value) sink.emplace_back(s, n.value);
          for (int b = 1; b >= 0; --b) {
            NodeId c = n.child[b];
            if (c == kNil) continue;
            BitString cs = s;
            cs.append(t.node(c).edge);
            stack.emplace_back(c, std::move(cs));
          }
        }
      };

  // Each target assembles + sorts independently (emit only reads the
  // fetched block map), so the unpack fans out across targets.
  std::vector<std::vector<std::pair<BitString, trie::Value>>> per_target(targets.size());
  core::parallel_for(
      0, targets.size(),
      [&](std::size_t i) {
        if (!slices[i].found) return;
        std::unordered_map<NodeId, BlockId> stubs(slices[i].child_blocks.begin(),
                                                  slices[i].child_blocks.end());
        emit(slices[i].trie, slices[i].trie.root(), prefixes[targets[i].query], stubs,
             per_target[i]);
        std::sort(per_target[i].begin(), per_target[i].end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
      },
      /*grain=*/1);
  core::parallel_for(
      0, prefixes.size(),
      [&](std::size_t i) {
        std::size_t slot = qt.sorted_slot_of_input[i];
        auto it = target_of_slot.find(slot);
        if (it != target_of_slot.end()) out[i] = per_target[it->second];
      },
      /*grain=*/256);
  return out;
}

std::optional<trie::Value> PimTrie::find(const BitString& key) {
  return batch_get({key})[0];
}

}  // namespace ptrie::pimtrie
