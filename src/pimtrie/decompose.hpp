#pragma once
// Generic rooted-tree recursive cut-node decomposition (paper Section
// 4.4.1, Lemma 4.5): splits a tree into pieces of at most `bound` nodes;
// the resulting piece tree has height O(log n). Shared by bulk load,
// piece splitting and the scapegoat rebuild (pim_trie.cpp /
// pim_trie_update.cpp), and exercised directly by the Figure 4 golden
// tests.

#include <cstddef>
#include <vector>

namespace ptrie::pimtrie::internal {

// Nodes are indices into `children`; `piece_of[v]` receives the piece
// index; pieces list their nodes in (meta-tree) preorder with the piece
// root first.
struct TreePieces {
  struct P {
    int parent_piece = -1;
    int root = -1;
    std::vector<int> nodes;  // preorder within the piece
  };
  std::vector<P> pieces;
  std::vector<int> piece_of;
};

TreePieces decompose_tree(const std::vector<std::vector<int>>& children, int root,
                          std::size_t bound);

}  // namespace ptrie::pimtrie::internal
