#include "pimtrie/block.hpp"

#include <cassert>

namespace ptrie::pimtrie {

using core::BitString;
using trie::kNil;
using trie::NodeId;
using trie::Patricia;

void Block::serialize(pim::Buffer& out) const {
  BufWriter w{out};
  w.u64(id);
  w.u64(parent);
  w.u64(root_hash);
  w.u64(root_depth);
  // Mirror nodes are written as *preorder slots*: deserialization assigns
  // node ids in serialized (preorder) order, so slot == id on the far
  // side regardless of this side's id layout.
  std::vector<NodeId> order = trie.preorder_ids();
  std::vector<std::uint32_t> slot_of(trie.slot_count(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) slot_of[order[i]] = static_cast<std::uint32_t>(i);
  w.u64(mirrors.size());
  for (const auto& [node, child] : mirrors) {
    w.u64(slot_of[node]);
    w.u64(child);
  }
  trie.serialize(out);
}

Block Block::deserialize(BufReader& r) {
  Block b;
  b.id = r.u64();
  b.parent = r.u64();
  b.root_hash = r.u64();
  b.root_depth = r.u64();
  std::uint64_t nm = r.u64();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mirror_slots;
  for (std::uint64_t i = 0; i < nm; ++i) {
    std::uint64_t node = r.u64();
    std::uint64_t child = r.u64();
    mirror_slots.emplace_back(node, child);
  }
  std::size_t used = 0;
  b.trie = Patricia::deserialize(r.in.data() + r.pos, r.in.size() - r.pos, &used);
  r.pos += used;
  // Patricia::deserialize numbers nodes in serialized order: slot == id.
  for (auto [slot, child] : mirror_slots) b.mirrors.emplace(static_cast<NodeId>(slot), child);
  return b;
}

void QueryPiece::serialize(pim::Buffer& out) const {
  BufWriter w{out};
  w.u64(root_depth);
  w.u64(root_hash);
  w.u64(root_pivot_hash);
  w.bits(root_tail);
  trie.serialize(out);
}

QueryPiece QueryPiece::deserialize(BufReader& r) {
  QueryPiece q;
  q.root_depth = r.u64();
  q.root_hash = r.u64();
  q.root_pivot_hash = r.u64();
  q.root_tail = r.bits();
  std::size_t used = 0;
  q.trie = Patricia::deserialize(r.in.data() + r.pos, r.in.size() - r.pos, &used);
  r.pos += used;
  return q;
}

std::size_t QueryPiece::wire_words() const {
  pim::Buffer tmp;
  serialize(tmp);
  return tmp.size();
}

namespace {

// A position in the data block: `ab` bits above the bottom of node `dn`
// (ab == 0 means exactly at dn). This representation survives edge
// splits: a split inserts an ancestor, and renormalize() walks up when ab
// exceeds dn's (possibly shortened) edge.
struct DPos {
  NodeId dn;
  std::size_t ab;
};

struct Walker {
  const QueryPiece& q;
  const Block& d;
  std::uint64_t* work;

  void charge(std::uint64_t units) const {
    if (work) *work += units;
  }

  void renormalize(DPos& p) const {
    while (p.dn != d.trie.root() && p.ab > d.trie.node(p.dn).edge.size()) {
      p.ab -= d.trie.node(p.dn).edge.size();
      p.dn = d.trie.node(p.dn).parent;
    }
  }

  bool at_node(const DPos& p) const { return p.ab == 0; }

  // Walks query node qc's edge from position p (which must be
  // renormalized). Returns bits matched; p ends at the match end;
  // `boundary` reports stopping at a mirror stub with query bits left.
  std::size_t walk_edge(NodeId qc, DPos& p, bool& boundary) const {
    const BitString& e = q.trie.node(qc).edge;
    std::size_t i = 0;
    boundary = false;
    while (i < e.size()) {
      const auto& dn = d.trie.node(p.dn);
      if (p.ab == 0) {
        if (d.is_mirror(p.dn)) {
          boundary = true;
          return i;
        }
        int b = e.bit(i) ? 1 : 0;
        NodeId c = dn.child[b];
        charge(1);
        if (c == kNil) return i;
        p.dn = c;
        p.ab = d.trie.node(c).edge.size();
        continue;
      }
      const auto& cur = d.trie.node(p.dn);
      std::size_t used = cur.edge.size() - p.ab;
      std::size_t m = e.lcp_range(i, cur.edge, used);
      charge(m / 64 + 1);
      i += m;
      p.ab -= m;
      if (i < e.size() && p.ab > 0) return i;  // mid-edge mismatch
    }
    return i;
  }
};

}  // namespace

std::vector<MatchLen> match_block(const QueryPiece& q, const Block& d, std::uint64_t* work) {
  std::vector<MatchLen> out;
  Walker walker{q, d, work};
  struct Frame {
    NodeId qn;
    DPos pos;
  };
  std::vector<Frame> stack;
  stack.push_back({q.trie.root(), {d.trie.root(), 0}});
  {
    MatchLen root_ml;
    root_ml.origin = q.trie.node(q.trie.root()).origin;
    root_ml.match_len = q.root_depth;
    root_ml.full = true;
    root_ml.dnode = d.trie.root();
    root_ml.dabove = 0;
    out.push_back(root_ml);
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const auto& qn = q.trie.node(f.qn);
    for (int b = 0; b < 2; ++b) {
      NodeId qc = qn.child[b];
      if (qc == kNil) continue;
      DPos p = f.pos;
      bool boundary = false;
      std::size_t matched = walker.walk_edge(qc, p, boundary);
      const auto& qcn = q.trie.node(qc);
      MatchLen ml;
      ml.origin = qcn.origin;
      ml.match_len = q.root_depth + qn.depth + matched;
      ml.full = matched == qcn.edge.size();
      ml.boundary = boundary;
      ml.dnode = p.dn;
      ml.dabove = p.ab;
      out.push_back(ml);
      if (ml.full) stack.push_back({qc, p});
    }
  }
  return out;
}

namespace {

// Copies the query subtree below `qsrc` into `d` under `dparent`, with
// the first edge starting at `edge_from` bits into qsrc's edge. Piece
// nodes with has_value become stored keys.
std::size_t graft_subtree(const QueryPiece& q, Block& d, NodeId qsrc, std::size_t edge_from,
                          NodeId dparent, std::uint64_t* work) {
  std::size_t added = 0;
  Patricia& dt = d.trie;
  const auto& src = q.trie.node(qsrc);
  NodeId top = dt.new_node();
  dt.set_edge(top, src.edge.substr(edge_from, src.edge.size() - edge_from));
  dt.mutable_node(top).depth = dt.node(dparent).depth + dt.node(top).edge.size();
  if (work) *work += dt.node(top).edge.size() / 64 + 2;
  dt.attach(dparent, top);
  if (q.trie.node(qsrc).has_value) {
    dt.set_value(top, q.trie.node(qsrc).value);
    ++added;
  }
  std::vector<std::pair<NodeId, NodeId>> stack{{qsrc, top}};
  while (!stack.empty()) {
    auto [qs, ds] = stack.back();
    stack.pop_back();
    for (int b = 0; b < 2; ++b) {
      NodeId qc = q.trie.node(qs).child[b];
      if (qc == kNil) continue;
      NodeId dc = dt.new_node();
      dt.set_edge(dc, q.trie.node(qc).edge);
      dt.mutable_node(dc).depth = dt.node(ds).depth + dt.node(dc).edge.size();
      dt.attach(ds, dc);
      if (q.trie.node(qc).has_value) {
        dt.set_value(dc, q.trie.node(qc).value);
        ++added;
      }
      if (work) *work += q.trie.node(qc).edge.size() / 64 + 2;
      stack.push_back({qc, dc});
    }
  }
  return added;
}

}  // namespace

InsertStats insert_into_block(const QueryPiece& q, Block& d, std::uint64_t* work) {
  InsertStats stats;
  Walker walker{q, d, work};
  struct Frame {
    NodeId qn;
    DPos pos;
  };
  std::vector<Frame> stack;
  stack.push_back({q.trie.root(), {d.trie.root(), 0}});
  if (q.trie.node(q.trie.root()).has_value) {
    bool fresh = !d.trie.node(d.trie.root()).has_value;
    d.trie.set_value(d.trie.root(), q.trie.node(q.trie.root()).value);
    (fresh ? stats.new_keys : stats.updated_keys) += 1;
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    walker.renormalize(f.pos);
    const auto& qn = q.trie.node(f.qn);
    for (int b = 0; b < 2; ++b) {
      NodeId qc = qn.child[b];
      if (qc == kNil) continue;
      DPos p = f.pos;
      walker.renormalize(p);
      bool boundary = false;
      std::size_t matched = walker.walk_edge(qc, p, boundary);
      bool full = matched == q.trie.node(qc).edge.size();
      if (full) {
        if (q.trie.node(qc).has_value) {
          NodeId target;
          if (p.ab == 0) {
            target = p.dn;
          } else {
            target = d.trie.split_edge(p.dn, p.ab);
            p = {target, 0};
          }
          bool fresh = !d.trie.node(target).has_value;
          d.trie.set_value(target, q.trie.node(qc).value);
          (fresh ? stats.new_keys : stats.updated_keys) += 1;
        }
        stack.push_back({qc, p});
        continue;
      }
      if (boundary) continue;  // continuation lives in a child block's span
      NodeId attach_parent;
      if (p.ab == 0) {
        attach_parent = p.dn;
      } else {
        attach_parent = d.trie.split_edge(p.dn, p.ab);
      }
      stats.new_keys += graft_subtree(q, d, qc, matched, attach_parent, work);
    }
  }
  return stats;
}

std::size_t erase_from_block(const QueryPiece& q, Block& d, std::uint64_t* work) {
  std::size_t removed = 0;
  Walker walker{q, d, work};
  struct Frame {
    NodeId qn;
    DPos pos;
  };
  std::vector<Frame> stack;
  std::vector<NodeId> cleanup;
  stack.push_back({q.trie.root(), {d.trie.root(), 0}});
  if (q.trie.node(q.trie.root()).has_value && d.trie.node(d.trie.root()).has_value) {
    d.trie.clear_value(d.trie.root());
    ++removed;
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const auto& qn = q.trie.node(f.qn);
    for (int b = 0; b < 2; ++b) {
      NodeId qc = qn.child[b];
      if (qc == kNil) continue;
      DPos p = f.pos;
      bool boundary = false;
      std::size_t matched = walker.walk_edge(qc, p, boundary);
      bool full = matched == q.trie.node(qc).edge.size();
      if (!full) continue;
      if (q.trie.node(qc).has_value && p.ab == 0 && d.trie.node(p.dn).has_value &&
          !d.is_mirror(p.dn)) {
        d.trie.clear_value(p.dn);
        ++removed;
        cleanup.push_back(p.dn);
      }
      stack.push_back({qc, p});
    }
  }
  for (NodeId id : cleanup) {
    NodeId cur = id;
    while (cur != kNil && cur != d.trie.root() && d.trie.alive(cur)) {
      const auto& n = d.trie.node(cur);
      if (n.has_value || d.is_mirror(cur)) break;
      int nchildren = (n.child[0] != kNil) + (n.child[1] != kNil);
      if (nchildren == 0) {
        // Mirrors are always leaves, so a parent is never a mirror and
        // remove_leaf's parent-splice can only grow a mirror's edge,
        // which is safe.
        cur = d.trie.remove_leaf(cur);
        continue;
      }
      if (nchildren == 1) {
        NodeId parent = n.parent;
        d.trie.try_splice(cur);
        cur = parent;
        continue;
      }
      break;
    }
  }
  return removed;
}

std::vector<std::pair<NodeId, trie::Value>> get_from_block(const QueryPiece& q,
                                                           const Block& d,
                                                           std::uint64_t* work) {
  std::vector<std::pair<NodeId, trie::Value>> out;
  Walker walker{q, d, work};
  struct Frame {
    NodeId qn;
    DPos pos;
  };
  std::vector<Frame> stack;
  stack.push_back({q.trie.root(), {d.trie.root(), 0}});
  if (q.trie.node(q.trie.root()).has_value && d.trie.node(d.trie.root()).has_value &&
      !d.is_mirror(d.trie.root()))
    out.emplace_back(q.trie.node(q.trie.root()).origin, d.trie.node(d.trie.root()).value);
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const auto& qn = q.trie.node(f.qn);
    for (int b = 0; b < 2; ++b) {
      NodeId qc = qn.child[b];
      if (qc == kNil) continue;
      DPos p = f.pos;
      bool boundary = false;
      std::size_t matched = walker.walk_edge(qc, p, boundary);
      if (matched != q.trie.node(qc).edge.size()) continue;
      if (q.trie.node(qc).has_value && p.ab == 0 && d.trie.node(p.dn).has_value &&
          !d.is_mirror(p.dn))
        out.emplace_back(q.trie.node(qc).origin, d.trie.node(p.dn).value);
      stack.push_back({qc, p});
    }
  }
  return out;
}

SubtreeSlice slice_block(const Block& d, trie::Position pos, std::uint64_t abs_pos_depth,
                         std::uint64_t* work) {
  SubtreeSlice out;
  out.root_depth = abs_pos_depth;
  Patricia& t = out.trie;
  const Patricia& dt = d.trie;

  std::vector<std::pair<NodeId, NodeId>> stack;
  if (pos.above == 0) {
    t.mutable_node(t.root()).origin = pos.node;
    if (d.is_mirror(pos.node)) {
      out.child_blocks.emplace_back(t.root(), d.mirrors.at(pos.node));
      return out;
    }
    if (dt.node(pos.node).has_value) t.set_value(t.root(), dt.node(pos.node).value);
    stack.emplace_back(pos.node, t.root());
  } else {
    NodeId c = t.new_node();
    const auto& dn = dt.node(pos.node);
    t.set_edge(c, dn.edge.suffix(dn.edge.size() - pos.above));
    t.mutable_node(c).depth = t.node(c).edge.size();
    t.mutable_node(c).origin = pos.node;
    t.attach(t.root(), c);
    if (work) *work += t.node(c).edge.size() / 64 + 1;
    if (d.is_mirror(pos.node)) {
      out.child_blocks.emplace_back(c, d.mirrors.at(pos.node));
    } else {
      if (dn.has_value) t.set_value(c, dn.value);
      stack.emplace_back(pos.node, c);
    }
  }

  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (int b = 0; b < 2; ++b) {
      NodeId sc = dt.node(src).child[b];
      if (sc == kNil) continue;
      NodeId nc = t.new_node();
      t.set_edge(nc, dt.node(sc).edge);
      t.mutable_node(nc).depth = t.node(dst).depth + t.node(nc).edge.size();
      t.mutable_node(nc).origin = sc;
      t.attach(dst, nc);
      if (work) *work += t.node(nc).edge.size() / 64 + 2;
      if (d.is_mirror(sc)) {
        out.child_blocks.emplace_back(nc, d.mirrors.at(sc));
        continue;
      }
      if (dt.node(sc).has_value) t.set_value(nc, dt.node(sc).value);
      stack.emplace_back(sc, nc);
    }
  }
  return out;
}

}  // namespace ptrie::pimtrie
