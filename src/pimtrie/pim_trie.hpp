#pragma once
// PIM-trie (paper Sections 4-5): the batch-parallel, skew-resistant
// radix-based index for the PIM Model. Data lives on the modules as
// randomly-placed blocks; block metadata lives in meta-block pieces
// organized into bounded-height meta-block trees, with the roots
// replicated on every module (master index). Batch operations run as BSP
// rounds over pim::System:
//
//   Phase A (Algorithm 4)  query trie cut into O(P log P) master pieces,
//                          pushed to random modules, HashMatched against
//                          the master replica;
//   Phase B (Algorithm 5)  per matched meta-block: push small query
//                          pieces / pull child root hashes (recursive
//                          meta-block descent) / pull whole leaf pieces,
//                          yielding the critical block roots;
//   Phase C (Algorithm 2)  spanned query blocks matched against data
//                          blocks under Push-Pull, with verification and
//                          redo on detected hash collisions;
//   plus op-specific maintenance (Section 5.2): block re-partitioning,
//   meta-entry insertion/removal, piece splits, bounded-height rebuilds.
//
// Host-side directories (block/piece locations and block-tree adjacency)
// are kept as a simulation convenience; all *data* movement happens
// through metered rounds, so IO rounds / IO time / PIM time match the
// algorithm the paper analyzes.

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bitstring.hpp"
#include "hash/poly_hash.hpp"
#include "pim/system.hpp"
#include "pimtrie/block.hpp"
#include "pimtrie/config.hpp"
#include "pimtrie/meta_index.hpp"
#include "trie/query_trie.hpp"

namespace ptrie::pimtrie {

class PimTrie {
 public:
  PimTrie(pim::System& sys, Config cfg);

  // Bulk load; replaces current contents. Rounds are labeled "build.*".
  void build(const std::vector<core::BitString>& keys,
             const std::vector<trie::Value>& values);

  // Batch LongestCommonPrefix (Section 5.1): out[i] = LCP length in bits
  // of keys[i] against the stored set.
  std::vector<std::size_t> batch_lcp(const std::vector<core::BitString>& keys);

  // Batch Insert / Delete (Section 5.2).
  void batch_insert(const std::vector<core::BitString>& keys,
                    const std::vector<trie::Value>& values);
  void batch_erase(const std::vector<core::BitString>& keys);

  // Batch SubtreeQuery (Section 5.3): all stored (key, value) pairs with
  // prefixes[i] as a prefix, absolute keys, lexicographic order.
  std::vector<std::vector<std::pair<core::BitString, trie::Value>>> batch_subtree(
      const std::vector<core::BitString>& prefixes);

  // Batch point reads: out[i] = value stored at keys[i], if present.
  std::vector<std::optional<trie::Value>> batch_get(const std::vector<core::BitString>& keys);

  // ---- ordered operations (strict bitstring order) ----
  // out[i] = greatest stored pair < keys[i] / least stored pair >
  // keys[i], if any. Decomposed into O(|key|) disjoint cover candidates
  // (trie/ordered_cover.hpp); candidate viability is resolved by one
  // matching pass, then the winning subtree candidate's extremum is
  // found by per-block kSeekBlock descent rounds ("ordered.seek*").
  std::vector<std::optional<std::pair<core::BitString, trie::Value>>> batch_pred(
      const std::vector<core::BitString>& keys);
  std::vector<std::optional<std::pair<core::BitString, trie::Value>>> batch_succ(
      const std::vector<core::BitString>& keys);
  // out[i] = stored pairs in [los[i], his[i]] inclusive, ascending,
  // truncated to limits[i] (lo > hi or limit 0 = empty).
  std::vector<std::vector<std::pair<core::BitString, trie::Value>>> batch_range(
      const std::vector<core::BitString>& los, const std::vector<core::BitString>& his,
      const std::vector<std::size_t>& limits);
  // out[i] = first ks[i] stored pairs under prefixes[i], ascending.
  std::vector<std::vector<std::pair<core::BitString, trie::Value>>> batch_topk(
      const std::vector<core::BitString>& prefixes, const std::vector<std::size_t>& ks);

  // ---- prepared batches (serving pipeline) ----
  // Host-only preparation of a batch (Algorithm 1): sort + dedup +
  // hashed query-trie build. Depends only on the batch keys and this
  // instance's hash family — never on stored contents — so it is safe to
  // run concurrently with another batch's execution; the serving
  // front-end (src/serve) overlaps prepare(batch k+1) with the PIM
  // rounds of batch k. Issues no rounds and touches no metrics.
  trie::QueryTrie prepare_batch(const std::vector<core::BitString>& keys) const;

  // Execute a batch from its prepared query trie. Each call is
  // byte-identical — results, rounds, and metrics — to the plain batch_*
  // call above when `qt` came from prepare_batch on the same keys.
  std::vector<std::size_t> batch_lcp_prepared(const std::vector<core::BitString>& keys,
                                              trie::QueryTrie qt);
  void batch_insert_prepared(const std::vector<core::BitString>& keys,
                             const std::vector<trie::Value>& values, trie::QueryTrie qt);
  void batch_erase_prepared(const std::vector<core::BitString>& keys, trie::QueryTrie qt);
  std::vector<std::vector<std::pair<core::BitString, trie::Value>>> batch_subtree_prepared(
      const std::vector<core::BitString>& prefixes, trie::QueryTrie qt);
  std::vector<std::optional<trie::Value>> batch_get_prepared(
      const std::vector<core::BitString>& keys, trie::QueryTrie qt);

  // Single point read (sugar over batch_get).
  std::optional<trie::Value> find(const core::BitString& key);

  const Config& config() const { return cfg_; }
  // The machine this trie issues rounds on (metrics inspection; the
  // serving telemetry reads per-module word deltas at batch boundaries).
  pim::System& system() { return *sys_; }
  const pim::System& system() const { return *sys_; }
  std::size_t key_count() const { return n_keys_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t piece_count() const { return pieces_.size(); }

  // Space on the PIM side in words (Lemma 4.2 / 4.7 accounting), summed
  // over modules by inspection (not a metered operation).
  std::size_t space_words() const;
  // max/mean per-module resident words — the static balance check.
  double space_imbalance() const;

  struct VerifyStats {
    std::uint64_t rejected_collisions = 0;
    std::uint64_t redo_rounds = 0;
  };
  const VerifyStats& verify_stats() const { return verify_; }

  // Inspection-only (no rounds, not metered): reconstructs every stored
  // (key, value) pair by stitching blocks across modules, and checks
  // structural invariants (mirror links, directory consistency, meta
  // entries present and correctly keyed). Used by tests.
  std::vector<std::pair<core::BitString, trie::Value>> debug_collect() const;
  // Returns a human-readable violation description, or "" if healthy.
  std::string debug_check() const;
  // Occupancy and accounting invariants that only hold when maintenance
  // is enabled (no PTRIE_NO_MAINT / PTRIE_NO_PSPLIT kill switches): piece
  // entry counts within piece_bound, meta-block-tree heights within the
  // scapegoat envelope, and exact host-directory space/key accounting
  // against the resident blocks. "" if healthy.
  std::string debug_check_deep() const;
  // Test-only fault injection for the fuzz harness's mutation tests
  // (src/check): kind 0 flips the host key count, kind 1 flips one bit
  // of a block's recorded root hash. Either must trip debug_check().
  void debug_corrupt(int kind);

 private:
  // ---- host directories ----
  struct HostBlockInfo {
    std::uint32_t module = 0;
    BlockId parent = kNone;
    std::vector<BlockId> children;
    std::uint64_t root_depth = 0;
    hash::HashVal root_hash = 0;
    core::BitString root_tail;  // last min(w, depth) bits of root string
    PieceId piece = kNone;      // piece holding this block's meta entry
    std::size_t space = 0;
    std::size_t keys = 0;
  };
  struct HostPieceInfo {
    std::uint32_t module = 0;
    PieceId parent = kNone;
    std::vector<PieceId> children;
    BlockId root_block = kNone;
    std::size_t entries = 0;
    std::uint32_t depth = 0;  // depth within its meta-block tree
  };
  struct MasterRoot {
    MetaEntry root;
    PieceId piece = kNone;
    std::uint32_t module = 0;
  };

  // ---- matching pipeline ----
  struct CriticalRoot {
    trie::NodeId qnode = trie::kNil;  // materialized query-trie node
    BlockId block = kNone;
  };
  struct MatchOutcome {
    // Per query-trie slot: deepest matched absolute length (and whether
    // the node's full string matched), after merging all block reports.
    std::vector<std::uint64_t> match_len;
    std::vector<bool> reported;
    std::vector<CriticalRoot> spans;  // phase-C span roots (post-redo)
    // Get-operation hits: (query node, stored value).
    std::vector<std::pair<trie::NodeId, trie::Value>> get_hits;
    // span block of each query node (nearest span root at/above it).
    std::vector<std::size_t> span_of;  // index into spans, or npos
  };

  QueryPiece make_piece(const trie::QueryTrie& qt, trie::NodeId root,
                        const std::vector<trie::NodeId>& cuts) const;
  // Ensures a query-trie node exists exactly at abs_depth on the edge
  // into `below`; returns it (splitting the edge if needed).
  trie::NodeId materialize(trie::QueryTrie& qt, trie::NodeId below,
                           std::uint64_t abs_depth) const;

  std::vector<CriticalRoot> match_critical_roots(trie::QueryTrie& qt, const char* label);
  MatchOutcome run_matching(trie::QueryTrie& qt, const char* label, int op_kind);
  // Shared pred/succ engine: dir 0 seeks the first viable candidate's
  // minimum (successor), dir 1 the maximum (predecessor).
  std::vector<std::optional<std::pair<core::BitString, trie::Value>>> batch_seek_extremum(
      const std::vector<core::BitString>& keys, int dir);

  // ---- maintenance ----
  void repartition_oversized_blocks(const std::vector<BlockId>& oversized, const char* label);
  void add_meta_entries(std::vector<MetaEntry> entries, const char* label);
  void split_oversized_pieces(const char* label);
  void rebuild_unbalanced_trees(const char* label);
  void remove_blocks(const std::vector<BlockId>& blocks, const char* label);

  // ---- small helpers ----
  std::uint64_t fresh_block_id() { return next_block_id_++; }
  std::uint64_t fresh_piece_id() { return next_piece_id_++; }
  MetaEntry make_entry(BlockId b) const;  // from host directory info
  void push_master(const char* label);    // broadcast master replica

  pim::System* sys_;
  Config cfg_;
  hash::PolyHasher hasher_;
  std::uint64_t instance_;  // module state slot

  std::unordered_map<BlockId, HostBlockInfo> blocks_;
  std::unordered_map<BlockId, hash::HashVal> spre_of_;  // hash(S_pre) per block
  std::unordered_map<PieceId, HostPieceInfo> pieces_;
  std::vector<MasterRoot> master_roots_;
  BlockId root_block_ = kNone;
  std::size_t n_keys_ = 0;
  std::uint64_t next_block_id_ = 1;
  std::uint64_t next_piece_id_ = 1;
  VerifyStats verify_;
};

}  // namespace ptrie::pimtrie
