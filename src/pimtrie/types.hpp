#pragma once
// Shared identifiers and wire helpers for the PIM-trie. Everything that
// crosses the host<->module boundary is packed into pim::Buffer words via
// BufWriter/BufReader so communication is counted exactly.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/bitstring.hpp"
#include "pim/system.hpp"

namespace ptrie::pimtrie {

using BlockId = std::uint64_t;
using PieceId = std::uint64_t;
inline constexpr std::uint64_t kNone = ~std::uint64_t{0};

// Where a block / meta-block piece lives.
struct BlockRef {
  BlockId id = kNone;
  std::uint32_t module = 0;
  bool valid() const { return id != kNone; }
};

struct BufWriter {
  pim::Buffer& out;
  void u64(std::uint64_t v) { out.push_back(v); }
  void bits(const core::BitString& s) {
    out.push_back(s.size());
    for (std::size_t w = 0; w < s.word_count(); ++w) out.push_back(s.word(w));
  }
};

struct BufReader {
  const pim::Buffer& in;
  std::size_t pos = 0;
  bool done() const { return pos >= in.size(); }
  std::uint64_t u64() {
    if (pos >= in.size()) throw std::runtime_error("BufReader: underrun");
    return in[pos++];
  }
  core::BitString bits() {
    std::uint64_t nbits = u64();
    core::BitString s;
    std::size_t nw = (nbits + 63) / 64;
    for (std::size_t w = 0; w < nw; ++w) {
      std::uint64_t word = u64();
      std::size_t take = std::min<std::size_t>(64, nbits - w * 64);
      s.append_slice(core::BitString::from_uint(word >> (64 - take), take), 0, take);
    }
    return s;
  }
  const std::uint64_t* raw(std::size_t n) {
    if (pos + n > in.size()) throw std::runtime_error("BufReader: underrun");
    const std::uint64_t* p = in.data() + pos;
    pos += n;
    return p;
  }
};

}  // namespace ptrie::pimtrie
