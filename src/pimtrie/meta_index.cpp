#include "pimtrie/meta_index.hpp"

#include <cassert>

#include "obs/counters.hpp"

namespace {
bool mdebug() {
  static const bool on = ptrie::obs::log_enabled(ptrie::obs::LogLevel::kDebug);
  return on;
}
constexpr auto kDebug = ptrie::obs::LogLevel::kDebug;
}  // namespace

namespace ptrie::pimtrie {

using core::BitString;
using trie::kNil;
using trie::NodeId;

void MetaEntry::serialize(pim::Buffer& out) const {
  BufWriter w{out};
  w.u64(block);
  w.u64(module);
  w.u64(root_hash);
  w.u64(root_depth);
  w.u64(parent_block);
  w.u64(spre_hash);
  w.bits(srem);
  w.bits(slast);
}

MetaEntry MetaEntry::deserialize(BufReader& r) {
  MetaEntry e;
  e.block = r.u64();
  e.module = static_cast<std::uint32_t>(r.u64());
  e.root_hash = r.u64();
  e.root_depth = r.u64();
  e.parent_block = r.u64();
  e.spre_hash = r.u64();
  e.srem = r.bits();
  e.slast = r.bits();
  return e;
}

void ChildPieceRef::serialize(pim::Buffer& out) const {
  BufWriter w{out};
  w.u64(piece);
  w.u64(module);
  root.serialize(out);
}

ChildPieceRef ChildPieceRef::deserialize(BufReader& r) {
  ChildPieceRef c;
  c.piece = r.u64();
  c.module = static_cast<std::uint32_t>(r.u64());
  c.root = MetaEntry::deserialize(r);
  return c;
}

void TwoLayerIndex::insert(const hash::PolyHasher& hasher, const MetaEntry& root,
                           IndexPayload payload) {
  std::uint64_t fp = hasher.fingerprint(root.spre_hash);
  auto [it, fresh] = first_.try_emplace(fp, fasttrie::SecondLayerIndex(w_));
  it->second.insert(root.srem, payload.encode());
}

void TwoLayerIndex::erase(const hash::PolyHasher& hasher, const MetaEntry& root) {
  std::uint64_t fp = hasher.fingerprint(root.spre_hash);
  auto it = first_.find(fp);
  if (it == first_.end()) return;
  it->second.erase(root.srem);
  if (it->second.size() == 0) first_.erase(it);
}

std::size_t TwoLayerIndex::size() const {
  std::size_t n = 0;
  for (const auto& [fp, sl] : first_) n += sl.size();
  return n;
}

std::optional<std::pair<BitString, std::uint64_t>> TwoLayerIndex::locate(
    std::uint64_t spre_fp, const BitString& window) const {
  auto it = first_.find(spre_fp);
  if (it == first_.end()) return std::nullopt;
  auto res = it->second.query(window);
  if (!res) return std::nullopt;
  return std::make_pair(res->str, res->payload);
}

std::size_t TwoLayerIndex::space_words() const {
  std::size_t words = 0;
  for (const auto& [fp, sl] : first_) words += 1 + sl.space_words();
  return words;
}

std::string TwoLayerIndex::debug_check() const {
  std::string problems;
  for (const auto& [fp, sl] : first_) {
    if (sl.size() == 0) problems += "empty second-layer index retained\n";
    std::string p = sl.debug_check();
    if (!p.empty()) problems += p;
    if (problems.size() > 2000) break;
  }
  return problems;
}

void Piece::serialize(pim::Buffer& out) const {
  BufWriter w{out};
  w.u64(id);
  w.u64(parent_piece);
  w.u64(root_block);
  w.u64(entries.size());
  for (const auto& e : entries) e.serialize(out);
  w.u64(children.size());
  for (const auto& c : children) c.serialize(out);
}

Piece Piece::deserialize(BufReader& r) {
  Piece p;
  p.id = r.u64();
  p.parent_piece = r.u64();
  p.root_block = r.u64();
  std::uint64_t ne = r.u64();
  p.entries.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) p.entries.push_back(MetaEntry::deserialize(r));
  std::uint64_t nc = r.u64();
  p.children.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) p.children.push_back(ChildPieceRef::deserialize(r));
  return p;
}

std::size_t Piece::wire_words() const {
  pim::Buffer tmp;
  serialize(tmp);
  return tmp.size();
}

void Piece::build_index(const hash::PolyHasher& hasher, unsigned w) {
  index_ = TwoLayerIndex(w);
  by_block_.clear();
  for (std::uint32_t i = 0; i < entries.size(); ++i) {
    index_.insert(hasher, entries[i], {IndexPayload::kEntry, i});
    by_block_.emplace(entries[i].block, i);
  }
  for (std::uint32_t i = 0; i < children.size(); ++i) {
    index_.insert(hasher, children[i].root, {IndexPayload::kChild, i});
  }
}

const MetaEntry* Piece::entry_of(BlockId b) const {
  auto it = by_block_.find(b);
  return it == by_block_.end() ? nullptr : &entries[it->second];
}

MetaEntry* Piece::entry_of(BlockId b) {
  auto it = by_block_.find(b);
  return it == by_block_.end() ? nullptr : &entries[it->second];
}

namespace {

// Checks a candidate root against the path window: the candidate's depth
// must land on (pivot, edge_hi]; its srem must lie along the path; its
// slast must equal the path's trailing bits (Section 4.4.3 verification).
bool verify_candidate(const MetaEntry& e, std::uint64_t pivot, std::uint64_t edge_lo,
                      std::uint64_t edge_hi, const BitString& path, std::uint64_t path_base,
                      unsigned w, HashMatchStats* stats, std::uint64_t* work) {
  if (stats) ++stats->verifications;
  if (work) *work += 2 + e.slast.size() / 64;
  std::uint64_t piv_of_e = (e.root_depth / w) * w;
  if (mdebug())
    obs::logf(kDebug, "verify",
              "e.depth=%llu pivot=%llu piv_of_e=%llu edge=(%llu,%llu] "
              "path_base=%llu |srem|=%zu |slast|=%zu",
              (unsigned long long)e.root_depth, (unsigned long long)pivot,
              (unsigned long long)piv_of_e, (unsigned long long)edge_lo,
              (unsigned long long)edge_hi, (unsigned long long)path_base, e.srem.size(),
              e.slast.size());
  if (piv_of_e != pivot) return false;
  if (e.root_depth <= edge_lo || e.root_depth > edge_hi) return false;
  // srem on path: path bits [pivot, e.root_depth) == e.srem.
  if (pivot < path_base) return false;
  std::size_t off = static_cast<std::size_t>(pivot - path_base);
  if (off + e.srem.size() > path.size()) return false;
  if (path.lcp_range(off, e.srem, 0) != e.srem.size()) {
    if (mdebug()) obs::logf(kDebug, "verify", "srem mismatch");
    return false;
  }
  // slast: path bits [e.root_depth - |slast|, e.root_depth).
  std::uint64_t sl_begin = e.root_depth - e.slast.size();
  if (sl_begin < path_base) {
    // Not enough path context retained; verify only the visible suffix.
    std::size_t visible = static_cast<std::size_t>(e.slast.size() - (path_base - sl_begin));
    std::size_t sl_off = e.slast.size() - visible;
    return path.lcp_range(0 + (0), e.slast, sl_off) >= visible;
  }
  std::size_t sl_path_off = static_cast<std::size_t>(sl_begin - path_base);
  return path.lcp_range(sl_path_off, e.slast, 0) == e.slast.size();
}

}  // namespace

std::vector<ResolvedMatch> hash_match(
    const QueryPiece& q, const TwoLayerIndex& idx, const hash::PolyHasher& hasher,
    unsigned w, const std::function<const MetaEntry*(IndexPayload)>& resolve,
    const std::function<const MetaEntry*(BlockId)>& resolve_block, HashMatchStats* stats,
    std::uint64_t* work) {
  std::vector<ResolvedMatch> out;
  const trie::Patricia& t = q.trie;

  const std::uint64_t path_base = q.root_depth - q.root_tail.size();

  struct Frame {
    NodeId node;
    std::uint64_t abs_depth;          // of node
    hash::HashVal h;                  // hash of node's full string
    std::uint64_t last_pivot;         // deepest pivot <= abs_depth
    hash::HashVal h_last_pivot;       // its hash
    int next_child;
    std::size_t parent_path_len;      // |path| before this node's edge was appended
  };

  BitString path = q.root_tail;

  std::vector<Frame> stack;
  stack.push_back({t.root(), q.root_depth, q.root_hash, (q.root_depth / w) * w,
                   q.root_pivot_hash, 0, path.size()});

  while (!stack.empty()) {
    Frame& f = stack.back();
    int b = f.next_child++;
    if (b >= 2) {
      path.truncate(f.parent_path_len);
      stack.pop_back();
      continue;
    }
    NodeId child = t.node(f.node).child[b];
    if (child == kNil) continue;
    const auto& cn = t.node(child);
    const BitString& edge = cn.edge;
    std::uint64_t du = f.abs_depth, dv = du + edge.size();

    std::size_t parent_len = path.size();
    path.append(edge);
    if (work) *work += edge.size() / 64 + 2;

    // Pivot hashes along this edge. Candidate pivots for roots on this
    // edge are the multiples of w in (du - w, dv]: the frame's last pivot
    // plus every pivot crossed by the edge.
    struct Piv {
      std::uint64_t depth;
      hash::HashVal h;
    };
    std::vector<Piv> pivots;
    pivots.push_back({f.last_pivot, f.h_last_pivot});
    hash::HashVal hcur = f.h;
    std::uint64_t dcur = du;
    for (std::uint64_t pi = (du / w + 1) * w; pi <= dv; pi += w) {
      hcur = hasher.extend(hcur, edge, dcur - du, pi - dcur);
      if (work) *work += (pi - dcur) / 64 + 1;
      dcur = pi;
      pivots.push_back({pi, hcur});
    }
    hash::HashVal h_child = hasher.extend(hcur, edge, dcur - du, dv - dcur);
    if (work) *work += (dv - dcur) / 64 + 1;

    // Scan pivots bottom-up; the first verified match is the deepest.
    bool found = false;
    for (auto it = pivots.rbegin(); it != pivots.rend() && !found; ++it) {
      std::uint64_t fp = hasher.fingerprint(it->h);
      if (stats) ++stats->pivot_lookups;
      if (work) *work += 1;
      if (!idx.has_pivot(fp)) continue;
      // Window: path bits (pivot, min(pivot + w, dv)].
      if (it->depth < path_base) continue;
      std::size_t off = static_cast<std::size_t>(it->depth - path_base);
      std::size_t wlen = static_cast<std::size_t>(std::min<std::uint64_t>(it->depth + w, dv) -
                                                  it->depth);
      BitString window = path.substr(off, std::min(wlen, path.size() - off));
      if (stats) ++stats->second_layer_queries;
      if (work) *work += 4;  // O(log w) whp lookup stand-in
      auto res = idx.locate(fp, window);
      if (!res) continue;
      IndexPayload payload = IndexPayload::decode(res->second);
      const MetaEntry* cand = resolve(payload);
      // Try the returned candidate, then its meta-tree parent (the
      // Section 4.4.2 "root or one of its direct children" case).
      for (int attempt = 0; attempt < 2 && cand != nullptr; ++attempt) {
        if (verify_candidate(*cand, it->depth, du, dv, path, path_base, w, stats, work)) {
          ResolvedMatch rm;
          rm.point.qnode = child;
          rm.point.origin = cn.origin;
          rm.point.abs_depth = cand->root_depth;
          rm.point.at_node_end = cand->root_depth == dv;
          rm.point.payload = payload;
          rm.entry = cand;
          out.push_back(rm);
          found = true;
          break;
        }
        if (stats) ++stats->rejected_collisions;
        cand = attempt == 0 && cand->parent_block != kNone && resolve_block
                   ? resolve_block(cand->parent_block)
                   : nullptr;
      }
    }

    stack.push_back({child, dv, h_child, pivots.back().depth, pivots.back().h, 0, parent_len});
  }
  return out;
}

}  // namespace ptrie::pimtrie
