// PimTrie updates (paper Section 5.2): batch Insert/Delete reuse the
// matching pipeline with in-block grafting/removal, then run the
// structural maintenance: oversized blocks are re-partitioned and
// redistributed, new meta entries flow into the pieces holding their
// parents, oversized pieces split by cut nodes, and meta-block trees
// whose height drifts past the Lemma 4.6 bound are rebuilt (the
// scapegoat-style protocol).

#include <algorithm>
#include <cassert>
#include <functional>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/phase.hpp"
#include "pimtrie/decompose.hpp"
#include "pimtrie/detail.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/euler_partition.hpp"

namespace ptrie::pimtrie {

using core::BitString;
using trie::kNil;
using trie::NodeId;
using trie::Patricia;

namespace {
// Maintenance kill switches (used by tests to isolate the matching
// pipeline from structural maintenance). Parsed once via the obs::env
// registry so they show up in obs::env::dump().
bool no_maint() {
  static const bool v = obs::env::flag("PTRIE_NO_MAINT", "disable post-update structural maintenance");
  return v;
}
bool no_psplit() {
  static const bool v =
      obs::env::flag("PTRIE_NO_PSPLIT", "disable piece splitting / meta-tree rebuild maintenance");
  return v;
}
}  // namespace

void PimTrie::batch_insert(const std::vector<BitString>& keys,
                           const std::vector<trie::Value>& values) {
  assert(keys.size() == values.size());
  if (keys.empty()) return;
  if (root_block_ == kNone) {
    build(keys, values);
    return;
  }
  batch_insert_prepared(keys, values, prepare_batch(keys));
}

void PimTrie::batch_insert_prepared(const std::vector<BitString>& keys,
                                    const std::vector<trie::Value>& values,
                                    trie::QueryTrie qt) {
  assert(keys.size() == values.size());
  if (keys.empty()) return;
  if (root_block_ == kNone) {
    // First contents: the bulk-load path rebuilds its own partitioning
    // structures, so the prepared query trie is simply dropped.
    build(keys, values);
    return;
  }
  obs::Phase op_phase("Insert");
  sys_->metrics().add_cpu_work(qt.cpu_work);
  // Replace slot indices with the actual values (last write wins).
  {
    std::vector<trie::Value> val_of_slot(qt.sorted_keys.size(), 0);
    // Serial: several inputs can share a slot and the last write must win.
    for (std::size_t i = 0; i < keys.size(); ++i)
      val_of_slot[qt.sorted_slot_of_input[i]] = values[i];
    core::parallel_for(
        0, qt.key_node.size(),
        [&](std::size_t slot) {
          NodeId n = qt.key_node[slot];
          if (n != kNil) qt.trie.mutable_node(n).value = val_of_slot[slot];
        },
        /*grain=*/2048);
  }

  run_matching(qt, "insert", /*op_kind=*/1);

  // ---- maintenance ----
  if (!no_maint()) {
    obs::Phase maint_phase("Rebuild");
    std::size_t kb = cfg_.block_bound();
    std::vector<BlockId> oversized;
    for (const auto& [id, info] : blocks_)
      if (info.space > kb) oversized.push_back(id);
    if (!oversized.empty()) {
      obs::counter("maint/block_reparts").add(oversized.size());
      repartition_oversized_blocks(oversized, "insert.repart");
    }
    if (!no_psplit()) {
      split_oversized_pieces("insert.psplit");
      rebuild_unbalanced_trees("insert.rebuild");
    }
  }

  n_keys_ = 0;
  for (const auto& [id, info] : blocks_) n_keys_ += info.keys;
}

void PimTrie::repartition_oversized_blocks(const std::vector<BlockId>& oversized,
                                           const char* label) {
  // Pull the oversized blocks.
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::pair<BlockId, std::uint32_t>> pend;
  for (BlockId b : oversized) {
    std::uint32_t module = blocks_.at(b).module;
    detail::FrameWriter fw{buffers[module]};
    fw.begin();
    BufWriter bw{buffers[module]};
    bw.u64(detail::kFetchBlock);
    bw.u64(b);
    fw.end();
    pend.emplace_back(b, module);
  }
  std::string lbl = std::string(label) + ".pull";
  auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                   hasher_, cfg_.w);
  std::vector<BufReader> readers;
  for (const auto& buf : results) readers.push_back(BufReader{buf});

  std::size_t kb = cfg_.block_bound();
  std::vector<pim::Buffer> push(sys_->p());
  std::vector<MetaEntry> new_entries;
  std::unordered_map<std::uint64_t, PieceId> entry_piece;  // new block -> piece
  // Blocks whose meta-tree parent changed (mirror migrated into a new
  // block): their on-module entries/refs need a parent-pointer update.
  std::vector<std::pair<BlockId, BlockId>> reparented;  // (block, new parent)

  // Host-side prep per oversized block (deserialize, edge cutting,
  // partition, per-node hashes) is independent across blocks and is the
  // expensive part — fan it out. Registration below is serial so that id
  // assignment, RNG placement, and directory mutation stay canonical.
  struct Prep {
    Block blk;
    trie::PartitionResult part;
    std::vector<hash::HashVal> node_hash, pivot_hash;
    std::vector<char> is_root;
  };
  std::vector<Prep> preps(pend.size());
  std::vector<std::size_t> frame_pos(pend.size());
  for (std::size_t i = 0; i < pend.size(); ++i) {
    BufReader& r = readers[pend[i].second];
    std::uint64_t frame = r.u64();
    frame_pos[i] = r.pos;
    r.pos += frame;
  }
  core::parallel_for(
      0, pend.size(),
      [&](std::size_t pi) {
        Prep& p = preps[pi];
        BufReader r{results[pend[pi].second], frame_pos[pi]};
        p.blk = Block::deserialize(r);
        Block& blk = p.blk;

        // Cut long edges, partition by weight.
        {
          std::size_t max_edge_bits = std::max<std::size_t>(64, (kb > 9 ? kb - 8 : 1) * 64);
          bool again = true;
          while (again) {
            again = false;
            for (NodeId id : blk.trie.preorder_ids())
              if (blk.trie.node(id).edge.size() > max_edge_bits) {
                blk.trie.split_edge(id, blk.trie.node(id).edge.size() - max_edge_bits);
                again = true;
              }
          }
        }
        auto weight = [&](NodeId id) -> std::uint64_t {
          return 8 + blk.trie.node(id).edge.word_count();
        };
        p.part = trie::euler_partition(blk.trie, weight, kb);
        trie::PartitionResult& part = p.part;
        // Mirror stubs must never root new blocks: the stub is a replica
        // of a child block's root, and making it a root would shadow that
        // child. Dropping a stub from the root set folds it back into its
        // owner block (at most one extra node of slack per stub).
        {
          std::vector<NodeId> filtered;
          for (NodeId rt : part.roots)
            if (rt == blk.trie.root() || !blk.is_mirror(rt)) filtered.push_back(rt);
          if (filtered.size() != part.roots.size()) {
            part.roots = std::move(filtered);
            std::vector<char> keep(blk.trie.slot_count(), 0);
            for (NodeId rt : part.roots) keep[rt] = 1;
            part.owner.assign(blk.trie.slot_count(), trie::kNil);
            for (NodeId id : blk.trie.preorder_ids()) {
              const auto& n = blk.trie.node(id);
              part.owner[id] = keep[id] ? id : part.owner[n.parent];
            }
          }
        }
        if (part.roots.size() <= 1) return;  // stored back unchanged below

        // Per-node hashes within the block (absolute), seeded by the root.
        p.node_hash.assign(blk.trie.slot_count(), 0);
        p.pivot_hash.assign(blk.trie.slot_count(), 0);
        p.node_hash[blk.trie.root()] = blk.root_hash;
        p.pivot_hash[blk.trie.root()] = spre_of_.at(pend[pi].first);
        for (NodeId c : blk.trie.preorder_ids()) {
          const auto& cn = blk.trie.node(c);
          if (cn.parent == kNil) continue;
          std::uint64_t du = blk.root_depth + blk.trie.node(cn.parent).depth;
          std::uint64_t dv = du + cn.edge.size();
          hash::HashVal h = p.node_hash[cn.parent];
          hash::HashVal hp = p.pivot_hash[cn.parent];
          std::uint64_t dcur = du;
          for (std::uint64_t piv = (du / cfg_.w + 1) * cfg_.w; piv <= dv; piv += cfg_.w) {
            h = hasher_.extend(h, cn.edge, dcur - du, piv - dcur);
            hp = h;
            dcur = piv;
          }
          p.node_hash[c] = hasher_.extend(h, cn.edge, dcur - du, dv - dcur);
          p.pivot_hash[c] = hp;
        }
        p.is_root.assign(blk.trie.slot_count(), 0);
        for (NodeId rt : part.roots) p.is_root[rt] = 1;
      },
      /*grain=*/1);

  for (std::size_t prep_i = 0; prep_i < pend.size(); ++prep_i) {
    auto [bid, module] = pend[prep_i];
    Block& blk = preps[prep_i].blk;
    trie::PartitionResult& part = preps[prep_i].part;
    if (part.roots.size() <= 1) {
      // Nothing to split (can happen right at the boundary): store back.
      detail::FrameWriter fw{push[module]};
      fw.begin();
      BufWriter bw{push[module]};
      bw.u64(detail::kStoreBlock);
      blk.serialize(push[module]);
      fw.end();
      continue;
    }
    const std::vector<hash::HashVal>& node_hash = preps[prep_i].node_hash;
    const std::vector<hash::HashVal>& pivot_hash = preps[prep_i].pivot_hash;
    const std::vector<char>& is_root = preps[prep_i].is_root;
    std::unordered_map<NodeId, BlockId> block_of_root;
    for (NodeId rt : part.roots)
      block_of_root[rt] = rt == blk.trie.root() ? bid : fresh_block_id();

    const HostBlockInfo old_info = blocks_.at(bid);
    for (NodeId rt : part.roots) {
      BlockId id = block_of_root[rt];
      std::vector<NodeId> cuts;
      for (NodeId other : part.roots)
        if (other != rt) cuts.push_back(other);
      Block piece;
      piece.id = id;
      piece.root_depth = blk.root_depth + blk.trie.node(rt).depth;
      piece.root_hash = node_hash[rt];
      piece.trie = blk.trie.extract(rt, cuts);
      // Mirrors: stubs for new partition roots + surviving old mirrors.
      piece.trie.preorder([&](NodeId n) {
        NodeId origin = piece.trie.node(n).origin;
        if (n == piece.trie.root() || origin == kNil) return;
        if (is_root[origin]) {
          piece.mirrors.emplace(n, block_of_root[origin]);
        } else if (auto it = blk.mirrors.find(origin); it != blk.mirrors.end()) {
          piece.mirrors.emplace(n, it->second);
        }
      });
      BlockId parent;
      if (rt == blk.trie.root()) {
        parent = old_info.parent;
      } else {
        parent = block_of_root[part.owner[blk.trie.node(rt).parent]];
      }
      piece.parent = parent;

      std::uint32_t target_module =
          rt == blk.trie.root() ? old_info.module
                                : static_cast<std::uint32_t>(sys_->random_module());
      if (rt == blk.trie.root()) {
        auto& info = blocks_.at(bid);
        info.space = piece.space_words();
        info.keys = piece.trie.key_count();
        // Children list: append new blocks below (done as they register).
      } else {
        HostBlockInfo info;
        info.module = target_module;
        info.parent = parent;
        info.root_depth = piece.root_depth;
        info.root_hash = piece.root_hash;
        {
          BitString s = old_info.root_tail;
          s.append(blk.trie.node_string(rt));
          std::uint64_t tail = std::min<std::uint64_t>(cfg_.w, piece.root_depth);
          info.root_tail = s.suffix(s.size() - std::min<std::size_t>(tail, s.size()));
        }
        info.space = piece.space_words();
        info.keys = piece.trie.key_count();
        info.piece = kNone;  // assigned by add_meta_entries
        blocks_.emplace(id, std::move(info));
        spre_of_[id] = pivot_hash[rt];
        blocks_.at(parent).children.push_back(id);

        MetaEntry e = make_entry(id);
        new_entries.push_back(e);
        entry_piece[id] = old_info.piece;  // paper: parent's meta-block
      }

      // Old mirrors that migrated into a new child block: reparent the
      // child block in the directory and remember to update its meta
      // entry's parent pointer on the PIM side.
      for (const auto& [n, cb] : piece.mirrors) {
        auto bit = blocks_.find(cb);
        if (bit != blocks_.end() && bit->second.parent != id &&
            !is_root[piece.trie.node(n).origin]) {
          auto& old_children = blocks_.at(bit->second.parent).children;
          old_children.erase(std::remove(old_children.begin(), old_children.end(), cb),
                             old_children.end());
          bit->second.parent = id;
          blocks_.at(id).children.push_back(cb);
          reparented.emplace_back(cb, id);
        }
      }

      detail::FrameWriter fw{push[target_module]};
      fw.begin();
      BufWriter bw{push[target_module]};
      bw.u64(detail::kStoreBlock);
      piece.serialize(push[target_module]);
      fw.end();
    }
  }

  std::string lbl2 = std::string(label) + ".push";
  detail::run_round(*sys_, lbl2.c_str(), std::move(push), instance_, hasher_, cfg_.w);

  // Propagate parent-pointer changes to the PIM-side meta structures.
  if (!reparented.empty()) {
    std::vector<pim::Buffer> pbuf(sys_->p());
    bool master_changed = false;
    auto send_set_parent = [&](PieceId piece, BlockId block, BlockId parent) {
      if (piece == kNone || !pieces_.contains(piece)) return;
      std::uint32_t module = pieces_.at(piece).module;
      detail::FrameWriter fw{pbuf[module]};
      fw.begin();
      BufWriter bw{pbuf[module]};
      bw.u64(detail::kPieceSetParent);
      bw.u64(piece);
      bw.u64(block);
      bw.u64(parent);
      fw.end();
    };
    for (auto [cb, parent] : reparented) {
      PieceId px = blocks_.at(cb).piece;
      send_set_parent(px, cb, parent);
      // If cb roots its piece, the replicated ref in the parent piece is
      // stale too.
      if (px != kNone && pieces_.contains(px) && pieces_.at(px).root_block == cb)
        send_set_parent(pieces_.at(px).parent, cb, parent);
      for (const auto& mr : master_roots_)
        if (mr.root.block == cb) master_changed = true;
    }
    std::string lbl4 = std::string(label) + ".reparent";
    detail::run_round(*sys_, lbl4.c_str(), std::move(pbuf), instance_, hasher_, cfg_.w);
    if (master_changed) push_master((std::string(label) + ".master").c_str());
  }

  // Register the new blocks' meta entries in the pieces that hold their
  // (old) parent block's entry.
  if (!new_entries.empty()) {
    // Fix parent pointers in entries whose recorded parent changed during
    // mirror migration above.
    for (auto& e : new_entries) e.parent_block = blocks_.at(e.block).parent;
    std::unordered_map<std::uint64_t, std::vector<MetaEntry>> by_piece;
    for (auto& e : new_entries) by_piece[entry_piece.at(e.block)].push_back(e);
    std::vector<pim::Buffer> buf2(sys_->p());
    for (auto& [piece, entries] : by_piece) {
      std::uint32_t module = pieces_.at(piece).module;
      detail::FrameWriter fw{buf2[module]};
      fw.begin();
      BufWriter bw{buf2[module]};
      bw.u64(detail::kPieceAddEntries);
      bw.u64(piece);
      bw.u64(entries.size());
      for (auto& e : entries) e.serialize(buf2[module]);
      fw.end();
      pieces_.at(piece).entries += entries.size();
      for (auto& e : entries) blocks_.at(e.block).piece = piece;
    }
    std::string lbl3 = std::string(label) + ".meta";
    detail::run_round(*sys_, lbl3.c_str(), std::move(buf2), instance_, hasher_, cfg_.w);
  }
}

void PimTrie::split_oversized_pieces(const char* label) {
  std::vector<PieceId> oversized;
  for (const auto& [id, info] : pieces_)
    if (info.entries > cfg_.piece_bound()) oversized.push_back(id);
  if (oversized.empty()) return;
  obs::counter("maint/piece_splits").add(oversized.size());

  // Pull them.
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::pair<PieceId, std::uint32_t>> pend;
  for (PieceId id : oversized) {
    std::uint32_t module = pieces_.at(id).module;
    detail::FrameWriter fw{buffers[module]};
    fw.begin();
    BufWriter bw{buffers[module]};
    bw.u64(detail::kFetchPiece);
    bw.u64(id);
    fw.end();
    pend.emplace_back(id, module);
  }
  std::string lbl = std::string(label) + ".pull";
  auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                   hasher_, cfg_.w);
  std::vector<BufReader> readers;
  for (const auto& buf : results) readers.push_back(BufReader{buf});

  std::vector<pim::Buffer> push(sys_->p());
  for (auto [pid0, module0] : pend) {
    BufReader& r = readers[module0];
    std::uint64_t frame = r.u64();
    std::size_t end = r.pos + frame;
    Piece piece = Piece::deserialize(r);
    r.pos = end;

    // Meta-subtree adjacency among this piece's entries.
    std::unordered_map<std::uint64_t, int> idx_of;
    for (std::size_t i = 0; i < piece.entries.size(); ++i)
      idx_of[piece.entries[i].block] = static_cast<int>(i);
    std::vector<std::vector<int>> children(piece.entries.size());
    int root_idx = idx_of.at(piece.root_block);
    for (std::size_t i = 0; i < piece.entries.size(); ++i) {
      auto pit = idx_of.find(piece.entries[i].parent_block);
      if (pit != idx_of.end() && piece.entries[i].block != piece.root_block)
        children[pit->second].push_back(static_cast<int>(i));
    }
    internal::TreePieces ps =
        internal::decompose_tree(children, root_idx, cfg_.piece_bound());
    if (ps.pieces.size() <= 1) continue;

    std::uint32_t old_depth = pieces_.at(pid0).depth;
    PieceId old_parent = pieces_.at(pid0).parent;

    std::vector<PieceId> pid(ps.pieces.size());
    std::vector<std::uint32_t> pmod(ps.pieces.size());
    int top = ps.piece_of[root_idx];
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      pid[i] = static_cast<int>(i) == top ? pid0 : fresh_piece_id();
      pmod[i] = static_cast<int>(i) == top
                    ? module0
                    : static_cast<std::uint32_t>(sys_->random_module());
    }
    std::vector<Piece> built(ps.pieces.size());
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      built[i].id = pid[i];
      built[i].parent_piece = ps.pieces[i].parent_piece < 0
                                  ? old_parent
                                  : pid[ps.pieces[i].parent_piece];
      built[i].root_block = piece.entries[ps.pieces[i].root].block;
      for (int n : ps.pieces[i].nodes) built[i].entries.push_back(piece.entries[n]);
    }
    // Re-home the old child refs: each anchors at some entry's block.
    for (const auto& c : piece.children) {
      auto it = idx_of.find(c.root.parent_block);
      int owner = it == idx_of.end() ? top : ps.piece_of[it->second];
      built[owner].children.push_back(c);
    }
    // New child refs for the new pieces.
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      int pp = ps.pieces[i].parent_piece;
      if (pp < 0) continue;
      ChildPieceRef ref;
      ref.piece = pid[i];
      ref.module = pmod[i];
      ref.root = built[i].entries.front();
      built[pp].children.push_back(ref);
    }

    // Host directory updates.
    {
      auto& info0 = pieces_.at(pid0);
      // Children of the old piece get re-homed below.
      std::vector<PieceId> old_children = std::move(info0.children);
      info0.children.clear();
      info0.entries = built[top].entries.size();
      info0.root_block = built[top].root_block;
      for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
        if (static_cast<int>(i) == top) continue;
        HostPieceInfo ni;
        ni.module = pmod[i];
        ni.parent = built[i].parent_piece;
        ni.root_block = built[i].root_block;
        ni.entries = built[i].entries.size();
        pieces_.emplace(pid[i], ni);
      }
      for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
        for (const auto& c : built[i].children) {
          if (pieces_.contains(c.piece)) {
            pieces_.at(c.piece).parent = pid[i];
            pieces_.at(pid[i]).children.push_back(c.piece);
          }
        }
        for (const auto& e : built[i].entries) blocks_.at(e.block).piece = pid[i];
      }
      // Recompute depths of the split pieces (BFS from the top).
      std::function<void(PieceId, std::uint32_t)> set_depth = [&](PieceId p,
                                                                  std::uint32_t d) {
        pieces_.at(p).depth = d;
        for (PieceId c : pieces_.at(p).children) set_depth(c, d + 1);
      };
      set_depth(pid0, old_depth);
    }

    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      detail::FrameWriter fw{push[pmod[i]]};
      fw.begin();
      BufWriter bw{push[pmod[i]]};
      bw.u64(detail::kStorePiece);
      built[i].serialize(push[pmod[i]]);
      fw.end();
    }
  }
  std::string lbl2 = std::string(label) + ".push";
  detail::run_round(*sys_, lbl2.c_str(), std::move(push), instance_, hasher_, cfg_.w);
}

void PimTrie::rebuild_unbalanced_trees(const char* label) {
  // Scapegoat-style height guard (paper Lemma 4.6 + Section 5.2): when a
  // meta-block tree grows taller than c*log(size), rebuild it wholesale.
  // Piece children lists span master-tree edges too; a meta-block tree
  // walk must stop at pieces that root *other* meta-block trees.
  std::unordered_map<std::uint64_t, bool> is_master_piece;
  for (const auto& mr : master_roots_) is_master_piece[mr.piece] = true;

  for (const auto& mr : master_roots_) {
    PieceId root_piece = mr.piece;
    if (!pieces_.contains(root_piece)) continue;
    // Measure subtree height + gather piece ids.
    std::vector<PieceId> tree;
    std::uint32_t height = 0;
    std::size_t total_entries = 0;
    std::function<void(PieceId, std::uint32_t)> walk = [&](PieceId p, std::uint32_t d) {
      tree.push_back(p);
      height = std::max(height, d);
      total_entries += pieces_.at(p).entries;
      for (PieceId c : pieces_.at(p).children)
        if (!is_master_piece.contains(c)) walk(c, d + 1);
    };
    walk(root_piece, 0);
    std::size_t pieces_in_tree = tree.size();
    std::uint32_t bound = 2 * static_cast<std::uint32_t>(Config::log2_ceil(
                                  std::max<std::size_t>(2, pieces_in_tree))) +
                          4;
    if (height <= bound || tree.size() <= 2) continue;
    obs::counter("maint/tree_rebuilds").add();

    // Fetch every piece of the tree.
    std::vector<pim::Buffer> buffers(sys_->p());
    std::vector<std::pair<PieceId, std::uint32_t>> pend;
    for (PieceId p : tree) {
      std::uint32_t module = pieces_.at(p).module;
      detail::FrameWriter fw{buffers[module]};
      fw.begin();
      BufWriter bw{buffers[module]};
      bw.u64(detail::kFetchPiece);
      bw.u64(p);
      fw.end();
      pend.emplace_back(p, module);
    }
    std::string lbl = std::string(label) + ".pull";
    auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                     hasher_, cfg_.w);
    std::vector<BufReader> readers;
    for (const auto& buf : results) readers.push_back(BufReader{buf});
    std::unordered_map<std::uint64_t, bool> in_tree;
    for (PieceId p : tree) in_tree[p] = true;
    std::vector<MetaEntry> all;
    std::vector<ChildPieceRef> external;  // refs into other meta-block trees
    for (auto [p, module] : pend) {
      BufReader& r = readers[module];
      std::uint64_t frame = r.u64();
      std::size_t end = r.pos + frame;
      Piece piece = Piece::deserialize(r);
      r.pos = end;
      for (auto& e : piece.entries) all.push_back(std::move(e));
      for (auto& c : piece.children)
        if (!in_tree.contains(c.piece)) external.push_back(std::move(c));
    }

    // Delete the old pieces (except the root id, reused), re-decompose.
    std::vector<pim::Buffer> del(sys_->p());
    for (PieceId p : tree) {
      if (p == root_piece) continue;
      std::uint32_t module = pieces_.at(p).module;
      detail::FrameWriter fw{del[module]};
      fw.begin();
      BufWriter bw{del[module]};
      bw.u64(detail::kDeletePiece);
      bw.u64(p);
      fw.end();
      pieces_.erase(p);
    }
    std::string lbl2 = std::string(label) + ".gc";
    detail::run_round(*sys_, lbl2.c_str(), std::move(del), instance_, hasher_, cfg_.w);

    std::unordered_map<std::uint64_t, int> idx_of;
    for (std::size_t i = 0; i < all.size(); ++i) idx_of[all[i].block] = static_cast<int>(i);
    std::vector<std::vector<int>> children(all.size());
    BlockId tree_root_block = pieces_.at(root_piece).root_block;
    int root_idx = idx_of.at(tree_root_block);
    for (std::size_t i = 0; i < all.size(); ++i) {
      auto pit = idx_of.find(all[i].parent_block);
      if (pit != idx_of.end() && all[i].block != tree_root_block)
        children[pit->second].push_back(static_cast<int>(i));
    }
    internal::TreePieces ps = internal::decompose_tree(children, root_idx, cfg_.piece_bound());

    int top = ps.piece_of[root_idx];
    std::uint32_t root_module = pieces_.at(root_piece).module;
    std::vector<PieceId> pid(ps.pieces.size());
    std::vector<std::uint32_t> pmod(ps.pieces.size());
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      pid[i] = static_cast<int>(i) == top ? root_piece : fresh_piece_id();
      pmod[i] = static_cast<int>(i) == top
                    ? root_module
                    : static_cast<std::uint32_t>(sys_->random_module());
    }
    std::vector<Piece> built(ps.pieces.size());
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      built[i].id = pid[i];
      built[i].parent_piece = ps.pieces[i].parent_piece < 0
                                  ? kNone
                                  : pid[ps.pieces[i].parent_piece];
      built[i].root_block = all[ps.pieces[i].root].block;
      for (int n : ps.pieces[i].nodes) built[i].entries.push_back(all[n]);
    }
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      int pp = ps.pieces[i].parent_piece;
      if (pp < 0) continue;
      ChildPieceRef ref;
      ref.piece = pid[i];
      ref.module = pmod[i];
      ref.root = built[i].entries.front();
      built[pp].children.push_back(ref);
    }
    // Re-home refs to other meta-block trees by their anchor entry.
    for (auto& c : external) {
      auto it = idx_of.find(c.root.parent_block);
      int owner = it == idx_of.end() ? top : ps.piece_of[it->second];
      if (pieces_.contains(c.piece)) pieces_.at(c.piece).parent = pid[owner];
      built[owner].children.push_back(std::move(c));
    }
    // Directory.
    pieces_.at(root_piece).children.clear();
    pieces_.at(root_piece).entries = built[top].entries.size();
    pieces_.at(root_piece).depth = 0;
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      if (static_cast<int>(i) == top) continue;
      HostPieceInfo ni;
      ni.module = pmod[i];
      ni.parent = built[i].parent_piece;
      ni.root_block = built[i].root_block;
      ni.entries = built[i].entries.size();
      pieces_.emplace(pid[i], ni);
    }
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      for (const auto& c : built[i].children) {
        pieces_.at(c.piece).parent = pid[i];
        // Foreign master-root pieces root their own trees: depth stays 0.
        if (!is_master_piece.contains(c.piece))
          pieces_.at(c.piece).depth = pieces_.at(pid[i]).depth + 1;
        pieces_.at(pid[i]).children.push_back(c.piece);
      }
      for (const auto& e : built[i].entries) blocks_.at(e.block).piece = pid[i];
    }
    std::vector<pim::Buffer> push(sys_->p());
    for (std::size_t i = 0; i < ps.pieces.size(); ++i) {
      detail::FrameWriter fw{push[pmod[i]]};
      fw.begin();
      BufWriter bw{push[pmod[i]]};
      bw.u64(detail::kStorePiece);
      built[i].serialize(push[pmod[i]]);
      fw.end();
    }
    std::string lbl3 = std::string(label) + ".push";
    detail::run_round(*sys_, lbl3.c_str(), std::move(push), instance_, hasher_, cfg_.w);
  }
}

void PimTrie::batch_erase(const std::vector<BitString>& keys) {
  batch_erase_prepared(keys, prepare_batch(keys));
}

void PimTrie::batch_erase_prepared(const std::vector<BitString>& keys, trie::QueryTrie qt) {
  if (keys.empty() || root_block_ == kNone) return;
  obs::Phase op_phase("Erase");
  sys_->metrics().add_cpu_work(qt.cpu_work);
  run_matching(qt, "erase", /*op_kind=*/2);

  // ---- deletion cascade (leaffix over the block tree, Section 5.2) ----
  // deletable(B) = no keys in B and every child block deletable.
  std::unordered_map<std::uint64_t, bool> deletable;
  std::function<bool(BlockId)> mark = [&](BlockId b) -> bool {
    auto it = deletable.find(b);
    if (it != deletable.end()) return it->second;
    const auto& info = blocks_.at(b);
    bool ok = info.keys == 0;
    for (BlockId c : info.children) ok = mark(c) && ok;
    deletable[b] = ok && b != root_block_;
    return deletable[b];
  };
  for (const auto& [id, info] : blocks_) mark(id);

  std::vector<BlockId> victims;
  for (const auto& [id, ok] : deletable)
    if (ok) victims.push_back(id);
  if (!victims.empty()) {
    obs::Phase maint_phase("Rebuild");
    obs::counter("maint/blocks_removed").add(victims.size());
    remove_blocks(victims, "erase.gc");
  }

  n_keys_ = 0;
  for (const auto& [id, info] : blocks_) n_keys_ += info.keys;
}

void PimTrie::remove_blocks(const std::vector<BlockId>& victims, const char* label) {
  std::unordered_map<std::uint64_t, bool> victim_set;
  for (BlockId b : victims) victim_set[b] = true;

  // One round: delete victim blocks; remove mirror stubs in surviving
  // parents of top-most victims; remove meta entries from their pieces.
  // frame_parent mirrors the per-module frame order so the reply walk
  // below can locate kRemoveMirror acks (kNone marks frames to skip).
  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<std::vector<BlockId>> frame_parent(sys_->p());
  std::unordered_map<std::uint64_t, std::vector<BlockId>> by_piece;
  for (BlockId b : victims) {
    const auto& info = blocks_.at(b);
    {
      detail::FrameWriter fw{buffers[info.module]};
      fw.begin();
      BufWriter bw{buffers[info.module]};
      bw.u64(detail::kDeleteBlock);
      bw.u64(b);
      fw.end();
      frame_parent[info.module].push_back(kNone);
    }
    if (info.parent != kNone && !victim_set.contains(info.parent)) {
      const auto& pinfo = blocks_.at(info.parent);
      detail::FrameWriter fw{buffers[pinfo.module]};
      fw.begin();
      BufWriter bw{buffers[pinfo.module]};
      bw.u64(detail::kRemoveMirror);
      bw.u64(info.parent);
      bw.u64(b);
      fw.end();
      frame_parent[pinfo.module].push_back(info.parent);
    }
    if (info.piece != kNone) by_piece[info.piece].push_back(b);
  }
  for (auto& [piece, ids] : by_piece) {
    if (!pieces_.contains(piece)) continue;
    std::uint32_t module = pieces_.at(piece).module;
    detail::FrameWriter fw{buffers[module]};
    fw.begin();
    BufWriter bw{buffers[module]};
    bw.u64(detail::kPieceRemoveEntries);
    bw.u64(piece);
    bw.u64(ids.size());
    for (BlockId b : ids) bw.u64(b);
    fw.end();
    frame_parent[module].push_back(kNone);
    pieces_.at(piece).entries -= std::min(pieces_.at(piece).entries, ids.size());
  }
  auto results =
      detail::run_round(*sys_, label, std::move(buffers), instance_, hasher_, cfg_.w);
  // Dropping a mirror stub shrinks the surviving parent block on the
  // module; sync the host directory's space figure from the ack.
  for (std::uint32_t m = 0; m < sys_->p(); ++m) {
    BufReader r{results[m]};
    for (BlockId parent : frame_parent[m]) {
      std::uint64_t frame = r.u64();
      std::size_t end = r.pos + frame;
      if (parent != kNone) {
        (void)r.u64();  // key count (unchanged by mirror removal)
        (void)r.u64();  // remaining mirror count
        blocks_.at(parent).space = r.u64();
      }
      r.pos = end;
    }
  }

  // Host directory cleanup.
  for (BlockId b : victims) {
    const auto& info = blocks_.at(b);
    if (info.parent != kNone && blocks_.contains(info.parent)) {
      auto& siblings = blocks_.at(info.parent).children;
      siblings.erase(std::remove(siblings.begin(), siblings.end(), b), siblings.end());
    }
  }
  // Pieces whose root block vanished: their whole subtree of pieces is
  // gone too (all their blocks are descendants of the vanished root).
  std::vector<PieceId> dead_pieces;
  for (const auto& [pid, info] : pieces_)
    if (victim_set.contains(info.root_block)) dead_pieces.push_back(pid);
  if (!dead_pieces.empty()) {
    std::vector<pim::Buffer> del(sys_->p());
    for (PieceId p : dead_pieces) {
      const auto& info = pieces_.at(p);
      detail::FrameWriter fw{del[info.module]};
      fw.begin();
      BufWriter bw{del[info.module]};
      bw.u64(detail::kDeletePiece);
      bw.u64(p);
      fw.end();
      if (info.parent != kNone && pieces_.contains(info.parent)) {
        auto& pc = pieces_.at(info.parent).children;
        pc.erase(std::remove(pc.begin(), pc.end(), p), pc.end());
      }
    }
    std::string lbl = std::string(label) + ".pieces";
    detail::run_round(*sys_, lbl.c_str(), std::move(del), instance_, hasher_, cfg_.w);
    // Drop the ChildPieceRefs held by surviving parent pieces: a stale
    // ref can still hash-verify against query bits (the dead root's
    // string may remain a query prefix) and would route matching into a
    // deleted piece.
    std::unordered_map<std::uint64_t, bool> dead_set;
    for (PieceId p : dead_pieces) dead_set[p] = true;
    std::vector<pim::Buffer> fix(sys_->p());
    bool any_fix = false;
    for (PieceId p : dead_pieces) {
      PieceId parent = pieces_.at(p).parent;
      if (parent == kNone || dead_set.contains(parent) || !pieces_.contains(parent)) continue;
      std::uint32_t module = pieces_.at(parent).module;
      detail::FrameWriter fw{fix[module]};
      fw.begin();
      BufWriter bw{fix[module]};
      bw.u64(detail::kPieceDropChildRef);
      bw.u64(parent);
      bw.u64(p);
      fw.end();
      any_fix = true;
    }
    for (PieceId p : dead_pieces) pieces_.erase(p);
    if (any_fix) {
      std::string lbl2 = std::string(label) + ".refs";
      detail::run_round(*sys_, lbl2.c_str(), std::move(fix), instance_, hasher_, cfg_.w);
    }
  }
  bool master_changed = false;
  std::erase_if(master_roots_, [&](const MasterRoot& mr) {
    bool dead = victim_set.contains(mr.root.block);
    master_changed |= dead;
    return dead;
  });
  for (BlockId b : victims) {
    blocks_.erase(b);
    spre_of_.erase(b);
  }
  if (master_changed) push_master((std::string(label) + ".master").c_str());
}

}  // namespace ptrie::pimtrie
