// PimTrie: construction (bulk load) and shared helpers. The matching
// pipeline lives in pim_trie_match.cpp, updates in pim_trie_update.cpp.

#include "pimtrie/pim_trie.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/phase.hpp"
#include "pimtrie/decompose.hpp"
#include "pimtrie/detail.hpp"
#include "trie/euler_partition.hpp"
#include "trie/treefix.hpp"

namespace ptrie::pimtrie {

using core::BitString;
using trie::kNil;
using trie::NodeId;
using trie::Patricia;

namespace {
std::atomic<std::uint64_t> g_instance{1};
}

namespace internal {

TreePieces decompose_tree(const std::vector<std::vector<int>>& children, int root,
                          std::size_t bound) {
  TreePieces out;
  out.piece_of.assign(children.size(), -1);
  // removed[v]: the edge into v has been cut (v roots another part).
  std::vector<char> removed(children.size(), 0);

  // Effective subtree size below v, skipping removed child edges.
  auto eff_size = [&](int v, auto&& self) -> std::size_t {
    std::size_t n = 1;
    for (int c : children[v])
      if (!removed[c]) n += self(c, self);
    return n;
  };

  auto rec = [&](int r, int parent_piece, auto&& self) -> int {
    std::size_t n = eff_size(r, eff_size);
    if (n <= bound) {
      TreePieces::P p;
      p.parent_piece = parent_piece;
      p.root = r;
      // Preorder collection.
      std::vector<int> stack{r};
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        p.nodes.push_back(v);
        for (auto it = children[v].rbegin(); it != children[v].rend(); ++it)
          if (!removed[*it]) stack.push_back(*it);
      }
      int idx = static_cast<int>(out.pieces.size());
      for (int v : p.nodes) out.piece_of[v] = idx;
      out.pieces.push_back(std::move(p));
      return idx;
    }
    // Cut node: deepest node whose effective subtree exceeds (n+1)/2.
    // The descent must be strict — with >= it can run to a leaf when a
    // child subtree is exactly (n+1)/2 (e.g. a 2-chain), where cutting
    // child edges removes nothing and the recursion never shrinks.
    // Strictness keeps the lemma: at the stop node eff(v) > (n+1)/2, so
    // the upper part n - eff(v) + 1 <= (n+1)/2, and every cut child
    // subtree is <= (n+1)/2 by the stop condition.
    int v = r;
    for (;;) {
      int best = -1;
      std::size_t best_sz = 0;
      for (int c : children[v]) {
        if (removed[c]) continue;
        std::size_t sz = eff_size(c, eff_size);
        if (sz > best_sz) {
          best_sz = sz;
          best = c;
        }
      }
      if (best == -1 || best_sz <= (n + 1) / 2) break;
      v = best;
    }
    // Cut all of v's (effective) child edges (Lemma 4.5).
    std::vector<int> cut;
    for (int c : children[v])
      if (!removed[c]) {
        removed[c] = 1;
        cut.push_back(c);
      }
    int idx = self(r, parent_piece, self);  // upper part, halved; recurse
    // Children hang below the piece that actually contains the cut node.
    for (int c : cut) self(c, out.piece_of[v], self);
    return idx;
  };
  rec(root, -1, rec);
  return out;
}

}  // namespace internal

PimTrie::PimTrie(pim::System& sys, Config cfg)
    : sys_(&sys),
      cfg_(cfg),
      hasher_(cfg.seed, cfg.fingerprint_bits),
      instance_(g_instance.fetch_add(1)) {
  cfg_.p = sys.p();
}

MetaEntry PimTrie::make_entry(BlockId b) const {
  const HostBlockInfo& info = blocks_.at(b);
  MetaEntry e;
  e.block = b;
  e.module = info.module;
  e.root_hash = info.root_hash;
  e.root_depth = info.root_depth;
  e.parent_block = info.parent;
  std::uint64_t pivot = (info.root_depth / cfg_.w) * cfg_.w;
  std::uint64_t rem = info.root_depth - pivot;
  // root_tail holds the last min(w, depth) bits; srem is its suffix view.
  assert(rem <= info.root_tail.size());
  e.srem = info.root_tail.suffix(info.root_tail.size() - rem);
  e.slast = info.root_tail;
  // spre hash: hash of prefix of length `pivot` — derivable only at
  // construction; we stash it in the directory via root_hash bookkeeping.
  // Caller paths set spre_hash explicitly when they have it; for
  // directory-driven entries we recompute from stored data:
  e.spre_hash = spre_of_.at(b);
  return e;
}

void PimTrie::push_master(const char* label) {
  // Master entries carry *master-level* parent pointers: the nearest
  // ancestor block that is itself a master root. This is what makes the
  // second layer's "root or direct child" resolution (Section 4.4.2)
  // work inside the master index — the shallowest maximizer's nearest
  // master ancestor is exactly the deepest on-path master root.
  std::unordered_map<std::uint64_t, bool> is_master;
  for (const auto& mr : master_roots_) is_master[mr.root.block] = true;
  auto master_parent = [&](BlockId b) -> BlockId {
    BlockId cur = blocks_.at(b).parent;
    while (cur != kNone && !is_master.contains(cur)) cur = blocks_.at(cur).parent;
    return cur == kNone ? kNone : cur;
  };

  // Master replication is a broadcast store; attribute it to ChunkPush
  // alongside the build-time block/piece pushes.
  obs::Phase push_phase("ChunkPush");
  obs::counter("master/pushes").add();
  pim::Buffer payload;
  detail::FrameWriter fw{payload};
  fw.begin();
  BufWriter bw{payload};
  bw.u64(detail::kStoreMaster);
  bw.u64(master_roots_.size());
  for (const auto& mr : master_roots_) {
    MetaEntry e = mr.root;
    e.parent_block = master_parent(e.block);
    e.serialize(payload);
    bw.u64(mr.piece);
    bw.u64(mr.module);
  }
  fw.end();
  const hash::PolyHasher& hasher = hasher_;
  unsigned w = cfg_.w;
  std::uint64_t inst = instance_;
  sys_->broadcast_round(label, payload, [inst, &hasher, w](pim::Module& m, pim::Buffer in) {
    return detail::kernel(m, std::move(in), inst, hasher, w);
  });
}

QueryPiece PimTrie::make_piece(const trie::QueryTrie& qt, NodeId root,
                               const std::vector<NodeId>& cuts) const {
  QueryPiece p;
  const Patricia& t = qt.trie;
  p.root_depth = t.node(root).depth;
  p.root_hash = qt.node_hash[root];
  // Root tail: last min(w, depth) bits of the root's string.
  BitString s = t.node_string(root);
  std::uint64_t tail = std::min<std::uint64_t>(cfg_.w, p.root_depth);
  p.root_tail = s.suffix(s.size() - tail);
  // Pivot hash at floor(depth/w)*w.
  std::uint64_t pivot = (p.root_depth / cfg_.w) * cfg_.w;
  p.root_pivot_hash = hasher_.hash_prefix(s, pivot);
  p.trie = t.extract(root, cuts);
  return p;
}

trie::NodeId PimTrie::materialize(trie::QueryTrie& qt, NodeId below,
                                  std::uint64_t abs_depth) const {
  Patricia& t = qt.trie;
  NodeId cur = below;
  // Walk up until abs_depth lies within cur's edge (or at its end).
  while (t.node(cur).parent != kNil && t.node(t.node(cur).parent).depth >= abs_depth)
    cur = t.node(cur).parent;
  if (t.node(cur).depth == abs_depth) return cur;
  assert(t.node(cur).depth > abs_depth);
  NodeId mid = t.split_edge(cur, t.node(cur).depth - abs_depth);
  // Maintain the node-hash array for the new node.
  if (qt.node_hash.size() < t.slot_count()) qt.node_hash.resize(t.slot_count(), 0);
  const auto& m = t.node(mid);
  qt.node_hash[mid] = hasher_.extend(
      m.parent == kNil ? hasher_.empty() : qt.node_hash[m.parent], m.edge, 0, m.edge.size());
  return mid;
}

void PimTrie::build(const std::vector<BitString>& keys, const std::vector<trie::Value>& values) {
  assert(keys.size() == values.size());
  obs::Phase op_phase("Build");
  blocks_.clear();
  pieces_.clear();
  master_roots_.clear();
  spre_of_.clear();
  n_keys_ = 0;

  // 1. Reference data trie on the host (construction-time only).
  //    Parallel stable sort + run-boundary dedup + scatter: each stage is
  //    worker-count invariant (see core/parallel.hpp).
  std::vector<BitString> sorted(keys.size());
  std::vector<trie::Value> vals(keys.size());
  {
    std::size_t n = keys.size();
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    core::parallel_stable_sort(
        perm.begin(), perm.end(),
        [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
    core::parallel_for(
        0, n,
        [&](std::size_t i) {
          sorted[i] = keys[perm[i]];
          vals[i] = values[perm[i]];
        },
        /*grain=*/2048);
    // Dedup, last value wins: a run's slot takes the value of its last
    // element (run end = boundary of the next run).
    std::vector<std::size_t> rank(n, 0);
    core::parallel_for(
        0, n,
        [&](std::size_t i) { rank[i] = (i == 0 || !(sorted[i - 1] == sorted[i])) ? 1 : 0; },
        /*grain=*/2048);
    std::size_t n_uniq = n == 0 ? 0 : core::parallel_inclusive_scan(rank);
    std::vector<BitString> uk(n_uniq);
    std::vector<trie::Value> uv(n_uniq);
    core::parallel_for(
        0, n,
        [&](std::size_t i) {
          if (i == 0 || rank[i] != rank[i - 1]) uk[rank[i] - 1] = std::move(sorted[i]);
          if (i + 1 == n || rank[i + 1] != rank[i]) uv[rank[i] - 1] = vals[i];
        },
        /*grain=*/2048);
    sorted = std::move(uk);
    vals = std::move(uv);
  }
  std::vector<std::size_t> lcp(sorted.size(), 0);
  core::parallel_for(
      1, sorted.size(), [&](std::size_t i) { lcp[i] = sorted[i - 1].lcp(sorted[i]); },
      /*grain=*/1024);
  Patricia data = Patricia::build_sorted(sorted, lcp, &vals);
  n_keys_ = data.key_count();

  std::size_t kb = cfg_.block_bound();

  // 2. Cut long edges so no node outweighs a block (Section 4.2).
  {
    std::size_t max_edge_bits = std::max<std::size_t>(64, (kb - 8) * 64);
    // Collect then split (splitting invalidates iteration order only).
    bool again = true;
    while (again) {
      again = false;
      for (NodeId id : data.preorder_ids()) {
        if (data.node(id).edge.size() > max_edge_bits) {
          data.split_edge(id, data.node(id).edge.size() - max_edge_bits);
          again = true;
        }
      }
    }
  }

  // 3. Weighted Euler-tour partition into blocks of <= K_B words.
  auto weight = [&](NodeId id) -> std::uint64_t {
    return 8 + data.node(id).edge.word_count();
  };
  trie::PartitionResult part = trie::euler_partition(data, weight, kb);

  // 4. Per-node absolute hashes (and per-node pivot hashes) in one
  //    preorder pass; root tails recomputed exactly per partition root.
  std::vector<hash::HashVal> node_hash(data.slot_count(), 0);
  std::vector<hash::HashVal> pivot_hash(data.slot_count(), 0);  // at floor(depth/w)*w
  std::unordered_map<NodeId, BitString> tails;
  std::vector<char> is_root(data.slot_count(), 0);
  for (NodeId r : part.roots) is_root[r] = 1;
  {
    node_hash[data.root()] = hasher_.empty();
    pivot_hash[data.root()] = hasher_.empty();
    for (NodeId c : data.preorder_ids()) {
      const auto& cn = data.node(c);
      if (cn.parent == kNil) continue;
      std::uint64_t du = data.node(cn.parent).depth, dv = cn.depth;
      hash::HashVal h = node_hash[cn.parent];
      hash::HashVal hp = pivot_hash[cn.parent];
      std::uint64_t dcur = du;
      for (std::uint64_t pi = (du / cfg_.w + 1) * cfg_.w; pi <= dv; pi += cfg_.w) {
        h = hasher_.extend(h, cn.edge, dcur - du, pi - dcur);
        hp = h;
        dcur = pi;
      }
      h = hasher_.extend(h, cn.edge, dcur - du, dv - dcur);
      node_hash[c] = h;
      pivot_hash[c] = hp;
    }
    for (NodeId r : part.roots) {
      BitString s = data.node_string(r);
      std::uint64_t tail = std::min<std::uint64_t>(cfg_.w, s.size());
      tails[r] = s.suffix(s.size() - tail);
    }
  }

  // 5. Extract blocks, assign ids and modules.
  std::unordered_map<NodeId, BlockId> block_of_root;
  for (NodeId r : part.roots) block_of_root[r] = fresh_block_id();
  root_block_ = block_of_root[data.root()];

  std::vector<pim::Buffer> buffers(sys_->p());
  std::vector<BlockId> order;  // block creation order = meta preorder
  // Module placement consumes the RNG in root order (serial, so the
  // stream is identical for every worker count), then the expensive
  // extraction of each block runs in parallel; registration and
  // serialization stay serial to keep directory + wire order canonical.
  std::vector<std::uint32_t> module_of_root(part.roots.size());
  for (std::size_t ri = 0; ri < part.roots.size(); ++ri)
    module_of_root[ri] = static_cast<std::uint32_t>(sys_->random_module());
  std::vector<Block> built_blocks(part.roots.size());
  core::parallel_for(
      0, part.roots.size(),
      [&](std::size_t ri) {
        NodeId r = part.roots[ri];
        // Cut at every other partition root.
        std::vector<NodeId> cuts;
        for (NodeId other : part.roots)
          if (other != r) cuts.push_back(other);
        Block& blk = built_blocks[ri];
        blk.id = block_of_root.at(r);
        blk.root_hash = node_hash[r];
        blk.root_depth = data.node(r).depth;
        blk.trie = data.extract(r, cuts);
        // Mirrors: extracted stubs whose origin is another partition root.
        blk.trie.preorder([&](NodeId n) {
          NodeId origin = blk.trie.node(n).origin;
          if (n != blk.trie.root() && origin != kNil && is_root[origin])
            blk.mirrors.emplace(n, block_of_root.at(origin));
        });
        // Meta-tree parent: owner of r's parent in the data trie.
        BlockId parent = kNone;
        if (r != data.root()) parent = block_of_root.at(part.owner[data.node(r).parent]);
        blk.parent = parent;
      },
      /*grain=*/1);
  for (std::size_t ri = 0; ri < part.roots.size(); ++ri) {
    NodeId r = part.roots[ri];
    BlockId id = block_of_root[r];
    std::uint32_t module = module_of_root[ri];
    Block& blk = built_blocks[ri];
    BlockId parent = blk.parent;

    HostBlockInfo info;
    info.module = module;
    info.parent = parent;
    info.root_depth = blk.root_depth;
    info.root_hash = blk.root_hash;
    info.root_tail = tails[r];
    info.space = blk.space_words();
    info.keys = blk.trie.key_count();
    blocks_.emplace(id, std::move(info));
    spre_of_[id] = pivot_hash[r];
    if (parent != kNone) blocks_[parent].children.push_back(id);
    order.push_back(id);

    detail::FrameWriter fw{buffers[module]};
    fw.begin();
    BufWriter bw{buffers[module]};
    bw.u64(detail::kStoreBlock);
    blk.serialize(buffers[module]);
    fw.end();
  }
  {
    obs::Phase push_phase("ChunkPush");
    const hash::PolyHasher& hasher = hasher_;
    unsigned w = cfg_.w;
    std::uint64_t inst = instance_;
    sys_->round("build.blocks", std::move(buffers),
                [inst, &hasher, w](pim::Module& m, pim::Buffer in) {
                  return detail::kernel(m, std::move(in), inst, hasher, w);
                });
  }

  // 6. Meta-tree decomposition: meta-blocks (<= K_MB), then pieces
  //    (<= K_SMB) per meta-block; meta-block roots go to the master.
  {
    // Index the meta-tree: nodes = blocks in `order` (preorder).
    std::unordered_map<std::uint64_t, int> idx_of;
    for (std::size_t i = 0; i < order.size(); ++i) idx_of[order[i]] = static_cast<int>(i);
    std::vector<std::vector<int>> children(order.size());
    int root_idx = idx_of.at(root_block_);
    for (std::size_t i = 0; i < order.size(); ++i) {
      BlockId parent = blocks_[order[i]].parent;
      if (parent != kNone) children[idx_of[parent]].push_back(static_cast<int>(i));
    }
    internal::TreePieces mbs = internal::decompose_tree(children, root_idx,
                                                        cfg_.meta_block_bound());
    // Per meta-block: recursive piece decomposition. Pieces are linked
    // first (including master-tree edges between meta-blocks) and pushed
    // in one round at the end.
    std::vector<Piece> all_built;
    std::vector<std::uint32_t> all_mod;
    for (const auto& mb : mbs.pieces) {
      // Local index remap.
      std::unordered_map<int, int> local;
      std::vector<int> back(mb.nodes.size());
      for (std::size_t i = 0; i < mb.nodes.size(); ++i) {
        local[mb.nodes[i]] = static_cast<int>(i);
        back[i] = mb.nodes[i];
      }
      std::vector<std::vector<int>> lchildren(mb.nodes.size());
      for (std::size_t i = 0; i < mb.nodes.size(); ++i)
        for (int c : children[back[i]])
          if (local.contains(c)) lchildren[i].push_back(local[c]);
      internal::TreePieces ps =
          internal::decompose_tree(lchildren, local.at(mb.root), cfg_.piece_bound());

      // Create pieces, wire parent/child refs, send to random modules.
      std::vector<PieceId> pid(ps.pieces.size());
      std::vector<std::uint32_t> pmod(ps.pieces.size());
      for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
        pid[pi] = fresh_piece_id();
        pmod[pi] = static_cast<std::uint32_t>(sys_->random_module());
      }
      std::vector<Piece> built(ps.pieces.size());
      for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
        Piece& piece = built[pi];
        piece.id = pid[pi];
        piece.parent_piece = ps.pieces[pi].parent_piece < 0
                                 ? kNone
                                 : pid[ps.pieces[pi].parent_piece];
        piece.root_block = order[back[ps.pieces[pi].root]];
        for (int ln : ps.pieces[pi].nodes) {
          BlockId b = order[back[ln]];
          piece.entries.push_back(make_entry(b));
          blocks_[b].piece = pid[pi];
        }
        HostPieceInfo info;
        info.module = pmod[pi];
        info.parent = piece.parent_piece;
        info.root_block = piece.root_block;
        info.entries = piece.entries.size();
        pieces_.emplace(pid[pi], info);
      }
      for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
        int pp = ps.pieces[pi].parent_piece;
        if (pp < 0) continue;
        ChildPieceRef ref;
        ref.piece = pid[pi];
        ref.module = pmod[pi];
        ref.root = make_entry(built[pi].root_block);
        built[pp].children.push_back(ref);
        pieces_[pid[pp]].children.push_back(pid[pi]);
        pieces_[pid[pi]].depth = pieces_[pid[pp]].depth + 1;
      }
      for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
        all_built.push_back(std::move(built[pi]));
        all_mod.push_back(pmod[pi]);
      }
      // Master root for this meta-block = the piece containing its root.
      int root_piece = ps.piece_of[local.at(mb.root)];
      MasterRoot mr;
      mr.root = make_entry(order[back[local.at(mb.root)]]);
      mr.piece = pid[root_piece];
      mr.module = pmod[root_piece];
      master_roots_.push_back(mr);
    }

    // Master-tree edges: link each non-root meta-block's root piece as a
    // child of the piece holding its parent block's entry (paper Section
    // 4.4: the master-tree organizes meta-blocks). This makes the whole
    // meta-tree reachable by piece descent (used by SubtreeQuery).
    {
      std::unordered_map<std::uint64_t, std::size_t> built_of_piece;
      for (std::size_t i = 0; i < all_built.size(); ++i)
        built_of_piece[all_built[i].id] = i;
      for (const auto& mr : master_roots_) {
        if (mr.root.block == root_block_) continue;
        BlockId parent = blocks_.at(mr.root.block).parent;
        PieceId host_piece = blocks_.at(parent).piece;
        ChildPieceRef ref;
        ref.piece = mr.piece;
        ref.module = mr.module;
        ref.root = mr.root;
        all_built[built_of_piece.at(host_piece)].children.push_back(ref);
        pieces_.at(host_piece).children.push_back(mr.piece);
        pieces_.at(mr.piece).parent = host_piece;
      }
    }

    std::vector<pim::Buffer> pbuf(sys_->p());
    for (std::size_t i = 0; i < all_built.size(); ++i) {
      detail::FrameWriter fw{pbuf[all_mod[i]]};
      fw.begin();
      BufWriter bw{pbuf[all_mod[i]]};
      bw.u64(detail::kStorePiece);
      all_built[i].serialize(pbuf[all_mod[i]]);
      fw.end();
    }
    obs::Phase push_phase("ChunkPush");
    const hash::PolyHasher& hasher = hasher_;
    unsigned w = cfg_.w;
    std::uint64_t inst = instance_;
    sys_->round("build.pieces", std::move(pbuf),
                [inst, &hasher, w](pim::Module& m, pim::Buffer in) {
                  return detail::kernel(m, std::move(in), inst, hasher, w);
                });
  }

  // 7. Replicate the master on every module.
  push_master("build.master");
}

std::size_t PimTrie::space_words() const {
  std::size_t words = 0;
  for (std::size_t i = 0; i < sys_->p(); ++i) {
    const auto& mod = const_cast<pim::System*>(sys_)->module(i);
    if (mod.has_state<detail::ModuleState>(instance_))
      words +=
          const_cast<pim::Module&>(mod).state<detail::ModuleState>(instance_).space_words();
  }
  return words;
}

double PimTrie::space_imbalance() const {
  std::vector<std::size_t> per(sys_->p(), 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < sys_->p(); ++i) {
    auto& mod = const_cast<pim::System*>(sys_)->module(i);
    if (mod.has_state<detail::ModuleState>(instance_))
      per[i] = mod.state<detail::ModuleState>(instance_).space_words();
    total += per[i];
  }
  if (total == 0) return 1.0;
  double mean = static_cast<double>(total) / static_cast<double>(per.size());
  return static_cast<double>(*std::max_element(per.begin(), per.end())) / mean;
}

}  // namespace ptrie::pimtrie

namespace ptrie::pimtrie {

std::vector<std::pair<core::BitString, trie::Value>> PimTrie::debug_collect() const {
  std::vector<std::pair<core::BitString, trie::Value>> out;
  if (root_block_ == kNone) return out;
  auto& sys = *const_cast<pim::System*>(sys_);
  auto block_of = [&](BlockId id) -> const Block* {
    auto it = blocks_.find(id);
    if (it == blocks_.end()) return nullptr;
    auto& mod = sys.module(it->second.module);
    auto& st = mod.state<detail::ModuleState>(instance_);
    auto bit = st.blocks.find(id);
    return bit == st.blocks.end() ? nullptr : &bit->second;
  };
  // DFS over blocks, stitching strings at mirror stubs.
  struct Frame {
    BlockId block;
    core::BitString base;
  };
  std::vector<Frame> bstack{{root_block_, core::BitString()}};
  while (!bstack.empty()) {
    Frame f = std::move(bstack.back());
    bstack.pop_back();
    const Block* blk = block_of(f.block);
    if (blk == nullptr) continue;
    std::vector<std::pair<trie::NodeId, core::BitString>> nstack{
        {blk->trie.root(), f.base}};
    while (!nstack.empty()) {
      auto [id, s] = std::move(nstack.back());
      nstack.pop_back();
      if (blk->is_mirror(id)) {
        bstack.push_back({blk->mirrors.at(id), s});
        continue;
      }
      const auto& n = blk->trie.node(id);
      if (n.has_value) out.emplace_back(s, n.value);
      for (int b = 0; b < 2; ++b) {
        trie::NodeId c = n.child[b];
        if (c == kNil) continue;
        core::BitString cs = s;
        cs.append(blk->trie.node(c).edge);
        nstack.emplace_back(c, std::move(cs));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string PimTrie::debug_check() const {
  auto& sys = *const_cast<pim::System*>(sys_);
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 4000) problems += s + "\n";
  };
  // Every directory block exists on its module with matching metadata,
  // and its meta entry is present in the recorded piece with consistent
  // (spre, srem, slast).
  for (const auto& [id, info] : blocks_) {
    auto& st = sys.module(info.module).state<detail::ModuleState>(instance_);
    auto bit = st.blocks.find(id);
    if (bit == st.blocks.end()) {
      complain("block " + std::to_string(id) + " missing on module");
      continue;
    }
    const Block& blk = bit->second;
    if (blk.root_depth != info.root_depth)
      complain("block " + std::to_string(id) + " depth mismatch");
    if (blk.root_hash != info.root_hash)
      complain("block " + std::to_string(id) + " hash mismatch");
    // Mirror stubs match the directory's children list.
    std::vector<BlockId> kids;
    for (const auto& [n, cb] : blk.mirrors) kids.push_back(cb);
    std::sort(kids.begin(), kids.end());
    std::vector<BlockId> want = info.children;
    std::sort(want.begin(), want.end());
    if (kids != want) {
      std::string msg = "block " + std::to_string(id) + " mirror/children mismatch: mirrors={";
      for (auto k : kids) msg += std::to_string(k) + ",";
      msg += "} children={";
      for (auto k : want) msg += std::to_string(k) + ",";
      msg += "}";
      complain(msg);
    }
    if (id != root_block_) {
      if (info.piece == kNone || !pieces_.contains(info.piece)) {
        complain("block " + std::to_string(id) + " has no piece");
      } else {
        const auto& pinfo = pieces_.at(info.piece);
        auto& pst = sys.module(pinfo.module).state<detail::ModuleState>(instance_);
        auto pit = pst.pieces.find(info.piece);
        if (pit == pst.pieces.end()) {
          complain("piece " + std::to_string(info.piece) + " missing on module");
        } else {
          const MetaEntry* e = pit->second.entry_of(id);
          if (e == nullptr) {
            complain("block " + std::to_string(id) + " entry missing in piece " +
                     std::to_string(info.piece));
          } else {
            if (e->root_depth != info.root_depth)
              complain("entry depth mismatch block " + std::to_string(id));
            if (e->root_hash != info.root_hash)
              complain("entry hash mismatch block " + std::to_string(id));
            std::uint64_t pivot = (info.root_depth / cfg_.w) * cfg_.w;
            if (e->srem.size() != info.root_depth - pivot)
              complain("entry srem size mismatch block " + std::to_string(id));
          }
        }
      }
    }
  }
  // Host piece directory vs resident pieces: linkage, entry counts, the
  // replicated child roots, and the two-layer index over each piece.
  for (const auto& [pid, pinfo] : pieces_) {
    auto& st = sys.module(pinfo.module).state<detail::ModuleState>(instance_);
    auto pit = st.pieces.find(pid);
    if (pit == st.pieces.end()) {
      complain("piece " + std::to_string(pid) + " missing on module");
      continue;
    }
    const Piece& pc = pit->second;
    if (pc.id != pid) complain("piece " + std::to_string(pid) + " id mismatch");
    // (The module-side parent_piece field may go stale when a child piece
    // is re-homed by a split/rebuild; only the host directory is
    // authoritative for piece linkage, so it is not checked here.)
    if (pc.root_block != pinfo.root_block)
      complain("piece " + std::to_string(pid) + " root block mismatch");
    if (pc.entries.size() != pinfo.entries)
      complain("piece " + std::to_string(pid) + " entry count host=" +
               std::to_string(pinfo.entries) + " module=" + std::to_string(pc.entries.size()));
    std::vector<PieceId> kids;
    for (const auto& c : pc.children) kids.push_back(c.piece);
    std::sort(kids.begin(), kids.end());
    std::vector<PieceId> want = pinfo.children;
    std::sort(want.begin(), want.end());
    if (kids != want) complain("piece " + std::to_string(pid) + " child refs mismatch");
    for (const auto& c : pc.children) {
      auto cit = pieces_.find(c.piece);
      if (cit == pieces_.end()) {
        complain("piece " + std::to_string(pid) + " child ref to unknown piece " +
                 std::to_string(c.piece));
      } else {
        if (cit->second.parent != pid)
          complain("piece " + std::to_string(c.piece) + " parent link disagrees");
        if (c.module != cit->second.module)
          complain("piece " + std::to_string(pid) + " stale child module for " +
                   std::to_string(c.piece));
        if (c.root.block != cit->second.root_block)
          complain("piece " + std::to_string(pid) + " stale child root for " +
                   std::to_string(c.piece));
      }
    }
    if (pc.index().size() != pc.entries.size() + pc.children.size())
      complain("piece " + std::to_string(pid) + " index size mismatch");
    std::string ip = pc.index().debug_check();
    if (!ip.empty()) complain("piece " + std::to_string(pid) + " index: " + ip);
    for (const auto& e : pc.entries) {
      auto bit = blocks_.find(e.block);
      if (bit == blocks_.end())
        complain("piece " + std::to_string(pid) + " entry for unknown block " +
                 std::to_string(e.block));
      else if (bit->second.piece != pid)
        complain("block " + std::to_string(e.block) + " directory piece disagrees with " +
                 std::to_string(pid));
    }
  }
  // Master replication: every module holds an identical replica of the
  // host's master roots, with a matching index.
  for (std::uint32_t m = 0; m < sys.p(); ++m) {
    auto& mod = sys.module(m);
    if (!mod.has_state<detail::ModuleState>(instance_)) continue;
    const auto& mr = mod.state<detail::ModuleState>(instance_).master;
    if (mr.roots.size() != master_roots_.size() ||
        mr.piece_of.size() != master_roots_.size() ||
        mr.module_of.size() != master_roots_.size()) {
      complain("module " + std::to_string(m) + " master replica size mismatch");
      continue;
    }
    for (std::size_t i = 0; i < master_roots_.size(); ++i) {
      const MasterRoot& h = master_roots_[i];
      if (mr.roots[i].block != h.root.block || mr.roots[i].root_hash != h.root.root_hash ||
          mr.roots[i].root_depth != h.root.root_depth)
        complain("module " + std::to_string(m) + " master root " + std::to_string(i) +
                 " diverged");
      if (mr.piece_of[i] != h.piece || mr.module_of[i] != h.module)
        complain("module " + std::to_string(m) + " master routing " + std::to_string(i) +
                 " diverged");
    }
    if (mr.index.size() != mr.roots.size())
      complain("module " + std::to_string(m) + " master index size mismatch");
  }
  for (const MasterRoot& h : master_roots_) {
    if (!pieces_.contains(h.piece))
      complain("master root piece " + std::to_string(h.piece) + " not in directory");
  }
  // Key accounting: per-block directory key counts sum to n_keys_.
  std::size_t keysum = 0;
  for (const auto& [id, info] : blocks_) keysum += info.keys;
  if (keysum != n_keys_)
    complain("key count mismatch: directory sum " + std::to_string(keysum) + " vs n_keys " +
             std::to_string(n_keys_));
  return problems;
}

std::string PimTrie::debug_check_deep() const {
  auto& sys = *const_cast<pim::System*>(sys_);
  std::string problems;
  auto complain = [&](const std::string& s) {
    if (problems.size() < 4000) problems += s + "\n";
  };
  // Exact host-directory accounting against the resident blocks; mirror
  // stubs never carry values.
  for (const auto& [id, info] : blocks_) {
    auto& st = sys.module(info.module).state<detail::ModuleState>(instance_);
    auto bit = st.blocks.find(id);
    if (bit == st.blocks.end()) continue;  // debug_check() reports this
    const Block& blk = bit->second;
    if (info.space != blk.space_words())
      complain("block " + std::to_string(id) + " space host=" + std::to_string(info.space) +
               " actual=" + std::to_string(blk.space_words()));
    if (info.keys != blk.trie.key_count())
      complain("block " + std::to_string(id) + " keys host=" + std::to_string(info.keys) +
               " actual=" + std::to_string(blk.trie.key_count()));
    for (const auto& [n, cb] : blk.mirrors) {
      if (blk.trie.node(n).has_value)
        complain("block " + std::to_string(id) + " mirror stub carries a value");
    }
  }
  // Occupancy: piece entries within the split bound; meta-block-tree
  // heights within the scapegoat envelope (relaxed to the global piece
  // count, which only loosens the log).
  std::size_t height_bound = 2 * Config::log2_ceil(std::max<std::size_t>(pieces_.size(), 2)) + 4;
  for (const auto& [pid, pinfo] : pieces_) {
    if (pinfo.entries > cfg_.piece_bound())
      complain("piece " + std::to_string(pid) + " over bound: " + std::to_string(pinfo.entries) +
               " > " + std::to_string(cfg_.piece_bound()));
    if (pinfo.depth > height_bound)
      complain("piece " + std::to_string(pid) + " depth " + std::to_string(pinfo.depth) +
               " exceeds height bound " + std::to_string(height_bound));
  }
  return problems;
}

void PimTrie::debug_corrupt(int kind) {
  if (kind == 0) {
    n_keys_ ^= 1;
  } else if (!blocks_.empty()) {
    blocks_.begin()->second.root_hash ^= 1;
  }
}

}  // namespace ptrie::pimtrie
