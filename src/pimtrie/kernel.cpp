// The on-module half of PimTrie: one kernel dispatching the framed
// message protocol of detail.hpp. Every branch charges PIM work
// proportional to the instructions a real DPU program would execute.

#include "pimtrie/detail.hpp"

#include "core/check.hpp"
#include "obs/counters.hpp"

namespace {
// Kernels execute on pool workers; both the log call (single fwrite)
// and the counters (relaxed atomics) are safe there.
bool kdebug() {
  static const bool on = ptrie::obs::log_enabled(ptrie::obs::LogLevel::kDebug);
  return on;
}
constexpr auto kDebug = ptrie::obs::LogLevel::kDebug;
}  // namespace

namespace ptrie::pimtrie::detail {

using core::BitString;
using trie::kNil;
using trie::NodeId;

namespace {

// Looks up a wire-supplied id in a module-resident map. Ids arrive in host
// messages — across a trust boundary — so a stale or corrupted id must
// surface as a structured error with module context, not release-mode UB.
template <class Map>
typename Map::mapped_type& require(Map& m, std::uint64_t id, const char* what,
                                   std::size_t mod_id) {
  auto it = m.find(id);
  PTRIE_CHECK(it != m.end(), "m%zu: %s %llu not resident", mod_id, what,
              static_cast<unsigned long long>(id));
  return it->second;
}

void write_match_lens(BufWriter& w, const std::vector<MatchLen>& lens) {
  w.u64(lens.size());
  for (const auto& ml : lens) {
    w.u64(ml.origin);
    w.u64(ml.match_len);
    w.u64((ml.full ? 1u : 0u) | (ml.boundary ? 2u : 0u));
  }
}

void write_resolved_matches(BufWriter& w, const std::vector<ResolvedMatch>& ms,
                            const Piece* piece, const MasterReplica* master) {
  w.u64(ms.size());
  for (const auto& m : ms) {
    w.u64(m.point.origin);
    w.u64(m.point.abs_depth);
    w.u64(m.point.at_node_end ? 1 : 0);
    m.entry->serialize(w.out);
    // Descent info: for child-piece hits, where to go next; for master
    // hits, which root piece owns the matched root.
    if (master != nullptr) {
      IndexPayload pl = m.point.payload;
      w.u64(master->piece_of[pl.idx]);
      w.u64(master->module_of[pl.idx]);
    } else if (m.point.payload.kind == IndexPayload::kChild &&
               piece != nullptr && m.entry == &piece->children[m.point.payload.idx].root) {
      const auto& c = piece->children[m.point.payload.idx];
      w.u64(c.piece);
      w.u64(c.module);
    } else {
      w.u64(kNone);  // hit resolved to a local entry: no descent
      w.u64(0);
    }
  }
}

}  // namespace

pim::Buffer kernel(pim::Module& mod, pim::Buffer in, std::uint64_t instance,
                   const hash::PolyHasher& hasher, unsigned w) {
  auto& st = mod.state<ModuleState>(instance);
  pim::Buffer out;
  BufReader r{in};
  std::uint64_t work = 0;

  while (!r.done()) {
    std::uint64_t frame_words = r.u64();
    std::size_t frame_end = r.pos + frame_words;
    Op op = static_cast<Op>(r.u64());
    FrameWriter fw{out};
    fw.begin();
    BufWriter bw{out};

    switch (op) {
      case kStoreBlock: {
        Block b = Block::deserialize(r);
        work += b.space_words() / 4 + 1;
        BlockId id = b.id;
        st.blocks[id] = std::move(b);
        bw.u64(st.blocks[id].space_words());
        break;
      }
      case kDeleteBlock: {
        BlockId id = r.u64();
        st.blocks.erase(id);
        work += 1;
        bw.u64(1);
        break;
      }
      case kFetchBlock: {
        BlockId id = r.u64();
        const Block& blk = require(st.blocks, id, "block", mod.id());
        blk.serialize(out);
        work += blk.space_words() / 4 + 1;
        break;
      }
      case kMatchBlock: {
        BlockId id = r.u64();
        // Host's view of the block root hash: verification hook (Section
        // 4.4.3) — fingerprints must agree or this span is a collision.
        std::uint64_t expect_fp = r.u64();
        QueryPiece q = QueryPiece::deserialize(r);
        const Block& blk = require(st.blocks, id, "block", mod.id());
        bool ok = hasher.fingerprint(blk.root_hash) == expect_fp &&
                  blk.root_depth == q.root_depth;
        // Bit-level check of the root context (S_last style).
        if (ok && !q.root_tail.empty()) {
          // The block's own trie has no tail, but root_hash equality at
          // full 61 bits is checked host-side only when fingerprints are
          // full; with truncated fingerprints rely on depth + tail via
          // the piece metadata (already validated in hash matching).
        }
        bw.u64(ok ? 1 : 0);
        if (ok) {
          auto lens = match_block(q, blk, &work);
          write_match_lens(bw, lens);
        }
        break;
      }
      case kInsertBlock: {
        BlockId id = r.u64();
        std::uint64_t expect_fp = r.u64();
        QueryPiece q = QueryPiece::deserialize(r);
        Block& blk = require(st.blocks, id, "block", mod.id());
        bool ok = hasher.fingerprint(blk.root_hash) == expect_fp &&
                  blk.root_depth == q.root_depth;
        bw.u64(ok ? 1 : 0);
        if (ok) {
          auto lens = match_block(q, blk, &work);
          write_match_lens(bw, lens);
          InsertStats s = insert_into_block(q, blk, &work);
          bw.u64(s.new_keys);
          bw.u64(s.updated_keys);
          bw.u64(blk.space_words());
          bw.u64(blk.trie.key_count());
        }
        break;
      }
      case kEraseBlock: {
        BlockId id = r.u64();
        std::uint64_t expect_fp = r.u64();
        QueryPiece q = QueryPiece::deserialize(r);
        Block& blk = require(st.blocks, id, "block", mod.id());
        bool ok = hasher.fingerprint(blk.root_hash) == expect_fp &&
                  blk.root_depth == q.root_depth;
        bw.u64(ok ? 1 : 0);
        if (ok) {
          auto lens = match_block(q, blk, &work);
          write_match_lens(bw, lens);
          std::size_t removed = erase_from_block(q, blk, &work);
          bw.u64(removed);
          bw.u64(blk.trie.key_count());
          bw.u64(blk.mirrors.size());
          bw.u64(blk.space_words());
        }
        break;
      }
      case kGetBlock: {
        BlockId id = r.u64();
        std::uint64_t expect_fp = r.u64();
        QueryPiece q = QueryPiece::deserialize(r);
        const Block& blk = require(st.blocks, id, "block", mod.id());
        bool ok = hasher.fingerprint(blk.root_hash) == expect_fp &&
                  blk.root_depth == q.root_depth;
        bw.u64(ok ? 1 : 0);
        if (ok) {
          auto lens = match_block(q, blk, &work);
          write_match_lens(bw, lens);
          auto hits = get_from_block(q, blk, &work);
          bw.u64(hits.size());
          for (auto [origin, value] : hits) {
            bw.u64(origin);
            bw.u64(value);
          }
        }
        break;
      }
      case kSliceBlock: {
        BlockId id = r.u64();
        std::uint64_t abs_depth = r.u64();
        BitString suffix = r.bits();
        const Block& blk = require(st.blocks, id, "block", mod.id());
        // Walk the suffix from the block root to locate the position.
        trie::Position pos{blk.trie.root(), 0};
        std::size_t walked;
        std::tie(walked, pos) = blk.trie.lcp(suffix);
        work += suffix.size() / 64 + 2;
        bool found = walked == suffix.size();
        bw.u64(found ? 1 : 0);
        if (found) {
          SubtreeSlice slice = slice_block(blk, pos, abs_depth, &work);
          bw.u64(slice.root_depth);
          // Translate mirror node ids to preorder slots for the wire.
          std::vector<NodeId> order = slice.trie.preorder_ids();
          std::vector<std::uint32_t> slot_of(slice.trie.slot_count(), 0);
          for (std::size_t i = 0; i < order.size(); ++i)
            slot_of[order[i]] = static_cast<std::uint32_t>(i);
          bw.u64(slice.child_blocks.size());
          for (auto [node, cb] : slice.child_blocks) {
            bw.u64(slot_of[node]);
            bw.u64(cb);
          }
          slice.trie.serialize(out);
        }
        break;
      }
      case kSeekBlock: {
        BlockId id = r.u64();
        BitString suffix = r.bits();
        std::uint64_t dir = r.u64();  // 0 = min, 1 = max
        const Block& blk = require(st.blocks, id, "block", mod.id());
        trie::Position pos{blk.trie.root(), 0};
        std::size_t walked;
        std::tie(walked, pos) = blk.trie.lcp(suffix);
        work += suffix.size() / 64 + 2;
        if (walked != suffix.size()) {
          bw.u64(0);  // miss: nothing in this block extends the seek point
          break;
        }
        // Mid-edge match: every key below the seek point runs through
        // pos.node, reached via the unmatched tail of its edge.
        BitString path0;
        if (pos.above > 0) {
          const BitString& edge = blk.trie.node(pos.node).edge;
          path0 = edge.suffix(edge.size() - pos.above);
        }
        struct Item {
          NodeId n;
          std::uint32_t post;  // max order: emit own value after children
          BitString path;      // bits below the seek point
        };
        std::vector<Item> stack{{pos.node, 0, std::move(path0)}};
        std::uint64_t kind = 0;
        while (!stack.empty() && kind == 0) {
          Item it = std::move(stack.back());
          stack.pop_back();
          ++work;
          const auto& n = blk.trie.node(it.n);
          if (it.post) {
            if (n.has_value) {
              bw.u64(kind = 1);
              bw.bits(it.path);
              bw.u64(n.value);
            }
            continue;
          }
          if (blk.is_mirror(it.n)) {
            // A stub's content (its own key included) lives in the child
            // block; the host continues the descent there.
            bw.u64(kind = 2);
            bw.u64(blk.mirrors.at(it.n));
            bw.bits(it.path);
            continue;
          }
          if (dir == 0) {
            // Min order: the node's own key is a prefix of everything
            // below it, then the 0-subtree, then the 1-subtree.
            if (n.has_value) {
              bw.u64(kind = 1);
              bw.bits(it.path);
              bw.u64(n.value);
              continue;
            }
            for (int b = 1; b >= 0; --b) {
              if (n.child[b] == kNil) continue;
              BitString cp = it.path;
              cp.append(blk.trie.node(n.child[b]).edge);
              stack.push_back({n.child[b], 0, std::move(cp)});
            }
          } else {
            // Max order: 1-subtree, then 0-subtree, then the own key.
            stack.push_back({it.n, 1, it.path});
            for (int b = 0; b <= 1; ++b) {
              if (n.child[b] == kNil) continue;
              BitString cp = it.path;
              cp.append(blk.trie.node(n.child[b]).edge);
              stack.push_back({n.child[b], 0, std::move(cp)});
            }
          }
        }
        if (kind == 0) bw.u64(0);  // no stored key under the seek point
        break;
      }
      case kRemoveMirror: {
        BlockId id = r.u64();
        BlockId child = r.u64();
        Block& blk = require(st.blocks, id, "block", mod.id());
        NodeId stub = kNil;
        for (const auto& [node, cb] : blk.mirrors)
          if (cb == child) stub = node;
        if (stub != kNil) {
          blk.mirrors.erase(stub);
          if (blk.trie.node(stub).child[0] == kNil && blk.trie.node(stub).child[1] == kNil &&
              !blk.trie.node(stub).has_value && stub != blk.trie.root()) {
            blk.trie.remove_leaf(stub);
          }
        }
        work += blk.mirrors.size() + 2;
        bw.u64(blk.trie.key_count());
        bw.u64(blk.mirrors.size());
        bw.u64(blk.space_words());
        break;
      }

      case kStorePiece: {
        Piece p = Piece::deserialize(r);
        p.build_index(hasher, w);
        work += (p.entries.size() + p.children.size()) * 4 + 1;
        PieceId id = p.id;
        st.pieces[id] = std::move(p);
        bw.u64(1);
        break;
      }
      case kDeletePiece: {
        PieceId id = r.u64();
        st.pieces.erase(id);
        work += 1;
        bw.u64(1);
        break;
      }
      case kFetchPiece: {
        PieceId id = r.u64();
        const Piece& piece = require(st.pieces, id, "piece", mod.id());
        piece.serialize(out);
        work += piece.wire_words() / 4 + 1;
        break;
      }
      case kMatchPiece: {
        PieceId id = r.u64();
        QueryPiece q = QueryPiece::deserialize(r);
        const Piece& piece = require(st.pieces, id, "piece", mod.id());
        HashMatchStats hms;
        auto matches = hash_match(
            q, piece.index(), hasher, w,
            [&](IndexPayload pl) -> const MetaEntry* {
              return pl.kind == IndexPayload::kEntry ? &piece.entries[pl.idx]
                                                     : &piece.children[pl.idx].root;
            },
            [&](BlockId b) { return piece.entry_of(b); }, &hms, &work);
        obs::counter("kernel/pivot_lookups").add(hms.pivot_lookups);
        obs::counter("kernel/second_layer_queries").add(hms.second_layer_queries);
        obs::counter("kernel/verifications").add(hms.verifications);
        obs::counter("kernel/rejected_collisions").add(hms.rejected_collisions);
        if (kdebug())
          obs::logf(kDebug, "kMatchPiece",
                    "m%zu p%llu entries=%zu kids=%zu matches=%zu piv=%llu sl=%llu ver=%llu rej=%llu qdepth=%llu qsize=%zu",
                    mod.id(), (unsigned long long)id, piece.entries.size(),
                    piece.children.size(), matches.size(),
                    (unsigned long long)hms.pivot_lookups,
                    (unsigned long long)hms.second_layer_queries,
                    (unsigned long long)hms.verifications,
                    (unsigned long long)hms.rejected_collisions,
                    (unsigned long long)q.root_depth, q.trie.node_count());
        write_resolved_matches(bw, matches, &piece, nullptr);
        break;
      }
      case kFetchPieceChildren: {
        PieceId id = r.u64();
        const Piece& piece = require(st.pieces, id, "piece", mod.id());
        bw.u64(piece.children.size());
        for (const auto& c : piece.children) c.serialize(out);
        work += piece.children.size() * 4 + 1;
        break;
      }
      case kPieceAddEntries: {
        PieceId id = r.u64();
        std::uint64_t n = r.u64();
        Piece& piece = require(st.pieces, id, "piece", mod.id());
        for (std::uint64_t i = 0; i < n; ++i)
          piece.entries.push_back(MetaEntry::deserialize(r));
        piece.build_index(hasher, w);
        work += piece.entries.size() * 4 + 1;
        bw.u64(piece.entries.size());
        break;
      }
      case kPieceRemoveEntries: {
        PieceId id = r.u64();
        std::uint64_t n = r.u64();
        Piece& piece = require(st.pieces, id, "piece", mod.id());
        std::vector<BlockId> victims(n);
        for (auto& v : victims) v = r.u64();
        std::erase_if(piece.entries, [&](const MetaEntry& e) {
          for (BlockId v : victims)
            if (e.block == v) return true;
          return false;
        });
        piece.build_index(hasher, w);
        work += piece.entries.size() * 4 + n + 1;
        bw.u64(piece.entries.size());
        break;
      }
      case kPieceSetChildren: {
        PieceId id = r.u64();
        std::uint64_t n = r.u64();
        Piece& piece = require(st.pieces, id, "piece", mod.id());
        piece.children.clear();
        for (std::uint64_t i = 0; i < n; ++i)
          piece.children.push_back(ChildPieceRef::deserialize(r));
        piece.build_index(hasher, w);
        work += piece.children.size() * 4 + 1;
        bw.u64(1);
        break;
      }
      case kPieceSetParent: {
        PieceId id = r.u64();
        BlockId block = r.u64();
        BlockId new_parent = r.u64();
        Piece& piece = require(st.pieces, id, "piece", mod.id());
        for (auto& e : piece.entries)
          if (e.block == block) e.parent_block = new_parent;
        for (auto& c : piece.children)
          if (c.root.block == block) c.root.parent_block = new_parent;
        work += piece.entries.size() + piece.children.size();
        bw.u64(1);
        break;
      }
      case kPieceDropChildRef: {
        PieceId id = r.u64();
        PieceId child = r.u64();
        Piece& piece = require(st.pieces, id, "piece", mod.id());
        auto& kids = piece.children;
        std::erase_if(kids, [&](const ChildPieceRef& c) { return c.piece == child; });
        piece.build_index(hasher, w);
        work += kids.size() + 1;
        bw.u64(1);
        break;
      }
      case kCollectSubtree: {
        PieceId id = r.u64();
        BlockId target = r.u64();
        const Piece& piece = require(st.pieces, id, "piece", mod.id());
        // Entries of this piece whose meta-tree ancestor chain (within
        // the piece) reaches `target`, or the target itself. Incremental
        // inserts append entries in arbitrary order, so close over the
        // parent links by BFS rather than a positional pass.
        std::unordered_multimap<std::uint64_t, const MetaEntry*> by_parent;
        for (const auto& e : piece.entries) {
          by_parent.emplace(e.parent_block, &e);
          work += 1;
        }
        std::unordered_map<std::uint64_t, bool> under;
        under[target] = true;
        std::vector<const MetaEntry*> collected;
        std::vector<BlockId> bfs{target};
        while (!bfs.empty()) {
          BlockId b = bfs.back();
          bfs.pop_back();
          auto [lo, hi] = by_parent.equal_range(b);
          for (auto pe = lo; pe != hi; ++pe) {
            const MetaEntry* e = pe->second;
            if (under.contains(e->block)) continue;
            under[e->block] = true;
            collected.push_back(e);
            bfs.push_back(e->block);
            work += 1;
          }
        }
        bw.u64(collected.size());
        for (const auto* e : collected) e->serialize(out);
        // Child pieces anchored under the target.
        std::vector<const ChildPieceRef*> kids;
        for (const auto& c : piece.children) {
          auto u = under.find(c.root.parent_block);
          if (u != under.end() && u->second) kids.push_back(&c);
          work += 1;
        }
        bw.u64(kids.size());
        for (const auto* c : kids) c->serialize(out);
        break;
      }

      case kStoreMaster: {
        MasterReplica rep;
        std::uint64_t n = r.u64();
        rep.roots.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          rep.roots.push_back(MetaEntry::deserialize(r));
          rep.piece_of.push_back(r.u64());
          rep.module_of.push_back(static_cast<std::uint32_t>(r.u64()));
        }
        rep.rebuild(hasher, w);
        work += n * 4 + 1;
        st.master = std::move(rep);
        bw.u64(1);
        break;
      }
      case kMatchMaster: {
        QueryPiece q = QueryPiece::deserialize(r);
        const MasterReplica& rep = st.master;
        HashMatchStats hms;
        auto matches = hash_match(
            q, rep.index, hasher, w,
            [&](IndexPayload pl) -> const MetaEntry* { return &rep.roots[pl.idx]; },
            [&](BlockId b) -> const MetaEntry* {
              for (const auto& root : rep.roots)
                if (root.block == b) return &root;
              return nullptr;
            },
            &hms, &work);
        obs::counter("kernel/pivot_lookups").add(hms.pivot_lookups);
        obs::counter("kernel/second_layer_queries").add(hms.second_layer_queries);
        obs::counter("kernel/verifications").add(hms.verifications);
        obs::counter("kernel/rejected_collisions").add(hms.rejected_collisions);
        if (kdebug())
          obs::logf(kDebug, "kMatchMaster",
                    "m%zu roots=%zu matches=%zu piv=%llu sl=%llu ver=%llu rej=%llu qdepth=%llu qsize=%zu",
                    mod.id(), rep.roots.size(), matches.size(),
                    (unsigned long long)hms.pivot_lookups,
                    (unsigned long long)hms.second_layer_queries,
                    (unsigned long long)hms.verifications,
                    (unsigned long long)hms.rejected_collisions,
                    (unsigned long long)q.root_depth, q.trie.node_count());
        // Re-tag payload idx for piece resolution: the writer needs the
        // master root index; entries resolved via parent keep their
        // original payload, so recover indices by pointer arithmetic.
        for (auto& m : matches) {
          std::size_t idx = static_cast<std::size_t>(m.entry - rep.roots.data());
          m.point.payload = {IndexPayload::kEntry, static_cast<std::uint32_t>(idx)};
        }
        write_resolved_matches(bw, matches, nullptr, &rep);
        break;
      }
    }

    fw.end();
    PTRIE_CHECK(r.pos == frame_end,
                "m%zu: op %d frame over/under-read (pos %zu, frame end %zu)", mod.id(),
                static_cast<int>(op), r.pos, frame_end);
    r.pos = frame_end;
  }

  mod.work(work);
  return out;
}

}  // namespace ptrie::pimtrie::detail
