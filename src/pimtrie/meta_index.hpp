#pragma once
// The hash value manager's data plane (paper Section 4.4): meta-tree
// entries (one per data-trie block), meta-block pieces (connected
// fragments of the meta-tree bounded by K_SMB, organized into
// meta-block trees of height O(log P)), the replicated master index, and
// the pivot-based HashMatching routine (Algorithm 3 with the Section
// 4.4.2 two-layer optimization and the Section 4.4.3 S_last
// verification).
//
// A block root whose string is S is indexed under
//   first layer:  fingerprint(hash(S_pre)), S_pre = longest prefix of S
//                 with length a multiple of w;
//   second layer: S_rem = S after S_pre (|S_rem| = |S| mod w), in a
//                 SecondLayerIndex (y-fast + validity vectors);
// and carries S_last (the last min(w,|S|) bits) for verification.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bitstring.hpp"
#include "fasttrie/second_layer.hpp"
#include "hash/poly_hash.hpp"
#include "pimtrie/block.hpp"
#include "pimtrie/types.hpp"

namespace ptrie::pimtrie {

// One meta-tree node: the metadata of one data-trie block.
struct MetaEntry {
  BlockId block = kNone;
  std::uint32_t module = 0;       // module holding the data block
  hash::HashVal root_hash = 0;    // full hash of the root string S
  std::uint64_t root_depth = 0;   // |S| in bits
  BlockId parent_block = kNone;   // meta-tree parent
  hash::HashVal spre_hash = 0;    // hash(S_pre)
  core::BitString srem;           // |S| mod w bits
  core::BitString slast;          // last min(w, |S|) bits of S

  void serialize(pim::Buffer& out) const;
  static MetaEntry deserialize(BufReader& r);
};

// Reference to a child piece in the meta-block tree, replicated in the
// parent piece (the "critical information" of Section 5.2): enough to
// hash-match the child's root without visiting the child.
struct ChildPieceRef {
  PieceId piece = kNone;
  std::uint32_t module = 0;
  MetaEntry root;  // the child piece's root meta entry (replicated)

  void serialize(pim::Buffer& out) const;
  static ChildPieceRef deserialize(BufReader& r);
};

// Payload tag for two-layer hits: is the hit one of this index's own
// entries or a replicated child-piece root?
struct IndexPayload {
  enum Kind : std::uint64_t { kEntry = 0, kChild = 1 };
  Kind kind = kEntry;
  std::uint32_t idx = 0;
  std::uint64_t encode() const { return (static_cast<std::uint64_t>(kind) << 32) | idx; }
  static IndexPayload decode(std::uint64_t v) {
    return {static_cast<Kind>(v >> 32), static_cast<std::uint32_t>(v)};
  }
};

// The two-layer index over a set of block-root metadata records.
class TwoLayerIndex {
 public:
  explicit TwoLayerIndex(unsigned w = 64) : w_(w) {}

  void insert(const hash::PolyHasher& hasher, const MetaEntry& root, IndexPayload payload);
  void erase(const hash::PolyHasher& hasher, const MetaEntry& root);
  void clear() { first_.clear(); }
  std::size_t size() const;

  // First-layer membership: is some root anchored at this pivot hash?
  bool has_pivot(std::uint64_t spre_fp) const { return first_.contains(spre_fp); }
  // Second-layer query: the best stored S_rem for the path window below
  // the pivot (paper's "find it or one of its direct children").
  std::optional<std::pair<core::BitString, std::uint64_t>> locate(
      std::uint64_t spre_fp, const core::BitString& window) const;

  std::size_t space_words() const;

  // Deep structural check of every second-layer index (validity vectors,
  // y-fast consistency). "" when healthy.
  std::string debug_check() const;

 private:
  unsigned w_;
  std::unordered_map<std::uint64_t, fasttrie::SecondLayerIndex> first_;
};

// One meta-block piece as stored on a module.
struct Piece {
  PieceId id = kNone;
  PieceId parent_piece = kNone;
  BlockId root_block = kNone;  // meta entry rooting this piece
  std::vector<MetaEntry> entries;
  std::vector<ChildPieceRef> children;

  void serialize(pim::Buffer& out) const;
  static Piece deserialize(BufReader& r);
  std::size_t wire_words() const;

  // Rebuilds the two-layer index over entries + child roots.
  void build_index(const hash::PolyHasher& hasher, unsigned w);
  const TwoLayerIndex& index() const { return index_; }
  const MetaEntry* entry_of(BlockId b) const;
  MetaEntry* entry_of(BlockId b);

 private:
  TwoLayerIndex index_{64};
  std::unordered_map<std::uint64_t, std::uint32_t> by_block_;
};

// A verified hash-match point found on a query piece.
struct MatchPoint {
  trie::NodeId qnode = trie::kNil;  // piece-local node whose edge hosts the point
  trie::NodeId origin = trie::kNil; // query-trie global id of qnode
  std::uint64_t abs_depth = 0;      // absolute depth of the matched root
  bool at_node_end = false;         // point coincides with qnode's end
  IndexPayload payload;             // what it matched in the index
};

struct HashMatchStats {
  std::uint64_t pivot_lookups = 0;
  std::uint64_t second_layer_queries = 0;
  std::uint64_t verifications = 0;
  std::uint64_t rejected_collisions = 0;
};

// Pivot-based HashMatching of a query piece against a two-layer index.
// Returns at most one (the deepest verified) match point per piece edge.
// `resolve` maps a candidate payload to its MetaEntry; `resolve_block`
// maps a meta-tree parent pointer to an entry of the same index (used
// for the Section 4.4.2 "direct child" case), or nullptr.
struct ResolvedMatch {
  MatchPoint point;
  const MetaEntry* entry = nullptr;
};
std::vector<ResolvedMatch> hash_match(
    const QueryPiece& q, const TwoLayerIndex& idx, const hash::PolyHasher& hasher,
    unsigned w, const std::function<const MetaEntry*(IndexPayload)>& resolve,
    const std::function<const MetaEntry*(BlockId)>& resolve_block, HashMatchStats* stats,
    std::uint64_t* work);

}  // namespace ptrie::pimtrie
