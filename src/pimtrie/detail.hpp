#pragma once
// Internal: per-module state and the round kernel protocol of PimTrie.
// Each BSP round ships a buffer of framed messages to each module; the
// kernel dispatches on an opcode per message and appends one framed
// response per message (in order). Not part of the public API.

#include <unordered_map>

#include "hash/poly_hash.hpp"
#include "pim/module.hpp"
#include "pimtrie/block.hpp"
#include "pimtrie/meta_index.hpp"

namespace ptrie::pimtrie::detail {

enum Op : std::uint64_t {
  kStoreBlock = 1,
  kDeleteBlock,
  kFetchBlock,
  kMatchBlock,    // block_id, QueryPiece -> MatchLens (+ verification)
  kInsertBlock,   // block_id, QueryPiece -> MatchLens + stats + new space
  kEraseBlock,    // block_id, QueryPiece -> removed + remaining keys
  kGetBlock,      // block_id, QueryPiece -> match lens + (origin, value) hits
  kSliceBlock,    // block_id, abs_depth, suffix bits -> SubtreeSlice
  kRemoveMirror,  // block_id, child_block -> ack

  kStorePiece,
  kDeletePiece,
  kFetchPiece,
  kMatchPiece,           // piece_id, QueryPiece -> resolved matches
  kFetchPieceChildren,   // piece_id -> ChildPieceRefs
  kPieceAddEntries,      // piece_id, entries... -> ack
  kPieceRemoveEntries,   // piece_id, block ids... -> ack
  kPieceSetChildren,     // piece_id, ChildPieceRefs... -> ack
  kPieceSetParent,       // piece_id, block, new_parent -> ack (entry + child refs)
  kPieceDropChildRef,    // piece_id, child_piece_id -> ack
  kCollectSubtree,       // piece_id, block_id -> entries under block + child pieces

  kStoreMaster,   // master roots -> ack
  kMatchMaster,   // QueryPiece -> resolved matches against master

  kSeekBlock,     // block_id, suffix bits, dir (0 min / 1 max) -> one
                  // extremum-descent step: miss | found(path, value) |
                  // descend(child_block, path) at a mirror stub
};

struct MasterReplica {
  std::vector<MetaEntry> roots;
  std::vector<std::uint64_t> piece_of;   // PieceId per root
  std::vector<std::uint32_t> module_of;  // module per root
  TwoLayerIndex index{64};

  void rebuild(const hash::PolyHasher& hasher, unsigned w) {
    index = TwoLayerIndex(w);
    for (std::uint32_t i = 0; i < roots.size(); ++i)
      index.insert(hasher, roots[i], {IndexPayload::kEntry, i});
  }
};

struct ModuleState {
  std::unordered_map<BlockId, Block> blocks;
  std::unordered_map<PieceId, Piece> pieces;
  MasterReplica master;

  std::size_t space_words() const {
    std::size_t words = 0;
    for (const auto& [id, b] : blocks) words += b.space_words();
    for (const auto& [id, p] : pieces) words += p.wire_words() + p.index().space_words();
    words += master.roots.size() * 8 + master.index.space_words();
    return words;
  }
};

// The single round kernel: parses framed messages from `in`, appends
// framed responses. `instance` selects the PimTrie's state slot.
pim::Buffer kernel(pim::Module& mod, pim::Buffer in, std::uint64_t instance,
                   const hash::PolyHasher& hasher, unsigned w);

// Executes one BSP round of the PimTrie protocol.
inline std::vector<pim::Buffer> run_round(pim::System& sys, const char* label,
                                          std::vector<pim::Buffer> buffers,
                                          std::uint64_t instance,
                                          const hash::PolyHasher& hasher, unsigned w) {
  return sys.round(label, std::move(buffers),
                   [instance, &hasher, w](pim::Module& m, pim::Buffer in) {
                     return kernel(m, std::move(in), instance, hasher, w);
                   });
}

// Message framing helpers: each message is [word_count, payload...].
struct FrameWriter {
  pim::Buffer& out;
  std::size_t mark = 0;
  void begin() {
    out.push_back(0);
    mark = out.size();
  }
  void end() { out[mark - 1] = out.size() - mark; }
};

}  // namespace ptrie::pimtrie::detail
