#pragma once
// PIM-trie tuning parameters (paper Section 4). Defaults follow the
// paper: K_B = log^2 P words per block, K_MB = P meta-tree nodes per
// meta-block, K_SMB = K_B nodes per meta-block-tree piece, push-pull
// threshold log^4 P, scapegoat alpha in (0.5, 1).

#include <bit>
#include <cstdint>

namespace ptrie::pimtrie {

struct Config {
  std::size_t p = 32;     // PIM modules
  unsigned w = 64;        // word size in bits: pivot stride, srem bound
  std::size_t kb = 0;     // block bound in words (0 => log^2 P, min 16)
  std::size_t kmb = 0;    // meta-block upper bound in nodes (0 => P)
  std::size_t ksmb = 0;   // meta-block piece bound in nodes (0 => kb)
  std::size_t push_pull = 0;  // query piece push threshold (0 => log^4 P)
  double alpha = 0.75;    // meta-block-tree rebuild threshold
  std::uint64_t seed = 0xBADC0FFEE0DDF00Dull;
  unsigned fingerprint_bits = 61;  // shrink to force hash collisions (tests)

  static std::size_t log2_ceil(std::size_t x) {
    return x <= 1 ? 1 : static_cast<std::size_t>(std::bit_width(x - 1));
  }

  std::size_t block_bound() const {
    if (kb != 0) return kb;
    std::size_t lg = log2_ceil(p);
    return std::max<std::size_t>(16, lg * lg);
  }
  std::size_t meta_block_bound() const { return kmb != 0 ? kmb : std::max<std::size_t>(8, p); }
  std::size_t piece_bound() const { return ksmb != 0 ? ksmb : block_bound(); }
  std::size_t push_threshold() const {
    if (push_pull != 0) return push_pull;
    std::size_t lg = log2_ceil(p);
    return std::max<std::size_t>(64, lg * lg * lg * lg);
  }
};

}  // namespace ptrie::pimtrie
