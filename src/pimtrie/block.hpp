#pragma once
// Data-trie blocks (paper Section 4.2): the data trie is decomposed into
// sub-tries of O(K_B) words; each block lives wholly on one uniformly
// random PIM module and carries its root's absolute hash/depth as
// metadata. Block roots are replicated as *mirror* leaf stubs in their
// parent block. This header also defines the query piece wire format and
// the *local trie matching* routine (Algorithm 2's Match(...)), which is
// a pure function so push (on a module) and pull (on the CPU) share it,
// along with the local Insert/Delete grafting used in Section 5.2.

#include <unordered_map>
#include <vector>

#include "core/bitstring.hpp"
#include "hash/poly_hash.hpp"
#include "pimtrie/types.hpp"
#include "trie/patricia.hpp"

namespace ptrie::pimtrie {

struct Block {
  BlockId id = kNone;
  BlockId parent = kNone;
  hash::HashVal root_hash = 0;   // absolute hash of the root's string
  std::uint64_t root_depth = 0;  // absolute depth of the root, in bits
  trie::Patricia trie;           // root node's edge is empty; depths relative
  // Mirror stubs: node id in `trie` -> the child block rooted there.
  std::unordered_map<trie::NodeId, BlockId> mirrors;

  bool is_mirror(trie::NodeId n) const { return mirrors.contains(n); }
  std::size_t space_words() const { return trie.space_words() + mirrors.size() * 2 + 4; }

  void serialize(pim::Buffer& out) const;
  static Block deserialize(BufReader& r);
};

// A spanned piece of the query trie shipped between host and modules.
struct QueryPiece {
  std::uint64_t root_depth = 0;      // absolute depth of the piece root
  hash::HashVal root_hash = 0;       // absolute hash of the piece root string
  hash::HashVal root_pivot_hash = 0; // hash of the prefix of length floor(root_depth/w)*w
  core::BitString root_tail;         // last min(w, root_depth) bits of root string
  trie::Patricia trie;               // origin = query-trie global node id

  void serialize(pim::Buffer& out) const;
  static QueryPiece deserialize(BufReader& r);
  std::size_t wire_words() const;
};

// One matched-trie report entry: query-trie global node -> how many bits
// of its represented string matched the data trie (absolute), plus the
// data-side position (relative to the block's trie) where the match ends.
struct MatchLen {
  trie::NodeId origin = trie::kNil;
  std::uint64_t match_len = 0;
  bool full = false;      // the node's entire string matched
  bool boundary = false;  // match ran into a mirror stub (child block)
  trie::NodeId dnode = trie::kNil;  // data node at/below the match end
  std::uint64_t dabove = 0;         // bits above dnode (0 = at dnode)
};

// Local trie matching between a query piece and a data block whose roots
// represent the same absolute string. Reports a MatchLen per visited
// query node. `work` accrues PIM/CPU work (words compared + nodes).
std::vector<MatchLen> match_block(const QueryPiece& q, const Block& d, std::uint64_t* work);

// Local Insert: grafts every unmatched part of `q` into `d`. Query-piece
// nodes with has_value are the batch's keys (value = payload). Returns
// counts. Divergences at mirror stubs are *not* grafted (the child
// block's own span handles them).
struct InsertStats {
  std::size_t new_keys = 0;
  std::size_t updated_keys = 0;
};
InsertStats insert_into_block(const QueryPiece& q, Block& d, std::uint64_t* work);

// Local Delete: query-piece nodes with has_value are the keys to delete.
// Removes exactly-matched stored keys (path-compressing inside the
// block; mirror stubs are never spliced). Returns the number removed.
std::size_t erase_from_block(const QueryPiece& q, Block& d, std::uint64_t* work);

// Local Get: for every query node with has_value whose string matches a
// stored key exactly, emits (origin, stored value).
std::vector<std::pair<trie::NodeId, trie::Value>> get_from_block(const QueryPiece& q,
                                                                 const Block& d,
                                                                 std::uint64_t* work);

// Extracts from `d` the sub-trie strictly below the (relative) position
// given by (node, above) — used by SubtreeQuery. The result is serialized
// as a standalone Patricia plus the list of child blocks whose mirrors
// fall inside the extracted region.
struct SubtreeSlice {
  trie::Patricia trie;      // rooted at the queried position
  std::uint64_t root_depth = 0;  // absolute depth of the slice root
  // Mirror stubs inside the slice: (slice trie node, child block rooted
  // there). Node ids are this trie's; serialize as preorder slots.
  std::vector<std::pair<trie::NodeId, BlockId>> child_blocks;
};
SubtreeSlice slice_block(const Block& d, trie::Position pos, std::uint64_t abs_pos_depth,
                         std::uint64_t* work);

}  // namespace ptrie::pimtrie
