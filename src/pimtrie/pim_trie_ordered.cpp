// PimTrie ordered operations (Predecessor / Successor / RangeScan /
// TopKByPrefix). Each query is decomposed into the cover pieces of
// trie/ordered_cover.hpp; a single matching pass (the same Phase A-C
// pipeline the read operations use) resolves which subtree pieces are
// non-empty, exact pieces are resolved by batch_get, and the winning
// subtree piece of a pred/succ query is walked to its extremum by
// per-block kSeekBlock descent rounds that cross block boundaries at
// mirror stubs. Range and top-k reuse the SubtreeQuery collection
// machinery wholesale and assemble the per-piece answers host-side.

#include <algorithm>
#include <unordered_map>

#include "obs/phase.hpp"
#include "pimtrie/detail.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/ordered_cover.hpp"

namespace ptrie::pimtrie {

using core::BitString;
using trie::CoverPiece;
using trie::NodeId;

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Key for deduplicating candidate prefixes across queries. BitString
// has no std::hash; the canonical text form is cheap at cover sizes.
std::string bs_key(const BitString& s) { return s.to_binary(); }

}  // namespace

// Shared machinery for batch_pred / batch_succ. `dir` is 0 for the
// subtree minimum (successor) and 1 for the maximum (predecessor).
std::vector<std::optional<std::pair<BitString, trie::Value>>> PimTrie::batch_pred(
    const std::vector<BitString>& keys) {
  return batch_seek_extremum(keys, /*dir=*/1);
}

std::vector<std::optional<std::pair<BitString, trie::Value>>> PimTrie::batch_succ(
    const std::vector<BitString>& keys) {
  return batch_seek_extremum(keys, /*dir=*/0);
}

std::vector<std::optional<std::pair<BitString, trie::Value>>> PimTrie::batch_seek_extremum(
    const std::vector<BitString>& keys, int dir) {
  std::vector<std::optional<std::pair<BitString, trie::Value>>> out(keys.size());
  if (keys.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase(dir ? "Pred" : "Succ");

  // Per-query candidate lists, plus the union of subtree / exact
  // candidate prefixes across the batch (deduped).
  std::vector<std::vector<CoverPiece>> cands(keys.size());
  std::vector<BitString> sub_prefixes, exact_prefixes;
  std::unordered_map<std::string, std::size_t> sub_idx, exact_idx;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cands[i] = dir ? trie::pred_candidates(keys[i]) : trie::succ_candidates(keys[i]);
    for (const CoverPiece& c : cands[i]) {
      auto& idx = c.subtree ? sub_idx : exact_idx;
      auto& list = c.subtree ? sub_prefixes : exact_prefixes;
      if (idx.emplace(bs_key(c.prefix), list.size()).second) list.push_back(c.prefix);
    }
  }

  // One matching pass over the subtree candidates decides viability:
  // match_len is the exact LCP of the candidate prefix against the
  // stored set (verified + redone on collisions), so match_len >=
  // |prefix| iff some stored key extends the prefix.
  std::vector<bool> viable(sub_prefixes.size(), false);
  std::vector<BlockId> span_block(sub_prefixes.size(), kNone);
  if (!sub_prefixes.empty()) {
    trie::QueryTrie qt = prepare_batch(sub_prefixes);
    sys_->metrics().add_cpu_work(qt.cpu_work);
    MatchOutcome mo = run_matching(qt, "ordered", /*op_kind=*/0);
    for (std::size_t i = 0; i < sub_prefixes.size(); ++i) {
      NodeId node = qt.key_node[qt.sorted_slot_of_input[i]];
      if (mo.match_len[node] < sub_prefixes[i].size()) continue;
      std::size_t si = mo.span_of[node];
      if (si == kNpos) continue;
      viable[i] = true;
      span_block[i] = mo.spans[si].block;
    }
  }
  std::vector<std::optional<trie::Value>> exact_hits;
  if (!exact_prefixes.empty()) exact_hits = batch_get(exact_prefixes);

  // Walk each query's candidate list in order; the first viable piece
  // holds the answer. Exact winners answer immediately; subtree winners
  // need an extremum descent, deduped by prefix. Misses during the
  // descent (possible only if the structure is inconsistent) simply
  // fall through to the query's next candidate on the next pass.
  struct SeekState {
    BlockId block = kNone;
    BitString suffix;  // candidate bits below the current block's root
    BitString acc;     // absolute key bits resolved so far
    bool done = false;
    bool found = false;
    trie::Value value = 0;
  };
  std::vector<std::size_t> cursor(keys.size(), 0);
  std::vector<bool> resolved(keys.size(), false);
  int epoch = 0;
  for (;;) {
    std::vector<SeekState> seeks;
    std::unordered_map<std::string, std::size_t> seek_of;         // prefix -> seek
    std::vector<std::pair<std::size_t, std::size_t>> query_seek;  // (query, seek)
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (resolved[i]) continue;
      while (cursor[i] < cands[i].size()) {
        const CoverPiece& c = cands[i][cursor[i]];
        if (c.subtree) {
          std::size_t ci = sub_idx.at(bs_key(c.prefix));
          if (viable[ci]) {
            auto [it, fresh] = seek_of.emplace(bs_key(c.prefix), seeks.size());
            if (fresh) {
              SeekState st;
              st.block = span_block[ci];
              st.suffix = c.prefix.suffix(blocks_.at(st.block).root_depth);
              st.acc = c.prefix;
              seeks.push_back(std::move(st));
            }
            query_seek.emplace_back(i, it->second);
            break;
          }
        } else {
          const auto& hit = exact_hits[exact_idx.at(bs_key(c.prefix))];
          if (hit) {
            out[i] = std::make_pair(c.prefix, *hit);
            resolved[i] = true;
            break;
          }
        }
        ++cursor[i];
      }
      if (cursor[i] >= cands[i].size()) resolved[i] = true;  // no answer
    }
    if (seeks.empty()) break;

    // Descent rounds: each active seek asks its current block for the
    // subtree extremum under its suffix; a mirror-stub reply hops to
    // the child block. Depth is bounded by the block-tree height.
    for (int round = 0; round < 64; ++round) {
      std::vector<pim::Buffer> buffers(sys_->p());
      std::vector<std::pair<std::size_t, std::uint32_t>> pend;
      for (std::size_t i = 0; i < seeks.size(); ++i) {
        if (seeks[i].done) continue;
        std::uint32_t module = blocks_.at(seeks[i].block).module;
        detail::FrameWriter fw{buffers[module]};
        fw.begin();
        BufWriter bw{buffers[module]};
        bw.u64(detail::kSeekBlock);
        bw.u64(seeks[i].block);
        bw.bits(seeks[i].suffix);
        bw.u64(static_cast<std::uint64_t>(dir));
        fw.end();
        pend.emplace_back(i, module);
      }
      if (pend.empty()) break;
      std::string lbl =
          "ordered.seek" + std::to_string(epoch) + "." + std::to_string(round);
      auto results = detail::run_round(*sys_, lbl.c_str(), std::move(buffers), instance_,
                                       hasher_, cfg_.w);
      std::vector<BufReader> readers;
      for (const auto& buf : results) readers.push_back(BufReader{buf});
      for (auto [i, module] : pend) {
        BufReader& r = readers[module];
        std::uint64_t frame = r.u64();
        std::size_t end = r.pos + frame;
        std::uint64_t kind = r.u64();
        SeekState& st = seeks[i];
        if (kind == 0) {
          st.done = true;  // miss: candidate non-viable after all
        } else if (kind == 1) {
          st.acc.append(r.bits());
          st.value = r.u64();
          st.done = true;
          st.found = true;
        } else {
          BlockId child = r.u64();
          st.acc.append(r.bits());
          st.block = child;
          st.suffix = BitString();
        }
        r.pos = end;
      }
    }
    for (auto [q, si] : query_seek) {
      if (seeks[si].found) {
        out[q] = std::make_pair(seeks[si].acc, seeks[si].value);
        resolved[q] = true;
      } else {
        ++cursor[q];  // miss: try the query's next candidate
      }
    }
    ++epoch;
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, trie::Value>>> PimTrie::batch_range(
    const std::vector<BitString>& los, const std::vector<BitString>& his,
    const std::vector<std::size_t>& limits) {
  std::vector<std::vector<std::pair<BitString, trie::Value>>> out(los.size());
  if (los.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase("Range");

  // Decompose every query into its disjoint ascending cover, then
  // resolve all exact pieces with one point-read batch and all subtree
  // pieces with one SubtreeQuery batch.
  std::vector<std::vector<CoverPiece>> covers(los.size());
  std::vector<BitString> sub_prefixes, exact_prefixes;
  std::unordered_map<std::string, std::size_t> sub_idx, exact_idx;
  for (std::size_t i = 0; i < los.size(); ++i) {
    if (limits[i] == 0) continue;
    covers[i] = trie::range_cover(los[i], his[i]);
    for (const CoverPiece& c : covers[i]) {
      auto& idx = c.subtree ? sub_idx : exact_idx;
      auto& list = c.subtree ? sub_prefixes : exact_prefixes;
      if (idx.emplace(bs_key(c.prefix), list.size()).second) list.push_back(c.prefix);
    }
  }
  std::vector<std::optional<trie::Value>> exact_hits;
  if (!exact_prefixes.empty()) exact_hits = batch_get(exact_prefixes);
  std::vector<std::vector<std::pair<BitString, trie::Value>>> sub_hits;
  if (!sub_prefixes.empty()) sub_hits = batch_subtree(sub_prefixes);

  // Assemble: the cover pieces are disjoint and ascending, so plain
  // concatenation in piece order is the ascending range, truncated to
  // the per-query limit.
  for (std::size_t i = 0; i < los.size(); ++i) {
    for (const CoverPiece& c : covers[i]) {
      if (out[i].size() >= limits[i]) break;
      if (c.subtree) {
        const auto& hits = sub_hits[sub_idx.at(bs_key(c.prefix))];
        std::size_t take = std::min(hits.size(), limits[i] - out[i].size());
        out[i].insert(out[i].end(), hits.begin(), hits.begin() + take);
      } else {
        const auto& hit = exact_hits[exact_idx.at(bs_key(c.prefix))];
        if (hit) out[i].emplace_back(c.prefix, *hit);
      }
    }
  }
  return out;
}

std::vector<std::vector<std::pair<BitString, trie::Value>>> PimTrie::batch_topk(
    const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) {
  std::vector<std::vector<std::pair<BitString, trie::Value>>> out(prefixes.size());
  if (prefixes.empty() || root_block_ == kNone) return out;
  obs::Phase op_phase("TopK");
  out = batch_subtree(prefixes);
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i].size() > ks[i]) out[i].resize(ks[i]);
  return out;
}

}  // namespace ptrie::pimtrie
