#include "check/oracle.hpp"

#include <algorithm>
#include <iterator>

namespace ptrie::check {

using core::BitString;

bool Oracle::insert(const BitString& key, std::uint64_t value) {
  auto [it, fresh] = map_.insert_or_assign(key, value);
  (void)it;
  return fresh;
}

bool Oracle::erase(const BitString& key) { return map_.erase(key) != 0; }

std::optional<std::uint64_t> Oracle::find(const BitString& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::size_t Oracle::lcp(const BitString& q) const {
  return lcp_in_range(q, nullptr, nullptr);
}

std::size_t Oracle::lcp_in_range(const BitString& q, const BitString* lo,
                                 const BitString* hi) const {
  auto first = lo ? map_.lower_bound(*lo) : map_.begin();
  auto last = hi ? map_.lower_bound(*hi) : map_.end();
  if (first == last) return 0;
  // The LCP maximizer over a lexicographically sorted window is adjacent
  // to q's insertion point clamped into [first, last].
  auto it = map_.lower_bound(q);
  if (lo && q < *lo) it = first;
  if (hi && !(q < *hi)) it = last;
  std::size_t best = 0;
  if (it != last) best = std::max(best, q.lcp(it->first));
  if (it != first) best = std::max(best, q.lcp(std::prev(it)->first));
  return best;
}

std::vector<std::pair<BitString, std::uint64_t>> Oracle::subtree(
    const BitString& prefix) const {
  std::vector<std::pair<BitString, std::uint64_t>> out;
  // Keys extending `prefix` form a contiguous run starting at
  // lower_bound(prefix) in lexicographic order (a proper prefix sorts
  // before its extensions).
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (!prefix.is_prefix_of(it->first)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::optional<std::pair<BitString, std::uint64_t>> Oracle::pred(const BitString& x) const {
  auto it = map_.lower_bound(x);  // first key >= x; the one before is < x
  if (it == map_.begin()) return std::nullopt;
  --it;
  return std::make_pair(it->first, it->second);
}

std::optional<std::pair<BitString, std::uint64_t>> Oracle::succ(const BitString& x) const {
  auto it = map_.upper_bound(x);
  if (it == map_.end()) return std::nullopt;
  return std::make_pair(it->first, it->second);
}

std::vector<std::pair<BitString, std::uint64_t>> Oracle::range(const BitString& lo,
                                                               const BitString& hi,
                                                               std::size_t limit) const {
  std::vector<std::pair<BitString, std::uint64_t>> out;
  for (auto it = map_.lower_bound(lo); it != map_.end() && out.size() < limit; ++it) {
    if (hi < it->first) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::pair<BitString, std::uint64_t>> Oracle::topk(const BitString& prefix,
                                                              std::size_t k) const {
  std::vector<std::pair<BitString, std::uint64_t>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end() && out.size() < k; ++it) {
    if (!prefix.is_prefix_of(it->first)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::pair<BitString, std::uint64_t>> Oracle::all() const {
  return {map_.begin(), map_.end()};
}

}  // namespace ptrie::check
