#pragma once
// Differential schedule runner: drives one index structure through a
// Schedule, cross-checking every batch against the reference oracle,
// running the structure's deep invariants, and asserting cost envelopes
// (bounded IO rounds per batch, bounded per-batch communication
// imbalance for PimTrie). Fails fast: the first violated check aborts
// the run with the failing batch index and a description, which is what
// the shrinker (src/check/shrink.hpp) minimizes against.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "check/schedule.hpp"
#include "pim/backend.hpp"

namespace ptrie::check {

inline constexpr std::size_t kNoBatch = static_cast<std::size_t>(-1);

struct CheckOptions {
  bool deep = true;        // run deep_check() after every batch
  bool envelopes = true;   // assert round/imbalance cost envelopes
  // Full content cross-check (collect() vs oracle) every N batches and
  // after the final batch; 0 disables the periodic checks.
  std::size_t content_every = 8;
  // Test-only mutation hook: when >= 0, adapter.corrupt(corrupt_kind)
  // fires after applying every batch with index >= corrupt_from, before
  // that batch's checks run — so a corrupted run fails at the first
  // hooked batch and shrinks to a minimal schedule.
  int corrupt_kind = -1;
  std::size_t corrupt_from = 0;
  // Execution backend for the schedule's System; unset = PTRIE_BACKEND
  // (default exact). The `ptrie_fuzz --backend` differential runs the
  // same schedule once per backend and compares RunResult::digest.
  std::optional<pim::BackendKind> backend;
};

struct RunResult {
  bool ok = true;
  std::size_t fail_batch = kNoBatch;  // kNoBatch: during initial build
  std::string error;
  std::size_t ops = 0;     // keys applied (init + batches reached)
  std::size_t checks = 0;  // individual assertions evaluated
  std::size_t rounds = 0;  // total IO rounds issued (determinism probe)
  std::size_t max_batch_rounds = 0;  // worst per-batch rounds seen
  double max_imbalance = 0.0;        // worst per-batch comm imbalance seen
  // Fault-plan accounting (zero when the schedule carries no plan):
  // requests that honestly reported a non-OK status (skipped by the
  // differential oracle — the contract is "right answer or honest
  // failure") and PIM reply retries that recovered transparently.
  std::size_t faulted = 0;
  std::uint64_t fault_retries = 0;
  // FNV-1a digest over every answer the run produced (query results,
  // per-request statuses, per-batch round counts, content snapshots).
  // Two runs of one schedule agree byte-for-byte iff digests agree —
  // the backend differential's equality probe. Valid only when ok.
  std::uint64_t digest = 0;
};

RunResult run_schedule(const Schedule& s, const CheckOptions& opt = {});

}  // namespace ptrie::check
