#include "check/adapters.hpp"

#include <algorithm>
#include <chrono>
#include <future>

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "baselines/range_partitioned.hpp"
#include "obs/env.hpp"
#include "pimtrie/config.hpp"
#include "pimtrie/pim_trie.hpp"
#include "serve/server.hpp"

namespace ptrie::check {

using core::BitString;

std::string IndexAdapter::check_lcp(const BitString& tkey, std::size_t got,
                                    const Oracle& live, const Oracle& ever) const {
  (void)ever;
  std::size_t want = live.lcp(tkey);
  if (got != want)
    return "lcp(" + (tkey.empty() ? std::string("-") : tkey.to_binary()) + ") = " +
           std::to_string(got) + ", oracle says " + std::to_string(want);
  return std::string();
}

namespace {

std::size_t log2p(const pim::System& sys) {
  return pimtrie::Config::log2_ceil(std::max<std::size_t>(sys.p(), 2));
}

// Deterministic structure-only phantom key for the default corruption
// hook (inserted into the structure but never into the oracles, so the
// differential content/count checks must fire).
BitString phantom_key(int kind) {
  return BitString::from_uint(0xFEEDFACEDEADBEEFull + static_cast<std::uint64_t>(kind),
                              32);
}

// ---- PimTrie --------------------------------------------------------

class PimTrieAdapter : public IndexAdapter {
 public:
  PimTrieAdapter(pim::System& sys, std::uint64_t seed) : sys_(&sys) {
    pimtrie::Config cfg;
    cfg.seed = seed * 2654435761u + 17;
    pt_ = std::make_unique<pimtrie::PimTrie>(sys, cfg);
  }
  std::string name() const override { return "pimtrie"; }

  void build(const std::vector<BitString>& keys,
             const std::vector<std::uint64_t>& values) override {
    pt_->build(keys, values);
  }
  void insert(const std::vector<BitString>& keys,
              const std::vector<std::uint64_t>& values) override {
    pt_->batch_insert(keys, values);
  }
  void erase(const std::vector<BitString>& keys) override { pt_->batch_erase(keys); }
  std::vector<std::size_t> lcp(const std::vector<BitString>& keys) override {
    return pt_->batch_lcp(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtree(
      const std::vector<BitString>& prefixes) override {
    return pt_->batch_subtree(prefixes);
  }
  bool supports_get() const override { return true; }
  std::vector<std::optional<std::uint64_t>> get(
      const std::vector<BitString>& keys) override {
    return pt_->batch_get(keys);
  }

  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> pred(
      const std::vector<BitString>& keys) override {
    return pt_->batch_pred(keys);
  }
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> succ(
      const std::vector<BitString>& keys) override {
    return pt_->batch_succ(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> range(
      const std::vector<BitString>& los, const std::vector<BitString>& his,
      const std::vector<std::size_t>& limits) override {
    return pt_->batch_range(los, his, limits);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> topk(
      const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) override {
    return pt_->batch_topk(prefixes, ks);
  }

  std::size_t key_count() const override { return pt_->key_count(); }
  std::string check() const override { return pt_->debug_check(); }
  std::string deep_check() const override {
    // The occupancy invariants only hold with maintenance enabled.
    if (obs::env::flag("PTRIE_NO_MAINT", "Disable PimTrie maintenance (tests)") ||
        obs::env::flag("PTRIE_NO_PSPLIT", "Disable piece splitting (tests)"))
      return std::string();
    return pt_->debug_check_deep();
  }

  std::vector<std::pair<BitString, std::uint64_t>> collect() override {
    auto all = pt_->debug_collect();
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return all;
  }

  std::size_t round_envelope(OpKind op, std::size_t max_bits) const override {
    (void)max_bits;
    std::size_t lg = log2p(*sys_);
    switch (op) {
      case OpKind::kLcp:
      case OpKind::kGet:
        return 16 + 6 * lg;
      case OpKind::kSubtree:
        // Phase A/B as for LCP plus the per-level block-tree descent.
        return 16 + 6 * lg + 2 * pt_->block_count() + 8;
      case OpKind::kPred:
      case OpKind::kSucc:
        // One match pass over the cover candidates, one exact-probe get
        // pass, then the kSeekBlock extremum descent (bounded by the
        // block-tree depth, so 2 * block_count is a safe roof).
        return 2 * (16 + 6 * lg) + 2 * pt_->block_count() + 16;
      case OpKind::kRange:
        // One get pass for the cover's exact pieces plus one subtree
        // sweep for its subtree pieces.
        return 2 * (16 + 6 * lg) + 2 * pt_->block_count() + 16;
      case OpKind::kTopK:
        // Exactly one subtree sweep.
        return 16 + 6 * lg + 2 * pt_->block_count() + 16;
      default:
        // Insert/erase add maintenance (re-partitioning, piece splits,
        // scapegoat rebuilds, master broadcast).
        return 64 + 16 * lg;
    }
  }

  void corrupt(int kind) override {
    if (kind <= 1) pt_->debug_corrupt(kind);
    else pt_->batch_insert({phantom_key(kind)}, {0});
  }

 protected:
  pim::System* sys_;
  std::unique_ptr<pimtrie::PimTrie> pt_;
};

// ---- PimTrie behind the serving front-end ---------------------------
// Same trie, but every incremental op is routed through serve::Server
// (one submit per key, then flush + drain) so fuzzer schedules exercise
// the coalescer, the prepare/execute pipeline, and the future plumbing
// end to end. Answers — and the round/imbalance envelopes inherited
// from PimTrieAdapter — must stay byte-identical to the direct adapter.

class ServeAdapter final : public PimTrieAdapter {
 public:
  ServeAdapter(pim::System& sys, std::uint64_t seed) : PimTrieAdapter(sys, seed) {
    serve::Server::Options opt;
    opt.max_batch = std::size_t(1) << 30;        // close on flush only
    opt.max_delay = std::chrono::hours(2);       // never close on deadline
    opt.max_backlog = 4;
    opt.pipelined = true;
    srv_ = std::make_unique<serve::Server>(*pt_, opt);
  }
  ~ServeAdapter() override { srv_->stop(); }
  std::string name() const override { return "serve"; }

  void insert(const std::vector<BitString>& keys,
              const std::vector<std::uint64_t>& values) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
      futs.push_back(srv_->submit(serve::Op::kInsert, keys[i], values[i]));
    settle(futs);
  }
  void erase(const std::vector<BitString>& keys) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(keys.size());
    for (const auto& k : keys) futs.push_back(srv_->submit(serve::Op::kErase, k));
    settle(futs);
  }
  std::vector<std::size_t> lcp(const std::vector<BitString>& keys) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(keys.size());
    for (const auto& k : keys) futs.push_back(srv_->submit(serve::Op::kLcp, k));
    auto rs = settle(futs);
    std::vector<std::size_t> out;
    out.reserve(rs.size());
    for (auto& r : rs) out.push_back(r.lcp);
    return out;
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtree(
      const std::vector<BitString>& prefixes) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(prefixes.size());
    for (const auto& p : prefixes) futs.push_back(srv_->submit(serve::Op::kSubtree, p));
    auto rs = settle(futs);
    std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out;
    out.reserve(rs.size());
    for (auto& r : rs) out.push_back(std::move(r.subtree));
    return out;
  }
  std::vector<std::optional<std::uint64_t>> get(
      const std::vector<BitString>& keys) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(keys.size());
    for (const auto& k : keys) futs.push_back(srv_->submit(serve::Op::kGet, k));
    auto rs = settle(futs);
    std::vector<std::optional<std::uint64_t>> out;
    out.reserve(rs.size());
    for (auto& r : rs) out.push_back(r.value);
    return out;
  }

  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> pred(
      const std::vector<BitString>& keys) override {
    return neighbor(serve::Op::kPred, keys);
  }
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> succ(
      const std::vector<BitString>& keys) override {
    return neighbor(serve::Op::kSucc, keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> range(
      const std::vector<BitString>& los, const std::vector<BitString>& his,
      const std::vector<std::size_t>& limits) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(los.size());
    for (std::size_t i = 0; i < los.size(); ++i)
      futs.push_back(srv_->submit(serve::Op::kRange, los[i], his[i], limits[i]));
    return scans(futs);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> topk(
      const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) override {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(prefixes.size());
    for (std::size_t i = 0; i < prefixes.size(); ++i)
      futs.push_back(srv_->submit(serve::Op::kTopK, prefixes[i], BitString(), ks[i]));
    return scans(futs);
  }

  std::vector<std::uint8_t> last_statuses() const override { return last_statuses_; }

 private:
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> neighbor(
      serve::Op op, const std::vector<BitString>& keys) {
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(keys.size());
    for (const auto& k : keys) futs.push_back(srv_->submit(op, k));
    auto rs = settle(futs);
    std::vector<std::optional<std::pair<BitString, std::uint64_t>>> out;
    out.reserve(rs.size());
    for (auto& r : rs) out.push_back(std::move(r.neighbor));
    return out;
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> scans(
      std::vector<std::future<serve::Response>>& futs) {
    auto rs = settle(futs);
    std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out;
    out.reserve(rs.size());
    for (auto& r : rs) out.push_back(std::move(r.subtree));
    return out;
  }

  std::vector<serve::Response> settle(std::vector<std::future<serve::Response>>& futs) {
    srv_->flush();
    srv_->drain();
    std::vector<serve::Response> out;
    out.reserve(futs.size());
    last_statuses_.assign(futs.size(), 0);
    for (std::size_t i = 0; i < futs.size(); ++i) {
      out.push_back(futs[i].get());
      last_statuses_[i] = static_cast<std::uint8_t>(out.back().status);
    }
    return out;
  }

  std::unique_ptr<serve::Server> srv_;
  std::vector<std::uint8_t> last_statuses_;
};

// ---- Distributed radix tree -----------------------------------------

class RadixAdapter final : public IndexAdapter {
 public:
  static constexpr unsigned kSpan = 4;
  RadixAdapter(pim::System& sys, std::uint64_t seed)
      : sys_(&sys), rt_(sys, kSpan, seed) {}
  std::string name() const override { return "radix"; }

  // Chunk-truncate: the radix baseline stores one tail slot per node, so
  // keys sharing a node's chunk path but differing inside the final
  // partial chunk would collide. Span-aligned keys avoid tails entirely.
  BitString transform(const BitString& raw) const override {
    return raw.prefix(raw.size() / kSpan * kSpan);
  }

  void build(const std::vector<BitString>& keys,
             const std::vector<std::uint64_t>& values) override {
    note_depths(keys);
    rt_.build(keys, values);
  }
  void insert(const std::vector<BitString>& keys,
              const std::vector<std::uint64_t>& values) override {
    note_depths(keys);
    rt_.batch_insert(keys, values);
  }
  void erase(const std::vector<BitString>& keys) override { rt_.batch_erase(keys); }
  std::vector<std::size_t> lcp(const std::vector<BitString>& keys) override {
    return rt_.batch_lcp(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtree(
      const std::vector<BitString>& prefixes) override {
    return rt_.batch_subtree(prefixes);
  }

  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> pred(
      const std::vector<BitString>& keys) override {
    return rt_.batch_pred(keys);
  }
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> succ(
      const std::vector<BitString>& keys) override {
    return rt_.batch_succ(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> range(
      const std::vector<BitString>& los, const std::vector<BitString>& his,
      const std::vector<std::size_t>& limits) override {
    return rt_.batch_range(los, his, limits);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> topk(
      const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) override {
    return rt_.batch_topk(prefixes, ks);
  }

  std::size_t key_count() const override { return rt_.key_count(); }
  std::string check() const override { return rt_.debug_check(); }

  std::string check_lcp(const BitString& tkey, std::size_t got, const Oracle& live,
                        const Oracle& ever) const override {
    // Chunk-granular answers; erased keys leave their chain nodes behind
    // (this baseline never splices), so the walk can run deeper than the
    // live set justifies — but never deeper than the ever-inserted set.
    std::size_t lo = live.lcp(tkey) / kSpan * kSpan;
    std::size_t hi = ever.lcp(tkey) / kSpan * kSpan;
    if (got % kSpan != 0)
      return "radix lcp " + std::to_string(got) + " not chunk-aligned";
    if (got < lo || got > hi)
      return "radix lcp(" + (tkey.empty() ? std::string("-") : tkey.to_binary()) +
             ") = " + std::to_string(got) + " outside [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]";
    return std::string();
  }

  std::vector<std::pair<BitString, std::uint64_t>> collect() override {
    return rt_.batch_subtree({BitString()})[0];
  }

  std::size_t round_envelope(OpKind op, std::size_t max_bits) const override {
    std::size_t hops = max_bits / kSpan + 2;
    if (op == OpKind::kSubtree || op == OpKind::kPred || op == OpKind::kSucc ||
        op == OpKind::kRange || op == OpKind::kTopK) {
      // Walk to the anchor (query hops) plus one BFS round per stored
      // level below it — bounded by the deepest key ever inserted, not
      // by the query length. The ordered ops are composed host-side
      // from exactly one batched subtree sweep over the cover's
      // candidate prefixes, so the same envelope applies.
      std::size_t levels = max_stored_bits_ / kSpan + 2;
      return hops + levels + 8;
    }
    if (op == OpKind::kInsert || op == OpKind::kErase) return hops + 6;
    return hops + 2;
  }

  void corrupt(int kind) override { rt_.batch_insert({phantom_key(kind)}, {0}); }

 private:
  void note_depths(const std::vector<BitString>& keys) {
    for (const auto& k : keys) max_stored_bits_ = std::max(max_stored_bits_, k.size());
  }

  pim::System* sys_;
  baselines::DistributedRadixTree rt_;
  std::size_t max_stored_bits_ = 0;
};

// ---- Distributed x-fast trie ----------------------------------------

class XFastAdapter final : public IndexAdapter {
 public:
  static constexpr unsigned kWidth = 64;
  XFastAdapter(pim::System& sys, std::uint64_t seed)
      : sys_(&sys), xf_(sys, kWidth, seed) {}
  std::string name() const override { return "xfast"; }

  // Fixed-width integers only (Table 1's (#) restriction): a raw key
  // becomes its first 64 bits, zero-extended — exactly word 0 of the
  // MSB-first packing.
  BitString transform(const BitString& raw) const override {
    return BitString::from_uint(raw.word(0), kWidth);
  }
  BitString transform_prefix(const BitString& raw) const override {
    return raw.prefix(std::min<std::size_t>(raw.size(), kWidth));
  }

  void build(const std::vector<BitString>& keys,
             const std::vector<std::uint64_t>& values) override {
    xf_.build(to_ints(keys), values);
  }
  void insert(const std::vector<BitString>& keys,
              const std::vector<std::uint64_t>& values) override {
    xf_.batch_insert(to_ints(keys), values);
  }
  void erase(const std::vector<BitString>& keys) override {
    xf_.batch_erase(to_ints(keys));
  }
  std::vector<std::size_t> lcp(const std::vector<BitString>& keys) override {
    auto got = xf_.batch_lcp(to_ints(keys));
    return {got.begin(), got.end()};
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtree(
      const std::vector<BitString>& prefixes) override {
    std::vector<std::pair<std::uint64_t, unsigned>> qs;
    for (const auto& p : prefixes) {
      unsigned len = static_cast<unsigned>(p.size());
      qs.emplace_back(len == 0 ? 0 : p.word(0) >> (kWidth - len), len);
    }
    auto raw = xf_.batch_subtree(qs);
    std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      for (const auto& [k, v] : raw[i])
        out[i].emplace_back(BitString::from_uint(k, kWidth), v);
      std::sort(out[i].begin(), out[i].end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return out;
  }

  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> pred(
      const std::vector<BitString>& keys) override {
    return from_neighbor(xf_.batch_pred(to_ints(keys)));
  }
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> succ(
      const std::vector<BitString>& keys) override {
    return from_neighbor(xf_.batch_succ(to_ints(keys)));
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> range(
      const std::vector<BitString>& los, const std::vector<BitString>& his,
      const std::vector<std::size_t>& limits) override {
    return from_lists(xf_.batch_range(to_ints(los), to_ints(his), limits));
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> topk(
      const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) override {
    std::vector<std::pair<std::uint64_t, unsigned>> qs;
    for (const auto& p : prefixes) {
      unsigned len = static_cast<unsigned>(p.size());
      qs.emplace_back(len == 0 ? 0 : p.word(0) >> (kWidth - len), len);
    }
    return from_lists(xf_.batch_topk(qs, ks));
  }

  std::size_t key_count() const override { return xf_.key_count(); }
  std::string check() const override { return xf_.debug_check(); }

  std::vector<std::pair<BitString, std::uint64_t>> collect() override {
    return subtree({BitString()})[0];
  }

  std::size_t round_envelope(OpKind op, std::size_t max_bits) const override {
    (void)max_bits;
    if (op == OpKind::kLcp) return 10;  // binary search over log2(64) levels
    return 3;
  }

  void corrupt(int kind) override {
    xf_.batch_insert({0xFEEDFACEDEADBEEFull + static_cast<std::uint64_t>(kind)}, {0});
  }

 private:
  static std::vector<std::uint64_t> to_ints(const std::vector<BitString>& keys) {
    std::vector<std::uint64_t> out;
    out.reserve(keys.size());
    for (const auto& k : keys) out.push_back(k.word(0));
    return out;
  }
  // Fixed-width integer answers map back to 64-bit strings; integer
  // order equals bitstring order at equal width, so ascending stays
  // ascending and no re-sort is needed.
  static std::vector<std::optional<std::pair<BitString, std::uint64_t>>> from_neighbor(
      const std::vector<std::optional<std::pair<std::uint64_t, std::uint64_t>>>& in) {
    std::vector<std::optional<std::pair<BitString, std::uint64_t>>> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      if (in[i]) out[i] = {BitString::from_uint(in[i]->first, kWidth), in[i]->second};
    return out;
  }
  static std::vector<std::vector<std::pair<BitString, std::uint64_t>>> from_lists(
      const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>& in) {
    std::vector<std::vector<std::pair<BitString, std::uint64_t>>> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      for (const auto& [k, v] : in[i])
        out[i].emplace_back(BitString::from_uint(k, kWidth), v);
    return out;
  }

  pim::System* sys_;
  baselines::DistributedXFastTrie xf_;
};

// ---- Range-partitioned index ----------------------------------------

class RangeAdapter final : public IndexAdapter {
 public:
  RangeAdapter(pim::System& sys, std::uint64_t seed) : sys_(&sys), rp_(sys, seed) {}
  std::string name() const override { return "range"; }

  void build(const std::vector<BitString>& keys,
             const std::vector<std::uint64_t>& values) override {
    rp_.build(keys, values);
  }
  void insert(const std::vector<BitString>& keys,
              const std::vector<std::uint64_t>& values) override {
    rp_.batch_insert(keys, values);
  }
  void erase(const std::vector<BitString>& keys) override { rp_.batch_erase(keys); }
  std::vector<std::size_t> lcp(const std::vector<BitString>& keys) override {
    return rp_.batch_lcp(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtree(
      const std::vector<BitString>& prefixes) override {
    return rp_.batch_subtree(prefixes);
  }

  // Unlike LCP (windowed to the routed module), the ordered ops are
  // exact: pred/succ broadcast so a neighbor across a separator is
  // still found, and range/topk span every module their answer could
  // live on.
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> pred(
      const std::vector<BitString>& keys) override {
    return rp_.batch_pred(keys);
  }
  std::vector<std::optional<std::pair<BitString, std::uint64_t>>> succ(
      const std::vector<BitString>& keys) override {
    return rp_.batch_succ(keys);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> range(
      const std::vector<BitString>& los, const std::vector<BitString>& his,
      const std::vector<std::size_t>& limits) override {
    return rp_.batch_range(los, his, limits);
  }
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> topk(
      const std::vector<BitString>& prefixes, const std::vector<std::size_t>& ks) override {
    return rp_.batch_topk(prefixes, ks);
  }

  std::size_t key_count() const override { return rp_.key_count(); }
  std::string check() const override { return rp_.debug_check(); }

  std::string check_lcp(const BitString& tkey, std::size_t got, const Oracle& live,
                        const Oracle& ever) const override {
    (void)ever;
    // LCP only sees the routed module's range (keys straddling a
    // separator boundary are the documented approximation), so the
    // expectation is the oracle LCP restricted to that window.
    const auto& seps = rp_.separators();
    auto it = std::upper_bound(seps.begin(), seps.end(), tkey);
    std::size_t m = static_cast<std::size_t>(it - seps.begin());
    const BitString* lo = m > 0 ? &seps[m - 1] : nullptr;
    const BitString* hi = m < seps.size() ? &seps[m] : nullptr;
    std::size_t want = live.lcp_in_range(tkey, lo, hi);
    if (got != want)
      return "range lcp(" + (tkey.empty() ? std::string("-") : tkey.to_binary()) +
             ") = " + std::to_string(got) + ", windowed oracle says " +
             std::to_string(want);
    return std::string();
  }

  std::vector<std::pair<BitString, std::uint64_t>> collect() override {
    return rp_.batch_subtree({BitString()})[0];
  }

  std::size_t round_envelope(OpKind op, std::size_t max_bits) const override {
    (void)op;
    (void)max_bits;
    return 3;  // every operation routes in a single round
  }

  void corrupt(int kind) override { rp_.batch_insert({phantom_key(kind)}, {0}); }

 private:
  pim::System* sys_;
  baselines::RangePartitionedIndex rp_;
};

}  // namespace

std::unique_ptr<IndexAdapter> make_adapter(const std::string& name, pim::System& sys,
                                           std::uint64_t seed) {
  if (name == "pimtrie") return std::make_unique<PimTrieAdapter>(sys, seed);
  if (name == "serve") return std::make_unique<ServeAdapter>(sys, seed);
  if (name == "radix") return std::make_unique<RadixAdapter>(sys, seed);
  if (name == "xfast") return std::make_unique<XFastAdapter>(sys, seed);
  if (name == "range") return std::make_unique<RangeAdapter>(sys, seed);
  return nullptr;
}

}  // namespace ptrie::check
