#include "check/runner.hpp"

#include <algorithm>

#include "check/adapters.hpp"
#include "check/oracle.hpp"
#include "pim/fault.hpp"
#include "pim/system.hpp"

namespace ptrie::check {

using core::BitString;

namespace {

std::string key_str(const BitString& k) {
  return k.empty() ? std::string("-") : k.to_binary();
}

// First difference between two sorted (key, value) lists, or "".
std::string diff_lists(const std::vector<std::pair<BitString, std::uint64_t>>& got,
                       const std::vector<std::pair<BitString, std::uint64_t>>& want) {
  for (std::size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
    if (got[i].first != want[i].first)
      return "entry " + std::to_string(i) + ": key " + key_str(got[i].first) +
             " vs oracle " + key_str(want[i].first);
    if (got[i].second != want[i].second)
      return "entry " + std::to_string(i) + " (" + key_str(got[i].first) + "): value " +
             std::to_string(got[i].second) + " vs oracle " + std::to_string(want[i].second);
  }
  if (got.size() != want.size())
    return "size " + std::to_string(got.size()) + " vs oracle " +
           std::to_string(want.size());
  return std::string();
}

// FNV-1a accumulator for RunResult::digest: every answer a run produces
// feeds through here, so two runs agree byte-for-byte iff digests match.
struct Mixer {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
  void key(const BitString& k) { str(k.to_binary()); }
  void list(const std::vector<std::pair<BitString, std::uint64_t>>& l) {
    u64(l.size());
    for (const auto& [k, v] : l) {
      key(k);
      u64(v);
    }
  }
};

}  // namespace

RunResult run_schedule(const Schedule& s, const CheckOptions& opt) {
  RunResult res;
  Mixer dg;
  pim::System sys(s.p, s.seed * 0x9E3779B97F4A7C15ull + 0xC43C5,
                  opt.backend ? *opt.backend : pim::backend_from_env());
  const bool faults = !s.faults.empty();
  if (faults) {
    pim::FaultPlan plan;
    std::string perr;
    if (!pim::FaultPlan::parse(s.faults, &plan, &perr)) {
      res.ok = false;
      res.error = "bad fault plan: " + perr;
      return res;
    }
    sys.set_fault_plan(std::move(plan));
  }
  auto adapter = make_adapter(s.structure, sys, s.seed);
  if (!adapter) {
    res.ok = false;
    res.error = "unknown structure '" + s.structure + "'";
    return res;
  }
  Oracle live, ever;
  // Retry backoff charges extra model words and a failed run skews the
  // per-batch word split, so the cost envelopes only hold fault-free.
  const bool envelopes = opt.envelopes && !faults;

  auto fail = [&](std::size_t batch, std::string why) {
    res.ok = false;
    res.fail_batch = batch;
    res.error = std::move(why);
  };

  // Under a fault plan the direct adapters surface unrecoverable faults
  // as pim::FaultError from inside the batch (the serving adapter instead
  // resolves the affected requests with a non-OK status and never
  // throws). Either way the failure is honest, so the runner skips
  // comparison for the affected requests instead of crashing. Anything
  // other than FaultError still propagates — that is a real bug.
  auto guarded = [&](auto&& fn) -> bool {  // true = batch ran to completion
    if (!faults) {
      fn();
      return true;
    }
    try {
      fn();
      return true;
    } catch (const pim::FaultError&) {
      return false;
    }
  };

  // After a write batch failed (or partially failed) the structure's
  // state is whatever rounds completed — graceful degradation, not
  // corruption. Re-adopt its actual contents as the oracle's truth so
  // every later OK answer is still checked against what the structure
  // really stores.
  auto resync = [&]() {
    live = Oracle();
    for (const auto& [k, v] : adapter->collect()) {
      live.insert(k, v);
      ever.insert(k, v);
    }
  };

  // Post-batch checks: differential key count, structural invariants,
  // deep invariants, optionally the full content cross-check.
  auto post_checks = [&](std::size_t bi, bool content) -> bool {
    ++res.checks;
    if (adapter->key_count() != live.size()) {
      fail(bi, "key_count " + std::to_string(adapter->key_count()) + " != oracle " +
                   std::to_string(live.size()));
      return false;
    }
    ++res.checks;
    if (std::string p = adapter->check(); !p.empty()) {
      fail(bi, "invariant violated: " + p);
      return false;
    }
    if (opt.deep) {
      ++res.checks;
      if (std::string p = adapter->deep_check(); !p.empty()) {
        fail(bi, "deep invariant violated: " + p);
        return false;
      }
    }
    if (content) {
      ++res.checks;
      std::vector<std::pair<BitString, std::uint64_t>> got;
      if (!guarded([&] { got = adapter->collect(); })) return true;  // enumeration faulted
      dg.list(got);
      if (std::string d = diff_lists(got, live.all()); !d.empty()) {
        fail(bi, "content mismatch: " + d);
        return false;
      }
    }
    return true;
  };

  // Initial bulk load.
  {
    std::vector<BitString> tkeys;
    tkeys.reserve(s.init_keys.size());
    for (const auto& k : s.init_keys) tkeys.push_back(adapter->transform(k));
    if (guarded([&] { adapter->build(tkeys, s.init_values); })) {
      for (std::size_t i = 0; i < tkeys.size(); ++i) {
        live.insert(tkeys[i], s.init_values[i]);
        ever.insert(tkeys[i], s.init_values[i]);
      }
    } else {
      res.faulted += tkeys.size();
      resync();
    }
    res.ops += tkeys.size();
    if (opt.corrupt_kind >= 0 && opt.corrupt_from == 0 && s.batches.empty())
      adapter->corrupt(opt.corrupt_kind);
    if (!post_checks(kNoBatch, true)) return res;
  }

  for (std::size_t bi = 0; bi < s.batches.size(); ++bi) {
    const Batch& b = s.batches[bi];
    const bool prefix_op = b.op == OpKind::kSubtree || b.op == OpKind::kTopK;
    std::vector<BitString> tkeys;
    tkeys.reserve(b.keys.size());
    std::size_t max_bits = 0;
    for (const auto& k : b.keys) {
      tkeys.push_back(prefix_op ? adapter->transform_prefix(k) : adapter->transform(k));
      max_bits = std::max(max_bits, tkeys.back().size());
    }
    // Range upper bounds transform like keys; limits/k ride in aux.
    std::vector<BitString> tkeys2;
    if (b.op == OpKind::kRange) {
      tkeys2.reserve(b.keys2.size());
      for (const auto& k : b.keys2) {
        tkeys2.push_back(adapter->transform(k));
        max_bits = std::max(max_bits, tkeys2.back().size());
      }
    }
    std::vector<std::size_t> limits(b.aux.begin(), b.aux.end());
    res.ops += tkeys.size();

    auto before = sys.metrics().snapshot();
    bool query_ok = true;
    // Per-request statuses of the batch just run (serve adapter only;
    // empty = everything OK). Non-OK requests are honest failures: they
    // are counted, not compared.
    std::vector<std::uint8_t> st;
    auto skip_faulted = [&](std::size_t i) {
      if (i < st.size() && st[i] != 0) {
        ++res.faulted;
        return true;
      }
      return false;
    };
    switch (b.op) {
      case OpKind::kInsert: {
        bool ran = guarded([&] { adapter->insert(tkeys, b.values); });
        st = adapter->last_statuses();
        std::size_t bad = 0;
        for (std::uint8_t v : st)
          if (v != 0) ++bad;
        if (!ran || bad > 0) {
          res.faulted += ran ? bad : tkeys.size();
          resync();
        } else {
          for (std::size_t i = 0; i < tkeys.size(); ++i) {
            live.insert(tkeys[i], b.values[i]);
            ever.insert(tkeys[i], b.values[i]);
          }
        }
        break;
      }
      case OpKind::kErase: {
        bool ran = guarded([&] { adapter->erase(tkeys); });
        st = adapter->last_statuses();
        std::size_t bad = 0;
        for (std::uint8_t v : st)
          if (v != 0) ++bad;
        if (!ran || bad > 0) {
          res.faulted += ran ? bad : tkeys.size();
          resync();
        } else {
          for (const auto& k : tkeys) live.erase(k);
        }
        break;
      }
      case OpKind::kLcp: {
        std::vector<std::size_t> got;
        if (!guarded([&] { got = adapter->lcp(tkeys); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (std::size_t v : got) dg.u64(v);
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          if (std::string e = adapter->check_lcp(tkeys[i], got[i], live, ever);
              !e.empty()) {
            fail(bi, e);
            query_ok = false;
          }
        }
        break;
      }
      case OpKind::kSubtree: {
        std::vector<std::vector<std::pair<BitString, std::uint64_t>>> got;
        if (!guarded([&] { got = adapter->subtree(tkeys); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (const auto& l : got) dg.list(l);
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          if (std::string d = diff_lists(got[i], adapter->expect_subtree(tkeys[i], live));
              !d.empty()) {
            fail(bi, "subtree(" + key_str(tkeys[i]) + "): " + d);
            query_ok = false;
          }
        }
        break;
      }
      case OpKind::kGet: {
        std::vector<std::optional<std::uint64_t>> got;
        if (!guarded([&] { got = adapter->get(tkeys); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (const auto& v : got) {
          dg.u64(v.has_value() ? 1 : 0);
          if (v) dg.u64(*v);
        }
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          auto want = live.find(tkeys[i]);
          if (got[i] != want) {
            fail(bi, "get(" + key_str(tkeys[i]) + ") = " +
                         (got[i] ? std::to_string(*got[i]) : "absent") + ", oracle says " +
                         (want ? std::to_string(*want) : "absent"));
            query_ok = false;
          }
        }
        break;
      }
      case OpKind::kPred:
      case OpKind::kSucc: {
        const bool is_pred = b.op == OpKind::kPred;
        std::vector<std::optional<std::pair<BitString, std::uint64_t>>> got;
        if (!guarded(
                [&] { got = is_pred ? adapter->pred(tkeys) : adapter->succ(tkeys); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (const auto& v : got) {
          dg.u64(v.has_value() ? 1 : 0);
          if (v) {
            dg.key(v->first);
            dg.u64(v->second);
          }
        }
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          auto want = is_pred ? live.pred(tkeys[i]) : live.succ(tkeys[i]);
          bool same =
              got[i].has_value() == want.has_value() &&
              (!got[i] ||
               (got[i]->first == want->first && got[i]->second == want->second));
          if (!same) {
            fail(bi, std::string(op_name(b.op)) + "(" + key_str(tkeys[i]) + ") = " +
                         (got[i] ? key_str(got[i]->first) : "absent") +
                         ", oracle says " + (want ? key_str(want->first) : "absent"));
            query_ok = false;
          }
        }
        break;
      }
      case OpKind::kRange: {
        std::vector<std::vector<std::pair<BitString, std::uint64_t>>> got;
        if (!guarded([&] { got = adapter->range(tkeys, tkeys2, limits); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (const auto& l : got) dg.list(l);
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          if (std::string d =
                  diff_lists(got[i], live.range(tkeys[i], tkeys2[i], limits[i]));
              !d.empty()) {
            fail(bi, "range(" + key_str(tkeys[i]) + ", " + key_str(tkeys2[i]) +
                         ", limit " + std::to_string(limits[i]) + "): " + d);
            query_ok = false;
          }
        }
        break;
      }
      case OpKind::kTopK: {
        std::vector<std::vector<std::pair<BitString, std::uint64_t>>> got;
        if (!guarded([&] { got = adapter->topk(tkeys, limits); })) {
          res.faulted += tkeys.size();
          break;
        }
        st = adapter->last_statuses();
        for (const auto& l : got) dg.list(l);
        for (std::size_t i = 0; i < tkeys.size() && query_ok; ++i) {
          if (skip_faulted(i)) continue;
          ++res.checks;
          if (std::string d = diff_lists(got[i], live.topk(tkeys[i], limits[i]));
              !d.empty()) {
            fail(bi, "topk(" + key_str(tkeys[i]) + ", k " + std::to_string(limits[i]) +
                         "): " + d);
            query_ok = false;
          }
        }
        break;
      }
    }
    // Digest the batch's observable outcome beyond the answers mixed in
    // above: the op, the per-request statuses, and (below) its rounds.
    dg.u64(static_cast<std::uint64_t>(b.op));
    dg.u64(st.size());
    for (std::uint8_t v : st) dg.byte(v);
    if (!query_ok) {
      res.fault_retries = sys.fault_stats().retries;
      return res;
    }

    // Cost envelopes over the batch's own rounds (checks and the
    // corruption hook below issue rounds of their own, measured never).
    auto after = sys.metrics().snapshot();
    std::size_t batch_rounds = after.rounds - before.rounds;
    dg.u64(batch_rounds);
    res.max_batch_rounds = std::max(res.max_batch_rounds, batch_rounds);
    if (envelopes) {
      ++res.checks;
      std::size_t cap = adapter->round_envelope(b.op, max_bits);
      if (batch_rounds > cap) {
        fail(bi, std::string(op_name(b.op)) + " batch took " +
                     std::to_string(batch_rounds) + " rounds, envelope " +
                     std::to_string(cap));
        res.fault_retries = sys.fault_stats().retries;
        return res;
      }
      // Per-batch communication imbalance: only PimTrie claims skew
      // resistance, and only sizable batches are statistically meaningful.
      if (s.structure == "pimtrie" || s.structure == "serve") {
        std::uint64_t total = after.words - before.words, mx = 0;
        for (std::size_t m = 0; m < after.module_words.size(); ++m)
          mx = std::max(mx, after.module_words[m] - before.module_words[m]);
        if (total >= 256 * sys.p()) {
          double imb = static_cast<double>(mx) * static_cast<double>(sys.p()) /
                       static_cast<double>(total);
          res.max_imbalance = std::max(res.max_imbalance, imb);
          ++res.checks;
          double bound = std::max(3.5, 0.8 * static_cast<double>(sys.p()));
          if (imb > bound) {
            fail(bi, "per-batch comm imbalance " + std::to_string(imb) + " > bound " +
                         std::to_string(bound));
            res.fault_retries = sys.fault_stats().retries;
            return res;
          }
        }
      }
    }

    if (opt.corrupt_kind >= 0 && bi >= opt.corrupt_from)
      adapter->corrupt(opt.corrupt_kind);

    bool content = (opt.content_every != 0 && (bi + 1) % opt.content_every == 0) ||
                   bi + 1 == s.batches.size();
    if (!post_checks(bi, content)) {
      res.fault_retries = sys.fault_stats().retries;
      return res;
    }
  }
  res.rounds = sys.metrics().io_rounds();
  res.fault_retries = sys.fault_stats().retries;
  res.digest = dg.h;
  return res;
}

}  // namespace ptrie::check
