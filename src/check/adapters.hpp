#pragma once
// Uniform driver interface over the four index structures (PimTrie and
// the three Table-1 baselines) for the differential fuzz harness. Each
// adapter knows how to map raw schedule keys into its structure's key
// domain (transform / transform_prefix), what its LCP answers promise
// relative to the reference oracle (check_lcp — exact for PimTrie and
// the x-fast trie, chunk-granular with retained delete chains for the
// radix baseline, range-windowed for range partitioning), how to dump
// its full contents for content cross-checks, how many IO rounds a
// batch may legitimately take (round_envelope), and how to corrupt
// itself for the harness's own mutation tests.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "core/bitstring.hpp"
#include "pim/system.hpp"

namespace ptrie::check {

class IndexAdapter {
 public:
  virtual ~IndexAdapter() = default;
  virtual std::string name() const = 0;

  // Maps a raw schedule key into this structure's key domain. The
  // oracles are fed transformed keys, so differential checks compare
  // like with like.
  virtual core::BitString transform(const core::BitString& raw) const { return raw; }
  // Same for subtree prefixes (a prefix must stay a prefix: the x-fast
  // adapter truncates instead of widening to full words).
  virtual core::BitString transform_prefix(const core::BitString& raw) const {
    return transform(raw);
  }

  virtual void build(const std::vector<core::BitString>& keys,
                     const std::vector<std::uint64_t>& values) = 0;
  virtual void insert(const std::vector<core::BitString>& keys,
                      const std::vector<std::uint64_t>& values) = 0;
  virtual void erase(const std::vector<core::BitString>& keys) = 0;
  virtual std::vector<std::size_t> lcp(const std::vector<core::BitString>& keys) = 0;
  virtual std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> subtree(
      const std::vector<core::BitString>& prefixes) = 0;
  virtual bool supports_get() const { return false; }
  virtual std::vector<std::optional<std::uint64_t>> get(
      const std::vector<core::BitString>& keys) {
    return std::vector<std::optional<std::uint64_t>>(keys.size());
  }

  // Ordered operations (strict bitstring order over transformed keys).
  // Every structure answers these exactly against its live contents, so
  // the runner compares them straight against the oracle — no per-
  // structure acceptance hook is needed.
  virtual std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> pred(
      const std::vector<core::BitString>& keys) = 0;
  virtual std::vector<std::optional<std::pair<core::BitString, std::uint64_t>>> succ(
      const std::vector<core::BitString>& keys) = 0;
  virtual std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> range(
      const std::vector<core::BitString>& los, const std::vector<core::BitString>& his,
      const std::vector<std::size_t>& limits) = 0;
  virtual std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> topk(
      const std::vector<core::BitString>& prefixes, const std::vector<std::size_t>& ks) = 0;

  virtual std::size_t key_count() const = 0;
  // Structural invariants ("" when healthy). deep_check() covers the
  // occupancy/accounting invariants that only hold with maintenance on.
  virtual std::string check() const = 0;
  virtual std::string deep_check() const { return std::string(); }

  // Differential LCP acceptance for one transformed query: "" when the
  // structure's answer `got` is consistent with the oracles. `live`
  // holds the current key set, `ever` every key ever inserted (needed by
  // the radix baseline, whose delete retains chain nodes).
  virtual std::string check_lcp(const core::BitString& tkey, std::size_t got,
                                const Oracle& live, const Oracle& ever) const;

  // Expected subtree answer for one transformed prefix.
  virtual std::vector<std::pair<core::BitString, std::uint64_t>> expect_subtree(
      const core::BitString& tprefix, const Oracle& live) const {
    return live.subtree(tprefix);
  }

  // Every stored pair (transformed keys, lexicographic) — the full
  // content cross-check. May issue rounds (baselines enumerate via a
  // subtree query over the empty prefix).
  virtual std::vector<std::pair<core::BitString, std::uint64_t>> collect() = 0;

  // Upper bound on IO rounds for one batch of `op` whose longest key has
  // `max_bits` bits (the harness's cost envelope).
  virtual std::size_t round_envelope(OpKind op, std::size_t max_bits) const = 0;

  // Test-only fault injection: perturb internal state (without telling
  // the oracle) so the harness's checks must fire. Used by the mutation
  // tests that prove the harness detects and shrinks real corruption.
  virtual void corrupt(int kind) = 0;

  // Per-request status of this adapter's most recent batch op — values
  // are serve::Status codes (0 = kOk). Empty = everything succeeded.
  // Direct adapters either succeed wholesale or throw, so only the
  // serving adapter reports per-request degradation; under a fault plan
  // the runner skips oracle comparison for non-OK requests (the contract
  // is "right answer or honest failure", never silent wrongness).
  virtual std::vector<std::uint8_t> last_statuses() const { return {}; }
};

// name: pimtrie | radix | xfast | range. Returns nullptr for unknown
// names. The adapter keeps a reference to `sys` (one adapter per System).
std::unique_ptr<IndexAdapter> make_adapter(const std::string& name, pim::System& sys,
                                           std::uint64_t seed);

}  // namespace ptrie::check
