#include "check/schedule.hpp"

#include <sstream>

#include "core/rng.hpp"
#include "workload/generators.hpp"

namespace ptrie::check {

using core::BitString;
using core::Rng;

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kInsert: return "insert";
    case OpKind::kErase: return "erase";
    case OpKind::kLcp: return "lcp";
    case OpKind::kSubtree: return "subtree";
    case OpKind::kGet: return "get";
    case OpKind::kPred: return "pred";
    case OpKind::kSucc: return "succ";
    case OpKind::kRange: return "range";
    case OpKind::kTopK: return "topk";
  }
  return "?";
}

namespace {

bool op_from_name(const std::string& s, OpKind* out) {
  for (OpKind op : {OpKind::kInsert, OpKind::kErase, OpKind::kLcp, OpKind::kSubtree,
                    OpKind::kGet, OpKind::kPred, OpKind::kSucc, OpKind::kRange,
                    OpKind::kTopK}) {
    if (s == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

BitString random_key(Rng& rng, std::size_t max_bits) {
  std::size_t len = rng.below(max_bits + 1);
  BitString k;
  for (std::size_t i = 0; i < len; ++i) k.push_back(rng.coin());
  return k;
}

// Near-miss mutations of a pool key: truncate, extend, or flip one bit.
BitString mutate_key(const BitString& k, Rng& rng, std::size_t max_bits) {
  if (k.empty()) return random_key(rng, 8);
  switch (rng.below(3)) {
    case 0:
      return k.prefix(1 + rng.below(k.size()));
    case 1: {
      BitString out = k;
      std::size_t extra = 1 + rng.below(8);
      for (std::size_t i = 0; i < extra && out.size() < max_bits; ++i)
        out.push_back(rng.coin());
      return out;
    }
    default: {
      std::size_t i = rng.below(k.size());
      BitString out = k.prefix(i);
      out.push_back(!k.bit(i));
      out.append_slice(k, i + 1, k.size() - i - 1);
      return out;
    }
  }
}

std::string key_token(const BitString& k) {
  return k.empty() ? std::string("-") : k.to_binary();
}

bool parse_key(const std::string& tok, BitString* out) {
  if (tok == "-") {
    *out = BitString();
    return true;
  }
  for (char c : tok)
    if (c != '0' && c != '1') return false;
  *out = BitString::from_binary(tok);
  return true;
}

}  // namespace

std::size_t Schedule::op_count() const {
  std::size_t n = init_keys.size();
  for (const auto& b : batches) n += b.keys.size();
  return n;
}

Schedule make_schedule(const std::string& structure, const std::string& profile,
                       std::uint64_t seed, const GenParams& gp) {
  Schedule s;
  s.structure = structure;
  s.profile = profile;
  s.seed = seed;
  // Mix the profile into the stream so the same seed explores different
  // key material per profile; p cycles through small machine sizes.
  std::uint64_t mix = seed;
  for (char c : profile) mix = mix * 131 + static_cast<unsigned char>(c);
  Rng rng(mix * 0x9E3779B97F4A7C15ull + 1);
  s.p = std::size_t{1} << (1 + seed % 3);  // 2, 4, or 8 modules

  // Key pool by profile.
  std::vector<BitString> pool;
  std::uint64_t d1 = rng(), d2 = rng();
  if (profile == "cluster") {
    for (auto& k : workload::shared_prefix_keys(gp.init_n, 40, 24, d1)) pool.push_back(k);
    for (auto& k : workload::caterpillar_keys(24, 5, d2)) pool.push_back(k);
  } else if (profile == "dup") {
    // Adversarial-duplicate universe: a handful of keys hammered from
    // every batch, so dup-insert / repeat-delete paths dominate.
    for (auto& k : workload::variable_length_keys(12, 8, 40, d1)) pool.push_back(k);
  } else {  // uniform, zipf
    for (auto& k : workload::uniform_keys(gp.init_n, 48, d1)) pool.push_back(k);
    for (auto& k : workload::variable_length_keys(gp.init_n / 2, 8, gp.max_bits, d2))
      pool.push_back(k);
  }

  // Zipf-skewed pool picks: pre-draw one ranked sample stream.
  std::vector<BitString> zipf_stream;
  std::size_t zipf_at = 0;
  if (profile == "zipf")
    zipf_stream =
        workload::zipf_queries(pool, gp.n_batches * gp.batch_cap + 1, 0.99, rng());

  auto pool_pick = [&]() -> const BitString& {
    if (!zipf_stream.empty()) {
      const BitString& k = zipf_stream[zipf_at];
      zipf_at = (zipf_at + 1) % zipf_stream.size();
      return k;
    }
    return pool[rng.below(pool.size())];
  };
  auto draw_key = [&]() -> BitString {
    std::uint64_t roll = rng.below(10);
    std::size_t hit = profile == "dup" ? 9 : 6;
    if (roll < hit) return pool_pick();
    if (roll < 8) return mutate_key(pool_pick(), rng, gp.max_bits);
    return random_key(rng, gp.max_bits);
  };

  // Initial bulk load.
  std::size_t init_n = std::min(gp.init_n, pool.size());
  for (std::size_t i = 0; i < init_n; ++i) {
    s.init_keys.push_back(pool[i]);
    s.init_values.push_back(rng.below(1u << 16));
  }

  bool with_get = structure == "pimtrie";
  for (std::size_t b = 0; b < gp.n_batches; ++b) {
    Batch batch;
    std::uint64_t roll = rng.below(100);
    if (gp.ordered_bias) {
      // Ordered-op grammar: a thin write/query tail keeps the structure
      // churning, but ~70% of batches are ordered operations.
      if (roll < 14) batch.op = OpKind::kInsert;
      else if (roll < 24) batch.op = OpKind::kErase;
      else if (roll < 30) batch.op = with_get ? OpKind::kGet : OpKind::kLcp;
      else if (roll < 48) batch.op = OpKind::kPred;
      else if (roll < 66) batch.op = OpKind::kSucc;
      else if (roll < 84) batch.op = OpKind::kRange;
      else batch.op = OpKind::kTopK;
    } else {
      if (roll < 26) batch.op = OpKind::kInsert;
      else if (roll < 46) batch.op = OpKind::kErase;
      else if (roll < 60) batch.op = OpKind::kLcp;
      else if (roll < 68) batch.op = OpKind::kSubtree;
      else if (roll < 76) batch.op = with_get ? OpKind::kGet : OpKind::kLcp;
      else if (roll < 82) batch.op = OpKind::kPred;
      else if (roll < 88) batch.op = OpKind::kSucc;
      else if (roll < 94) batch.op = OpKind::kRange;
      else batch.op = OpKind::kTopK;
    }

    if (batch.op == OpKind::kSubtree || batch.op == OpKind::kTopK) {
      // Subtree/top-k answers key off prefixes; keep these batches
      // narrow and use prefixes of pool keys (plus the occasional
      // empty/full prefix). Top-k draws k = 0 on purpose sometimes.
      std::size_t n = 1 + rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        const BitString& base = pool_pick();
        batch.keys.push_back(base.prefix(rng.below(base.size() + 1)));
        if (batch.op == OpKind::kTopK)
          batch.aux.push_back(rng.below(10) == 0 ? 0 : 1 + rng.below(16));
      }
    } else if (batch.op == OpKind::kRange) {
      // Bounds are two independent draws, deliberately unsorted so
      // hi < lo (empty answer) is exercised; limits include zero.
      std::size_t n = 1 + rng.below(6);
      for (std::size_t i = 0; i < n; ++i) {
        batch.keys.push_back(draw_key());
        batch.keys2.push_back(draw_key());
        batch.aux.push_back(rng.below(8) == 0 ? 0 : 1 + rng.below(48));
      }
    } else {
      std::size_t n = 1 + rng.below(gp.batch_cap);
      for (std::size_t i = 0; i < n; ++i) {
        batch.keys.push_back(draw_key());
        if (batch.op == OpKind::kInsert) batch.values.push_back(rng.below(1u << 16));
      }
    }
    s.batches.push_back(std::move(batch));
  }
  return s;
}

std::string serialize(const Schedule& s) {
  std::ostringstream out;
  out << "ptrie-fuzz-schedule v1\n";
  out << "structure " << s.structure << "\n";
  out << "profile " << s.profile << "\n";
  out << "p " << s.p << "\n";
  out << "seed " << s.seed << "\n";
  out << "init " << s.init_keys.size() << "\n";
  for (std::size_t i = 0; i < s.init_keys.size(); ++i)
    out << key_token(s.init_keys[i]) << " " << s.init_values[i] << "\n";
  out << "batches " << s.batches.size() << "\n";
  for (const auto& b : s.batches) {
    out << "batch " << op_name(b.op) << " " << b.keys.size() << "\n";
    for (std::size_t i = 0; i < b.keys.size(); ++i) {
      out << key_token(b.keys[i]);
      if (b.op == OpKind::kInsert) out << " " << b.values[i];
      if (b.op == OpKind::kRange) out << " " << key_token(b.keys2[i]) << " " << b.aux[i];
      if (b.op == OpKind::kTopK) out << " " << b.aux[i];
      out << "\n";
    }
  }
  if (!s.faults.empty()) out << "faults " << s.faults << "\n";
  out << "end\n";
  return out.str();
}

bool parse(const std::string& text, Schedule* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  std::istringstream in(text);
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "ptrie-fuzz-schedule" || version != "v1")
    return fail("bad header (want 'ptrie-fuzz-schedule v1')");
  Schedule s;
  std::string tag;
  std::size_t n_init = 0, n_batches = 0;
  if (!(in >> tag >> s.structure) || tag != "structure") return fail("missing structure");
  if (!(in >> tag >> s.profile) || tag != "profile") return fail("missing profile");
  if (!(in >> tag >> s.p) || tag != "p" || s.p == 0) return fail("missing p");
  if (!(in >> tag >> s.seed) || tag != "seed") return fail("missing seed");
  if (!(in >> tag >> n_init) || tag != "init") return fail("missing init count");
  for (std::size_t i = 0; i < n_init; ++i) {
    std::string ktok;
    std::uint64_t v;
    BitString k;
    if (!(in >> ktok >> v) || !parse_key(ktok, &k)) return fail("bad init pair");
    s.init_keys.push_back(std::move(k));
    s.init_values.push_back(v);
  }
  if (!(in >> tag >> n_batches) || tag != "batches") return fail("missing batch count");
  for (std::size_t b = 0; b < n_batches; ++b) {
    std::string opname;
    std::size_t n = 0;
    Batch batch;
    if (!(in >> tag >> opname >> n) || tag != "batch" || !op_from_name(opname, &batch.op))
      return fail("bad batch header");
    for (std::size_t i = 0; i < n; ++i) {
      std::string ktok;
      BitString k;
      if (!(in >> ktok) || !parse_key(ktok, &k)) return fail("bad batch key");
      batch.keys.push_back(std::move(k));
      if (batch.op == OpKind::kInsert) {
        std::uint64_t v;
        if (!(in >> v)) return fail("missing insert value");
        batch.values.push_back(v);
      }
      if (batch.op == OpKind::kRange) {
        std::string htok;
        BitString hi;
        std::uint64_t lim;
        if (!(in >> htok) || !parse_key(htok, &hi)) return fail("bad range hi key");
        if (!(in >> lim)) return fail("missing range limit");
        batch.keys2.push_back(std::move(hi));
        batch.aux.push_back(lim);
      }
      if (batch.op == OpKind::kTopK) {
        std::uint64_t kk;
        if (!(in >> kk)) return fail("missing topk k");
        batch.aux.push_back(kk);
      }
    }
    s.batches.push_back(std::move(batch));
  }
  if (!(in >> tag)) return fail("missing end marker");
  if (tag == "faults") {
    // Single whitespace-free token (the pim::FaultPlan text format).
    if (!(in >> s.faults)) return fail("missing fault plan token");
    if (!(in >> tag)) return fail("missing end marker");
  }
  if (tag != "end") return fail("missing end marker");
  *out = std::move(s);
  return true;
}

bool parse_all(const std::string& text, std::vector<Schedule>* out, std::string* error) {
  // Each schedule opens with the full header line; split on it. A dump
  // from --seeds N is exactly N serialized schedules concatenated, so
  // the split points are unambiguous (keys are '0'/'1'/'-' tokens and
  // can never contain the header string).
  static const char kHeader[] = "ptrie-fuzz-schedule v1";
  std::vector<std::size_t> starts;
  for (std::size_t pos = text.find(kHeader); pos != std::string::npos;
       pos = text.find(kHeader, pos + 1))
    starts.push_back(pos);
  if (starts.empty()) {
    if (error) *error = "bad header (want 'ptrie-fuzz-schedule v1')";
    return false;
  }
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::size_t end = i + 1 < starts.size() ? starts[i + 1] : text.size();
    Schedule s;
    if (!parse(text.substr(starts[i], end - starts[i]), &s, error)) return false;
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace ptrie::check
