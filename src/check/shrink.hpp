#pragma once
// Greedy schedule minimizer: given a failing Schedule, repeatedly
// re-runs candidate simplifications and keeps any that still fail —
// first dropping whole batches (chunked, delta-debugging style), then
// dropping initial keys, then individual ops inside batches, then
// shortening keys. Deterministic (the runner is), bounded by a re-run
// budget, and the result serializes to a replayable file.

#include <cstddef>

#include "check/runner.hpp"
#include "check/schedule.hpp"

namespace ptrie::check {

struct ShrinkStats {
  std::size_t runs = 0;      // schedules re-executed
  std::size_t accepted = 0;  // simplifications kept
};

// Returns the minimized schedule (the input itself if it does not fail
// under `opt`, or if the budget is exhausted before any progress).
Schedule shrink(const Schedule& failing, const CheckOptions& opt,
                std::size_t max_runs = 400, ShrinkStats* stats = nullptr);

}  // namespace ptrie::check
