#pragma once
// Host-side reference oracle for differential testing: a plain sorted
// map over bit-strings with the exact batch semantics of the paper's
// operations (last-write-wins inserts, no-op deletes of absent keys,
// LCP against the live set, lexicographic subtree enumeration). Every
// index structure under fuzz (src/check/adapters.hpp) is cross-checked
// against one of these after each batch.

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/bitstring.hpp"

namespace ptrie::check {

class Oracle {
 public:
  // Returns true when the key was not present (fresh insert); a
  // duplicate overwrites the value, matching every structure's contract.
  bool insert(const core::BitString& key, std::uint64_t value);
  // Returns true when the key was present (absent keys are no-ops).
  bool erase(const core::BitString& key);

  std::optional<std::uint64_t> find(const core::BitString& key) const;

  // LCP length in bits of `q` against the stored set (0 when empty).
  // In lexicographic order the maximizer is always a neighbor of q, so
  // only the predecessor and successor are examined.
  std::size_t lcp(const core::BitString& q) const;

  // LCP restricted to stored keys k with lo <= k < hi (either bound
  // optional) — the per-range expectation for the range-partitioned
  // baseline, whose LCP only sees the routed module's keys.
  std::size_t lcp_in_range(const core::BitString& q,
                           const core::BitString* lo,
                           const core::BitString* hi) const;

  // All stored pairs with `prefix` as a prefix, lexicographic order.
  std::vector<std::pair<core::BitString, std::uint64_t>> subtree(
      const core::BitString& prefix) const;

  // Ordered reference answers (strict; the map's key order is exactly
  // the bitstring order every structure promises).
  std::optional<std::pair<core::BitString, std::uint64_t>> pred(
      const core::BitString& x) const;
  std::optional<std::pair<core::BitString, std::uint64_t>> succ(
      const core::BitString& x) const;
  // Stored pairs in [lo, hi] inclusive, ascending, truncated to `limit`
  // (limit 0 or lo > hi = empty).
  std::vector<std::pair<core::BitString, std::uint64_t>> range(
      const core::BitString& lo, const core::BitString& hi, std::size_t limit) const;
  // First k stored pairs under `prefix`, ascending.
  std::vector<std::pair<core::BitString, std::uint64_t>> topk(
      const core::BitString& prefix, std::size_t k) const;

  // Every stored pair in lexicographic order.
  std::vector<std::pair<core::BitString, std::uint64_t>> all() const;

  std::size_t size() const { return map_.size(); }

 private:
  std::map<core::BitString, std::uint64_t> map_;
};

}  // namespace ptrie::check
