#pragma once
// Randomized batch schedules for the differential fuzz harness: a
// Schedule is a fully self-contained description of one run — target
// structure, machine size, an initial bulk-load key set, and a sequence
// of mixed Insert/Delete/LCP/Subtree/Get batches. Schedules are derived
// deterministically from a seed (make_schedule) and round-trip through
// a line-oriented text format (serialize/parse) so any failure is
// replayable from a single file — the shrinker re-serializes minimized
// schedules in the same format.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bitstring.hpp"

namespace ptrie::check {

enum class OpKind {
  kInsert,
  kErase,
  kLcp,
  kSubtree,
  kGet,
  // Ordered operations (strict bitstring order): predecessor/successor
  // point queries, inclusive bounded range scans, first-k-under-prefix.
  kPred,
  kSucc,
  kRange,
  kTopK,
};

const char* op_name(OpKind op);

struct Batch {
  OpKind op = OpKind::kLcp;
  std::vector<core::BitString> keys;
  // Parallel to keys; meaningful for kInsert only.
  std::vector<std::uint64_t> values;
  // Parallel to keys; the inclusive upper bound for kRange only. The
  // generator deliberately does NOT sort the pair, so hi < lo (empty
  // answer) is a first-class schedule case.
  std::vector<core::BitString> keys2;
  // Parallel to keys; the result cap for kRange / the k for kTopK.
  // Zero is generated on purpose (empty-answer path).
  std::vector<std::uint64_t> aux;
};

struct Schedule {
  std::string structure = "pimtrie";  // pimtrie | radix | xfast | range
  std::string profile = "uniform";    // uniform | zipf | cluster | dup
  std::size_t p = 4;                  // PIM modules
  std::uint64_t seed = 1;
  std::vector<core::BitString> init_keys;
  std::vector<std::uint64_t> init_values;
  std::vector<Batch> batches;
  // Optional pim::FaultPlan token (see pim/fault.hpp text format) the
  // runner installs before replaying; empty = no fault injection. Rides
  // in the schedule so failing fault runs shrink and replay verbatim.
  std::string faults;

  std::size_t op_count() const;  // init keys + sum of batch sizes
};

struct GenParams {
  std::size_t n_batches = 30;
  std::size_t batch_cap = 24;  // max keys per batch
  std::size_t init_n = 64;     // initial bulk-load size
  std::size_t max_bits = 96;   // longest generated key
  // Skew the op mix toward the ordered operations (~70% of batches are
  // pred/succ/range/topk) — the ordered-op fuzz grammar.
  bool ordered_bias = false;
};

// Deterministic schedule from (structure, profile, seed). Key material
// mixes workload-generator pools (uniform / Zipf-sampled / shared-prefix
// clustered / tiny adversarial-duplicate universes) with mutated and
// fresh keys so hit, near-miss and miss paths are all exercised.
Schedule make_schedule(const std::string& structure, const std::string& profile,
                       std::uint64_t seed, const GenParams& gp = {});

// Text round-trip. parse() returns false and fills `error` on malformed
// input; serialize(parse(s)) == s for schedules produced here.
std::string serialize(const Schedule& s);
bool parse(const std::string& text, Schedule* out, std::string* error);

// Parses a file holding one or more concatenated schedules (what
// `ptrie_fuzz --seeds N --dump` writes — each starts with its own
// "ptrie-fuzz-schedule v1" header). parse() stops at the first `end`
// marker, so replaying a multi-schedule dump through it silently ran
// only the first schedule; replay paths must use this instead. The
// round-trip fixpoint is: dump == concat(serialize(s) for s in
// parse_all(dump)).
bool parse_all(const std::string& text, std::vector<Schedule>* out, std::string* error);

}  // namespace ptrie::check
