#include "check/shrink.hpp"

#include <algorithm>

namespace ptrie::check {

namespace {

// Removes [start, start+len) from a batch's keys (and the parallel
// values / range-hi / limit vectors, when the batch carries them).
void drop_ops(Batch* b, std::size_t start, std::size_t len) {
  b->keys.erase(b->keys.begin() + start, b->keys.begin() + start + len);
  if (!b->values.empty())
    b->values.erase(b->values.begin() + start, b->values.begin() + start + len);
  if (!b->keys2.empty())
    b->keys2.erase(b->keys2.begin() + start, b->keys2.begin() + start + len);
  if (!b->aux.empty())
    b->aux.erase(b->aux.begin() + start, b->aux.begin() + start + len);
}

}  // namespace

Schedule shrink(const Schedule& failing, const CheckOptions& opt, std::size_t max_runs,
                ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;

  Schedule cur = failing;

  auto still_fails = [&](const Schedule& cand) {
    if (st.runs >= max_runs) return false;  // budget spent: accept nothing more
    ++st.runs;
    return !run_schedule(cand, opt).ok;
  };
  auto accept = [&](Schedule&& cand) {
    cur = std::move(cand);
    ++st.accepted;
  };

  RunResult first = run_schedule(cur, opt);
  ++st.runs;
  if (first.ok) return cur;

  // Everything after the failing batch is irrelevant (the runner fails
  // fast), so truncate before searching.
  if (first.fail_batch != kNoBatch && first.fail_batch + 1 < cur.batches.size())
    cur.batches.resize(first.fail_batch + 1);

  // Chunked removal over a sequence of `size()` elements: repeatedly try
  // deleting [start, start+chunk) from the end backwards, halving the
  // chunk when a full scan makes no progress (delta-debugging style).
  auto chunked_removal = [&](auto size, auto remove_chunk) {
    std::size_t chunk = std::max<std::size_t>(size(cur) / 2, 1);
    while (st.runs < max_runs) {
      bool progress = false;
      std::size_t start = size(cur);
      while (start >= chunk && st.runs < max_runs) {
        Schedule cand = cur;
        remove_chunk(cand, start - chunk, chunk);
        if (still_fails(cand)) {
          accept(std::move(cand));
          progress = true;
        }
        // Whether or not the removal was kept, continue scanning to the
        // left of the attempted window.
        start -= chunk;
        start = std::min(start, size(cur));
      }
      if (!progress) {
        if (chunk == 1) break;
        chunk /= 2;
      } else {
        chunk = std::min(chunk, std::max<std::size_t>(size(cur), 1));
      }
    }
  };

  // Pass 1: drop whole batches.
  chunked_removal([](const Schedule& s) { return s.batches.size(); },
                  [](Schedule& s, std::size_t at, std::size_t n) {
                    s.batches.erase(s.batches.begin() + at, s.batches.begin() + at + n);
                  });

  // Pass 2: drop initial keys.
  chunked_removal([](const Schedule& s) { return s.init_keys.size(); },
                  [](Schedule& s, std::size_t at, std::size_t n) {
                    s.init_keys.erase(s.init_keys.begin() + at,
                                      s.init_keys.begin() + at + n);
                    s.init_values.erase(s.init_values.begin() + at,
                                        s.init_values.begin() + at + n);
                  });

  // Pass 3: drop individual ops inside each surviving batch (scanned by
  // index; batch bi may disappear when its last op goes).
  for (std::size_t bi = cur.batches.size(); bi-- > 0 && st.runs < max_runs;) {
    if (bi >= cur.batches.size()) continue;
    chunked_removal(
        [bi](const Schedule& s) {
          return bi < s.batches.size() ? s.batches[bi].keys.size() : 0;
        },
        [bi](Schedule& s, std::size_t at, std::size_t n) {
          drop_ops(&s.batches[bi], at, n);
          if (s.batches[bi].keys.empty()) s.batches.erase(s.batches.begin() + bi);
        });
  }

  // Pass 4: shorten keys to halving prefixes, init keys then batch keys.
  bool progress = true;
  while (progress && st.runs < max_runs) {
    progress = false;
    for (std::size_t i = 0; i < cur.init_keys.size(); ++i) {
      while (cur.init_keys[i].size() >= 2 && st.runs < max_runs) {
        Schedule cand = cur;
        cand.init_keys[i] = cand.init_keys[i].prefix(cand.init_keys[i].size() / 2);
        if (!still_fails(cand)) break;
        accept(std::move(cand));
        progress = true;
      }
    }
    for (std::size_t bi = 0; bi < cur.batches.size(); ++bi) {
      for (std::size_t i = 0; i < cur.batches[bi].keys.size(); ++i) {
        while (cur.batches[bi].keys[i].size() >= 2 && st.runs < max_runs) {
          Schedule cand = cur;
          cand.batches[bi].keys[i] =
              cand.batches[bi].keys[i].prefix(cand.batches[bi].keys[i].size() / 2);
          if (!still_fails(cand)) break;
          accept(std::move(cand));
          progress = true;
        }
      }
    }
  }

  return cur;
}

}  // namespace ptrie::check
