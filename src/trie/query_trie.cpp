#include "trie/query_trie.hpp"

#include <algorithm>
#include <numeric>

#include "core/parallel.hpp"
#include "obs/counters.hpp"

namespace ptrie::trie {

using core::BitString;

std::vector<std::size_t> string_sort(std::vector<BitString>& keys) {
  // Sort indices by (word-wise) lexicographic order, then apply. The
  // BitString packing makes compare() word-at-a-time, so this behaves like
  // an O(n log n * k/w) comparison sort — adequate for the simulator's CPU
  // side; the paper's O(n (1+k/w) loglog n) bound is a theoretical target.
  // The stable parallel merge sort keeps the permutation worker-count
  // invariant even with duplicate keys.
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0);
  core::parallel_stable_sort(perm.begin(), perm.end(),
                             [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::vector<BitString> sorted(keys.size());
  core::parallel_for(
      0, perm.size(), [&](std::size_t i) { sorted[i] = std::move(keys[perm[i]]); },
      /*grain=*/2048);
  keys = std::move(sorted);
  return perm;
}

std::vector<std::size_t> adjacent_lcp(const std::vector<BitString>& keys) {
  std::vector<std::size_t> lcp(keys.size(), 0);
  core::parallel_for(1, keys.size(), [&](std::size_t i) { lcp[i] = keys[i - 1].lcp(keys[i]); });
  return lcp;
}

QueryTrie build_query_trie(const std::vector<BitString>& batch_keys,
                           const hash::PolyHasher& hasher) {
  QueryTrie qt;
  std::size_t n = batch_keys.size();
  qt.sorted_keys = batch_keys;
  std::vector<std::size_t> perm = string_sort(qt.sorted_keys);

  // Dedup (duplicates in a batch share a query trie node): run-boundary
  // flags, a prefix scan assigning slots, and a parallel scatter.
  std::vector<std::size_t> slot_of_sorted_pos(n);
  std::vector<std::size_t> rank(n, 0);
  core::parallel_for(
      0, n,
      [&](std::size_t i) {
        rank[i] = (i == 0 || !(qt.sorted_keys[i - 1] == qt.sorted_keys[i])) ? 1 : 0;
      },
      /*grain=*/2048);
  std::size_t n_uniq = n == 0 ? 0 : core::parallel_inclusive_scan(rank);
  std::vector<BitString> uniq(n_uniq);
  core::parallel_for(
      0, n,
      [&](std::size_t i) {
        slot_of_sorted_pos[i] = rank[i] - 1;
        if (i == 0 || rank[i] != rank[i - 1]) uniq[rank[i] - 1] = qt.sorted_keys[i];
      },
      /*grain=*/2048);
  qt.sorted_slot_of_input.assign(n, 0);
  core::parallel_for(
      0, n, [&](std::size_t i) { qt.sorted_slot_of_input[perm[i]] = slot_of_sorted_pos[i]; },
      /*grain=*/2048);
  qt.sorted_keys = std::move(uniq);

  std::vector<std::size_t> lcp = adjacent_lcp(qt.sorted_keys);
  qt.trie = Patricia::build_sorted(qt.sorted_keys, lcp);

  // key_node: slot -> node id. build_sorted stores slot index as value.
  qt.key_node.assign(qt.sorted_keys.size(), kNil);
  qt.trie.preorder([&](NodeId id) {
    const auto& node = qt.trie.node(id);
    if (node.has_value) qt.key_node[node.value] = id;
  });

  // Node hashes by a rootfix-style top-down pass: h(child) = extend of
  // h(parent) over the child's edge (Lemma 4.9's structure; serial here,
  // work-equivalent).
  qt.node_hash.assign(qt.trie.slot_count(), 0);
  // Each node's absolute string is parent's string + edge; we extend along
  // edges to avoid reconstructing strings. Edges store their own bits, so
  // extend() runs over the edge's packed words directly.
  std::vector<NodeId> order = qt.trie.preorder_ids();
  for (NodeId id : order) {
    const auto& node = qt.trie.node(id);
    if (node.parent == kNil) {
      qt.node_hash[id] = hasher.empty();
    } else {
      qt.node_hash[id] =
          hasher.extend(qt.node_hash[node.parent], node.edge, 0, node.edge.size());
    }
  }

  // Work accounting: sort ~ n log n word-compares, lcp ~ sum k/w, build ~ n,
  // hashing ~ L/w + n.
  std::uint64_t kw = core::parallel_reduce<std::uint64_t>(
      0, qt.sorted_keys.size(), 0,
      [&](std::size_t i) { return qt.sorted_keys[i].word_count(); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, /*grain=*/4096);
  std::size_t logn = 1;
  while ((std::size_t{1} << logn) < std::max<std::size_t>(2, n)) ++logn;
  qt.cpu_work = n * logn + 2 * kw + qt.trie.node_count() +
                qt.trie.edge_bits_total() / 64 + qt.trie.node_count();
  obs::counter("query_trie/builds").add();
  obs::counter("query_trie/keys").add(n);
  obs::counter("query_trie/nodes").add(qt.trie.node_count());
  return qt;
}

}  // namespace ptrie::trie
