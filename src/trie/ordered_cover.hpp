#pragma once
// Shared decomposition math for the ordered operations (Predecessor /
// Successor / RangeScan): every structure answers them by reducing the
// query to a short list of *pieces* over the key space, each either an
// exact key probe or a whole-subtree probe, ordered so the first viable
// piece (or the concatenation of all pieces) yields the answer. The
// order is bitstring-lexicographic with a proper prefix sorting before
// its extensions (core::BitString::operator<).
//
// The same piece lists drive PimTrie (one match pass for viability, a
// per-block extremum descent for the winner), the baselines (piece
// probes over their own subtree machinery), and the test oracle — so a
// bug in this header is caught by the differential fuzzer on every
// structure at once.

#include <cstddef>
#include <vector>

#include "core/bitstring.hpp"

namespace ptrie::trie {

struct CoverPiece {
  core::BitString prefix;
  // true: the piece is the whole subtree under `prefix`; false: the
  // piece is the single key `prefix` itself (exact probe).
  bool subtree = false;
};

// Successor candidates for strict succ(x), ascending by their minimal
// element: every stored key k > x lies in exactly one candidate
// subtree, and candidates earlier in the list contain strictly smaller
// keys. No exact pieces: a key > x is never a proper prefix of x.
//   succ(x) = min of the first non-empty candidate subtree.
inline std::vector<CoverPiece> succ_candidates(const core::BitString& x) {
  std::vector<CoverPiece> out;
  // Extensions of x: x.0... sorts before x.1... and both are > x.
  for (int b = 0; b < 2; ++b) {
    CoverPiece p;
    p.prefix = x;
    p.prefix.push_back(b != 0);
    p.subtree = true;
    out.push_back(std::move(p));
  }
  // Keys diverging upward at bit j (x[j] = 0, key bit 1): the larger j,
  // the longer the shared prefix with x, the smaller the keys.
  for (std::size_t j = x.size(); j-- > 0;) {
    if (x.bit(j)) continue;
    CoverPiece p;
    p.prefix = x.prefix(j);
    p.prefix.push_back(true);
    p.subtree = true;
    out.push_back(std::move(p));
  }
  return out;
}

// Predecessor candidates for strict pred(x), descending by their
// maximal element. A key k < x either diverges low at some bit j
// (x[j] = 1, key bit 0: the subtree pieces) or is a proper prefix of x
// (the exact pieces). At a given j the subtree piece's keys extend the
// exact piece's key, so the subtree piece sorts first.
//   pred(x) = max of the first viable candidate (a present exact key,
//   or a non-empty subtree).
inline std::vector<CoverPiece> pred_candidates(const core::BitString& x) {
  std::vector<CoverPiece> out;
  for (std::size_t j = x.size(); j-- > 0;) {
    if (x.bit(j)) {
      CoverPiece p;
      p.prefix = x.prefix(j);
      p.prefix.push_back(false);
      p.subtree = true;
      out.push_back(std::move(p));
    }
    CoverPiece e;
    e.prefix = x.prefix(j);
    out.push_back(std::move(e));
  }
  return out;
}

// Disjoint ascending cover of the inclusive key interval [lo, hi]:
// concatenating the pieces' contents in list order enumerates exactly
// the stored keys k with lo <= k <= hi in ascending order. Empty when
// lo > hi. The piece count is O(|lo| + |hi|).
inline std::vector<CoverPiece> range_cover(const core::BitString& lo,
                                           const core::BitString& hi) {
  std::vector<CoverPiece> out;
  if (hi < lo) return out;
  if (lo == hi) {
    out.push_back(CoverPiece{lo, false});
    return out;
  }
  std::size_t f = lo.lcp(hi);
  if (f == lo.size()) {
    // lo is a proper prefix of hi: every key in (lo, hi] extends lo.
    out.push_back(CoverPiece{lo, false});
    for (std::size_t j = f; j < hi.size(); ++j) {
      if (j > f) out.push_back(CoverPiece{hi.prefix(j), false});
      if (hi.bit(j)) {
        CoverPiece p;
        p.prefix = hi.prefix(j);
        p.prefix.push_back(false);
        p.subtree = true;
        out.push_back(std::move(p));
      }
    }
    out.push_back(CoverPiece{hi, false});
    return out;
  }
  // Fork: lo[f] = 0, hi[f] = 1. Lower half: keys >= lo extending
  // lo[0..f].0 — the subtree of lo itself, then divergences upward.
  out.push_back(CoverPiece{lo, true});
  for (std::size_t j = lo.size(); j-- > f + 1;) {
    if (lo.bit(j)) continue;
    CoverPiece p;
    p.prefix = lo.prefix(j);
    p.prefix.push_back(true);
    p.subtree = true;
    out.push_back(std::move(p));
  }
  // The divergence pieces above were generated deepest-first (ascending
  // keys need earliest-divergence last)... they must ascend: larger j
  // diverges later, hence *smaller* keys, so deepest-first IS ascending.
  // Upper half: keys <= hi extending hi[0..f].1 — prefixes of hi and
  // divergences downward, exactly the proper-prefix case from f+1 on.
  for (std::size_t j = f + 1; j < hi.size(); ++j) {
    out.push_back(CoverPiece{hi.prefix(j), false});
    if (hi.bit(j)) {
      CoverPiece p;
      p.prefix = hi.prefix(j);
      p.prefix.push_back(false);
      p.subtree = true;
      out.push_back(std::move(p));
    }
  }
  out.push_back(CoverPiece{hi, false});
  return out;
}

}  // namespace ptrie::trie
