#pragma once
// Query trie (paper Section 4.1, Algorithm 1): the per-batch trie built on
// the CPU from the batch's operation keys. Construction = string sort,
// adjacent-LCP array, Patricia generation — plus the pivot-node hash
// augmentation of Section 4.4.2 (node hashes at every depth that is a
// multiple of w bits, computed by per-edge prefix sums and a rootfix scan,
// Lemmas 4.4/4.9).

#include <cstdint>
#include <vector>

#include "core/bitstring.hpp"
#include "hash/poly_hash.hpp"
#include "trie/patricia.hpp"

namespace ptrie::trie {

struct QueryTrie {
  Patricia trie;
  // Index of the batch key each leaf/value node represents:
  // key_node[i] = node id representing keys[i] (after dedup: first
  // occurrence wins; duplicates map to the same node).
  std::vector<NodeId> key_node;
  // Sorted, deduplicated keys and the map original index -> sorted slot.
  std::vector<core::BitString> sorted_keys;
  std::vector<std::size_t> sorted_slot_of_input;
  // For each live node id: hash of the node's represented string
  // (computed incrementally down the trie).
  std::vector<hash::HashVal> node_hash;
  // CPU work charged for construction (string sort + LCP + build + hash).
  std::uint64_t cpu_work = 0;

  std::size_t q_words() const {  // Q_Q = O(L_Q/w + n_Q)
    return trie.edge_bits_total() / 64 + trie.node_count();
  }
};

// Sorts bit-strings lexicographically (MSD radix on packed words) and
// returns the permutation applied. O(n (1 + k/w))-ish work.
std::vector<std::size_t> string_sort(std::vector<core::BitString>& keys);

// lcp[i] = LCP(keys[i-1], keys[i]) in bits for sorted keys; lcp[0] = 0.
std::vector<std::size_t> adjacent_lcp(const std::vector<core::BitString>& keys);

// Algorithm 1 end-to-end. `hasher` computes the per-node hashes.
QueryTrie build_query_trie(const std::vector<core::BitString>& batch_keys,
                           const hash::PolyHasher& hasher);

}  // namespace ptrie::trie
