#include "trie/treefix.hpp"

namespace ptrie::trie {

std::vector<std::uint32_t> subtree_node_counts(const Patricia& t) {
  return leaffix<std::uint32_t>(
      t, [](NodeId) { return std::uint32_t{1}; },
      [](std::uint32_t a, std::uint32_t b) { return a + b; });
}

std::vector<std::uint64_t> subtree_weights(const Patricia& t,
                                           const std::function<std::uint64_t(NodeId)>& w) {
  return leaffix<std::uint64_t>(t, [&](NodeId id) { return w(id); },
                                [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

}  // namespace ptrie::trie
