#include "trie/euler_partition.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ptrie::trie {

LcaIndex::LcaIndex(const Patricia& t) {
  first_.assign(t.slot_count(), ~std::uint32_t{0});
  // Iterative Euler tour: visit node, recurse child, re-visit node.
  struct Frame {
    NodeId id;
    int next_child;
    std::uint32_t level;
  };
  std::vector<Frame> stack{{t.root(), 0, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child == 0) {
      first_[f.id] = static_cast<std::uint32_t>(tour_.size());
      tour_.push_back(f.id);
      tour_depth_.push_back(f.level);
    }
    NodeId c = kNil;
    while (f.next_child < 2 && c == kNil) {
      c = t.node(f.id).child[f.next_child];
      ++f.next_child;
    }
    if (c != kNil) {
      stack.push_back({c, 0, f.level + 1});
    } else {
      std::uint32_t level = f.level;
      stack.pop_back();
      if (!stack.empty()) {
        tour_.push_back(stack.back().id);
        tour_depth_.push_back(level - 1);
      }
    }
  }
  // Sparse table of argmin over tour_depth_.
  std::size_t m = tour_.size();
  std::size_t levels = m <= 1 ? 1 : std::bit_width(m) ;
  sparse_.assign(levels, std::vector<std::uint32_t>(m));
  for (std::size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<std::uint32_t>(i);
  for (std::size_t k = 1; k < levels; ++k) {
    std::size_t half = std::size_t{1} << (k - 1);
    for (std::size_t i = 0; i + (std::size_t{1} << k) <= m; ++i) {
      std::uint32_t a = sparse_[k - 1][i], b = sparse_[k - 1][i + half];
      sparse_[k][i] = tour_depth_[a] <= tour_depth_[b] ? a : b;
    }
  }
}

std::uint32_t LcaIndex::rmq(std::uint32_t lo, std::uint32_t hi) const {
  if (lo > hi) std::swap(lo, hi);
  std::uint32_t len = hi - lo + 1;
  std::uint32_t k = static_cast<std::uint32_t>(std::bit_width(len)) - 1;
  std::uint32_t a = sparse_[k][lo];
  std::uint32_t b = sparse_[k][hi + 1 - (std::uint32_t{1} << k)];
  return tour_depth_[a] <= tour_depth_[b] ? a : b;
}

NodeId LcaIndex::lca(NodeId a, NodeId b) const {
  std::uint32_t fa = first_[a], fb = first_[b];
  return tour_[rmq(fa, fb)];
}

PartitionResult euler_partition(const Patricia& t,
                                const std::function<std::uint64_t(NodeId)>& weight,
                                std::uint64_t bound) {
  assert(bound > 0);
  PartitionResult out;
  std::vector<NodeId> order = t.preorder_ids();

  // Prefix-sum weights along the (preorder) tour; a preorder walk visits
  // each node's weight exactly once, which is all the Euler-tour trick
  // needs for base-node selection.
  std::vector<bool> marked(t.slot_count(), false);
  marked[t.root()] = true;
  std::uint64_t running = 0;
  std::vector<NodeId> base;
  for (NodeId id : order) {
    std::uint64_t w = weight(id);
    assert(w <= bound && "cut long edges before partitioning");
    std::uint64_t before = running;
    running += w;
    if (before / bound != running / bound) {
      base.push_back(id);
      marked[id] = true;
    }
  }

  // Mark LCAs of consecutive base nodes.
  if (base.size() > 1) {
    LcaIndex lca(t);
    for (std::size_t i = 1; i < base.size(); ++i) marked[lca.lca(base[i - 1], base[i])] = true;
  }

  // Owner assignment: nearest marked ancestor-or-self, by preorder
  // propagation.
  out.owner.assign(t.slot_count(), kNil);
  for (NodeId id : order) {
    const auto& n = t.node(id);
    if (marked[id]) {
      out.roots.push_back(id);
      out.owner[id] = id;
    } else {
      out.owner[id] = out.owner[n.parent];
    }
  }
  return out;
}

}  // namespace ptrie::trie
