#pragma once
// Treefix operations over a Patricia trie (paper Section 4: "treefix
// operations [53], including rootfix and leaffix, can be executed in
// O(n_T) work"). rootfix propagates an associative accumulation from the
// root toward every node; leaffix aggregates from leaves up. PIM-trie uses
// rootfix for LCP answer extraction (Section 5.1) and node-hash
// generation, and leaffix to find completely-deleted subtrees during
// Delete (Section 5.2).

#include <functional>
#include <vector>

#include "trie/patricia.hpp"

namespace ptrie::trie {

// out[id] = op(out[parent], id); out[root] = init. O(n) work.
template <class T, class Op>
std::vector<T> rootfix(const Patricia& t, T init, Op&& op) {
  std::vector<T> out(t.slot_count(), init);
  for (NodeId id : t.preorder_ids()) {
    const auto& n = t.node(id);
    out[id] = n.parent == kNil ? init : op(out[n.parent], id);
  }
  return out;
}

// out[id] = combine over children c of op-processed child values, seeded
// with leaf(id). Children are visited before parents (reverse preorder).
template <class T, class Leaf, class Combine>
std::vector<T> leaffix(const Patricia& t, Leaf&& leaf, Combine&& combine) {
  std::vector<NodeId> order = t.preorder_ids();
  std::vector<T> out(t.slot_count());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId id = *it;
    const auto& n = t.node(id);
    T acc = leaf(id);
    for (int b = 0; b < 2; ++b)
      if (n.child[b] != kNil) acc = combine(acc, out[n.child[b]]);
    out[id] = acc;
  }
  return out;
}

// Subtree sizes in nodes (a common leaffix instance).
std::vector<std::uint32_t> subtree_node_counts(const Patricia& t);

// Subtree weights: leaffix over a caller-supplied per-node weight.
std::vector<std::uint64_t> subtree_weights(const Patricia& t,
                                           const std::function<std::uint64_t(NodeId)>& w);

}  // namespace ptrie::trie
