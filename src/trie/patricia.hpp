#pragma once
// Compressed binary trie (binary radix tree / Patricia trie) over
// arbitrary-length bit-string keys — the paper's "trie" (Section 4, Basic
// Structures): after path compression only O(n) compressed nodes/edges
// remain; every other valid prefix is a *hidden node*, addressed by
// (host edge, offset in bits).
//
// The same structure serves as: the reference data trie, the per-batch
// query trie, the sub-trie inside every PIM block, and the node type of
// the baselines. It supports single-key updates, batch construction from
// sorted keys + adjacent-LCP array (Algorithm 1's PatriciaGenerate),
// sub-trie extraction (block decomposition), and word-exact
// serialization for pushing blocks across the PIM boundary.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/bitstring.hpp"

namespace ptrie::trie {

using NodeId = std::uint32_t;
inline constexpr NodeId kNil = static_cast<NodeId>(-1);

using Value = std::uint64_t;

// A position in the trie: a compressed node (`offset == 0`, measured from
// `node`'s own depth) or a hidden node `offset` bits *above* `node` on the
// edge into `node`.
struct Position {
  NodeId node = kNil;
  std::uint64_t above = 0;  // 0 => the compressed node itself
  bool is_compressed() const { return above == 0; }
  bool operator==(const Position&) const = default;
};

class Patricia {
 public:
  struct Node {
    NodeId parent = kNil;
    NodeId child[2] = {kNil, kNil};
    std::uint64_t depth = 0;    // length in bits of the represented string
    core::BitString edge;       // label of the edge from parent to this node
    bool has_value = false;
    Value value = 0;
    // Cross-reference into an "original" trie when this trie is an
    // extracted block (paper: "each node contains the ID of its
    // corresponding node in the original trie").
    NodeId origin = kNil;
    bool alive = true;
  };

  Patricia();

  NodeId root() const { return root_; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::size_t key_count() const { return n_keys_; }
  std::size_t node_count() const { return n_nodes_; }
  bool empty() const { return n_keys_ == 0; }

  // --- single-key operations (reference semantics) ---
  // Inserts key -> value; returns false if the key already existed (value
  // is overwritten either way).
  bool insert(const core::BitString& key, Value value);
  bool erase(const core::BitString& key);
  std::optional<Value> find(const core::BitString& key) const;
  // Longest common prefix of `key` with the stored set, in bits, plus the
  // trie position where the match ends.
  std::pair<std::size_t, Position> lcp(const core::BitString& key) const;
  // All stored (key, value) pairs whose key has `prefix` as a prefix, in
  // lexicographic order.
  std::vector<std::pair<core::BitString, Value>> subtree(const core::BitString& prefix) const;

  // --- ordered operations (strict, bitstring-lexicographic order with
  // a proper prefix sorting before its extensions) ---
  // Largest stored key < x / smallest stored key > x, or nullopt.
  std::optional<std::pair<core::BitString, Value>> pred(const core::BitString& x) const;
  std::optional<std::pair<core::BitString, Value>> succ(const core::BitString& x) const;
  // Stored keys in [lo, hi] inclusive, ascending, truncated to `limit`
  // entries (limit 0 = empty; lo > hi = empty).
  std::vector<std::pair<core::BitString, Value>> range(const core::BitString& lo,
                                                       const core::BitString& hi,
                                                       std::size_t limit) const;
  // First k stored keys under `prefix`, ascending (k 0 = empty).
  std::vector<std::pair<core::BitString, Value>> topk(const core::BitString& prefix,
                                                      std::size_t k) const;

  // --- batch construction (Algorithm 1) ---
  // Keys must be sorted and distinct; lcp[i] = LCP(keys[i-1], keys[i]),
  // lcp[0] = 0. Linear work via the rightmost-path stack.
  static Patricia build_sorted(const std::vector<core::BitString>& keys,
                               const std::vector<std::size_t>& lcp,
                               const std::vector<Value>* values = nullptr);

  // --- structure access ---
  // The full bit-string a node represents (walks to the root; O(depth/w)).
  core::BitString node_string(NodeId id) const;
  // Preorder visit of live nodes: f(id, depth_of_visit).
  void preorder(const std::function<void(NodeId)>& f) const;
  // Ids of live nodes, preorder.
  std::vector<NodeId> preorder_ids() const;
  std::vector<NodeId> leaves() const;

  // --- decomposition (Section 4.2) ---
  // Splits the edge into `id` at `above` bits above id's depth, creating
  // and returning a new compressed node (used to cut long edges and to
  // materialize hidden nodes during inserts).
  NodeId split_edge(NodeId id, std::uint64_t above);
  // Extracts the sub-trie rooted at `root_id`, cut below at `cut` nodes
  // (each cut node becomes a leaf *mirror* marker in the piece via its
  // `origin` field). The extracted root's edge is cleared.
  Patricia extract(NodeId root_id, const std::vector<NodeId>& cuts) const;

  // --- serialization: word-exact, preorder ---
  void serialize(std::vector<std::uint64_t>& out) const;
  static Patricia deserialize(const std::uint64_t* words, std::size_t n, std::size_t* used = nullptr);

  // --- accounting ---
  std::size_t edge_bits_total() const { return L_bits_; }  // L_T
  // Q_T = O(L_T/w + n_T): words of live payload.
  std::size_t space_words() const;

  // Direct mutation hooks used by the PIM-trie internals.
  Node& mutable_node(NodeId id) { return nodes_[id]; }
  // Assigns an edge label, keeping the aggregate edge-bit count correct.
  void set_edge(NodeId id, core::BitString edge) {
    add_edge_bits(static_cast<std::int64_t>(edge.size()) -
                  static_cast<std::int64_t>(nodes_[id].edge.size()));
    nodes_[id].edge = std::move(edge);
  }
  NodeId new_node();
  void attach(NodeId parent, NodeId child);  // wires child under parent by edge's first bit
  void detach(NodeId child);
  void set_value(NodeId id, Value v);
  void clear_value(NodeId id);
  // Splices out a valueless single-child non-root node (path compression).
  void try_splice(NodeId id);
  // Removes a leaf and path-compresses upwards; returns first surviving
  // ancestor.
  NodeId remove_leaf(NodeId id);

  std::size_t live_begin() const { return 0; }
  std::size_t slot_count() const { return nodes_.size(); }
  bool alive(NodeId id) const { return nodes_[id].alive; }

 private:
  void free_node(NodeId id);
  // Smallest / largest stored key in the subtree of `id` (whose full
  // string is `base`), or nullopt for a bare valueless root.
  std::optional<std::pair<core::BitString, Value>> min_at(NodeId id,
                                                          core::BitString base) const;
  std::optional<std::pair<core::BitString, Value>> max_at(NodeId id,
                                                          core::BitString base) const;
  // Subtree root covering `prefix` (node + its full string), or nullopt
  // when nothing extends `prefix`.
  std::optional<std::pair<NodeId, core::BitString>> cover_node(
      const core::BitString& prefix) const;
  void add_edge_bits(std::int64_t delta) {
    L_bits_ = static_cast<std::size_t>(static_cast<std::int64_t>(L_bits_) + delta);
  }

  std::vector<Node> nodes_;
  std::vector<NodeId> free_;
  NodeId root_;
  std::size_t n_keys_ = 0;
  std::size_t n_nodes_ = 0;  // live nodes
  std::size_t L_bits_ = 0;   // aggregate edge length in bits
};

}  // namespace ptrie::trie
