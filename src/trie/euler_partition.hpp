#pragma once
// Weighted Euler-tour tree partitioning (paper Section 4.2, "Block Size
// and Blocking Algorithm"): divides a trie into blocks of bounded weight
// by (1) generating the Euler tour, (2) prefix-summing node weights along
// the tour and marking a base node wherever the running sum crosses a
// multiple of the bound K_B, and (3) adding all lowest common ancestors of
// consecutive base nodes. The marked set (plus the root) is an ideal
// partition: every block — a marked node together with its descendants
// down to the next marked nodes — has weight <= K_B (for weights
// individually <= K_B), and there are O(W_total / K_B) blocks.

#include <cstdint>
#include <functional>
#include <vector>

#include "trie/patricia.hpp"

namespace ptrie::trie {

struct PartitionResult {
  // Marked partition-node ids, in preorder; always contains the root.
  std::vector<NodeId> roots;
  // For each slot: the partition root owning this node (the nearest marked
  // ancestor-or-self).
  std::vector<NodeId> owner;
};

// weight(v) must be <= bound for every node (cut long edges first).
PartitionResult euler_partition(const Patricia& t,
                                const std::function<std::uint64_t(NodeId)>& weight,
                                std::uint64_t bound);

// LCA structure over a Patricia trie: Euler tour + sparse-table RMQ.
// O(n log n) build, O(1) queries.
class LcaIndex {
 public:
  explicit LcaIndex(const Patricia& t);
  NodeId lca(NodeId a, NodeId b) const;

 private:
  std::vector<NodeId> tour_;           // Euler tour of node ids
  std::vector<std::uint32_t> tour_depth_;  // depth (in tree levels) at tour position
  std::vector<std::uint32_t> first_;   // first tour position of each node slot
  std::vector<std::vector<std::uint32_t>> sparse_;  // RMQ over tour positions
  std::uint32_t rmq(std::uint32_t lo, std::uint32_t hi) const;  // argmin position
};

}  // namespace ptrie::trie
