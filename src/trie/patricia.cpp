#include "trie/patricia.hpp"

#include <cassert>
#include <stdexcept>

#include "trie/ordered_cover.hpp"

namespace ptrie::trie {

using core::BitString;

Patricia::Patricia() {
  nodes_.emplace_back();  // root: depth 0, empty edge
  root_ = 0;
  n_nodes_ = 1;
}

NodeId Patricia::new_node() {
  if (!free_.empty()) {
    NodeId id = free_.back();
    free_.pop_back();
    nodes_[id] = Node{};
    ++n_nodes_;
    return id;
  }
  nodes_.emplace_back();
  ++n_nodes_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Patricia::free_node(NodeId id) {
  add_edge_bits(-static_cast<std::int64_t>(nodes_[id].edge.size()));
  nodes_[id].alive = false;
  nodes_[id].edge.clear();
  free_.push_back(id);
  --n_nodes_;
}

void Patricia::attach(NodeId parent, NodeId child) {
  Node& c = nodes_[child];
  assert(!c.edge.empty());
  c.parent = parent;
  nodes_[parent].child[c.edge.bit(0) ? 1 : 0] = child;
}

void Patricia::detach(NodeId child) {
  Node& c = nodes_[child];
  if (c.parent == kNil) return;
  Node& p = nodes_[c.parent];
  int side = c.edge.bit(0) ? 1 : 0;
  assert(p.child[side] == child);
  p.child[side] = kNil;
  c.parent = kNil;
}

void Patricia::set_value(NodeId id, Value v) {
  Node& n = nodes_[id];
  if (!n.has_value) {
    n.has_value = true;
    ++n_keys_;
  }
  n.value = v;
}

void Patricia::clear_value(NodeId id) {
  Node& n = nodes_[id];
  if (n.has_value) {
    n.has_value = false;
    --n_keys_;
  }
}

NodeId Patricia::split_edge(NodeId id, std::uint64_t above) {
  Node& c = nodes_[id];
  assert(above > 0 && above < c.edge.size());
  std::uint64_t keep = c.edge.size() - above;  // bits kept on the upper part
  NodeId parent = c.parent;
  NodeId mid = new_node();
  Node& m = nodes_[mid];
  Node& c2 = nodes_[id];  // re-fetch: new_node may have reallocated
  m.depth = c2.depth - above;
  m.edge = c2.edge.prefix(keep);
  BitString lower = c2.edge.suffix(keep);
  c2.edge = std::move(lower);
  // Edge-bit total is unchanged: keep + above == old edge size.
  // Rewire: parent -> mid -> id.
  if (parent != kNil) {
    int side = m.edge.bit(0) ? 1 : 0;
    nodes_[parent].child[side] = mid;
    m.parent = parent;
  }
  c2.parent = mid;
  m.child[c2.edge.bit(0) ? 1 : 0] = id;
  return mid;
}

bool Patricia::insert(const BitString& key, Value value) {
  NodeId cur = root_;
  std::size_t pos = 0;
  for (;;) {
    if (pos == key.size()) {
      bool fresh = !nodes_[cur].has_value;
      set_value(cur, value);
      return fresh;
    }
    int b = key.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) {
      NodeId leaf = new_node();
      Node& l = nodes_[leaf];
      l.edge = key.substr(pos, key.size() - pos);
      l.depth = key.size();
      add_edge_bits(static_cast<std::int64_t>(l.edge.size()));
      attach(cur, leaf);
      set_value(leaf, value);
      return true;
    }
    const BitString& edge = nodes_[child].edge;
    std::size_t m = key.lcp_at(pos, edge);
    if (m == edge.size()) {
      cur = child;
      pos += m;
      continue;
    }
    // Diverges (or key ends) mid-edge: materialize the hidden node.
    NodeId mid = split_edge(child, edge.size() - m);
    pos += m;
    if (pos == key.size()) {
      set_value(mid, value);
      return true;
    }
    NodeId leaf = new_node();
    Node& l = nodes_[leaf];
    l.edge = key.substr(pos, key.size() - pos);
    l.depth = key.size();
    add_edge_bits(static_cast<std::int64_t>(l.edge.size()));
    attach(mid, leaf);
    set_value(leaf, value);
    return true;
  }
}

void Patricia::try_splice(NodeId id) {
  Node& n = nodes_[id];
  if (id == root_ || !n.alive || n.has_value) return;
  int nchildren = (n.child[0] != kNil) + (n.child[1] != kNil);
  if (nchildren != 1) return;
  NodeId only = n.child[0] != kNil ? n.child[0] : n.child[1];
  NodeId parent = n.parent;
  // Merge: parent -(n.edge + only.edge)-> only.
  BitString merged = n.edge;
  merged.append(nodes_[only].edge);
  std::int64_t delta = static_cast<std::int64_t>(merged.size()) -
                       static_cast<std::int64_t>(nodes_[only].edge.size());
  nodes_[only].edge = std::move(merged);
  add_edge_bits(delta);
  int side = nodes_[id].edge.bit(0) ? 1 : 0;
  nodes_[parent].child[side] = only;
  nodes_[only].parent = parent;
  nodes_[id].child[0] = nodes_[id].child[1] = kNil;
  nodes_[id].parent = kNil;
  free_node(id);
}

NodeId Patricia::remove_leaf(NodeId id) {
  Node& n = nodes_[id];
  assert(n.child[0] == kNil && n.child[1] == kNil);
  NodeId parent = n.parent;
  detach(id);
  free_node(id);
  if (parent != kNil) try_splice(parent);
  return parent;
}

bool Patricia::erase(const BitString& key) {
  // Locate the node representing key exactly.
  NodeId cur = root_;
  std::size_t pos = 0;
  while (pos < key.size()) {
    int b = key.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) return false;
    const BitString& edge = nodes_[child].edge;
    std::size_t m = key.lcp_at(pos, edge);
    if (m != edge.size()) return false;  // key ends mid-edge or diverges
    cur = child;
    pos += m;
  }
  if (!nodes_[cur].has_value) return false;
  clear_value(cur);
  if (nodes_[cur].child[0] == kNil && nodes_[cur].child[1] == kNil) {
    if (cur != root_) remove_leaf(cur);
  } else {
    try_splice(cur);
  }
  return true;
}

std::optional<Value> Patricia::find(const BitString& key) const {
  NodeId cur = root_;
  std::size_t pos = 0;
  while (pos < key.size()) {
    int b = key.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) return std::nullopt;
    const BitString& edge = nodes_[child].edge;
    std::size_t m = key.lcp_at(pos, edge);
    if (m != edge.size()) return std::nullopt;
    cur = child;
    pos += m;
  }
  if (!nodes_[cur].has_value) return std::nullopt;
  return nodes_[cur].value;
}

std::pair<std::size_t, Position> Patricia::lcp(const BitString& key) const {
  NodeId cur = root_;
  std::size_t pos = 0;
  for (;;) {
    if (pos == key.size()) return {pos, Position{cur, 0}};
    int b = key.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) return {pos, Position{cur, 0}};
    const BitString& edge = nodes_[child].edge;
    std::size_t m = key.lcp_at(pos, edge);
    pos += m;
    if (m == edge.size()) {
      cur = child;
      continue;
    }
    // Match ends `edge.size()-m` bits above `child` (a hidden node, unless
    // m == 0, in which case it ends at the parent compressed node).
    if (m == 0) return {pos, Position{cur, 0}};
    return {pos, Position{child, edge.size() - m}};
  }
}

std::vector<std::pair<BitString, Value>> Patricia::subtree(const BitString& prefix) const {
  std::vector<std::pair<BitString, Value>> out;
  // Walk to the position covering `prefix`.
  NodeId cur = root_;
  std::size_t pos = 0;
  while (pos < prefix.size()) {
    int b = prefix.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) return out;
    const BitString& edge = nodes_[child].edge;
    std::size_t m = prefix.lcp_at(pos, edge);
    pos += m;
    if (m == edge.size()) {
      cur = child;
      continue;
    }
    if (pos != prefix.size()) return out;  // diverged: nothing under prefix
    cur = child;                            // prefix ends inside child's edge
    break;
  }
  // DFS from cur, reconstructing keys by appending edges.
  BitString base = node_string(cur);
  std::vector<std::pair<NodeId, BitString>> work;
  work.emplace_back(cur, base);
  while (!work.empty()) {
    auto [id, s] = std::move(work.back());
    work.pop_back();
    const Node& n = nodes_[id];
    if (n.has_value) out.emplace_back(s, n.value);
    // Right child pushed first so left (0) is visited first: lexicographic.
    for (int b = 1; b >= 0; --b) {
      NodeId c = n.child[b];
      if (c == kNil) continue;
      BitString cs = s;
      cs.append(nodes_[c].edge);
      work.emplace_back(c, std::move(cs));
    }
  }
  // The DFS above emits in preorder which for tries is lexicographic,
  // except the stack pops reverse sibling order; we pushed right-first so
  // left pops first — already lexicographic.
  return out;
}

std::optional<std::pair<NodeId, BitString>> Patricia::cover_node(
    const BitString& prefix) const {
  NodeId cur = root_;
  std::size_t pos = 0;
  while (pos < prefix.size()) {
    int b = prefix.bit(pos) ? 1 : 0;
    NodeId child = nodes_[cur].child[b];
    if (child == kNil) return std::nullopt;
    const BitString& edge = nodes_[child].edge;
    std::size_t m = prefix.lcp_at(pos, edge);
    pos += m;
    if (m == edge.size()) {
      cur = child;
      continue;
    }
    if (pos != prefix.size()) return std::nullopt;  // diverged mid-edge
    cur = child;  // prefix ends inside child's edge: subtree(prefix) = subtree(child)
    break;
  }
  return std::make_pair(cur, node_string(cur));
}

std::optional<std::pair<BitString, Value>> Patricia::min_at(NodeId id,
                                                            BitString base) const {
  for (;;) {
    const Node& n = nodes_[id];
    // The node's own key is a prefix of everything below it: minimal.
    if (n.has_value) return std::make_pair(std::move(base), n.value);
    NodeId next = n.child[0] != kNil ? n.child[0] : n.child[1];
    if (next == kNil) return std::nullopt;  // bare valueless root
    base.append(nodes_[next].edge);
    id = next;
  }
}

std::optional<std::pair<BitString, Value>> Patricia::max_at(NodeId id,
                                                            BitString base) const {
  for (;;) {
    const Node& n = nodes_[id];
    // Any child's keys extend this node's own key, so the maximum lives
    // on the rightmost descent; leaves always carry values.
    NodeId next = n.child[1] != kNil ? n.child[1] : n.child[0];
    if (next == kNil) {
      if (n.has_value) return std::make_pair(std::move(base), n.value);
      return std::nullopt;  // bare valueless root
    }
    base.append(nodes_[next].edge);
    id = next;
  }
}

std::optional<std::pair<BitString, Value>> Patricia::pred(const BitString& x) const {
  for (const CoverPiece& c : pred_candidates(x)) {
    if (c.subtree) {
      if (auto at = cover_node(c.prefix)) {
        if (auto best = max_at(at->first, std::move(at->second))) return best;
      }
    } else if (auto v = find(c.prefix)) {
      return std::make_pair(c.prefix, *v);
    }
  }
  return std::nullopt;
}

std::optional<std::pair<BitString, Value>> Patricia::succ(const BitString& x) const {
  for (const CoverPiece& c : succ_candidates(x)) {
    if (auto at = cover_node(c.prefix)) {
      if (auto best = min_at(at->first, std::move(at->second))) return best;
    }
  }
  return std::nullopt;
}

std::vector<std::pair<BitString, Value>> Patricia::range(const BitString& lo,
                                                         const BitString& hi,
                                                         std::size_t limit) const {
  std::vector<std::pair<BitString, Value>> out;
  if (limit == 0) return out;
  for (const CoverPiece& c : range_cover(lo, hi)) {
    if (out.size() >= limit) break;
    if (c.subtree) {
      for (auto& kv : subtree(c.prefix)) {
        if (out.size() >= limit) break;
        out.push_back(std::move(kv));
      }
    } else if (auto v = find(c.prefix)) {
      out.emplace_back(c.prefix, *v);
    }
  }
  return out;
}

std::vector<std::pair<BitString, Value>> Patricia::topk(const BitString& prefix,
                                                        std::size_t k) const {
  std::vector<std::pair<BitString, Value>> out;
  if (k == 0) return out;
  out = subtree(prefix);
  if (out.size() > k) out.resize(k);
  return out;
}

Patricia Patricia::build_sorted(const std::vector<BitString>& keys,
                                const std::vector<std::size_t>& lcp,
                                const std::vector<Value>* values) {
  Patricia t;
  if (keys.empty()) return t;
  assert(lcp.size() == keys.size());
  // Rightmost-path stack of node ids; depths strictly increase.
  std::vector<NodeId> stack{t.root_};
  auto depth_of = [&](NodeId id) { return t.nodes_[id].depth; };

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const BitString& key = keys[i];
    std::size_t l = i == 0 ? 0 : lcp[i];
    // Pop nodes deeper than l; remember the last popped.
    NodeId last = kNil;
    while (depth_of(stack.back()) > l) {
      last = stack.back();
      stack.pop_back();
    }
    NodeId parent;
    if (depth_of(stack.back()) == l) {
      parent = stack.back();
    } else {
      // Split the edge into `last` at depth l.
      assert(last != kNil);
      std::uint64_t above = t.nodes_[last].depth - l;
      // `last`'s edge spans (depth(stack.back()), depth(last)]; the split
      // point is `above` bits above `last`... but `last` may itself have
      // accumulated depth via earlier splits; edge length equals
      // depth(last) - depth(stack.back()).
      parent = t.split_edge(last, above);
      stack.push_back(parent);
    }
    if (l == key.size()) {
      // Duplicate or prefix key ending exactly at `parent`.
      t.set_value(parent, values ? (*values)[i] : Value{i});
      continue;
    }
    NodeId leaf = t.new_node();
    Node& lf = t.nodes_[leaf];
    lf.edge = key.substr(l, key.size() - l);
    lf.depth = key.size();
    t.add_edge_bits(static_cast<std::int64_t>(lf.edge.size()));
    t.attach(parent, leaf);
    t.set_value(leaf, values ? (*values)[i] : Value{i});
    stack.push_back(leaf);
  }
  return t;
}

BitString Patricia::node_string(NodeId id) const {
  // Collect edges root-ward then append in reverse.
  std::vector<NodeId> path;
  for (NodeId cur = id; cur != kNil; cur = nodes_[cur].parent) path.push_back(cur);
  BitString s;
  for (auto it = path.rbegin(); it != path.rend(); ++it) s.append(nodes_[*it].edge);
  return s;
}

void Patricia::preorder(const std::function<void(NodeId)>& f) const {
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    f(id);
    const Node& n = nodes_[id];
    for (int b = 1; b >= 0; --b)
      if (n.child[b] != kNil) stack.push_back(n.child[b]);
  }
}

std::vector<NodeId> Patricia::preorder_ids() const {
  std::vector<NodeId> out;
  out.reserve(n_nodes_);
  preorder([&](NodeId id) { out.push_back(id); });
  return out;
}

std::vector<NodeId> Patricia::leaves() const {
  std::vector<NodeId> out;
  preorder([&](NodeId id) {
    const Node& n = nodes_[id];
    if (n.child[0] == kNil && n.child[1] == kNil) out.push_back(id);
  });
  return out;
}

Patricia Patricia::extract(NodeId root_id, const std::vector<NodeId>& cuts) const {
  Patricia out;
  // Map original -> new id. Root of the piece is out.root_ and keeps no
  // edge (its string context lives in the block metadata).
  std::vector<std::pair<NodeId, NodeId>> stack;  // (orig, new)
  out.nodes_[out.root_].origin = root_id;
  out.nodes_[out.root_].has_value = nodes_[root_id].has_value;
  out.nodes_[out.root_].value = nodes_[root_id].value;
  out.nodes_[out.root_].depth = 0;  // depths inside a piece are relative
  if (nodes_[root_id].has_value) ++out.n_keys_;

  std::vector<bool> is_cut(slot_count(), false);
  for (NodeId c : cuts) is_cut[c] = true;

  stack.emplace_back(root_id, out.root_);
  while (!stack.empty()) {
    auto [orig, mine] = stack.back();
    stack.pop_back();
    for (int b = 0; b < 2; ++b) {
      NodeId oc = nodes_[orig].child[b];
      if (oc == kNil) continue;
      NodeId nc = out.new_node();
      Node& m = out.nodes_[nc];
      m.edge = nodes_[oc].edge;
      m.depth = out.nodes_[mine].depth + m.edge.size();
      m.origin = oc;
      out.add_edge_bits(static_cast<std::int64_t>(m.edge.size()));
      if (!is_cut[oc]) {
        m.has_value = nodes_[oc].has_value;
        m.value = nodes_[oc].value;
        if (m.has_value) ++out.n_keys_;
      }
      out.attach(mine, nc);
      if (!is_cut[oc]) stack.emplace_back(oc, nc);
      // Cut children stay as leaf stubs: the "mirror nodes" of Section 4.2.
    }
  }
  return out;
}

void Patricia::serialize(std::vector<std::uint64_t>& out) const {
  // Format: [n] then per live node in preorder:
  //   parent_slot (index into serialized order; root = ~0)
  //   flags (bit0 has_value), value, depth, origin, edge_nbits, edge words...
  std::vector<NodeId> order = preorder_ids();
  std::vector<std::uint32_t> slot_of(slot_count(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) slot_of[order[i]] = static_cast<std::uint32_t>(i);
  out.push_back(order.size());
  for (NodeId id : order) {
    const Node& n = nodes_[id];
    out.push_back(id == root_ ? ~std::uint64_t{0} : slot_of[n.parent]);
    out.push_back(n.has_value ? 1 : 0);
    out.push_back(n.value);
    out.push_back(n.depth);
    out.push_back(n.origin == kNil ? ~std::uint64_t{0} : n.origin);
    out.push_back(n.edge.size());
    for (std::size_t w = 0; w < n.edge.word_count(); ++w) out.push_back(n.edge.word(w));
  }
}

Patricia Patricia::deserialize(const std::uint64_t* words, std::size_t n, std::size_t* used) {
  Patricia t;
  std::size_t i = 0;
  auto next = [&]() {
    if (i >= n) throw std::runtime_error("Patricia::deserialize: truncated buffer");
    return words[i++];
  };
  std::size_t count = next();
  std::vector<NodeId> ids(count, kNil);
  for (std::size_t s = 0; s < count; ++s) {
    std::uint64_t parent_slot = next();
    std::uint64_t flags = next();
    std::uint64_t value = next();
    std::uint64_t depth = next();
    std::uint64_t origin = next();
    std::uint64_t nbits = next();
    core::BitString edge;
    std::size_t nw = (nbits + 63) / 64;
    // Rebuild the edge from its packed words.
    for (std::size_t w = 0; w < nw; ++w) {
      std::uint64_t word = next();
      std::size_t take = std::min<std::size_t>(64, nbits - w * 64);
      edge.append_slice(core::BitString::from_uint(word >> (64 - take), take), 0, take);
    }
    NodeId id;
    if (parent_slot == ~std::uint64_t{0}) {
      id = t.root_;
    } else {
      id = t.new_node();
      Node& m = t.nodes_[id];
      m.edge = std::move(edge);
      t.add_edge_bits(static_cast<std::int64_t>(m.edge.size()));
      t.attach(ids[parent_slot], id);
    }
    Node& m = t.nodes_[id];
    m.depth = depth;
    m.origin = origin == ~std::uint64_t{0} ? kNil : static_cast<NodeId>(origin);
    if (flags & 1) t.set_value(id, value);
    ids[s] = id;
  }
  if (used) *used = i;
  return t;
}

std::size_t Patricia::space_words() const {
  std::size_t words = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    words += 6 + nodes_[i].edge.word_count();
  }
  return words;
}

}  // namespace ptrie::trie
