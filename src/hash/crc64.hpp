#pragma once
// CRC-64 (ECMA-182 polynomial) over bit-strings, used as the alternative
// incremental hash in the ablation benches. CRC is incremental in the
// sense of paper Definition 2 (extend a running state bit by bit) and, via
// GF(2) matrix exponentiation, also supports the Definition 3 combine:
// crc(AB) from crc(A), crc(B) and |B| (same construction as zlib's
// crc32_combine, lifted to 64 bits and bit granularity).

#include <array>
#include <cstdint>

#include "core/bitstring.hpp"

namespace ptrie::hash {

class Crc64 {
 public:
  static constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693ull;  // ECMA-182

  Crc64();

  std::uint64_t init() const { return ~0ull; }
  std::uint64_t finish(std::uint64_t state) const { return ~state; }

  // Extends a running state by one bit (MSB-first bit stream).
  std::uint64_t extend_bit(std::uint64_t state, bool b) const;

  // Extends by bits [from, from+len) of s.
  std::uint64_t extend(std::uint64_t state, const core::BitString& s, std::size_t from,
                       std::size_t len) const;

  // Full hash of a bit-string.
  std::uint64_t hash(const core::BitString& s) const;

  // Combines finished CRCs: crc(AB) from crc(A), crc(B), |B| in bits.
  std::uint64_t combine(std::uint64_t crc_a, std::uint64_t crc_b, std::size_t len_b) const;

 private:
  using Matrix = std::array<std::uint64_t, 64>;  // column-major GF(2) 64x64

  static std::uint64_t times_vec(const Matrix& m, std::uint64_t v);
  static Matrix times_mat(const Matrix& a, const Matrix& b);

  Matrix shift1_;                 // advance CRC register by one zero bit
  std::array<Matrix, 64> shiftp_;  // shift1_^(2^k) for k = 0..63
};

// Fast table-driven CRC-64 (same ECMA-182 polynomial, MSB-first) over a
// word buffer. Used to checksum PIM reply payloads so injected or real
// transfer corruption is detected instead of silently served. Bytes are
// consumed little-endian within each word, matching in-memory layout.
std::uint64_t crc64_words(const std::uint64_t* data, std::size_t n);

}  // namespace ptrie::hash
