#include "hash/hash_table.hpp"

#include <bit>

namespace ptrie::hash {

namespace {
std::size_t round_capacity(std::size_t expected) {
  std::size_t want = std::max<std::size_t>(8, expected * 2);
  return std::bit_ceil(want);
}
}  // namespace

HashTable::HashTable(std::size_t expected, std::uint64_t seed) : seed_(seed) {
  std::size_t cap = round_capacity(expected);
  slots_.assign(cap, Slot{});
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
}

void HashTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  std::size_t cap = old.size() * 2;
  slots_.assign(cap, Slot{});
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  size_ = 0;
  for (const Slot& s : old)
    if (s.used) insert(s.key, s.value);
}

bool HashTable::insert(std::uint64_t key, std::uint64_t value) {
  if ((size_ + 1) * 2 > slots_.size()) grow();
  std::size_t mask = slots_.size() - 1;
  std::size_t i = probe(key) & mask;
  for (;; i = (i + 1) & mask) {
    if (!slots_[i].used) {
      slots_[i] = {key, value, true};
      ++size_;
      return true;
    }
    if (slots_[i].key == key) return false;
  }
}

void HashTable::upsert(std::uint64_t key, std::uint64_t value) {
  if ((size_ + 1) * 2 > slots_.size()) grow();
  std::size_t mask = slots_.size() - 1;
  std::size_t i = probe(key) & mask;
  for (;; i = (i + 1) & mask) {
    if (!slots_[i].used) {
      slots_[i] = {key, value, true};
      ++size_;
      return;
    }
    if (slots_[i].key == key) {
      slots_[i].value = value;
      return;
    }
  }
}

std::optional<std::uint64_t> HashTable::find(std::uint64_t key) const {
  std::size_t mask = slots_.size() - 1;
  std::size_t i = probe(key) & mask;
  for (;; i = (i + 1) & mask) {
    if (!slots_[i].used) return std::nullopt;
    if (slots_[i].key == key) return slots_[i].value;
  }
}

bool HashTable::erase(std::uint64_t key) {
  std::size_t mask = slots_.size() - 1;
  std::size_t i = probe(key) & mask;
  for (;; i = (i + 1) & mask) {
    if (!slots_[i].used) return false;
    if (slots_[i].key == key) break;
  }
  // Backward-shift deletion keeps probe chains contiguous without
  // tombstones.
  std::size_t hole = i;
  for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
    if (!slots_[j].used) break;
    std::size_t home = probe(slots_[j].key) & mask;
    // Move j into the hole if its home position does not lie strictly
    // between hole (exclusive) and j (inclusive) in probe order.
    bool between = hole <= j ? (home > hole && home <= j) : (home > hole || home <= j);
    if (!between) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole] = Slot{};
  --size_;
  return true;
}

void HashTable::batch_insert(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& kvs) {
  for (const auto& [k, v] : kvs) insert(k, v);
}

std::vector<std::optional<std::uint64_t>> HashTable::batch_find(
    const std::vector<std::uint64_t>& keys) const {
  std::vector<std::optional<std::uint64_t>> out(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) out[i] = find(keys[i]);
  return out;
}

void HashTable::for_each(const std::function<void(std::uint64_t, std::uint64_t)>& f) const {
  for (const Slot& s : slots_)
    if (s.used) f(s.key, s.value);
}

void HashTable::clear() {
  for (auto& s : slots_) s = Slot{};
  size_ = 0;
}

}  // namespace ptrie::hash
