#pragma once
// O(1) prefix-hash queries over one bit-string: precomputes the pivot
// hashes (every 64 bits) once, then answers hash(s[0..len)) by a single
// <=63-bit extend. This is the CPU-side data the pivot-node optimization
// of Section 4.4.2 keeps for each query string / edge.

#include <vector>

#include "core/bitstring.hpp"
#include "hash/poly_hash.hpp"

namespace ptrie::hash {

class PrefixHashes {
 public:
  PrefixHashes(const PolyHasher& hasher, const core::BitString& s)
      : hasher_(&hasher), s_(&s), pivots_(hasher.pivot_hashes(s, 64)) {}

  HashVal prefix(std::size_t len) const {
    std::size_t piv = len / 64;
    HashVal h = pivots_[piv];
    std::size_t rem = len - piv * 64;
    if (rem != 0) h = hasher_->extend(h, *s_, piv * 64, rem);
    return h;
  }

  const std::vector<HashVal>& pivots() const { return pivots_; }

 private:
  const PolyHasher* hasher_;
  const core::BitString* s_;
  std::vector<HashVal> pivots_;
};

}  // namespace ptrie::hash
