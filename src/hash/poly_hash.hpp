#pragma once
// Rolling polynomial hash over GF(2^61 - 1), *binary associatively
// incremental* in the sense of paper Definition 3: for C = AB,
//     h(C) = combine(h(A), h(B), |B|)
// using only the two hash values and |B|. This is the property PIM-trie
// needs so a node hash can be produced from its block root's hash plus the
// suffix inside the block (Definition 2), and so pivot hashes can be built
// by parallel prefix sums / rootfix scans (Lemmas 4.4, 4.9).
//
// Encoding: a bit-string B = b0 b1 .. b_{n-1} hashes to
//     h(B) = r^n + sum_i b_i * r^{n-1-i}   (mod p),
// i.e. the string with a leading 1 read as a polynomial in r. The leading
// r^n term makes strings of different lengths hash differently even when
// they are all zeroes. combine(hA, hB, m) = hA * r^m + (hB - r^m).
//
// Hash values are always full 61-bit residues so the algebra stays exact;
// `fingerprint()` exposes a truncated view that the comparison layers
// (hash tables in the hash value manager) store. Tests shrink
// `fingerprint_bits` to force collisions and exercise the verification
// path of Section 4.4.3.

#include <cstdint>
#include <vector>

#include "core/bitstring.hpp"

namespace ptrie::hash {

using HashVal = std::uint64_t;

class PolyHasher {
 public:
  static constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

  explicit PolyHasher(std::uint64_t seed = 0x9E3779B97F4A7C15ull,
                      unsigned fingerprint_bits = 61);

  unsigned fingerprint_bits() const { return fingerprint_bits_; }
  std::uint64_t seed() const { return seed_; }

  // Truncated view used wherever two hashes are *compared* or stored in a
  // table. With fingerprint_bits = 61 this is the identity.
  HashVal fingerprint(HashVal h) const {
    return fingerprint_bits_ >= 61 ? h : (h & ((std::uint64_t{1} << fingerprint_bits_) - 1));
  }

  // Hash of the empty string (the leading-1 encoding makes this r^0 = 1).
  HashVal empty() const { return 1; }

  // Hash of a full bit-string, O(|s|/w) time via 16-bit chunk tables.
  HashVal hash(const core::BitString& s) const;

  // Hash of bits [0, len) of s.
  HashVal hash_prefix(const core::BitString& s, std::size_t len) const;

  // h(A . s[from, from+len)) given h = h(A). This is Definition 2's f().
  HashVal extend(HashVal h, const core::BitString& s, std::size_t from,
                 std::size_t len) const;

  // h(A . b) for a single bit.
  HashVal extend_bit(HashVal h, bool b) const;

  // Definition 3: h(AB) from h(A), h(B) and |B|.
  HashVal combine(HashVal ha, HashVal hb, std::size_t len_b) const;

  // Hashes of every prefix of s whose length is a multiple of `stride`
  // bits (the pivot hashes of Section 4.4.2), including length 0; output
  // has floor(|s|/stride)+1 entries. Linear work in |s|/w.
  std::vector<HashVal> pivot_hashes(const core::BitString& s, std::size_t stride) const;

  // r^k mod p.
  std::uint64_t pow_r(std::size_t k) const;

 private:
  static std::uint64_t add(std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = a + b;
    if (s >= kP) s -= kP;
    return s;
  }
  static std::uint64_t sub(std::uint64_t a, std::uint64_t b) { return add(a, kP - b); }
  static std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    std::uint64_t lo = static_cast<std::uint64_t>(t) & kP;
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    return add(lo, hi);
  }

  std::uint64_t seed_;
  unsigned fingerprint_bits_;
  std::uint64_t r_;
  std::vector<std::uint64_t> chunk_table_;  // 65536 entries: g() of 16 explicit bits
  std::vector<std::uint64_t> r_pow_;        // r^0 .. r^kPowCache
  static constexpr std::size_t kPowCache = 512;
};

}  // namespace ptrie::hash
