#include "hash/crc64.hpp"

namespace ptrie::hash {

Crc64::Crc64() {
  // shift1_: the linear map a state undergoes when one zero bit is fed.
  // State transition for MSB-first CRC: s' = (s << 1) ^ (msb(s) ? poly : 0).
  for (int c = 0; c < 64; ++c) {
    std::uint64_t basis = std::uint64_t{1} << c;
    std::uint64_t out = basis << 1;
    if (basis & (std::uint64_t{1} << 63)) out ^= kPoly;
    shift1_[c] = out;
  }
  shiftp_[0] = shift1_;
  for (int k = 1; k < 64; ++k) shiftp_[k] = times_mat(shiftp_[k - 1], shiftp_[k - 1]);
}

std::uint64_t Crc64::times_vec(const Matrix& m, std::uint64_t v) {
  std::uint64_t out = 0;
  while (v != 0) {
    int c = __builtin_ctzll(v);
    out ^= m[c];
    v &= v - 1;
  }
  return out;
}

Crc64::Matrix Crc64::times_mat(const Matrix& a, const Matrix& b) {
  Matrix out{};
  for (int c = 0; c < 64; ++c) out[c] = times_vec(a, b[c]);
  return out;
}

std::uint64_t Crc64::extend_bit(std::uint64_t state, bool b) const {
  bool msb = (state >> 63) & 1;
  state <<= 1;
  if (msb != b) state ^= kPoly;
  return state;
}

std::uint64_t Crc64::extend(std::uint64_t state, const core::BitString& s, std::size_t from,
                            std::size_t len) const {
  for (std::size_t i = 0; i < len; ++i) state = extend_bit(state, s.bit(from + i));
  return state;
}

std::uint64_t Crc64::hash(const core::BitString& s) const {
  return finish(extend(init(), s, 0, s.size()));
}

std::uint64_t Crc64::combine(std::uint64_t crc_a, std::uint64_t crc_b,
                             std::size_t len_b) const {
  // Undo the output xor, advance A's register through len_b zero bits, and
  // fold in B. The advance is linear, so apply shift1_^len_b by its binary
  // expansion. crc_b already encodes B fed into an all-ones register, so
  // account for the initial register: crc(AB) = advance(~crc_a ^ init) ...
  // Standard derivation (as in zlib): with out-xor and init both ~0,
  // crc(AB) = advance_{|B|}(crc_a) ^ crc_b ^ advance_{|B|}(~0) ^ ~0 cancels
  // to advance(crc_a ^ ~0 .. ) — we simply track raw registers instead:
  std::uint64_t a_reg = ~crc_a;  // raw register after A
  std::size_t k = 0;
  std::uint64_t reg = a_reg;
  std::uint64_t init_reg = ~0ull;
  std::uint64_t n = len_b;
  while (n != 0) {
    if (n & 1) {
      reg = times_vec(shiftp_[k], reg);
      init_reg = times_vec(shiftp_[k], init_reg);
    }
    ++k;
    n >>= 1;
  }
  // raw register after AB = advance(a_reg) ^ advance(init) ^ raw_b, because
  // feeding B into register X equals feeding B into init-register plus the
  // homogeneous evolution of (X ^ init).
  std::uint64_t b_reg = ~crc_b;
  std::uint64_t ab_reg = reg ^ init_reg ^ b_reg;
  return ~ab_reg;
}

namespace {

struct Crc64Table {
  std::uint64_t t[256];
  Crc64Table() {
    for (unsigned b = 0; b < 256; ++b) {
      std::uint64_t state = static_cast<std::uint64_t>(b) << 56;
      for (int i = 0; i < 8; ++i) {
        bool msb = (state >> 63) & 1;
        state <<= 1;
        if (msb) state ^= Crc64::kPoly;
      }
      t[b] = state;
    }
  }
};

const Crc64Table& table() {
  static const Crc64Table tab;
  return tab;
}

}  // namespace

std::uint64_t crc64_words(const std::uint64_t* data, std::size_t n) {
  const auto& tab = table();
  std::uint64_t state = ~0ull;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w = data[i];
    for (int b = 0; b < 8; ++b) {
      std::uint8_t byte = static_cast<std::uint8_t>(w >> (8 * b));
      state = (state << 8) ^ tab.t[static_cast<std::uint8_t>(state >> 56) ^ byte];
    }
  }
  return ~state;
}

}  // namespace ptrie::hash
