#pragma once
// Open-addressing hash table from 64-bit fingerprints to 64-bit payloads,
// with batch lookup/insert/erase entry points. This stands in for the
// linear-space, O(1)-expected-per-op parallel hash tables [24] the paper
// uses both on the CPU side and inside every meta-block on the PIM side.
//
// Linear probing with tombstone-free backward-shift deletion; capacity is
// always a power of two and kept at most 50% full.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace ptrie::hash {

class HashTable {
 public:
  explicit HashTable(std::size_t expected = 8, std::uint64_t seed = 0x2545F4914F6CDD1Dull);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Space in 64-bit words (for the paper's space accounting).
  std::size_t space_words() const { return slots_.size() * 3 + 4; }

  // Inserts key->value; returns false (and leaves the old value) if the key
  // was already present.
  bool insert(std::uint64_t key, std::uint64_t value);
  // Inserts or overwrites.
  void upsert(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> find(std::uint64_t key) const;
  bool contains(std::uint64_t key) const { return find(key).has_value(); }
  bool erase(std::uint64_t key);

  // Batched forms (parallel-friendly on the CPU side; the PIM side calls
  // them serially since a module is a single weak core).
  void batch_insert(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& kvs);
  std::vector<std::optional<std::uint64_t>> batch_find(
      const std::vector<std::uint64_t>& keys) const;

  void for_each(const std::function<void(std::uint64_t, std::uint64_t)>& f) const;
  void clear();

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool used = false;
  };

  std::size_t probe(std::uint64_t key) const {
    // Fibonacci hashing spreads adjacent fingerprints.
    return static_cast<std::size_t>(((key ^ seed_) * 0x9E3779B97F4A7C15ull) >> shift_);
  }
  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  unsigned shift_ = 61;
  std::uint64_t seed_;
};

}  // namespace ptrie::hash
