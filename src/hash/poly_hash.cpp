#include "hash/poly_hash.hpp"

#include <cassert>

#include "core/rng.hpp"

namespace ptrie::hash {

namespace {
constexpr std::size_t kW = core::BitString::kWordBits;
}

PolyHasher::PolyHasher(std::uint64_t seed, unsigned fingerprint_bits)
    : seed_(seed), fingerprint_bits_(fingerprint_bits) {
  core::Rng rng(seed);
  // r uniform in [2, p-2].
  r_ = 2 + rng.below(kP - 3);

  r_pow_.resize(kPowCache + 1);
  r_pow_[0] = 1;
  for (std::size_t i = 1; i <= kPowCache; ++i) r_pow_[i] = mul(r_pow_[i - 1], r_);

  // chunk_table_[v] = g(16-bit string with bits of v, MSB first)
  //                 = sum_i bit_i(v) * r^{15-i}  (no leading-1 term).
  chunk_table_.resize(std::size_t{1} << 16);
  chunk_table_[0] = 0;
  // Build incrementally: g(v) = sum over set bits b (b=0 is MSB) of r^(15-b).
  for (std::size_t v = 1; v < chunk_table_.size(); ++v) {
    // lowest set bit of v corresponds to string position 15 - tz, power tz.
    unsigned tz = static_cast<unsigned>(__builtin_ctzll(v));
    chunk_table_[v] = add(chunk_table_[v & (v - 1)], r_pow_[tz]);
  }
}

std::uint64_t PolyHasher::pow_r(std::size_t k) const {
  if (k <= kPowCache) return r_pow_[k];
  // Square-and-multiply on top of the cache.
  std::uint64_t result = r_pow_[k % kPowCache];
  std::uint64_t step = r_pow_[kPowCache];
  std::size_t times = k / kPowCache;
  // step^times via binary exponentiation.
  std::uint64_t acc = 1;
  while (times != 0) {
    if (times & 1) acc = mul(acc, step);
    step = mul(step, step);
    times >>= 1;
  }
  return mul(result, acc);
}

HashVal PolyHasher::extend_bit(HashVal h, bool b) const {
  return add(mul(h, r_), b ? 1 : 0);
}

HashVal PolyHasher::extend(HashVal h, const core::BitString& s, std::size_t from,
                           std::size_t len) const {
  assert(from + len <= s.size());
  std::size_t done = 0;
  // Process 16 bits at a time through the chunk table.
  while (done < len) {
    std::size_t take = std::min<std::size_t>(16, len - done);
    // Extract `take` bits starting at absolute position from+done.
    std::size_t pos = from + done;
    std::size_t w = pos / kW, off = pos % kW;
    std::uint64_t window = s.word(w) << off;
    if (off != 0) window |= s.word(w + 1) >> (kW - off);
    // Top `take` bits of window, as a 16-bit chunk value left-aligned in 16.
    std::uint64_t chunk = window >> (kW - 16);
    if (take < 16) chunk &= ~((std::uint64_t{1} << (16 - take)) - 1);
    if (take < 16) {
      // Shorter chunk: bits occupy the high `take` of 16; shift down so the
      // table (which is exact for 16-bit strings) is used at the right power.
      chunk >>= (16 - take);
      // g for a `take`-bit string v: reuse table by noting the table is a sum
      // of r^powers keyed by bit positions; for short chunks recompute cheap.
      std::uint64_t g = 0;
      for (std::size_t i = 0; i < take; ++i)
        if ((chunk >> (take - 1 - i)) & 1) g = add(g, r_pow_[take - 1 - i]);
      h = add(mul(h, r_pow_[take]), g);
    } else {
      h = add(mul(h, r_pow_[16]), chunk_table_[chunk]);
    }
    done += take;
  }
  return h;
}

HashVal PolyHasher::hash(const core::BitString& s) const {
  return extend(empty(), s, 0, s.size());
}

HashVal PolyHasher::hash_prefix(const core::BitString& s, std::size_t len) const {
  return extend(empty(), s, 0, len);
}

HashVal PolyHasher::combine(HashVal ha, HashVal hb, std::size_t len_b) const {
  std::uint64_t rm = pow_r(len_b);
  return add(mul(ha, rm), sub(hb, rm));
}

std::vector<HashVal> PolyHasher::pivot_hashes(const core::BitString& s,
                                              std::size_t stride) const {
  std::vector<HashVal> out;
  out.reserve(s.size() / stride + 1);
  HashVal h = empty();
  out.push_back(h);
  std::size_t pos = 0;
  while (pos + stride <= s.size()) {
    h = extend(h, s, pos, stride);
    out.push_back(h);
    pos += stride;
  }
  return out;
}

}  // namespace ptrie::hash
