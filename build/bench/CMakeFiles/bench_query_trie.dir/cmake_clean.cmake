file(REMOVE_RECURSE
  "CMakeFiles/bench_query_trie.dir/bench_query_trie.cpp.o"
  "CMakeFiles/bench_query_trie.dir/bench_query_trie.cpp.o.d"
  "bench_query_trie"
  "bench_query_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
