# Empty compiler generated dependencies file for bench_query_trie.
# This may be replaced when dependencies are built.
