# Empty dependencies file for bench_table1_lcp.
# This may be replaced when dependencies are built.
