file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lcp.dir/bench_table1_lcp.cpp.o"
  "CMakeFiles/bench_table1_lcp.dir/bench_table1_lcp.cpp.o.d"
  "bench_table1_lcp"
  "bench_table1_lcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
