file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_subtree.dir/bench_table1_subtree.cpp.o"
  "CMakeFiles/bench_table1_subtree.dir/bench_table1_subtree.cpp.o.d"
  "bench_table1_subtree"
  "bench_table1_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
