# Empty dependencies file for bench_table1_subtree.
# This may be replaced when dependencies are built.
