# Empty compiler generated dependencies file for pimtrie_core.
# This may be replaced when dependencies are built.
