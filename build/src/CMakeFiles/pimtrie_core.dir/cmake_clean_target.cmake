file(REMOVE_RECURSE
  "libpimtrie_core.a"
)
