# Empty dependencies file for pimtrie_core.
# This may be replaced when dependencies are built.
