
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/distributed_radix_tree.cpp" "src/CMakeFiles/pimtrie_core.dir/baselines/distributed_radix_tree.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/baselines/distributed_radix_tree.cpp.o.d"
  "/root/repo/src/baselines/distributed_xfast.cpp" "src/CMakeFiles/pimtrie_core.dir/baselines/distributed_xfast.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/baselines/distributed_xfast.cpp.o.d"
  "/root/repo/src/baselines/range_partitioned.cpp" "src/CMakeFiles/pimtrie_core.dir/baselines/range_partitioned.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/baselines/range_partitioned.cpp.o.d"
  "/root/repo/src/core/bitstring.cpp" "src/CMakeFiles/pimtrie_core.dir/core/bitstring.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/core/bitstring.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/pimtrie_core.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/zipf.cpp" "src/CMakeFiles/pimtrie_core.dir/core/zipf.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/core/zipf.cpp.o.d"
  "/root/repo/src/fasttrie/second_layer.cpp" "src/CMakeFiles/pimtrie_core.dir/fasttrie/second_layer.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/fasttrie/second_layer.cpp.o.d"
  "/root/repo/src/fasttrie/xfast.cpp" "src/CMakeFiles/pimtrie_core.dir/fasttrie/xfast.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/fasttrie/xfast.cpp.o.d"
  "/root/repo/src/fasttrie/yfast.cpp" "src/CMakeFiles/pimtrie_core.dir/fasttrie/yfast.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/fasttrie/yfast.cpp.o.d"
  "/root/repo/src/fasttrie/zfast.cpp" "src/CMakeFiles/pimtrie_core.dir/fasttrie/zfast.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/fasttrie/zfast.cpp.o.d"
  "/root/repo/src/hash/crc64.cpp" "src/CMakeFiles/pimtrie_core.dir/hash/crc64.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/hash/crc64.cpp.o.d"
  "/root/repo/src/hash/hash_table.cpp" "src/CMakeFiles/pimtrie_core.dir/hash/hash_table.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/hash/hash_table.cpp.o.d"
  "/root/repo/src/hash/poly_hash.cpp" "src/CMakeFiles/pimtrie_core.dir/hash/poly_hash.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/hash/poly_hash.cpp.o.d"
  "/root/repo/src/pim/metrics.cpp" "src/CMakeFiles/pimtrie_core.dir/pim/metrics.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pim/metrics.cpp.o.d"
  "/root/repo/src/pim/system.cpp" "src/CMakeFiles/pimtrie_core.dir/pim/system.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pim/system.cpp.o.d"
  "/root/repo/src/pimtrie/block.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/block.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/block.cpp.o.d"
  "/root/repo/src/pimtrie/kernel.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/kernel.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/kernel.cpp.o.d"
  "/root/repo/src/pimtrie/meta_index.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/meta_index.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/meta_index.cpp.o.d"
  "/root/repo/src/pimtrie/pim_trie.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie.cpp.o.d"
  "/root/repo/src/pimtrie/pim_trie_match.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie_match.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie_match.cpp.o.d"
  "/root/repo/src/pimtrie/pim_trie_update.cpp" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie_update.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/pimtrie/pim_trie_update.cpp.o.d"
  "/root/repo/src/trie/euler_partition.cpp" "src/CMakeFiles/pimtrie_core.dir/trie/euler_partition.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/trie/euler_partition.cpp.o.d"
  "/root/repo/src/trie/patricia.cpp" "src/CMakeFiles/pimtrie_core.dir/trie/patricia.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/trie/patricia.cpp.o.d"
  "/root/repo/src/trie/query_trie.cpp" "src/CMakeFiles/pimtrie_core.dir/trie/query_trie.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/trie/query_trie.cpp.o.d"
  "/root/repo/src/trie/treefix.cpp" "src/CMakeFiles/pimtrie_core.dir/trie/treefix.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/trie/treefix.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/pimtrie_core.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/pimtrie_core.dir/workload/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
