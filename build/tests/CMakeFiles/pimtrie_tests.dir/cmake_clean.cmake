file(REMOVE_RECURSE
  "CMakeFiles/pimtrie_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_bitstring.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_bitstring.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_config_variants.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_config_variants.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_core.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_fasttrie.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_fasttrie.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_figures.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_figures.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_hash.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_hash.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_pim_system.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_pim_system.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_pim_trie.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_pim_trie.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_pimtrie_internals.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_pimtrie_internals.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_stress.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_stress.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_trie.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_trie.cpp.o.d"
  "CMakeFiles/pimtrie_tests.dir/test_workload.cpp.o"
  "CMakeFiles/pimtrie_tests.dir/test_workload.cpp.o.d"
  "pimtrie_tests"
  "pimtrie_tests.pdb"
  "pimtrie_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimtrie_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
