# Empty dependencies file for pimtrie_tests.
# This may be replaced when dependencies are built.
