
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bitstring.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_bitstring.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_bitstring.cpp.o.d"
  "/root/repo/tests/test_config_variants.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_config_variants.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_config_variants.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_fasttrie.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_fasttrie.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_fasttrie.cpp.o.d"
  "/root/repo/tests/test_figures.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_figures.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_figures.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_pim_system.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_pim_system.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_pim_system.cpp.o.d"
  "/root/repo/tests/test_pim_trie.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_pim_trie.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_pim_trie.cpp.o.d"
  "/root/repo/tests/test_pimtrie_internals.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_pimtrie_internals.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_pimtrie_internals.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_trie.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_trie.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_trie.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/pimtrie_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/pimtrie_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimtrie_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
