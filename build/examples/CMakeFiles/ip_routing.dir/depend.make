# Empty dependencies file for ip_routing.
# This may be replaced when dependencies are built.
