file(REMOVE_RECURSE
  "CMakeFiles/ip_routing.dir/ip_routing.cpp.o"
  "CMakeFiles/ip_routing.dir/ip_routing.cpp.o.d"
  "ip_routing"
  "ip_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
