# Empty dependencies file for suffix_search.
# This may be replaced when dependencies are built.
