file(REMOVE_RECURSE
  "CMakeFiles/suffix_search.dir/suffix_search.cpp.o"
  "CMakeFiles/suffix_search.dir/suffix_search.cpp.o.d"
  "suffix_search"
  "suffix_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
