# Empty compiler generated dependencies file for genome_kmers.
# This may be replaced when dependencies are built.
