file(REMOVE_RECURSE
  "CMakeFiles/genome_kmers.dir/genome_kmers.cpp.o"
  "CMakeFiles/genome_kmers.dir/genome_kmers.cpp.o.d"
  "genome_kmers"
  "genome_kmers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_kmers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
