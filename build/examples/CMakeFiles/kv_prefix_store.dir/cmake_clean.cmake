file(REMOVE_RECURSE
  "CMakeFiles/kv_prefix_store.dir/kv_prefix_store.cpp.o"
  "CMakeFiles/kv_prefix_store.dir/kv_prefix_store.cpp.o.d"
  "kv_prefix_store"
  "kv_prefix_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_prefix_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
