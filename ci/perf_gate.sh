#!/usr/bin/env bash
# Perf gate (ROADMAP item 5c, first recorded trajectory point): re-runs
# the deterministic benches and compares the machine-independent model
# metrics (rounds, words/op, io, pim_time) against the checked-in
# BENCH_*.json baselines via `ptrie_report --gate`. Fails when any gated
# value grows by more than 15%. Wall-clock, throughput, and latency
# columns are machine-dependent and are never gated.
#
# The serving baseline was produced with `bench_serving --quick --json`;
# the gate re-runs with the same flags so the deterministic fixed-batch
# replay table matches row for row. Regenerate baselines after an
# intentional cost change with:
#   build/bench/bench_table1_lcp --json BENCH_table1.json
#   build/bench/bench_serving --quick --json BENCH_serving.json
#   build/bench/bench_ordered --json BENCH_ordered.json
#
# usage: ci/perf_gate.sh [build-dir]   (default: build)
set -euo pipefail

BUILD=${1:-build}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== perf gate: bench_table1_lcp =="
"$BUILD/bench/bench_table1_lcp" --json "$TMP/table1.json" >/dev/null
"$BUILD/tools/ptrie_report" --gate BENCH_table1.json "$TMP/table1.json" --tol 0.15

echo "== perf gate: bench_serving (quick) =="
# bench_serving exits non-zero when the pipelined path falls below the
# 1.3x saturating-load speedup acceptance, so the gate checks that too.
"$BUILD/bench/bench_serving" --quick --json "$TMP/serving.json" >/dev/null
"$BUILD/tools/ptrie_report" --gate BENCH_serving.json "$TMP/serving.json" --tol 0.15

echo "== perf gate: bench_ordered =="
# Ordered-op cost model: pred/succ rounds and the range-scan
# rounds-vs-width table (rounds must stay flat as the width grows).
"$BUILD/bench/bench_ordered" --json "$TMP/ordered.json" >/dev/null
"$BUILD/tools/ptrie_report" --gate BENCH_ordered.json "$TMP/ordered.json" --tol 0.15

echo "perf gate: OK"
