#!/usr/bin/env bash
# CI gate: full build + tests in the normal configuration, then a
# ThreadSanitizer build running the parallel-runtime determinism suite
# with a multi-worker pool (races in the batch pipeline show up there).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== thread-sanitized build + parallel determinism suite =="
cmake -B build-tsan -S . -DPTRIE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target pimtrie_tests
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='WorkerSweep.*'

echo "all checks passed"
