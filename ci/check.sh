#!/usr/bin/env bash
# CI gate: full build + tests in the normal configuration, then a
# ThreadSanitizer build running the parallel-runtime determinism suite
# with a multi-worker pool (races in the batch pipeline show up there).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== observability smoke: trace + bench JSON round-trip =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
PTRIE_TRACE="$OBS_TMP/trace.json" ./build/bench/bench_table1_lcp \
  --json "$OBS_TMP/bench.json" >/dev/null
# ptrie_report parses both files back; a malformed trace or bench JSON
# fails here, and the greps assert phase attribution and counter export
# actually happened.
./build/tools/ptrie_report "$OBS_TMP/trace.json" --rounds 0 >"$OBS_TMP/trace_report.txt"
grep -q 'LCP/MetaQuery/HashMatching-L1' "$OBS_TMP/trace_report.txt"
./build/tools/ptrie_report "$OBS_TMP/bench.json" >"$OBS_TMP/bench_report.txt"
grep -q 'counters' "$OBS_TMP/bench_report.txt"

echo "== thread-sanitized build + parallel determinism suite =="
cmake -B build-tsan -S . -DPTRIE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target pimtrie_tests
# WorkerSweep* covers the batch-pipeline suite and the trace byte-equality
# suite (WorkerSweepTrace) in tests/test_obs.cpp.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='WorkerSweep*'

echo "all checks passed"
