#!/usr/bin/env bash
# CI gate: full build + tests in the normal configuration, a fixed-seed
# differential fuzz matrix, fault-injection and overload smokes (the
# fuzz oracle under injected faults, shed-vs-block admission behavior),
# backend smokes (wallclock model_ms flow, threaded-vs-exact digest
# differential), the perf gate against the checked-in BENCH_*.json
# baselines, the docs-vs-code gate (ci/doc_check.sh), then
# sanitizer builds — AddressSanitizer runs
# the unit- and serve-label tests plus the fuzz matrix; ThreadSanitizer
# runs the parallel-runtime determinism suite (which includes the
# serving pipeline's WorkerSweepServe tests) with a multi-worker pool,
# a short bench_serving smoke, and the fuzz matrix again (races in the
# batch pipeline and the serve coalescer show up there).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
# Fixed seed matrix for sanitizer fuzz runs: deterministic, so a failure
# here is replayable with the printed `ptrie_fuzz --replay` command.
FUZZ_SEEDS="${FUZZ_SEEDS:-5}"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== differential fuzz: seed matrix over all structures =="
./build/tools/ptrie_fuzz --seed 1 --seeds 20 --structure all --profile all \
  --shrink-out build/fuzz_min.sched
# Same matrix with the op mix biased toward the ordered operations
# (pred/succ/range/topk), so the ordered covers and their envelopes get
# a deep differential sweep, not just the ~30% share of the default mix.
./build/tools/ptrie_fuzz --seed 1 --seeds 20 --structure all --profile all \
  --ordered --shrink-out build/fuzz_ordered_min.sched

echo "== observability smoke: trace + bench JSON round-trip =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
PTRIE_TRACE="$OBS_TMP/trace.json" ./build/bench/bench_table1_lcp \
  --json "$OBS_TMP/bench.json" >/dev/null
# ptrie_report parses both files back; a malformed trace or bench JSON
# fails here, and the greps assert phase attribution and counter export
# actually happened.
./build/tools/ptrie_report "$OBS_TMP/trace.json" --rounds 0 >"$OBS_TMP/trace_report.txt"
grep -q 'LCP/MetaQuery/HashMatching-L1' "$OBS_TMP/trace_report.txt"
./build/tools/ptrie_report "$OBS_TMP/bench.json" >"$OBS_TMP/bench_report.txt"
grep -q 'counters' "$OBS_TMP/bench_report.txt"

echo "== serving smoke: latency histograms + curves render =="
./build/bench/bench_serving --quick --json "$OBS_TMP/serving.json" >/dev/null
./build/tools/ptrie_report "$OBS_TMP/serving.json" >"$OBS_TMP/serving_report.txt"
grep -q 'latency vs offered load' "$OBS_TMP/serving_report.txt"
grep -q 'lat/pipelined@max' "$OBS_TMP/serving_report.txt"

echo "== lifecycle smoke: spans + metrics sink + skew alerts =="
# Adversarially skewed run (Zipf theta=1.5) with full lifecycle
# telemetry: the Chrome trace must carry the serving span track, the
# JSON-lines sink must parse and render through `ptrie_report --top`,
# and the skew detector must fire at least one alert.
PTRIE_TRACE="$OBS_TMP/serve_trace.json" PTRIE_METRICS="$OBS_TMP/serve_metrics.jsonl" \
  ./build/bench/bench_serving --quick --rates 0 --theta 1.5 >/dev/null
./build/tools/ptrie_report "$OBS_TMP/serve_trace.json" >"$OBS_TMP/serve_trace_report.txt"
grep -q 'request lifecycle spans' "$OBS_TMP/serve_trace_report.txt"
grep -q 'request' "$OBS_TMP/serve_trace_report.txt"
./build/tools/ptrie_report --top "$OBS_TMP/serve_metrics.jsonl" >"$OBS_TMP/serve_top.txt"
grep -q 'tenant' "$OBS_TMP/serve_top.txt"
grep -q '"type":"alert"' "$OBS_TMP/serve_metrics.jsonl"
# Uniform load (theta=0) must stay alert-free: the detector has no
# false positives on the load it was tuned against.
PTRIE_METRICS="$OBS_TMP/serve_uniform.jsonl" \
  ./build/bench/bench_serving --quick --rates 0 --theta 0 >/dev/null
if grep -q '"type":"alert"' "$OBS_TMP/serve_uniform.jsonl"; then
  echo "FAIL: skew alert fired under uniform load" >&2
  exit 1
fi

echo "== fault-injection smoke: recoverable noise + hard read-phase faults =="
# Noise plan: every injected fault recovers within the retry budget, so
# the full differential oracle still applies — the run must be green AND
# must actually have retried (retries > 0 proves faults were injected).
./build/tools/ptrie_fuzz --seed 3 --seeds 2 --structure pimtrie --batches 10 \
  --batch-cap 12 --init 40 --fault-rate 0.02 \
  --shrink-out "$OBS_TMP/fuzz_noise_min.sched" | tee "$OBS_TMP/fuzz_noise.txt"
grep -Eq 'retries=[1-9]' "$OBS_TMP/fuzz_noise.txt"
# Hard plan: every Serve-phase reply corrupts forever, so the affected
# requests must fail honestly (faulted > 0) while everything that reports
# OK still matches the reference — zero silent wrong answers.
./build/tools/ptrie_fuzz --seed 5 --structure serve --batches 10 --batch-cap 12 \
  --init 40 --faults 'corrupt@phase=Serve/,count=always' \
  --shrink-out "$OBS_TMP/fuzz_hard_min.sched" | tee "$OBS_TMP/fuzz_hard.txt"
grep -Eq 'faulted=[1-9]' "$OBS_TMP/fuzz_hard.txt"
# Env hook: PTRIE_FAULTS reaches every System without flag plumbing.
# Stalls deliver intact data (they only charge model words), so the
# serving smoke must still pass end to end.
PTRIE_FAULTS='stall@phase=Serve/,words=100' \
  ./build/bench/bench_serving --quick --ops 200 --rates 0 >/dev/null

echo "== overload smoke: shed policy rejects, default policy stays lossless =="
# Tiny backlog + kShed at saturating load: admission must reject work
# and the bench must stay live end to end. The speedup acceptance is
# meaningless when most requests shed, so ignore the exit code and
# assert on the latency-mode shed summary instead (the deterministic
# shed table at the end always sheds by construction, so the raw
# serve/shed counter would never be zero).
./build/bench/bench_serving --quick --ops 300 --rates 0 --policy shed --backlog 2 \
  >"$OBS_TMP/serving_shed.txt" || true
grep -Eq 'latency-mode sheds=[1-9]' "$OBS_TMP/serving_shed.txt"
# Moderate uniform load under the default kBlock policy: lossless — not
# a single shed.
./build/bench/bench_serving --quick --ops 300 --theta 0 >"$OBS_TMP/serving_block.txt"
grep -Eq 'latency-mode sheds=0$' "$OBS_TMP/serving_block.txt"

echo "== backend smoke: wallclock + threaded execute the bench stack =="
# wallclock: same execution, plus modelled milliseconds must flow into
# the model_ms bench columns (nonzero on at least one pim-trie row).
PTRIE_BACKEND=wallclock ./build/bench/bench_table1_lcp \
  --json "$OBS_TMP/wallclock.json" >"$OBS_TMP/wallclock.txt"
grep -q 'model_ms' "$OBS_TMP/wallclock.txt"
grep -Eq 'pim-trie +[0-9]+ +[0-9.]+ +log P=[0-9]+ +0\.[0-9]*[1-9]' "$OBS_TMP/wallclock.txt" \
  || grep -Eq '"model_ms"' "$OBS_TMP/wallclock.json"
# threaded: per-module worker threads + real barriers must survive the
# serving front-end (its pipeline threads submit rounds concurrently).
PTRIE_BACKEND=threaded ./build/bench/bench_serving --quick --ops 200 --rates 0 >/dev/null
# Backend differential fuzz: threaded vs exact digests over the seed
# matrix, with and without recoverable fault noise.
./build/tools/ptrie_fuzz --seed 1 --seeds 10 --structure pimtrie --profile auto \
  --backend threaded --batches 12 --batch-cap 12 --init 40 \
  --shrink-out "$OBS_TMP/fuzz_backend_min.sched"
./build/tools/ptrie_fuzz --seed 4 --seeds 3 --structure pimtrie --backend threaded \
  --batches 10 --batch-cap 12 --init 40 --fault-rate 0.02 \
  --shrink-out "$OBS_TMP/fuzz_backend_faults_min.sched"
./build/tools/ptrie_fuzz --seed 11 --seeds 4 --structure pimtrie --profile auto \
  --backend wallclock --batches 12 --batch-cap 12 --init 40 \
  --shrink-out "$OBS_TMP/fuzz_backend_wc_min.sched"

echo "== perf gate: model metrics vs checked-in baselines =="
ci/perf_gate.sh build

echo "== doc check: env-var table + named paths =="
ci/doc_check.sh build

echo "== address-sanitized build + unit/serve tests + fuzz matrix =="
cmake -B build-asan -S . -DPTRIE_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target pimtrie_tests ptrie_fuzz ptrie_report bench_serving
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L 'unit|serve'
# Serving smoke under ASan: coalescer + pipeline + promise plumbing.
./build-asan/bench/bench_serving --quick --ops 200 >/dev/null
./build-asan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --batches 12 --batch-cap 12 --init 40 \
  --shrink-out build-asan/fuzz_min.sched
# Fault-injection under ASan: the corrupt/drop/retry paths copy and
# re-deliver reply buffers — exactly where a lifetime bug would hide.
./build-asan/tools/ptrie_fuzz --seed 2 --seeds 2 --structure pimtrie \
  --batches 10 --batch-cap 12 --init 40 --fault-rate 0.02 \
  --shrink-out build-asan/fuzz_faults_min.sched
# Ordered ops under ASan: the scan answers are assembled from per-piece
# reply buffers (cover probes, kSeekBlock descents, host merges) — the
# natural home for an out-of-bounds or use-after-move.
./build-asan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --ordered --batches 12 --batch-cap 12 \
  --init 40 --shrink-out build-asan/fuzz_ordered_min.sched
# Threaded backend under ASan: worker threads move buffers in and out of
# the shared round state — lifetime bugs in the rendezvous live here.
./build-asan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure pimtrie --profile auto --backend threaded --batches 12 \
  --batch-cap 12 --init 40 --shrink-out build-asan/fuzz_backend_min.sched

echo "== thread-sanitized build + parallel determinism suite + fuzz matrix =="
cmake -B build-tsan -S . -DPTRIE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target pimtrie_tests ptrie_fuzz ptrie_report bench_serving
# WorkerSweep* covers the batch-pipeline suite, the trace byte-equality
# suite (WorkerSweepTrace) in tests/test_obs.cpp, and the serving
# pipeline determinism suite (WorkerSweepServe) in tests/test_serve.cpp.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='WorkerSweep*'
# Remaining serve tier (coalescer triggers, concurrent clients, serve
# fuzz adapter) and a short bench_serving smoke under TSan: the open-loop
# clients, coalescer, and pipeline threads all run concurrently here.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='Serve*'
PTRIE_WORKERS=8 ./build-tsan/bench/bench_serving --quick --ops 200 >/dev/null
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --batches 12 --batch-cap 12 --init 40 \
  --shrink-out build-tsan/fuzz_min.sched
# Hard Serve-phase faults under TSan: per-run failure resolution races
# against concurrent submitters and the pipeline threads.
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 5 --structure serve \
  --batches 8 --batch-cap 10 --init 30 \
  --faults 'corrupt@phase=Serve/,count=always' \
  --shrink-out build-tsan/fuzz_faults_min.sched
# Ordered ops under TSan: range/topk requests ride the same coalescer
# batches as writes, so the multi-worker pool races scan assembly
# against insert/erase application here.
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --ordered --batches 12 --batch-cap 12 \
  --init 40 --shrink-out build-tsan/fuzz_ordered_min.sched
# Threaded backend under TSan: every module a real thread, every round a
# real barrier — the whole point of the backend is to let TSan see the
# machine's concurrency, so the backend suite and the differential fuzz
# both run here. Data races in the rendezvous or in kernels that touch a
# neighboring module's arena surface as TSan reports, not as flaky bugs.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests --gtest_filter='Backend*'
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure pimtrie --profile auto --backend threaded --batches 12 \
  --batch-cap 12 --init 40 --shrink-out build-tsan/fuzz_backend_min.sched
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 4 --seeds 2 \
  --structure pimtrie --backend threaded --batches 10 --batch-cap 12 \
  --init 40 --fault-rate 0.02 \
  --shrink-out build-tsan/fuzz_backend_faults_min.sched

echo "all checks passed"
