#!/usr/bin/env bash
# CI gate: full build + tests in the normal configuration, a fixed-seed
# differential fuzz matrix, the perf gate against the checked-in
# BENCH_*.json baselines, then sanitizer builds — AddressSanitizer runs
# the unit- and serve-label tests plus the fuzz matrix; ThreadSanitizer
# runs the parallel-runtime determinism suite (which includes the
# serving pipeline's WorkerSweepServe tests) with a multi-worker pool,
# a short bench_serving smoke, and the fuzz matrix again (races in the
# batch pipeline and the serve coalescer show up there).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
# Fixed seed matrix for sanitizer fuzz runs: deterministic, so a failure
# here is replayable with the printed `ptrie_fuzz --replay` command.
FUZZ_SEEDS="${FUZZ_SEEDS:-5}"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== differential fuzz: seed matrix over all structures =="
./build/tools/ptrie_fuzz --seed 1 --seeds 20 --structure all --profile all \
  --shrink-out build/fuzz_min.sched

echo "== observability smoke: trace + bench JSON round-trip =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
PTRIE_TRACE="$OBS_TMP/trace.json" ./build/bench/bench_table1_lcp \
  --json "$OBS_TMP/bench.json" >/dev/null
# ptrie_report parses both files back; a malformed trace or bench JSON
# fails here, and the greps assert phase attribution and counter export
# actually happened.
./build/tools/ptrie_report "$OBS_TMP/trace.json" --rounds 0 >"$OBS_TMP/trace_report.txt"
grep -q 'LCP/MetaQuery/HashMatching-L1' "$OBS_TMP/trace_report.txt"
./build/tools/ptrie_report "$OBS_TMP/bench.json" >"$OBS_TMP/bench_report.txt"
grep -q 'counters' "$OBS_TMP/bench_report.txt"

echo "== serving smoke: latency histograms + curves render =="
./build/bench/bench_serving --quick --json "$OBS_TMP/serving.json" >/dev/null
./build/tools/ptrie_report "$OBS_TMP/serving.json" >"$OBS_TMP/serving_report.txt"
grep -q 'latency vs offered load' "$OBS_TMP/serving_report.txt"
grep -q 'lat/pipelined@max' "$OBS_TMP/serving_report.txt"

echo "== lifecycle smoke: spans + metrics sink + skew alerts =="
# Adversarially skewed run (Zipf theta=1.5) with full lifecycle
# telemetry: the Chrome trace must carry the serving span track, the
# JSON-lines sink must parse and render through `ptrie_report --top`,
# and the skew detector must fire at least one alert.
PTRIE_TRACE="$OBS_TMP/serve_trace.json" PTRIE_METRICS="$OBS_TMP/serve_metrics.jsonl" \
  ./build/bench/bench_serving --quick --rates 0 --theta 1.5 >/dev/null
./build/tools/ptrie_report "$OBS_TMP/serve_trace.json" >"$OBS_TMP/serve_trace_report.txt"
grep -q 'request lifecycle spans' "$OBS_TMP/serve_trace_report.txt"
grep -q 'request' "$OBS_TMP/serve_trace_report.txt"
./build/tools/ptrie_report --top "$OBS_TMP/serve_metrics.jsonl" >"$OBS_TMP/serve_top.txt"
grep -q 'tenant' "$OBS_TMP/serve_top.txt"
grep -q '"type":"alert"' "$OBS_TMP/serve_metrics.jsonl"
# Uniform load (theta=0) must stay alert-free: the detector has no
# false positives on the load it was tuned against.
PTRIE_METRICS="$OBS_TMP/serve_uniform.jsonl" \
  ./build/bench/bench_serving --quick --rates 0 --theta 0 >/dev/null
if grep -q '"type":"alert"' "$OBS_TMP/serve_uniform.jsonl"; then
  echo "FAIL: skew alert fired under uniform load" >&2
  exit 1
fi

echo "== perf gate: model metrics vs checked-in baselines =="
ci/perf_gate.sh build

echo "== address-sanitized build + unit/serve tests + fuzz matrix =="
cmake -B build-asan -S . -DPTRIE_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target pimtrie_tests ptrie_fuzz bench_serving
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L 'unit|serve'
# Serving smoke under ASan: coalescer + pipeline + promise plumbing.
./build-asan/bench/bench_serving --quick --ops 200 >/dev/null
./build-asan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --batches 12 --batch-cap 12 --init 40 \
  --shrink-out build-asan/fuzz_min.sched

echo "== thread-sanitized build + parallel determinism suite + fuzz matrix =="
cmake -B build-tsan -S . -DPTRIE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target pimtrie_tests ptrie_fuzz bench_serving
# WorkerSweep* covers the batch-pipeline suite, the trace byte-equality
# suite (WorkerSweepTrace) in tests/test_obs.cpp, and the serving
# pipeline determinism suite (WorkerSweepServe) in tests/test_serve.cpp.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='WorkerSweep*'
# Remaining serve tier (coalescer triggers, concurrent clients, serve
# fuzz adapter) and a short bench_serving smoke under TSan: the open-loop
# clients, coalescer, and pipeline threads all run concurrently here.
PTRIE_WORKERS=8 ./build-tsan/tests/pimtrie_tests \
  --gtest_filter='Serve*'
PTRIE_WORKERS=8 ./build-tsan/bench/bench_serving --quick --ops 200 >/dev/null
PTRIE_WORKERS=8 ./build-tsan/tools/ptrie_fuzz --seed 1 --seeds "$FUZZ_SEEDS" \
  --structure all --profile auto --batches 12 --batch-cap 12 --init 40 \
  --shrink-out build-tsan/fuzz_min.sched

echo "all checks passed"
