#!/usr/bin/env bash
# Docs-vs-code consistency gate. Two directions:
#
#   1. Every PTRIE_* environment variable the binary registers
#      (`ptrie_report --env`, backed by the obs::env registry) must be
#      documented in README.md's knob reference table — an undocumented
#      knob is a doc bug, and this is what keeps the table complete as
#      knobs are added.
#   2. Every src/ (or bench/, tools/, ci/, tests/) path that README.md,
#      DESIGN.md, or EXPERIMENTS.md names must exist — renames and
#      deletions must update the docs in the same change.
#
# usage: ci/doc_check.sh [build-dir]   (default: build)
set -euo pipefail

BUILD=${1:-build}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

REPORT="$BUILD/tools/ptrie_report"
if [[ ! -x "$REPORT" ]]; then
  echo "doc_check: $REPORT not built (run cmake --build $BUILD first)" >&2
  exit 2
fi

fail=0

echo "== doc check: registered env vars documented in README =="
vars=$("$REPORT" --env | grep -oE '^  PTRIE_[A-Z0-9_]+' | tr -d ' ')
[[ -n "$vars" ]] || { echo "doc_check: --env listed no variables" >&2; exit 2; }
for v in $vars; do
  if ! grep -q "$v" README.md; then
    echo "doc_check: FAIL env var $v is registered but not documented in README.md" >&2
    fail=1
  fi
done

echo "== doc check: file paths named in docs exist =="
docs=(README.md DESIGN.md EXPERIMENTS.md)
paths=$(grep -ohE '\b(src|bench|tools|tests|ci)/[A-Za-z0-9_/.-]+\.(hpp|cpp|sh|md|json)\b' \
  "${docs[@]}" | sort -u)
for p in $paths; do
  if [[ ! -e "$p" ]]; then
    echo "doc_check: FAIL docs name $p but it does not exist" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "doc_check: FAILED" >&2
  exit 1
fi
echo "doc_check: OK ($(echo "$vars" | wc -w) env vars, $(echo "$paths" | wc -w) paths)"
