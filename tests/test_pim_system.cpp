// Unit tests: the PIM Model simulator — round semantics, exact word
// accounting, IO-time = per-round maxima, PIM-time, balance reports.

#include <gtest/gtest.h>

#include "core/check.hpp"
#include "pim/system.hpp"

namespace {

using ptrie::pim::Buffer;
using ptrie::pim::Module;
using ptrie::pim::System;

// Malformed external input is a structured error surviving release
// builds (PTRIE_CHECK), not an assert: a to_modules vector of the wrong
// arity names the sizes involved, and the system stays usable.
TEST(PimSystem, WrongToModulesArityThrowsCheckError) {
  System sys(4);
  std::vector<Buffer> to(3);  // p() is 4
  try {
    sys.round("bad", std::move(to), [](Module&, Buffer in) { return in; });
    FAIL() << "round() with wrong to_modules size must throw";
  } catch (const ptrie::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("to_modules"), std::string::npos) << e.what();
  }
  EXPECT_EQ(sys.metrics().io_rounds(), 0u);  // nothing was charged
  auto ok = sys.round("good", std::vector<Buffer>(4), [](Module&, Buffer in) { return in; },
                      true);
  EXPECT_EQ(ok.size(), 4u);
}

TEST(PimSystem, RoundEchoesAndCounts) {
  System sys(4);
  std::vector<Buffer> to(4);
  to[1] = {10, 20, 30};
  to[3] = {7};
  auto res = sys.round("t", std::move(to), [](Module& m, Buffer in) {
    m.work(in.size());
    Buffer out = in;
    out.push_back(99);
    return out;
  });
  EXPECT_TRUE(res[0].empty());  // not launched
  EXPECT_EQ(res[1], (Buffer{10, 20, 30, 99}));
  EXPECT_EQ(res[3], (Buffer{7, 99}));

  const auto& m = sys.metrics();
  EXPECT_EQ(m.io_rounds(), 1u);
  // Module 1: 3 in + 4 out = 7 words; module 3: 1 + 2 = 3.
  EXPECT_EQ(m.total_comm_words(), 10u);
  EXPECT_EQ(m.io_time(), 7u);  // max across modules
  EXPECT_EQ(m.per_module_words()[1], 7u);
  EXPECT_EQ(m.per_module_words()[3], 3u);
  EXPECT_EQ(m.pim_time(), 3u);   // max work
  EXPECT_EQ(m.total_pim_work(), 4u);
}

TEST(PimSystem, IoTimeSumsPerRoundMaxima) {
  System sys(2);
  for (int r = 0; r < 3; ++r) {
    std::vector<Buffer> to(2);
    to[r % 2] = Buffer(static_cast<std::size_t>(5 + r), 1);
    sys.round("r", std::move(to), [](Module&, Buffer) { return Buffer{}; });
  }
  // Maxima: 5, 6, 7 -> 18.
  EXPECT_EQ(sys.metrics().io_time(), 18u);
  EXPECT_EQ(sys.metrics().io_rounds(), 3u);
}

TEST(PimSystem, BroadcastChargesAllModules) {
  System sys(8);
  Buffer payload{1, 2, 3};
  sys.broadcast_round("b", payload, [](Module& m, Buffer in) {
    m.work(1);
    return Buffer{static_cast<std::uint64_t>(in.size())};
  });
  EXPECT_EQ(sys.metrics().total_comm_words(), 8u * 4u);
  EXPECT_DOUBLE_EQ(sys.metrics().comm_imbalance(), 1.0);
}

TEST(PimSystem, ModuleStateIsolatedPerSlot) {
  System sys(2);
  sys.module(0).emplace_state<int>(1, 42);
  sys.module(0).emplace_state<int>(2, 7);
  EXPECT_EQ(sys.module(0).state<int>(1), 42);
  EXPECT_EQ(sys.module(0).state<int>(2), 7);
  EXPECT_FALSE(sys.module(1).has_state<int>(1));
  sys.module(0).drop_state<int>(1);
  EXPECT_FALSE(sys.module(0).has_state<int>(1));
}

TEST(PimSystem, ImbalanceDetectsSkew) {
  System sys(4);
  std::vector<Buffer> to(4);
  to[0] = Buffer(100, 1);  // everything to one module
  sys.round("skew", std::move(to), [](Module&, Buffer) { return Buffer{}; });
  EXPECT_GT(sys.metrics().comm_imbalance(), 3.9);
}

TEST(PimSystem, SnapshotDeltas) {
  System sys(2);
  auto before = sys.metrics().snapshot();
  std::vector<Buffer> to(2);
  to[0] = {1, 2};
  sys.round("x", std::move(to), [](Module& m, Buffer) {
    m.work(5);
    return Buffer{9};
  });
  auto after = sys.metrics().snapshot();
  EXPECT_EQ(after.rounds - before.rounds, 1u);
  EXPECT_EQ(after.words - before.words, 3u);
  EXPECT_EQ(after.pim_time - before.pim_time, 5u);
}

TEST(PimSystem, ResetClears) {
  System sys(2);
  std::vector<Buffer> to(2);
  to[1] = {1};
  sys.round("x", std::move(to), [](Module&, Buffer) { return Buffer{}; });
  sys.metrics().reset();
  EXPECT_EQ(sys.metrics().io_rounds(), 0u);
  EXPECT_EQ(sys.metrics().total_comm_words(), 0u);
  EXPECT_EQ(sys.metrics().per_module_words()[1], 0u);
}

TEST(PimSystem, RandomModuleCoversAll) {
  System sys(8, 99);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 2000; ++i) hits[sys.random_module()]++;
  for (int h : hits) EXPECT_GT(h, 100);
}

}  // namespace
