// Configuration-variant coverage: non-default word size w (the pivot
// stride and S_rem bound), exhaustive small-w SecondLayerIndex
// enumeration, Config-derived thresholds, and end-to-end kernel wire
// round-trips through the simulator.

#include <gtest/gtest.h>

#include <set>

#include "fasttrie/second_layer.hpp"
#include "pim/system.hpp"
#include "pimtrie/config.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::pim::System;
using ptrie::pimtrie::Config;
using ptrie::pimtrie::PimTrie;
using ptrie::trie::Patricia;

TEST(ConfigDefaults, PaperThresholds) {
  Config cfg;
  cfg.p = 1024;
  // K_B = log^2 P = 100; K_MB = P; K_SMB = K_B; push = log^4 P.
  EXPECT_EQ(cfg.block_bound(), 100u);
  EXPECT_EQ(cfg.meta_block_bound(), 1024u);
  EXPECT_EQ(cfg.piece_bound(), 100u);
  EXPECT_EQ(cfg.push_threshold(), 10000u);
  cfg.p = 4;  // clamps kick in at tiny P
  EXPECT_GE(cfg.block_bound(), 16u);
  EXPECT_GE(cfg.push_threshold(), 64u);
  EXPECT_EQ(Config::log2_ceil(1), 1u);
  EXPECT_EQ(Config::log2_ceil(2), 1u);
  EXPECT_EQ(Config::log2_ceil(3), 2u);
  EXPECT_EQ(Config::log2_ceil(1024), 10u);
}

class WordSize : public ::testing::TestWithParam<unsigned> {};

TEST_P(WordSize, EndToEndAtNonDefaultW) {
  unsigned w = GetParam();
  System sys(8, 900 + w);
  Config cfg;
  cfg.seed = 901 + w;
  cfg.w = w;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(250, 8, 120, 902 + w);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
  pt.build(keys, vals);
  ASSERT_EQ(pt.debug_check(), "") << "w=" << w;

  Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], i);
  std::vector<BitString> queries(keys.begin(), keys.begin() + 120);
  for (auto& q : ptrie::workload::miss_queries(80, 64, 903 + w)) queries.push_back(q);
  auto got = pt.batch_lcp(queries);
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(got[i], ref.lcp(queries[i]).first) << "w=" << w << " q=" << i;

  // Updates still work at this stride.
  auto extra = ptrie::workload::uniform_keys(100, 48, 904 + w);
  std::vector<std::uint64_t> evals(extra.size(), 7);
  pt.batch_insert(extra, evals);
  for (const auto& k : extra) ref.insert(k, 7);
  EXPECT_EQ(pt.key_count(), ref.key_count());
  auto got2 = pt.batch_lcp(extra);
  for (std::size_t i = 0; i < extra.size(); ++i) EXPECT_EQ(got2[i], extra[i].size());
  ASSERT_EQ(pt.debug_check(), "");
}

INSTANTIATE_TEST_SUITE_P(Strides, WordSize, ::testing::Values(16u, 32u, 48u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "w" + std::to_string(info.param);
                         });

// Exhaustive SecondLayerIndex check at w=4: every subset of the 15
// possible stored strings (length < 4) against every query (length <= 4),
// compared with the brute-force paper contract (longest LCP; among ties
// the index may return the root or a direct extension of it — we assert
// the *LCP value* is maximal, which is what the caller verifies against).
TEST(SecondLayerExhaustive, AllSubsetsW4) {
  unsigned w = 4;
  // Enumerate all strings of length 0..3.
  std::vector<BitString> all;
  for (unsigned len = 0; len < w; ++len)
    for (unsigned v = 0; v < (1u << len); ++v)
      all.push_back(BitString::from_uint(static_cast<std::uint64_t>(v) << (64 - (len ? len : 1)) >> (64 - (len ? len : 1)), len));
  // Fix the encoding: from_uint(v, len) wants the value in the low bits.
  all.clear();
  for (unsigned len = 0; len < w; ++len)
    for (unsigned v = 0; v < (1u << len); ++v) all.push_back(BitString::from_uint(v, len));
  ASSERT_EQ(all.size(), 15u);

  std::vector<BitString> queries;
  for (unsigned len = 0; len <= w; ++len)
    for (unsigned v = 0; v < (1u << len); ++v) queries.push_back(BitString::from_uint(v, len));

  for (std::uint32_t mask = 1; mask < (1u << 15); mask += 7) {  // stride the subsets
    ptrie::fasttrie::SecondLayerIndex idx(w);
    std::vector<BitString> stored;
    for (unsigned b = 0; b < 15; ++b)
      if (mask & (1u << b)) {
        idx.insert(all[b], b);
        stored.push_back(all[b]);
      }
    for (const auto& q : queries) {
      std::size_t want = 0;
      for (const auto& s : stored) want = std::max(want, s.lcp(q));
      auto got = idx.query(q);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->lcp, want) << "mask=" << mask << " q=" << q.to_binary();
    }
  }
}

TEST(PimTrieConfig, AlphaRebuildKeepsWorking) {
  // Aggressive rebuild threshold + tiny pieces: insert-heavy churn forces
  // the scapegoat-style rebuild path repeatedly.
  System sys(4, 950);
  Config cfg;
  cfg.seed = 951;
  cfg.kb = 16;
  cfg.kmb = 8;
  cfg.ksmb = 4;
  cfg.alpha = 0.55;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::caterpillar_keys(40, 7, 952);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  pt.build({keys.begin(), keys.begin() + 10}, {vals.begin(), vals.begin() + 10});
  // Append ever-deeper keys in small batches: the meta-block tree keeps
  // growing at the bottom, the adversarial pattern of Section 5.2.
  for (std::size_t at = 10; at < keys.size(); at += 5) {
    std::size_t end = std::min(at + 5, keys.size());
    pt.batch_insert({keys.begin() + at, keys.begin() + end},
                    {vals.begin() + at, vals.begin() + end});
    ASSERT_EQ(pt.debug_check(), "") << "after batch at " << at;
  }
  Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], 1);
  auto got = pt.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], keys[i].size());
}

TEST(PimTrieConfig, SingleModuleDegenerate) {
  // P = 1: everything lands on one module; correctness must be unaffected.
  System sys(1, 960);
  Config cfg;
  cfg.seed = 961;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(120, 8, 90, 962);
  std::vector<std::uint64_t> vals(keys.size(), 3);
  pt.build(keys, vals);
  auto got = pt.batch_get(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(got[i].has_value());
    EXPECT_EQ(*got[i], 3u);
  }
  auto sub = pt.batch_subtree({BitString()});
  EXPECT_EQ(sub[0].size(), pt.key_count());
}

}  // namespace
