// Unit tests: BitString, parallel runtime, RNG, Zipf sampler.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/bitstring.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/zipf.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::core::Rng;

TEST(BitString, FromBinaryRoundTrip) {
  for (const char* s : {"", "0", "1", "0101", "111111111", "000000000000000000000001"}) {
    EXPECT_EQ(BitString::from_binary(s).to_binary(), s);
  }
}

TEST(BitString, FromUint) {
  BitString s = BitString::from_uint(0b1011, 4);
  EXPECT_EQ(s.to_binary(), "1011");
  EXPECT_EQ(BitString::from_uint(0, 0).size(), 0u);
  BitString full = BitString::from_uint(~0ull, 64);
  EXPECT_EQ(full.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_TRUE(full.bit(i));
}

TEST(BitString, FromBytes) {
  BitString s = BitString::from_bytes(std::string_view("\xA5", 1));
  EXPECT_EQ(s.to_binary(), "10100101");
}

TEST(BitString, PushPopBack) {
  BitString s;
  std::string want;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    bool b = rng.coin();
    s.push_back(b);
    want.push_back(b ? '1' : '0');
  }
  EXPECT_EQ(s.to_binary(), want);
  for (int i = 0; i < 77; ++i) {
    s.pop_back();
    want.pop_back();
  }
  EXPECT_EQ(s.to_binary(), want);
}

TEST(BitString, AppendCrossesWordBoundaries) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a, b;
    for (std::size_t i = 0, n = rng.below(130); i < n; ++i) a.push_back(rng.coin() ? '1' : '0');
    for (std::size_t i = 0, n = rng.below(130); i < n; ++i) b.push_back(rng.coin() ? '1' : '0');
    BitString sa = BitString::from_binary(a), sb = BitString::from_binary(b);
    BitString c = sa;
    c.append(sb);
    EXPECT_EQ(c.to_binary(), a + b);
  }
}

TEST(BitString, SubstrAndSuffix) {
  Rng rng(3);
  std::string s;
  for (int i = 0; i < 300; ++i) s.push_back(rng.coin() ? '1' : '0');
  BitString bs = BitString::from_binary(s);
  for (int trial = 0; trial < 60; ++trial) {
    std::size_t from = rng.below(s.size());
    std::size_t len = rng.below(s.size() - from + 1);
    EXPECT_EQ(bs.substr(from, len).to_binary(), s.substr(from, len));
  }
  EXPECT_EQ(bs.suffix(100).to_binary(), s.substr(100));
  EXPECT_EQ(bs.prefix(99).to_binary(), s.substr(0, 99));
}

TEST(BitString, Truncate) {
  BitString s = BitString::from_binary("110100111010011101");
  s.truncate(7);
  EXPECT_EQ(s.to_binary(), "1101001");
  s.truncate(0);
  EXPECT_TRUE(s.empty());
}

TEST(BitString, LcpAgainstReference) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a, b;
    std::size_t shared = rng.below(150);
    for (std::size_t i = 0; i < shared; ++i) {
      char c = rng.coin() ? '1' : '0';
      a.push_back(c);
      b.push_back(c);
    }
    for (std::size_t i = 0, n = rng.below(80); i < n; ++i) a.push_back(rng.coin() ? '1' : '0');
    for (std::size_t i = 0, n = rng.below(80); i < n; ++i) b.push_back(rng.coin() ? '1' : '0');
    BitString sa = BitString::from_binary(a), sb = BitString::from_binary(b);
    std::size_t want = 0;
    while (want < a.size() && want < b.size() && a[want] == b[want]) ++want;
    EXPECT_EQ(sa.lcp(sb), want);
    EXPECT_EQ(sb.lcp(sa), want);
  }
}

TEST(BitString, LcpAtAndRange) {
  BitString a = BitString::from_binary("0011010111001101011100");
  BitString b = BitString::from_binary("0101110011");
  // a[4..] = "010111001101011100"; b is a 10-bit prefix of it.
  EXPECT_EQ(a.lcp_at(4, b), 10u);
  EXPECT_EQ(a.lcp_range(4, b, 0), 10u);
  EXPECT_EQ(a.lcp_range(4, a, 4), 18u);
  // Diverging case.
  BitString c = BitString::from_binary("0101111");
  EXPECT_EQ(a.lcp_at(4, c), 6u);
}

TEST(BitString, CompareIsLexicographic) {
  std::vector<std::string> raw = {"", "0", "00", "0001", "01", "1", "10", "101", "11"};
  std::vector<BitString> keys;
  for (const auto& r : raw) keys.push_back(BitString::from_binary(r));
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = 0; j < keys.size(); ++j) {
      int want = raw[i] < raw[j] ? -1 : (raw[i] == raw[j] ? 0 : 1);
      EXPECT_EQ(keys[i].compare(keys[j]), want) << raw[i] << " vs " << raw[j];
    }
}

TEST(BitString, PrefixRelation) {
  BitString a = BitString::from_binary("0101");
  BitString b = BitString::from_binary("01011");
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(BitString().is_prefix_of(a));
}

TEST(BitString, HashDistinguishesLengths) {
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  EXPECT_NE(a.std_hash(), b.std_hash());
}

TEST(Parallel, ParallelForCoversRange) {
  std::vector<int> hits(10'000, 0);
  ptrie::core::parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(Parallel, ReduceMatchesSerial) {
  std::size_t n = 100'000;
  auto f = [](std::size_t i) { return static_cast<std::uint64_t>(i) * 7 + 3; };
  std::uint64_t got = ptrie::core::parallel_reduce<std::uint64_t>(
      0, n, 0, f, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < n; ++i) want += f(i);
  EXPECT_EQ(got, want);
}

TEST(Parallel, ScanExclusive) {
  std::vector<std::uint64_t> v = {3, 1, 4, 1, 5};
  std::uint64_t total = ptrie::core::exclusive_scan(v);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(42);
  Rng child = c.fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (c() != child());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Zipf, UniformWhenThetaZero) {
  ptrie::core::ZipfSampler z(100, 0.0);
  Rng rng(8);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20'000; ++i) counts[z.sample(rng)]++;
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mn, 100);   // ~200 expected
  EXPECT_LT(*mx, 400);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ptrie::core::ZipfSampler z(1000, 1.2);
  Rng rng(9);
  std::size_t low = 0, n = 20'000;
  for (std::size_t i = 0; i < n; ++i)
    if (z.sample(rng) < 10) ++low;
  // With theta=1.2 the top-10 ranks should dominate.
  EXPECT_GT(low, n / 2);
}

TEST(Zipf, LargeNApproximationInBounds) {
  ptrie::core::ZipfSampler z(1u << 20, 0.99);
  Rng rng(10);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 1u << 20);
}

}  // namespace
