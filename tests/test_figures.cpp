// Executable reproductions of the paper's worked examples (Figures 1-5).
// Each test constructs exactly the structures a figure depicts and
// asserts the behavior the figure illustrates.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hpp"
#include "fasttrie/second_layer.hpp"
#include "hash/poly_hash.hpp"
#include "pim/system.hpp"
#include "pimtrie/block.hpp"
#include "pimtrie/decompose.hpp"
#include "pimtrie/meta_index.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "trie/query_trie.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::trie::kNil;
using ptrie::trie::NodeId;
using ptrie::trie::Patricia;

// ---------------------------------------------------------------------
// Figure 1: the data trie stores {000010000, 00001101, 00001111,
// 101000, 1010110, 1010111} (paths: "00001" then "0000"/"101"/"111";
// "101" then "0" -> values, etc.) and the query strings are
// {00001001, 101001, 101011}. We build both tries and check:
//  * compressed nodes 1,3,4 of the query trie match compressed data
//    nodes; node 2 matches a *hidden* data node;
//  * the common prefix "10100" ends on hidden nodes in both tries.
//
// We realize the figure's data trie from its edge labels:
//   root -"00001"-> A (-"0000"->, -"101"->, ... values), root -"101"-> ...
// Concretely we store keys spelling those paths.
// ---------------------------------------------------------------------
struct Figure1 {
  std::vector<BitString> data_keys = {
      BitString::from_binary("000010000"),  // "00001" + "0000"
      BitString::from_binary("00001101"),   // "00001" + "101"
      BitString::from_binary("1010"),       // "101" + "0" (value on node)
      BitString::from_binary("101011"),     // "101" + "0" + "11"
      BitString::from_binary("10111"),      // "101" + "11"
  };
  std::vector<BitString> query_keys = {
      BitString::from_binary("00001001"),
      BitString::from_binary("101001"),
      BitString::from_binary("101011"),
  };
};

TEST(Figure1, MatchedTrieDepths) {
  Figure1 fig;
  Patricia data;
  for (std::size_t i = 0; i < fig.data_keys.size(); ++i) data.insert(fig.data_keys[i], i);

  // Query 1: "00001001" runs "00001" (compressed node) then "00" into
  // the "0000" edge => LCP 7, ending on a hidden data node (the paper's
  // dashed-arrow case).
  auto [l1, p1] = data.lcp(fig.query_keys[0]);
  EXPECT_EQ(l1, 7u);
  EXPECT_FALSE(p1.is_compressed());

  // Query 2: "101001" shares "1010" (compressed, has value) + "0"? The
  // data continues "10101..."/"10111"; "10100" diverges after "1010".
  auto [l2, p2] = data.lcp(fig.query_keys[1]);
  EXPECT_EQ(l2, 4u);

  // Query 3: exact stored key.
  auto [l3, p3] = data.lcp(fig.query_keys[2]);
  EXPECT_EQ(l3, 6u);
  EXPECT_TRUE(p3.is_compressed());
  EXPECT_EQ(data.node(p3.node).value, 3u);
}

TEST(Figure1, QueryTrieSharesPrefixes) {
  Figure1 fig;
  ptrie::hash::PolyHasher h(1);
  auto qt = ptrie::trie::build_query_trie(fig.query_keys, h);
  // 3 distinct keys; the two "1010.." queries share a branch node.
  EXPECT_EQ(qt.trie.key_count(), 3u);
  auto [lcp01, pos01] = qt.trie.lcp(BitString::from_binary("10100"));
  EXPECT_EQ(lcp01, 5u);  // "10100" is a common prefix inside the query trie
}

TEST(Figure1, EndToEndOnPim) {
  Figure1 fig;
  ptrie::pim::System sys(4, 1);
  ptrie::pimtrie::Config cfg;
  cfg.seed = 2;
  ptrie::pimtrie::PimTrie pt(sys, cfg);
  std::vector<std::uint64_t> vals(fig.data_keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
  pt.build(fig.data_keys, vals);
  auto got = pt.batch_lcp(fig.query_keys);
  Patricia ref;
  for (std::size_t i = 0; i < fig.data_keys.size(); ++i) ref.insert(fig.data_keys[i], i);
  for (std::size_t i = 0; i < fig.query_keys.size(); ++i)
    EXPECT_EQ(got[i], ref.lcp(fig.query_keys[i]).first);
}

// ---------------------------------------------------------------------
// Figure 2: the data trie decomposed into blocks distributed across
// modules, with block roots replicated as mirror leaf stubs in the
// parent block; critical vs non-critical query blocks.
// ---------------------------------------------------------------------
TEST(Figure2, BlocksHaveMirrorStubsAndRootMetadata) {
  Figure1 fig;
  ptrie::pim::System sys(4, 3);
  ptrie::pimtrie::Config cfg;
  cfg.seed = 4;
  cfg.kb = 16;  // force several small blocks
  ptrie::pimtrie::PimTrie pt(sys, cfg);
  std::vector<std::uint64_t> vals(fig.data_keys.size(), 0);
  pt.build(fig.data_keys, vals);
  EXPECT_GE(pt.block_count(), 2u);  // actually decomposed
  EXPECT_EQ(pt.debug_check(), "");
  // All keys reachable by stitching mirrors (the decomposition is lossless).
  auto all = pt.debug_collect();
  EXPECT_EQ(all.size(), fig.data_keys.size());
}

// ---------------------------------------------------------------------
// Figure 3 + 4: meta-tree decomposition into meta-blocks / recursive
// cut-node decomposition (Lemma 4.5: the cut node's removal leaves
// components of at most (n+1)/2 nodes; Lemma 4.6: bounded height).
// We reproduce Figure 4's parameters: K_MB = 7, K_SMB = 3.
// ---------------------------------------------------------------------
TEST(Figure4, CutNodeHalvesFigureTree) {
  // Figure 3's 12-node meta-tree:
  //   1 -> {2, 3}; 2 -> {4}; 4 -> {8, 12}; 3 -> {5, 6, 7};
  //   5 -> {9}; 6 -> {10, 11}  (nodes 0-indexed here as 0..11)
  std::vector<std::vector<int>> children(12);
  auto link = [&](int p, int c) { children[p].push_back(c); };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(3, 7);
  link(3, 11);
  link(2, 4);
  link(2, 5);
  link(2, 6);
  link(4, 8);
  link(5, 9);
  link(5, 10);

  // Lemma 4.5 brute-force check: some node's out-edge removal leaves
  // every component <= (12+1)/2 = 6.
  auto subtree_size = [&](int v, auto&& self) -> int {
    int n = 1;
    for (int c : children[v]) n += self(c, self);
    return n;
  };
  bool exists = false;
  for (int v = 0; v < 12 && !exists; ++v) {
    int biggest = 12 - (subtree_size(v, subtree_size) - 1) * 0;
    // components: each child subtree, and the rest (12 - sum(child subtrees)).
    int sum = 0, mx = 0;
    for (int c : children[v]) {
      int s = subtree_size(c, subtree_size);
      sum += s;
      mx = std::max(mx, s);
    }
    int rest = 12 - sum;
    mx = std::max(mx, rest);
    (void)biggest;
    if (mx <= (12 + 1) / 2) exists = true;
  }
  EXPECT_TRUE(exists);
}

// Shared checker for the Lemma 4.5 / 4.6 guarantees of a decomposition:
// exact partition, per-piece size bound, connectivity (a node's tree
// parent is in the same piece unless the node roots its piece, in which
// case the parent lives in the parent piece), and piece-tree height.
void check_decomposition(const std::vector<std::vector<int>>& children, int root,
                         std::size_t bound,
                         const ptrie::pimtrie::internal::TreePieces& ps) {
  int n = static_cast<int>(children.size());
  std::vector<int> parent(n, -1);
  for (int v = 0; v < n; ++v)
    for (int c : children[v]) parent[c] = v;

  // Exact partition, consistent with piece_of.
  ASSERT_EQ(ps.piece_of.size(), children.size());
  std::vector<int> seen(n, 0);
  for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
    const auto& p = ps.pieces[pi];
    EXPECT_LE(p.nodes.size(), bound) << "piece " << pi << " over bound";
    EXPECT_FALSE(p.nodes.empty());
    EXPECT_EQ(p.nodes.front(), p.root) << "piece root must lead its node list";
    for (int v : p.nodes) {
      ++seen[v];
      EXPECT_EQ(ps.piece_of[v], static_cast<int>(pi));
    }
  }
  for (int v = 0; v < n; ++v) EXPECT_EQ(seen[v], 1) << "node " << v;

  // Connectivity and parent-piece links.
  for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
    const auto& p = ps.pieces[pi];
    for (int v : p.nodes) {
      if (v == p.root) {
        if (v == root) {
          EXPECT_EQ(p.parent_piece, -1);
        } else {
          ASSERT_GE(parent[v], 0);
          EXPECT_EQ(p.parent_piece, ps.piece_of[parent[v]]);
        }
      } else {
        ASSERT_GE(parent[v], 0) << "non-root piece node without tree parent";
        EXPECT_EQ(ps.piece_of[parent[v]], static_cast<int>(pi))
            << "piece " << pi << " is not connected at node " << v;
      }
    }
  }

  // Lemma 4.6: piece-tree height is O(log n). The recursive cut-node
  // construction halves the remaining component each level, so height
  // <= 2*ceil(log2 n) + 2 is a safe envelope.
  int height = 0;
  for (std::size_t pi = 0; pi < ps.pieces.size(); ++pi) {
    int d = 0, at = static_cast<int>(pi);
    while (ps.pieces[at].parent_piece != -1) {
      at = ps.pieces[at].parent_piece;
      ++d;
      ASSERT_LE(d, n) << "parent_piece cycle";
    }
    height = std::max(height, d);
  }
  int lg = 0;
  while ((1 << lg) < n) ++lg;
  EXPECT_LE(height, 2 * lg + 2) << "piece tree too tall for n=" << n;
}

// Figure 4's worked example: the Figure 3 meta-tree cut with K_SMB = 3.
// Golden structural facts asserted directly on decompose_tree's output.
TEST(Figure4, DecomposeFigureTreeGolden) {
  std::vector<std::vector<int>> children(12);
  auto link = [&](int p, int c) { children[p].push_back(c); };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(3, 7);
  link(3, 11);
  link(2, 4);
  link(2, 5);
  link(2, 6);
  link(4, 8);
  link(5, 9);
  link(5, 10);

  auto ps = ptrie::pimtrie::internal::decompose_tree(children, 0, /*bound=*/3);
  check_decomposition(children, 0, 3, ps);
  // 12 nodes, pieces of <= 3: at least ceil(12/3) = 4 pieces, and the
  // cut-node recursion never needs more than one piece per node.
  EXPECT_GE(ps.pieces.size(), 4u);
  EXPECT_LE(ps.pieces.size(), 12u);
  // The root's piece roots the piece tree.
  EXPECT_EQ(ps.pieces[ps.piece_of[0]].parent_piece, -1);
}

// Property sweep backing the same lemmas: random trees, several bounds.
TEST(Figure4, DecomposeRandomTrees) {
  ptrie::core::Rng rng(404);
  for (int n : {1, 2, 5, 13, 40, 100}) {
    std::vector<std::vector<int>> children(n);
    for (int v = 1; v < n; ++v)
      children[rng.below(static_cast<std::uint64_t>(v))].push_back(v);
    for (std::size_t bound : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      auto ps = ptrie::pimtrie::internal::decompose_tree(children, 0, bound);
      check_decomposition(children, 0, bound, ps);
    }
  }
}

TEST(Figure4, PieceBoundAndHeight) {
  // Random trees of several sizes: decompose with K_SMB = 3 (Figure 4's
  // lower bound) and check size bounds + O(log n) piece-tree height.
  // Uses the library's decomposition through PimTrie's public behavior:
  // we emulate by building a caterpillar data trie whose meta-tree is a
  // path, with tiny piece bound, and checking the structure is healthy
  // and matching still works (the height bound shows up as bounded
  // phase-B rounds).
  ptrie::pim::System sys(4, 5);
  ptrie::pimtrie::Config cfg;
  cfg.seed = 6;
  cfg.kb = 16;
  cfg.kmb = 7;   // Figure 4's K_MB
  cfg.ksmb = 3;  // Figure 4's K_SMB
  ptrie::pimtrie::PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::caterpillar_keys(48, 7, 7);
  std::vector<std::uint64_t> vals(keys.size(), 0);
  pt.build(keys, vals);
  EXPECT_EQ(pt.debug_check(), "");
  sys.metrics().reset();
  auto got = pt.batch_lcp({keys[40]});
  EXPECT_EQ(got[0], keys[40].size());
  // Rounds bounded: phase B descends a piece tree of height O(log K_MB)
  // per meta-block; generous cap.
  EXPECT_LE(sys.metrics().io_rounds(), 24u);
}

// ---------------------------------------------------------------------
// Figure 5: pivot-based HashMatching through the two-layer index (the
// exact w=3 example is covered in test_fasttrie's SecondLayer.Figure5
// Example; here we exercise the same mechanism end-to-end inside
// hash_match with w = 8 and a root whose S_rem is reachable only via
// the direct-child resolution).
// ---------------------------------------------------------------------
TEST(Figure5, PivotMatchingFindsRootViaChild) {
  using namespace ptrie::pimtrie;
  ptrie::hash::PolyHasher hasher(8);
  unsigned w = 8;

  // Data-side roots: R at depth 10 ("on path"), K at depth 13 = R + "011"
  // diverging from the query after bit 10. Query contains R's string as
  // a prefix; the second layer may return K first; verification then
  // resolves K -> parent R.
  BitString query = BitString::from_binary("1011001110" "11011");  // 15 bits
  BitString r_str = query.prefix(10);
  BitString k_str = r_str;
  k_str.append(BitString::from_binary("011"));  // diverges at bit 10 ('0' vs query '1')

  auto entry_of = [&](const BitString& s, BlockId id, BlockId parent) {
    MetaEntry e;
    e.block = id;
    e.module = 0;
    e.root_hash = hasher.hash(s);
    e.root_depth = s.size();
    e.parent_block = parent;
    std::uint64_t pivot = (s.size() / w) * w;
    e.spre_hash = hasher.hash_prefix(s, pivot);
    e.srem = s.suffix(pivot);
    std::uint64_t tail = std::min<std::uint64_t>(w, s.size());
    e.slast = s.suffix(s.size() - tail);
    return e;
  };
  MetaEntry r = entry_of(r_str, 1, kNone);
  MetaEntry k = entry_of(k_str, 2, 1);

  TwoLayerIndex idx(w);
  idx.insert(hasher, r, {IndexPayload::kEntry, 0});
  idx.insert(hasher, k, {IndexPayload::kEntry, 1});

  ptrie::trie::QueryTrie qt = ptrie::trie::build_query_trie({query}, hasher);
  QueryPiece piece;
  piece.root_depth = 0;
  piece.root_hash = hasher.empty();
  piece.root_pivot_hash = hasher.empty();
  piece.trie = qt.trie.extract(qt.trie.root(), {});

  HashMatchStats stats;
  auto ms = hash_match(
      piece, idx, hasher, w,
      [&](IndexPayload pl) -> const MetaEntry* { return pl.idx == 0 ? &r : &k; },
      [&](BlockId b) -> const MetaEntry* { return b == 1 ? &r : (b == 2 ? &k : nullptr); },
      &stats, nullptr);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].entry->block, 1u);        // resolved to R
  EXPECT_EQ(ms[0].point.abs_depth, 10u);
  EXPECT_GE(stats.verifications, 1u);
}

// Figure 5's two-layer lookup in isolation: roots sharing one S_pre
// pivot land in the same first-layer bucket; the second layer resolves
// a query window to the stored S_rem with the longest agreement ("the
// root or one of its direct children"), and erasure re-exposes the
// shorter sibling.
TEST(Figure5, TwoLayerGoldenLookup) {
  using namespace ptrie::pimtrie;
  ptrie::hash::PolyHasher hasher(5);
  const unsigned w = 8;

  BitString spre = BitString::from_binary("10110011");  // one full chunk
  auto entry_of = [&](const std::string& rem_bits, BlockId id) {
    BitString s = spre;
    s.append(BitString::from_binary(rem_bits));
    MetaEntry e;
    e.block = id;
    e.module = 0;
    e.root_hash = hasher.hash(s);
    e.root_depth = s.size();
    e.parent_block = kNone;
    e.spre_hash = hasher.hash_prefix(s, spre.size());
    e.srem = s.suffix(spre.size());
    e.slast = s.suffix(s.size() - std::min<std::size_t>(w, s.size()));
    return e;
  };
  MetaEntry shallow = entry_of("01", 1);   // S_rem = "01"
  MetaEntry deep = entry_of("0110", 2);    // S_rem = "0110" (child chunkwise)

  TwoLayerIndex idx(w);
  idx.insert(hasher, shallow, {IndexPayload::kEntry, 0});
  idx.insert(hasher, deep, {IndexPayload::kEntry, 1});
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.debug_check(), "");

  std::uint64_t fp = hasher.fingerprint(shallow.spre_hash);
  ASSERT_TRUE(idx.has_pivot(fp));
  EXPECT_FALSE(idx.has_pivot(fp ^ 1));

  // Window continuing past both roots: the deeper S_rem wins.
  auto got = idx.locate(fp, BitString::from_binary("011010"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first.to_binary(), "0110");
  EXPECT_EQ(IndexPayload::decode(got->second).idx, 1u);

  // Window ending exactly at the shallow root.
  got = idx.locate(fp, BitString::from_binary("01"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first.to_binary(), "01");
  EXPECT_EQ(IndexPayload::decode(got->second).idx, 0u);

  // After erasing the deeper root the same long window resolves to the
  // shallow sibling again.
  idx.erase(hasher, deep);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.debug_check(), "");
  got = idx.locate(fp, BitString::from_binary("011010"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first.to_binary(), "01");

  // Unknown pivot: no first-layer bucket, no answer.
  EXPECT_FALSE(idx.locate(fp ^ 1, BitString::from_binary("01")).has_value());
}

}  // namespace
