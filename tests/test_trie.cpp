// Unit tests: Patricia trie, batch construction (Algorithm 1 pieces),
// treefix, Euler-tour partitioning, serialization, extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/rng.hpp"
#include "trie/euler_partition.hpp"
#include "trie/patricia.hpp"
#include "trie/query_trie.hpp"
#include "trie/treefix.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::core::Rng;
using ptrie::trie::kNil;
using ptrie::trie::NodeId;
using ptrie::trie::Patricia;

std::vector<BitString> gen_keys(int scenario, std::size_t n, std::uint64_t seed) {
  switch (scenario) {
    case 0: return ptrie::workload::uniform_keys(n, 64, seed);
    case 1: return ptrie::workload::variable_length_keys(n, 8, 128, seed);
    case 2: return ptrie::workload::shared_prefix_keys(n, 100, 32, seed);
    default: return ptrie::workload::caterpillar_keys(n, 5, seed);
  }
}

// Reference model: sorted map of binary strings.
class PatriciaModel : public ::testing::TestWithParam<int> {};

TEST_P(PatriciaModel, InsertFindEraseAgainstMap) {
  auto keys = gen_keys(GetParam(), 150, 77);
  Patricia t;
  std::map<std::string, std::uint64_t> model;
  Rng rng(78);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    t.insert(keys[i], i);
    model[keys[i].to_binary()] = i;
  }
  EXPECT_EQ(t.key_count(), model.size());
  for (const auto& k : keys) {
    auto v = t.find(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, model.at(k.to_binary()));
  }
  // Erase a random half; re-check everything.
  std::vector<std::size_t> idx(keys.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < idx.size() / 2; ++i) {
    std::size_t pick = rng.below(idx.size());
    const BitString& k = keys[idx[pick]];
    bool was = model.erase(k.to_binary()) > 0;
    EXPECT_EQ(t.erase(k), was);
  }
  EXPECT_EQ(t.key_count(), model.size());
  for (const auto& k : keys) {
    bool want = model.contains(k.to_binary());
    EXPECT_EQ(t.find(k).has_value(), want);
  }
}

TEST_P(PatriciaModel, LcpAgainstBruteForce) {
  auto keys = gen_keys(GetParam(), 120, 79);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  auto queries = ptrie::workload::miss_queries(60, 64, 80);
  for (const auto& k : keys) queries.push_back(k);
  for (const auto& q : queries) {
    std::size_t want = 0;
    for (const auto& k : keys) want = std::max(want, q.lcp(k));
    EXPECT_EQ(t.lcp(q).first, want) << q.to_binary();
  }
}

TEST_P(PatriciaModel, BuildSortedEqualsIncremental) {
  auto keys = gen_keys(GetParam(), 200, 81);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::size_t> lcp(keys.size(), 0);
  for (std::size_t i = 1; i < keys.size(); ++i) lcp[i] = keys[i - 1].lcp(keys[i]);
  Patricia bulk = Patricia::build_sorted(keys, lcp);
  Patricia incr;
  for (std::size_t i = 0; i < keys.size(); ++i) incr.insert(keys[i], i);
  EXPECT_EQ(bulk.key_count(), incr.key_count());
  EXPECT_EQ(bulk.node_count(), incr.node_count());
  EXPECT_EQ(bulk.edge_bits_total(), incr.edge_bits_total());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto v = bulk.find(keys[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST_P(PatriciaModel, SerializeRoundTrip) {
  auto keys = gen_keys(GetParam(), 100, 82);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  std::vector<std::uint64_t> wire;
  t.serialize(wire);
  std::size_t used = 0;
  Patricia u = Patricia::deserialize(wire.data(), wire.size(), &used);
  EXPECT_EQ(used, wire.size());
  EXPECT_EQ(u.key_count(), t.key_count());
  EXPECT_EQ(u.node_count(), t.node_count());
  EXPECT_EQ(u.edge_bits_total(), t.edge_bits_total());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto v = u.find(keys[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST_P(PatriciaModel, SubtreeMatchesBruteForce) {
  auto keys = gen_keys(GetParam(), 120, 83);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  std::vector<BitString> prefixes{BitString(), keys[0].prefix(3),
                                  keys[5].prefix(keys[5].size() / 2), keys[9]};
  for (const auto& p : prefixes) {
    auto got = t.subtree(p);
    std::vector<std::pair<BitString, std::uint64_t>> want;
    for (std::size_t i = 0; i < keys.size(); ++i)
      if (p.is_prefix_of(keys[i])) want.emplace_back(keys[i], i);
    std::sort(want.begin(), want.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first);
      EXPECT_EQ(got[i].second, want[i].second);
    }
  }
}

std::string shape_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"uniform", "varlen", "shared", "caterpillar"};
  return names[info.param];
}
INSTANTIATE_TEST_SUITE_P(Shapes, PatriciaModel, ::testing::Values(0, 1, 2, 3), shape_name);

TEST(Patricia, PathCompressionInvariant) {
  // After arbitrary inserts/erases, every non-root valueless node has 2
  // children.
  auto keys = ptrie::workload::variable_length_keys(200, 8, 96, 84);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  for (std::size_t i = 0; i < keys.size(); i += 2) t.erase(keys[i]);
  t.preorder([&](NodeId id) {
    const auto& n = t.node(id);
    if (id == t.root() || n.has_value) return;
    int nc = (n.child[0] != kNil) + (n.child[1] != kNil);
    EXPECT_EQ(nc, 2) << "node " << id;
  });
}

TEST(Patricia, HiddenNodePositionFromLcp) {
  Patricia t;
  t.insert(BitString::from_binary("00001101"), 1);
  t.insert(BitString::from_binary("00001001"), 2);
  // Query diverging mid-edge: "000010" shares 5 bits then the trie has a
  // node at depth 5 (branch); "00000..." ends mid first edge.
  auto [len1, pos1] = t.lcp(BitString::from_binary("000011"));
  EXPECT_EQ(len1, 6u);
  auto [len2, pos2] = t.lcp(BitString::from_binary("000001"));
  EXPECT_EQ(len2, 4u);
  EXPECT_FALSE(pos2.is_compressed());  // ends on a hidden node mid-edge
}

TEST(Patricia, SplitEdgePreservesContent) {
  Patricia t;
  BitString k = BitString::from_binary("110011001100");
  t.insert(k, 9);
  NodeId leaf = kNil;
  t.preorder([&](NodeId id) {
    if (t.node(id).has_value) leaf = id;
  });
  std::size_t before = t.edge_bits_total();
  NodeId mid = t.split_edge(leaf, 5);
  EXPECT_EQ(t.edge_bits_total(), before);
  EXPECT_EQ(t.node(mid).depth, 7u);
  EXPECT_EQ(t.find(k), std::optional<std::uint64_t>(9));
  EXPECT_EQ(t.node_string(mid).to_binary(), "1100110");
}

TEST(Patricia, ExtractWithCutsMakesMirrors) {
  Patricia t;
  for (const char* s : {"0000", "0001", "0010", "0100", "1000", "1100"})
    t.insert(BitString::from_binary(s), 1);
  // Find the node for prefix "00" and cut there.
  auto [len, pos] = t.lcp(BitString::from_binary("00"));
  ASSERT_EQ(len, 2u);
  ASSERT_TRUE(pos.is_compressed());
  Patricia piece = t.extract(t.root(), {pos.node});
  // The piece must contain the cut node as a leaf stub with its origin.
  bool found_stub = false;
  piece.preorder([&](NodeId id) {
    const auto& n = piece.node(id);
    if (n.origin == pos.node && id != piece.root()) {
      found_stub = true;
      EXPECT_EQ(n.child[0], kNil);
      EXPECT_EQ(n.child[1], kNil);
    }
  });
  EXPECT_TRUE(found_stub);
  // Keys not under the cut remain.
  EXPECT_TRUE(piece.find(BitString::from_binary("0100")).has_value());
  EXPECT_FALSE(piece.find(BitString::from_binary("0000")).has_value());
}

TEST(Treefix, RootfixDepths) {
  auto keys = ptrie::workload::uniform_keys(50, 32, 85);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  auto depth = ptrie::trie::rootfix<std::uint64_t>(
      t, 0, [&](std::uint64_t acc, NodeId id) { return acc + t.node(id).edge.size(); });
  t.preorder([&](NodeId id) { EXPECT_EQ(depth[id], t.node(id).depth); });
}

TEST(Treefix, LeaffixSubtreeCounts) {
  auto keys = ptrie::workload::uniform_keys(80, 32, 86);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  auto counts = ptrie::trie::subtree_node_counts(t);
  EXPECT_EQ(counts[t.root()], t.node_count());
  // Leaves count exactly 1.
  for (NodeId leaf : t.leaves()) EXPECT_EQ(counts[leaf], 1u);
}

TEST(EulerPartition, BlocksRespectBound) {
  auto keys = ptrie::workload::variable_length_keys(300, 16, 120, 87);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  auto weight = [&](NodeId id) -> std::uint64_t { return 1 + t.node(id).edge.word_count(); };
  std::uint64_t bound = 12;
  auto part = ptrie::trie::euler_partition(t, weight, bound);
  // Every node is owned by a marked ancestor-or-self.
  t.preorder([&](NodeId id) {
    NodeId owner = part.owner[id];
    ASSERT_NE(owner, kNil);
    // owner is an ancestor-or-self:
    NodeId cur = id;
    bool ok = false;
    while (cur != kNil) {
      if (cur == owner) {
        ok = true;
        break;
      }
      cur = t.node(cur).parent;
    }
    EXPECT_TRUE(ok);
  });
  // Per-owner weight = O(bound): a block accrues at most `bound` between
  // base marks plus the boundary node's own weight and LCA additions.
  std::map<NodeId, std::uint64_t> block_weight;
  std::uint64_t max_node_weight = 0;
  t.preorder([&](NodeId id) {
    block_weight[part.owner[id]] += weight(id);
    max_node_weight = std::max(max_node_weight, weight(id));
  });
  for (auto [root, w] : block_weight)
    EXPECT_LE(w, 2 * bound + 2 * max_node_weight) << "block at " << root;
  // Block count is within a constant of total/bound.
  std::uint64_t total = 0;
  t.preorder([&](NodeId id) { total += weight(id); });
  EXPECT_LE(part.roots.size(), 3 * (total / bound) + 2);
}

TEST(EulerPartition, LcaIndexAgainstNaive) {
  auto keys = ptrie::workload::uniform_keys(60, 40, 88);
  Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  ptrie::trie::LcaIndex lca(t);
  auto naive = [&](NodeId a, NodeId b) {
    std::vector<NodeId> pa;
    for (NodeId c = a; c != kNil; c = t.node(c).parent) pa.push_back(c);
    for (NodeId c = b; c != kNil; c = t.node(c).parent)
      if (std::find(pa.begin(), pa.end(), c) != pa.end()) return c;
    return t.root();
  };
  auto ids = t.preorder_ids();
  Rng rng(89);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId a = ids[rng.below(ids.size())], b = ids[rng.below(ids.size())];
    EXPECT_EQ(lca.lca(a, b), naive(a, b));
  }
}

TEST(QueryTrie, BuildDedupsAndMaps) {
  std::vector<BitString> batch = {
      BitString::from_binary("0101"), BitString::from_binary("0100"),
      BitString::from_binary("0101"),  // duplicate
      BitString::from_binary("11"),   BitString::from_binary("0")};
  ptrie::hash::PolyHasher h(1);
  auto qt = ptrie::trie::build_query_trie(batch, h);
  EXPECT_EQ(qt.sorted_keys.size(), 4u);  // deduped
  EXPECT_EQ(qt.trie.key_count(), 4u);
  // Input index -> slot -> node representing exactly that key.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    NodeId n = qt.key_node[qt.sorted_slot_of_input[i]];
    ASSERT_NE(n, kNil);
    EXPECT_EQ(qt.trie.node_string(n), batch[i]);
  }
}

TEST(QueryTrie, NodeHashesMatchDirect) {
  auto keys = ptrie::workload::variable_length_keys(80, 8, 100, 90);
  ptrie::hash::PolyHasher h(2);
  auto qt = ptrie::trie::build_query_trie(keys, h);
  qt.trie.preorder([&](NodeId id) {
    EXPECT_EQ(qt.node_hash[id], h.hash(qt.trie.node_string(id)));
  });
}

TEST(QueryTrie, AdjacentLcpCorrect) {
  auto keys = ptrie::workload::uniform_keys(100, 48, 91);
  std::sort(keys.begin(), keys.end());
  auto lcp = ptrie::trie::adjacent_lcp(keys);
  EXPECT_EQ(lcp[0], 0u);
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_EQ(lcp[i], keys[i - 1].lcp(keys[i]));
}

}  // namespace
