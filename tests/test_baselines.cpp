// Unit tests: the three Table 1 / Section 3.2 baselines, validated
// against reference structures plus their characteristic round counts.

#include <gtest/gtest.h>

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "baselines/range_partitioned.hpp"
#include "pim/system.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::pim::System;

TEST(DistRadix, LcpChunkGranularity) {
  System sys(4, 11);
  ptrie::baselines::DistributedRadixTree t(sys, /*span=*/4);
  auto keys = ptrie::workload::uniform_keys(120, 64, 51);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);

  ptrie::trie::Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], i);

  auto got = t.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], 64u);

  // Misses: the baseline resolves LCP at span granularity; it must agree
  // with the reference rounded down to a multiple of the span, and never
  // overshoot the true LCP by a full chunk.
  auto misses = ptrie::workload::miss_queries(60, 64, 52);
  auto got2 = t.batch_lcp(misses);
  for (std::size_t i = 0; i < misses.size(); ++i) {
    std::size_t want = ref.lcp(misses[i]).first;
    EXPECT_LE(got2[i], want);
    EXPECT_GE(got2[i] + 4, (want / 4) * 4);
  }
}

TEST(DistRadix, RoundsScaleWithKeyLength) {
  System sys(4, 12);
  ptrie::baselines::DistributedRadixTree t(sys, 4);
  auto keys = ptrie::workload::uniform_keys(50, 64, 53);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);
  sys.metrics().reset();
  t.batch_lcp(keys);
  // Pointer chasing: ~l/s rounds (64/4 = 16), plus O(1).
  EXPECT_GE(sys.metrics().io_rounds(), 64u / 4u);
  EXPECT_LE(sys.metrics().io_rounds(), 64u / 4u + 3u);
}

TEST(DistRadix, InsertThenQuery) {
  System sys(4, 13);
  ptrie::baselines::DistributedRadixTree t(sys, 4);
  auto keys = ptrie::workload::uniform_keys(60, 32, 54);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build({keys.begin(), keys.begin() + 30}, {vals.begin(), vals.begin() + 30});
  t.batch_insert({keys.begin() + 30, keys.end()}, {vals.begin() + 30, vals.end()});
  auto got = t.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], 32u) << i;
}

TEST(DistRadix, SubtreeMatchesReference) {
  System sys(4, 14);
  ptrie::baselines::DistributedRadixTree t(sys, 4);
  auto keys = ptrie::workload::uniform_keys(100, 32, 55);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
  t.build(keys, vals);
  ptrie::trie::Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], i);

  // Prefix lengths multiple of the span (the baseline's anchor points).
  for (std::size_t plen : {0u, 4u, 8u}) {
    BitString p = keys[7].prefix(plen);
    auto got = t.batch_subtree({p});
    auto want = ref.subtree(p);
    ASSERT_EQ(got[0].size(), want.size()) << "plen=" << plen;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[0][k].first, want[k].first);
    }
  }
}

TEST(DistXFast, LcpMatchesBruteForce) {
  System sys(4, 15);
  ptrie::baselines::DistributedXFastTrie t(sys, 64);
  auto keys = ptrie::workload::uniform_u64(200, 61);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);

  auto brute_lcp = [&](std::uint64_t q) {
    unsigned best = 0;
    for (auto k : keys) {
      std::uint64_t d = k ^ q;
      unsigned l = d == 0 ? 64 : static_cast<unsigned>(__builtin_clzll(d));
      best = std::max(best, l);
    }
    return best;
  };
  auto queries = ptrie::workload::uniform_u64(100, 62);
  for (auto k : keys) queries.push_back(k);
  auto got = t.batch_lcp(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) EXPECT_EQ(got[i], brute_lcp(queries[i]));
}

TEST(DistXFast, LogLRounds) {
  System sys(8, 16);
  ptrie::baselines::DistributedXFastTrie t(sys, 64);
  auto keys = ptrie::workload::uniform_u64(300, 63);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);
  sys.metrics().reset();
  t.batch_lcp(keys);
  // Binary search over 64 levels: <= 7 rounds (log2 64 + 1).
  EXPECT_LE(sys.metrics().io_rounds(), 7u);
}

TEST(DistXFast, SpaceIsPerLevel) {
  System sys(4, 17);
  ptrie::baselines::DistributedXFastTrie t(sys, 64);
  auto keys = ptrie::workload::uniform_u64(500, 64);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);
  // O(n*l): at least ~n*l/2 distinct prefixes for uniform keys.
  EXPECT_GT(t.space_words(), keys.size() * 20);
}

TEST(DistXFast, SubtreeByPrefix) {
  System sys(4, 18);
  ptrie::baselines::DistributedXFastTrie t(sys, 64);
  std::vector<std::uint64_t> keys = {0x1111000000000000ull, 0x1111FFFFFFFFFFFFull,
                                     0x2222000000000000ull};
  std::vector<std::uint64_t> vals = {1, 2, 3};
  t.build(keys, vals);
  auto got = t.batch_subtree({{0x1111ull, 16}});
  ASSERT_EQ(got[0].size(), 2u);
  EXPECT_EQ(got[0][0].first, keys[0]);
  EXPECT_EQ(got[0][1].first, keys[1]);
}

TEST(RangePartitioned, LcpAndSubtree) {
  System sys(8, 19);
  ptrie::baselines::RangePartitionedIndex t(sys);
  auto keys = ptrie::workload::uniform_keys(300, 64, 65);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
  t.build(keys, vals);

  auto got = t.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], 64u);

  ptrie::trie::Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], i);
  BitString p = keys[11].prefix(9);
  auto sub = t.batch_subtree({p});
  auto want = ref.subtree(p);
  ASSERT_EQ(sub[0].size(), want.size());
}

TEST(RangePartitioned, SingleRoundPointOps) {
  System sys(8, 20);
  ptrie::baselines::RangePartitionedIndex t(sys);
  auto keys = ptrie::workload::uniform_keys(200, 64, 66);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);
  sys.metrics().reset();
  t.batch_lcp(keys);
  EXPECT_EQ(sys.metrics().io_rounds(), 1u);
}

// ---- Delete-path edge cases across the baselines --------------------

TEST(DistRadix, EraseDupAbsentAndReinsert) {
  System sys(4, 70);
  ptrie::baselines::DistributedRadixTree t(sys, /*span=*/4);
  auto keys = ptrie::workload::uniform_keys(40, 48, 71);
  std::vector<std::uint64_t> vals(keys.size(), 5);
  t.build(keys, vals);

  // Duplicates in one erase batch count once; absent keys are no-ops.
  std::vector<BitString> batch{keys[0], keys[0], keys[1], keys[1], keys[1]};
  for (auto& m : ptrie::workload::miss_queries(10, 48, 72)) batch.push_back(m);
  t.batch_erase(batch);
  EXPECT_EQ(t.key_count(), keys.size() - 2);
  EXPECT_EQ(t.debug_check(), "");

  // Repeat-delete of already-deleted keys: still a no-op.
  t.batch_erase({keys[0], keys[1]});
  EXPECT_EQ(t.key_count(), keys.size() - 2);

  // Delete to empty, then re-insert into the retained chain skeleton.
  t.batch_erase(keys);
  EXPECT_EQ(t.key_count(), 0u);
  EXPECT_EQ(t.debug_check(), "");
  t.batch_insert(keys, vals);
  EXPECT_EQ(t.key_count(), keys.size());
  EXPECT_EQ(t.debug_check(), "");
  auto got = t.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], 48u) << i;
}

TEST(DistXFast, EraseDupAbsentAndReinsert) {
  System sys(4, 80);
  ptrie::baselines::DistributedXFastTrie t(sys, /*width=*/32);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 50; ++i) keys.push_back(i * 0x04030201u % (1ull << 32));
  std::vector<std::uint64_t> vals(keys.size(), 9);
  t.build(keys, vals);

  t.batch_erase({keys[0], keys[0], keys[1], 0xDEADBEEFull % (1ull << 32), keys[1]});
  EXPECT_EQ(t.key_count(), keys.size() - 2);
  EXPECT_EQ(t.debug_check(), "");

  t.batch_erase(keys);
  EXPECT_EQ(t.key_count(), 0u);
  EXPECT_EQ(t.debug_check(), "");
  t.batch_insert(keys, vals);
  EXPECT_EQ(t.key_count(), keys.size());
  EXPECT_EQ(t.debug_check(), "");
}

TEST(RangePartitioned, EraseDupAbsentAndReinsert) {
  System sys(4, 90);
  ptrie::baselines::RangePartitionedIndex t(sys);
  auto keys = ptrie::workload::uniform_keys(60, 40, 91);
  std::vector<std::uint64_t> vals(keys.size(), 3);
  t.build(keys, vals);

  std::vector<BitString> batch{keys[2], keys[2], keys[3]};
  for (auto& m : ptrie::workload::miss_queries(10, 40, 92)) batch.push_back(m);
  t.batch_erase(batch);
  EXPECT_EQ(t.key_count(), keys.size() - 2);
  EXPECT_EQ(t.debug_check(), "");

  t.batch_erase(keys);
  EXPECT_EQ(t.key_count(), 0u);
  EXPECT_EQ(t.debug_check(), "");
  t.batch_insert(keys, vals);
  EXPECT_EQ(t.key_count(), keys.size());
  EXPECT_EQ(t.debug_check(), "");
  auto st = t.batch_subtree({BitString()});
  EXPECT_EQ(st[0].size(), keys.size());
}

TEST(RangePartitioned, SkewSerializesOneModule) {
  System sys(8, 21);
  ptrie::baselines::RangePartitionedIndex t(sys);
  auto keys = ptrie::workload::uniform_keys(400, 64, 67);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  t.build(keys, vals);
  sys.metrics().reset();
  // Hot-spot batch: all queries in one key range.
  auto hot = ptrie::workload::hot_spot_queries(keys, 400, 68);
  t.batch_lcp(hot);
  // Section 3.2's failure mode: max/mean per-module communication ~ P.
  EXPECT_GT(sys.metrics().comm_imbalance(), 4.0);
}

}  // namespace
