// Fault-injection layer tests: plan text round-trip and rejection, CRC64
// reply checksums, recoverable corrupt/drop faults (byte-identical
// results after retry), retry exhaustion (FaultError with coordinates,
// module state intact), stall word accounting, noise determinism, and
// the PTRIE_CHECK / PTRIE_FAULTS plumbing.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/check.hpp"
#include "hash/crc64.hpp"
#include "pim/fault.hpp"
#include "pim/system.hpp"

namespace {

using ptrie::pim::Buffer;
using ptrie::pim::FaultError;
using ptrie::pim::FaultKind;
using ptrie::pim::FaultPlan;
using ptrie::pim::FaultSpec;
using ptrie::pim::System;

// One deterministic round touching every module: module m receives
// {m + 1} and replies {m + 11, 3 * (m + 1), seq}.
std::vector<Buffer> probe_round(System& sys, std::uint64_t seq) {
  std::vector<Buffer> to(sys.p());
  for (std::size_t m = 0; m < sys.p(); ++m) to[m] = {m + 1};
  return sys.round("probe", std::move(to), [seq](ptrie::pim::Module& m, Buffer in) {
    return Buffer{in[0] + 10, in[0] * 3, seq};
  });
}

TEST(FaultPlan, ParseRoundTrip) {
  const char* plans[] = {
      "drop@module=2",
      "corrupt@round=5,module=2,count=2",
      "stall@phase=Serve/LCP,words=5000",
      "drop@count=always;retries=4;backoff=128",
      "noise@seed=7,rate=0.01,count=2",
      "corrupt@bit=129;noise@seed=1,rate=0.5;retries=9",
  };
  for (const char* text : plans) {
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(text, &plan, &err)) << text << ": " << err;
    EXPECT_TRUE(plan.enabled()) << text;
    // serialize() must re-parse to an identical serialization (fixpoint).
    std::string once = plan.serialize();
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(once, &again, &err)) << once << ": " << err;
    EXPECT_EQ(once, again.serialize()) << text;
  }
}

TEST(FaultPlan, ParseRejectsMalformed) {
  const char* bad[] = {
      "",                       // empty
      "explode@module=1",       // unknown kind
      "drop@module=",           // missing value
      "drop@modul=1",           // unknown key
      "noise@rate=nope",        // non-numeric
      "retries=",               // missing scalar value
      "drop@module=1;;",        // empty directive
  };
  for (const char* text : bad) {
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(text, &plan, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(FaultPlan, CountGatesPerAttempt) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kDrop;
  s.count = 2;
  plan.specs.push_back(s);
  std::uint64_t mag = 0;
  EXPECT_EQ(plan.match(0, "", 0, 0, &mag), FaultKind::kDrop);
  EXPECT_EQ(plan.match(0, "", 0, 1, &mag), FaultKind::kDrop);
  EXPECT_EQ(plan.match(0, "", 0, 2, &mag), std::nullopt);  // retry 2 is clean
}

TEST(FaultPlan, SelectorsRestrictCoordinates) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kStall;
  s.round = 7;
  s.module = 3;
  s.phase = "Serve/";
  s.magnitude = 99;
  plan.specs.push_back(s);
  std::uint64_t mag = 0;
  EXPECT_EQ(plan.match(7, "Serve/LCP", 3, 0, &mag), FaultKind::kStall);
  EXPECT_EQ(mag, 99u);
  EXPECT_EQ(plan.match(8, "Serve/LCP", 3, 0, &mag), std::nullopt);   // wrong round
  EXPECT_EQ(plan.match(7, "Serve/LCP", 2, 0, &mag), std::nullopt);   // wrong module
  EXPECT_EQ(plan.match(7, "Maint/GC", 3, 0, &mag), std::nullopt);    // wrong phase
}

TEST(FaultCrc, SingleBitFlipsAlwaysDetected) {
  Buffer reply = {0x0123456789ABCDEFull, 0, ~0ull, 42};
  std::uint64_t crc = ptrie::hash::crc64_words(reply.data(), reply.size());
  for (std::size_t bit = 0; bit < 64 * reply.size(); ++bit) {
    Buffer mut = reply;
    mut[bit / 64] ^= 1ull << (bit % 64);
    EXPECT_NE(ptrie::hash::crc64_words(mut.data(), mut.size()), crc) << "bit " << bit;
  }
  // Empty replies checksum too (frame is just the CRC word).
  EXPECT_EQ(ptrie::hash::crc64_words(nullptr, 0), ptrie::hash::crc64_words(nullptr, 0));
}

TEST(FaultSystem, CorruptRecoversByteIdentical) {
  System clean(4, 7);
  System faulty(4, 7);
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kCorrupt;
  s.count = 1;  // first attempt corrupted, retry delivers
  plan.specs.push_back(s);
  faulty.set_fault_plan(plan);

  for (std::uint64_t r = 0; r < 3; ++r)
    EXPECT_EQ(probe_round(faulty, r), probe_round(clean, r)) << "round " << r;

  const auto& st = faulty.fault_stats();
  EXPECT_EQ(st.corruptions, 3 * 4u);     // every module, every round
  EXPECT_EQ(st.crc_mismatches, 3 * 4u);  // every flip caught
  EXPECT_EQ(st.retries, 3 * 4u);         // one retry per corruption
  EXPECT_EQ(st.failed_rounds, 0u);
  // Retries are charged: the faulty run must cost strictly more words.
  EXPECT_GT(faulty.metrics().total_comm_words(), clean.metrics().total_comm_words());
}

TEST(FaultSystem, DropForeverExhaustsRetriesAndThrows) {
  System sys(4, 7);
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kDrop;
  s.module = 1;
  s.count = FaultSpec::kForever;
  plan.specs.push_back(s);
  plan.max_retries = 2;
  sys.set_fault_plan(plan);

  try {
    probe_round(sys, 0);
    FAIL() << "round with an unrecoverable drop must throw FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.module(), 1u);
    EXPECT_EQ(e.round(), 0u);
    EXPECT_EQ(e.label(), "probe");
    EXPECT_NE(std::string(e.what()).find("module 1"), std::string::npos);
  }
  const auto& st = sys.fault_stats();
  EXPECT_EQ(st.failed_rounds, 1u);
  EXPECT_EQ(st.drops, 3u);    // initial attempt + 2 retries
  EXPECT_EQ(st.retries, 2u);  // budget respected
  // Metrics stay consistent: the failed round is still recorded.
  EXPECT_EQ(sys.metrics().io_rounds(), 1u);
  EXPECT_EQ(sys.round_seq(), 1u);
  // Only module 1 faults; clearing the plan restores clean delivery.
  sys.clear_fault_plan();
  EXPECT_EQ(sys.fault_plan(), nullptr);
  EXPECT_EQ(probe_round(sys, 1)[2], (Buffer{13, 9, 1}));
}

TEST(FaultSystem, StallChargesOnlyTargetModule) {
  System clean(4, 7);
  System faulty(4, 7);
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kStall;
  s.module = 2;
  s.magnitude = 500;
  s.count = FaultSpec::kForever;
  plan.specs.push_back(s);
  faulty.set_fault_plan(plan);

  EXPECT_EQ(probe_round(faulty, 0), probe_round(clean, 0));  // data intact
  auto fw = faulty.metrics().snapshot().module_words;
  auto cw = clean.metrics().snapshot().module_words;
  ASSERT_EQ(fw.size(), cw.size());
  for (std::size_t m = 0; m < fw.size(); ++m)
    EXPECT_EQ(fw[m], cw[m] + (m == 2 ? 500u : 0u)) << "module " << m;
  EXPECT_EQ(faulty.fault_stats().stalls, 1u);
  EXPECT_EQ(faulty.fault_stats().retries, 0u);  // stalls deliver, no retry
}

TEST(FaultSystem, NoiseIsDeterministic) {
  FaultPlan plan;
  plan.noise_seed = 42;
  plan.noise_rate = 0.5;
  plan.noise_count = 2;  // recoverable within the default retry budget
  auto run = [&] {
    System sys(8, 7);
    System clean(8, 7);
    sys.set_fault_plan(plan);
    for (std::uint64_t r = 0; r < 10; ++r)
      EXPECT_EQ(probe_round(sys, r), probe_round(clean, r));
    return sys.fault_stats();
  };
  auto a = run();
  auto b = run();
  EXPECT_GT(a.drops + a.corruptions, 0u);  // rate 0.5 over 80 deliveries
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.corruptions, b.corruptions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_rounds, 0u);
}

TEST(FaultSystem, InstallsFromEnv) {
  ASSERT_EQ(setenv("PTRIE_FAULTS", "stall@module=0,words=10", 1), 0);
  {
    System sys(2, 7);
    ASSERT_NE(sys.fault_plan(), nullptr);
    EXPECT_EQ(sys.fault_plan()->specs.size(), 1u);
  }
  ASSERT_EQ(setenv("PTRIE_FAULTS", "not a plan", 1), 0);
  EXPECT_THROW(System(2, 7), ptrie::CheckError);
  ASSERT_EQ(unsetenv("PTRIE_FAULTS"), 0);
  System sys(2, 7);
  EXPECT_EQ(sys.fault_plan(), nullptr);
}

TEST(CheckMacro, ThrowsWithContext) {
  EXPECT_NO_THROW(PTRIE_CHECK(1 + 1 == 2, "fine"));
  try {
    PTRIE_CHECK(false, "round %d module %s", 7, "m3");
    FAIL() << "PTRIE_CHECK(false) must throw";
  } catch (const ptrie::CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("round 7 module m3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_fault.cpp"), std::string::npos) << msg;
  }
  // Structured message parsing errors surface as CheckError in release
  // builds too (System's p >= 1 precondition goes through the same path).
  EXPECT_THROW(System(0, 7), ptrie::CheckError);
}

}  // namespace
