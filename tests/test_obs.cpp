// Observability subsystem: phase stack semantics, per-phase rollups that
// reconcile exactly with the Metrics aggregates, distribution summaries,
// counter thread-safety under the pool, trace-JSON well-formedness
// (parsed back with the in-tree parser), and byte-identical traces across
// worker counts (the WorkerSweep determinism contract).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics_window.hpp"
#include "obs/phase.hpp"
#include "obs/spans.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::ThreadPool;
using ptrie::pim::Buffer;
using ptrie::pim::System;
namespace obs = ptrie::obs;
namespace json = ptrie::obs::json;

Buffer echo_kernel(ptrie::pim::Module& m, Buffer in) {
  m.work(in.size());
  return in;
}

// Runs a tiny phased schedule against `sys`: two rounds under A/B, one
// under A, one unphased.
void run_phased_schedule(System& sys) {
  {
    obs::Phase a("A");
    {
      obs::Phase b("B");
      for (int r = 0; r < 2; ++r) {
        std::vector<Buffer> to(sys.p());
        for (std::size_t m = 0; m < sys.p(); ++m) to[m].assign(m + 1, 7);
        sys.round("ab", std::move(to), echo_kernel);
      }
    }
    std::vector<Buffer> to(sys.p());
    to[0].assign(4, 9);
    sys.round("a_only", std::move(to), echo_kernel);
  }
  sys.broadcast_round("plain", Buffer{1, 2, 3}, echo_kernel);
}

TEST(Phase, NestingAndPathRestore) {
  EXPECT_EQ(obs::Phase::current_path(), "");
  {
    obs::Phase outer("Insert");
    EXPECT_EQ(obs::Phase::current_path(), "Insert");
    {
      obs::Phase inner("PushPull");
      EXPECT_EQ(obs::Phase::current_path(), "Insert/PushPull");
      EXPECT_EQ(obs::Phase::depth(), 2u);
    }
    EXPECT_EQ(obs::Phase::current_path(), "Insert");
  }
  EXPECT_EQ(obs::Phase::current_path(), "");
  EXPECT_EQ(obs::Phase::depth(), 0u);
}

TEST(Phase, IsThreadLocal) {
  obs::Phase outer("Main");
  std::string other;
  std::thread t([&] { other = obs::Phase::current_path(); });
  t.join();
  EXPECT_EQ(other, "");  // a fresh thread starts unphased
  EXPECT_EQ(obs::Phase::current_path(), "Main");
}

TEST(Phase, RoundsCarryPhasePathsAndRollupsReconcile) {
  System sys(4);
  sys.metrics().set_round_detail(true);
  run_phased_schedule(sys);

  const auto& rounds = sys.metrics().rounds();
  ASSERT_EQ(rounds.size(), 4u);
  EXPECT_EQ(rounds[0].phase, "A/B");
  EXPECT_EQ(rounds[1].phase, "A/B");
  EXPECT_EQ(rounds[2].phase, "A");
  EXPECT_EQ(rounds[3].phase, "");

  auto rollups = sys.metrics().phase_rollups();
  ASSERT_EQ(rollups.size(), 3u);  // first-seen order: A/B, A, ""
  EXPECT_EQ(rollups[0].phase, "A/B");
  EXPECT_EQ(rollups[0].rounds, 2u);
  EXPECT_EQ(rollups[1].phase, "A");
  EXPECT_EQ(rollups[2].phase, "");

  // Exact reconciliation: phase totals sum to the global aggregates.
  std::size_t rounds_sum = 0;
  std::uint64_t words_sum = 0, io_sum = 0, work_sum = 0, pim_sum = 0;
  for (const auto& r : rollups) {
    rounds_sum += r.rounds;
    words_sum += r.words;
    io_sum += r.io_time;
    work_sum += r.work;
    pim_sum += r.pim_time;
  }
  EXPECT_EQ(rounds_sum, sys.metrics().io_rounds());
  EXPECT_EQ(words_sum, sys.metrics().total_comm_words());
  EXPECT_EQ(io_sum, sys.metrics().io_time());
  EXPECT_EQ(work_sum, sys.metrics().total_pim_work());
  EXPECT_EQ(pim_sum, sys.metrics().pim_time());

  // With detail on, the skewed A/B rounds report their true imbalance:
  // module m gets (m+1) words in and out, so max/mean = 2*4/(2*2.5).
  EXPECT_NEAR(rollups[0].words_dist.imbalance, 8.0 / 5.0, 1e-9);
}

TEST(Stats, PercentilesNearestRank) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 1; i <= 100; ++i) v.push_back(i);
  obs::DistSummary s = obs::summarize(v);
  EXPECT_EQ(s.p50, 50u);
  EXPECT_EQ(s.p95, 95u);
  EXPECT_EQ(s.p99, 99u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.imbalance, 100.0 / 50.5, 1e-9);

  obs::DistSummary one = obs::summarize({42});
  EXPECT_EQ(one.p50, 42u);
  EXPECT_EQ(one.p99, 42u);
  EXPECT_EQ(one.max, 42u);
  EXPECT_NEAR(one.imbalance, 1.0, 1e-9);

  obs::DistSummary empty = obs::summarize({});
  EXPECT_EQ(empty.max, 0u);
  EXPECT_NEAR(empty.imbalance, 1.0, 1e-9);
}

TEST(Counters, RegistryAccumulatesAndResets) {
  obs::Counter& c = obs::counter("test_obs/basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::counter("test_obs/basic"), &c);
  bool found = false;
  for (const auto& [name, value] : obs::counters_snapshot())
    if (name == "test_obs/basic") {
      found = true;
      EXPECT_EQ(value, 42u);
    }
  EXPECT_TRUE(found);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Counters, ThreadSafeUnderPool) {
  ThreadPool::instance().set_workers(8);
  obs::Counter& c = obs::counter("test_obs/pool");
  c.reset();
  constexpr std::size_t kN = 200'000;
  // Mix cached-reference adds with registry-lookup adds from pool workers.
  ptrie::core::parallel_for(0, kN, [&](std::size_t i) {
    if (i % 2 == 0)
      c.add();
    else
      obs::counter("test_obs/pool").add();
  });
  EXPECT_EQ(c.get(), kN);
  ThreadPool::instance().set_workers(1);
}

// Concurrent first-use registration: threads race to create (and then
// bump) an overlapping set of fresh counters while another thread
// snapshots the registry the whole time. Exercises the registry's
// insert-vs-iterate locking; TSan-clean is the contract (the WorkerSweep
// prefix keeps it inside the sanitizer CI's gtest filter).
TEST(WorkerSweepCounters, ConcurrentFirstUseRegistrationAndSnapshot) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) (void)obs::counters_snapshot();
  });
  std::vector<std::thread> bumpers;
  for (int t = 0; t < kThreads; ++t)
    bumpers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::counter("test_obs/race/" + std::to_string((t + i) % kThreads)).add();
    });
  for (auto& th : bumpers) th.join();
  done.store(true);
  snapshotter.join();
  std::uint64_t sum = 0;
  for (const auto& [name, value] : obs::counters_snapshot())
    if (name.rfind("test_obs/race/", 0) == 0) sum += value;
  EXPECT_EQ(sum, std::uint64_t(kThreads) * kPerThread);
}

obs::RequestSample sample(std::uint32_t tenant, const char* op, std::uint64_t key_hash,
                          double total_us) {
  obs::RequestSample s;
  s.tenant = tenant;
  s.op = op;
  s.queue_us = total_us * 0.4;
  s.coalesce_us = total_us * 0.1;
  s.prep_us = total_us * 0.2;
  s.exec_us = total_us * 0.3;
  s.total_us = total_us;
  s.words = 10;
  s.batch_size = 4;
  s.key_hash = key_hash;
  return s;
}

TEST(MetricsWindow, AggregatesAndRendersJsonLines) {
  obs::MetricsWindow w;
  // Descending arrival order: the rendered max must still be the true
  // max (the percentile/max rendering must not depend on insert order).
  for (int i = 0; i < 3; ++i) w.record(sample(1, "get", 100 + i, 120 - 10 * i));
  for (int i = 0; i < 2; ++i) w.record(sample(2, "lcp", 200, 50));

  obs::WindowGauges g;
  g.in_flight = 2;
  g.queue_depth = 1;
  std::string out;
  auto alerts = w.roll(1000.0, g, &out);
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(w.windows(), 1u);

  std::size_t windows = 0, tenants = 0;
  for (std::size_t pos = 0; pos < out.size();) {
    std::size_t nl = out.find('\n', pos);
    std::string line = out.substr(pos, nl - pos);
    pos = nl + 1;
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(line, v, err)) << err << "\n" << line;
    const std::string type = v.find("type")->as_string();
    if (type == "window") {
      ++windows;
      EXPECT_EQ(v.find("window")->as_int(), 0);
      EXPECT_EQ(v.find("ops")->as_int(), 5);
      EXPECT_EQ(v.find("in_flight")->as_int(), 2);
      EXPECT_EQ(v.find("queue_depth")->as_int(), 1);
      EXPECT_EQ(v.find("alerts")->as_int(), 0);
    } else if (type == "tenant") {
      ++tenants;
      std::int64_t id = v.find("tenant")->as_int();
      const json::Value* lat = v.find("lat_us");
      ASSERT_NE(lat, nullptr);
      const json::Value* total = lat->find("total");
      ASSERT_NE(total, nullptr);
      EXPECT_LE(total->find("p50")->as_double(), total->find("p95")->as_double());
      EXPECT_LE(total->find("p95")->as_double(), total->find("p99")->as_double());
      EXPECT_LE(total->find("p99")->as_double(), total->find("max")->as_double());
      if (id == 1) EXPECT_NEAR(total->find("max")->as_double(), 120.0, 1e-6);
      // Every stage block must be internally ordered too (p99 <= max
      // regardless of sample arrival order).
      for (const char* st : {"queue", "coalesce", "prep", "exec"}) {
        const json::Value* sv = lat->find(st);
        ASSERT_NE(sv, nullptr);
        EXPECT_LE(sv->find("p99")->as_double(), sv->find("max")->as_double()) << st;
      }
      if (id == 1) {
        EXPECT_EQ(v.find("ops")->as_int(), 3);
        EXPECT_EQ(v.find("by_op")->find("get")->as_int(), 3);
        EXPECT_NEAR(v.find("words_per_op")->as_double(), 10.0, 1e-9);
        EXPECT_NEAR(v.find("mean_batch")->as_double(), 4.0, 1e-9);
        // Three distinct keys: the hottest carries 1/3 of the ops.
        EXPECT_NEAR(v.find("hot_frac")->as_double(), 1.0 / 3.0, 1e-3);
      } else {
        EXPECT_EQ(id, 2);
        EXPECT_EQ(v.find("ops")->as_int(), 2);
        EXPECT_NEAR(v.find("hot_frac")->as_double(), 1.0, 1e-9);
      }
    }
  }
  EXPECT_EQ(windows, 1u);
  EXPECT_EQ(tenants, 2u);

  // Rolling again with nothing recorded: the window swap really cleared
  // the aggregates — a global line with zero ops and no tenant lines.
  std::string out2;
  EXPECT_TRUE(w.roll(1500.0, obs::WindowGauges{}, &out2).empty());
  EXPECT_EQ(w.windows(), 2u);
  EXPECT_NE(out2.find("\"ops\":0"), std::string::npos);
  EXPECT_EQ(out2.find("\"type\":\"tenant\""), std::string::npos);
}

TEST(MetricsWindow, HotKeyAlertRespectsMinOps) {
  obs::AlertConfig cfg;
  cfg.hot_key_frac = 0.5;
  cfg.module_imbalance = 1e9;
  cfg.min_ops = 10;
  obs::MetricsWindow w(cfg);

  for (int i = 0; i < 9; ++i) w.record(sample(3, "get", 777, 10));
  EXPECT_TRUE(w.roll(100.0, obs::WindowGauges{}, nullptr).empty());  // below min_ops

  for (int i = 0; i < 10; ++i) w.record(sample(3, "get", 777, 10));
  auto alerts = w.roll(200.0, obs::WindowGauges{}, nullptr);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "hot_key");
  EXPECT_TRUE(alerts[0].has_tenant);
  EXPECT_EQ(alerts[0].tenant, 3u);
  EXPECT_NEAR(alerts[0].value, 1.0, 1e-9);
  EXPECT_EQ(alerts[0].hot_hash, 777u);
  EXPECT_EQ(alerts[0].window, 1u);
}

TEST(MetricsWindow, ModuleImbalanceAlert) {
  obs::AlertConfig cfg;
  cfg.hot_key_frac = 2.0;  // unreachable: isolate the imbalance detector
  cfg.module_imbalance = 2.0;
  cfg.min_ops = 1;
  obs::MetricsWindow w(cfg);

  w.record(sample(1, "lcp", 1, 10));
  w.record_batch_module_words({100, 0, 0, 0});  // max/mean = 4
  auto alerts = w.roll(100.0, obs::WindowGauges{}, nullptr);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "module_imbalance");
  EXPECT_FALSE(alerts[0].has_tenant);
  EXPECT_NEAR(alerts[0].value, 4.0, 1e-9);

  w.record(sample(1, "lcp", 1, 10));
  w.record_batch_module_words({25, 25, 25, 25});  // max/mean = 1
  EXPECT_TRUE(w.roll(200.0, obs::WindowGauges{}, nullptr).empty());
}

TEST(SpanSamplerTest, DeterministicSubsetWithSaneDensity) {
  obs::SpanSampler a(7, 4), b(7, 4);
  std::size_t hits = 0;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    EXPECT_EQ(a.sampled(s), b.sampled(s)) << s;
    if (a.sampled(s)) ++hits;
  }
  // 1-in-4 through a 64-bit mixer: loosely binomial around 1024.
  EXPECT_GT(hits, 4096u / 8);
  EXPECT_LT(hits, 4096u / 2);

  obs::SpanSampler all(123, 1);
  obs::SpanSampler dflt;  // default: sample everything
  for (std::uint64_t s = 0; s < 64; ++s) {
    EXPECT_TRUE(all.sampled(s));
    EXPECT_TRUE(dflt.sampled(s));
  }

  // Different seed, same rate: a different (but still deterministic) set.
  obs::SpanSampler other(8, 4);
  bool differs = false;
  for (std::uint64_t s = 0; s < 4096 && !differs; ++s)
    differs = a.sampled(s) != other.sampled(s);
  EXPECT_TRUE(differs);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace::instance().clear();
    obs::Trace::instance().force_enabled(true);
  }
  void TearDown() override {
    obs::Trace::instance().force_enabled(false);
    obs::Trace::instance().clear();
    ThreadPool::instance().set_workers(1);
  }
};

TEST_F(TraceTest, ChromeJsonParsesAndReconcilesWithMetrics) {
  System sys(4);
  run_phased_schedule(sys);
  ASSERT_EQ(obs::Trace::instance().round_count(), 4u);

  std::string text = obs::Trace::instance().chrome_json();
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::parse(text, root, error)) << error;
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Phase-track events (tid 0, ph X) reconcile exactly with Metrics.
  std::uint64_t words = 0, io = 0, pim = 0, work = 0;
  std::size_t round_events = 0, module_events = 0;
  for (const auto& ev : events->arr) {
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() != "X") continue;
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    if (ev.find("tid")->as_int() == 0) {
      ++round_events;
      words += static_cast<std::uint64_t>(args->find("total_words")->as_int());
      io += static_cast<std::uint64_t>(args->find("io_time")->as_int());
      pim += static_cast<std::uint64_t>(args->find("pim_time")->as_int());
      work += static_cast<std::uint64_t>(args->find("total_work")->as_int());
    } else {
      ++module_events;
    }
  }
  EXPECT_EQ(round_events, sys.metrics().io_rounds());
  EXPECT_EQ(words, sys.metrics().total_comm_words());
  EXPECT_EQ(io, sys.metrics().io_time());
  EXPECT_EQ(pim, sys.metrics().pim_time());
  EXPECT_EQ(work, sys.metrics().total_pim_work());
  // Touched modules only: 2*4 for the two ab rounds, 1 for a_only, 4 for
  // the broadcast.
  EXPECT_EQ(module_events, 13u);
}

TEST_F(TraceTest, CsvHasOneLinePerTouchedModule) {
  System sys(2);
  sys.broadcast_round("r", Buffer{5}, echo_kernel);
  std::ostringstream os;
  obs::Trace::instance().write_csv(os);
  std::string csv = os.str();
  // Header + one line per touched module.
  std::size_t lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(csv.find("system,round,label,phase"), std::string::npos);
  EXPECT_NE(csv.find(",r,"), std::string::npos);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  obs::Trace::instance().force_enabled(false);
  System sys(2);
  sys.broadcast_round("r", Buffer{5}, echo_kernel);
  EXPECT_EQ(obs::Trace::instance().round_count(), 0u);
  // And metrics round detail stays off -> RoundStats carry no vectors.
  EXPECT_FALSE(sys.metrics().round_detail());
  EXPECT_TRUE(sys.metrics().rounds().back().module_words.empty());
}

// The determinism contract extended to traces: identical bytes for any
// worker count. Runs a real PimTrie workload (build + LCP + insert),
// which exercises every instrumented phase.
class WorkerSweepTrace : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::instance().set_workers(1);
    obs::Trace::instance().force_enabled(false);
    obs::Trace::instance().clear();
  }
};

TEST_F(WorkerSweepTrace, TraceBytesInvariantAcrossWorkerCounts) {
  auto keys = ptrie::workload::shared_prefix_keys(250, 120, 64, 21);
  auto more = ptrie::workload::uniform_keys(120, 96, 22);
  std::vector<std::uint64_t> values(keys.size(), 1), more_values(more.size(), 2);

  auto run = [&]() -> std::string {
    obs::Trace::instance().clear();
    obs::Trace::instance().force_enabled(true);
    System sys(8);
    ptrie::pimtrie::PimTrie pt(sys, ptrie::pimtrie::Config{});
    pt.build(keys, values);
    pt.batch_lcp(more);
    pt.batch_insert(more, more_values);
    pt.batch_lcp(keys);
    std::string out = obs::Trace::instance().chrome_json();
    obs::Trace::instance().force_enabled(false);
    return out;
  };

  ThreadPool::instance().set_workers(1);
  std::string serial = run();
  EXPECT_GT(serial.size(), 1000u);
  for (std::size_t w : {2u, 8u}) {
    ThreadPool::instance().set_workers(w);
    std::string parallel = run();
    EXPECT_EQ(serial, parallel) << "trace bytes differ at workers=" << w;
  }
}

}  // namespace
