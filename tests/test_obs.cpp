// Observability subsystem: phase stack semantics, per-phase rollups that
// reconcile exactly with the Metrics aggregates, distribution summaries,
// counter thread-safety under the pool, trace-JSON well-formedness
// (parsed back with the in-tree parser), and byte-identical traces across
// worker counts (the WorkerSweep determinism contract).

#include <gtest/gtest.h>

#include <thread>

#include "core/parallel.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::ThreadPool;
using ptrie::pim::Buffer;
using ptrie::pim::System;
namespace obs = ptrie::obs;
namespace json = ptrie::obs::json;

Buffer echo_kernel(ptrie::pim::Module& m, Buffer in) {
  m.work(in.size());
  return in;
}

// Runs a tiny phased schedule against `sys`: two rounds under A/B, one
// under A, one unphased.
void run_phased_schedule(System& sys) {
  {
    obs::Phase a("A");
    {
      obs::Phase b("B");
      for (int r = 0; r < 2; ++r) {
        std::vector<Buffer> to(sys.p());
        for (std::size_t m = 0; m < sys.p(); ++m) to[m].assign(m + 1, 7);
        sys.round("ab", std::move(to), echo_kernel);
      }
    }
    std::vector<Buffer> to(sys.p());
    to[0].assign(4, 9);
    sys.round("a_only", std::move(to), echo_kernel);
  }
  sys.broadcast_round("plain", Buffer{1, 2, 3}, echo_kernel);
}

TEST(Phase, NestingAndPathRestore) {
  EXPECT_EQ(obs::Phase::current_path(), "");
  {
    obs::Phase outer("Insert");
    EXPECT_EQ(obs::Phase::current_path(), "Insert");
    {
      obs::Phase inner("PushPull");
      EXPECT_EQ(obs::Phase::current_path(), "Insert/PushPull");
      EXPECT_EQ(obs::Phase::depth(), 2u);
    }
    EXPECT_EQ(obs::Phase::current_path(), "Insert");
  }
  EXPECT_EQ(obs::Phase::current_path(), "");
  EXPECT_EQ(obs::Phase::depth(), 0u);
}

TEST(Phase, IsThreadLocal) {
  obs::Phase outer("Main");
  std::string other;
  std::thread t([&] { other = obs::Phase::current_path(); });
  t.join();
  EXPECT_EQ(other, "");  // a fresh thread starts unphased
  EXPECT_EQ(obs::Phase::current_path(), "Main");
}

TEST(Phase, RoundsCarryPhasePathsAndRollupsReconcile) {
  System sys(4);
  sys.metrics().set_round_detail(true);
  run_phased_schedule(sys);

  const auto& rounds = sys.metrics().rounds();
  ASSERT_EQ(rounds.size(), 4u);
  EXPECT_EQ(rounds[0].phase, "A/B");
  EXPECT_EQ(rounds[1].phase, "A/B");
  EXPECT_EQ(rounds[2].phase, "A");
  EXPECT_EQ(rounds[3].phase, "");

  auto rollups = sys.metrics().phase_rollups();
  ASSERT_EQ(rollups.size(), 3u);  // first-seen order: A/B, A, ""
  EXPECT_EQ(rollups[0].phase, "A/B");
  EXPECT_EQ(rollups[0].rounds, 2u);
  EXPECT_EQ(rollups[1].phase, "A");
  EXPECT_EQ(rollups[2].phase, "");

  // Exact reconciliation: phase totals sum to the global aggregates.
  std::size_t rounds_sum = 0;
  std::uint64_t words_sum = 0, io_sum = 0, work_sum = 0, pim_sum = 0;
  for (const auto& r : rollups) {
    rounds_sum += r.rounds;
    words_sum += r.words;
    io_sum += r.io_time;
    work_sum += r.work;
    pim_sum += r.pim_time;
  }
  EXPECT_EQ(rounds_sum, sys.metrics().io_rounds());
  EXPECT_EQ(words_sum, sys.metrics().total_comm_words());
  EXPECT_EQ(io_sum, sys.metrics().io_time());
  EXPECT_EQ(work_sum, sys.metrics().total_pim_work());
  EXPECT_EQ(pim_sum, sys.metrics().pim_time());

  // With detail on, the skewed A/B rounds report their true imbalance:
  // module m gets (m+1) words in and out, so max/mean = 2*4/(2*2.5).
  EXPECT_NEAR(rollups[0].words_dist.imbalance, 8.0 / 5.0, 1e-9);
}

TEST(Stats, PercentilesNearestRank) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 1; i <= 100; ++i) v.push_back(i);
  obs::DistSummary s = obs::summarize(v);
  EXPECT_EQ(s.p50, 50u);
  EXPECT_EQ(s.p95, 95u);
  EXPECT_EQ(s.p99, 99u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.imbalance, 100.0 / 50.5, 1e-9);

  obs::DistSummary one = obs::summarize({42});
  EXPECT_EQ(one.p50, 42u);
  EXPECT_EQ(one.p99, 42u);
  EXPECT_EQ(one.max, 42u);
  EXPECT_NEAR(one.imbalance, 1.0, 1e-9);

  obs::DistSummary empty = obs::summarize({});
  EXPECT_EQ(empty.max, 0u);
  EXPECT_NEAR(empty.imbalance, 1.0, 1e-9);
}

TEST(Counters, RegistryAccumulatesAndResets) {
  obs::Counter& c = obs::counter("test_obs/basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::counter("test_obs/basic"), &c);
  bool found = false;
  for (const auto& [name, value] : obs::counters_snapshot())
    if (name == "test_obs/basic") {
      found = true;
      EXPECT_EQ(value, 42u);
    }
  EXPECT_TRUE(found);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Counters, ThreadSafeUnderPool) {
  ThreadPool::instance().set_workers(8);
  obs::Counter& c = obs::counter("test_obs/pool");
  c.reset();
  constexpr std::size_t kN = 200'000;
  // Mix cached-reference adds with registry-lookup adds from pool workers.
  ptrie::core::parallel_for(0, kN, [&](std::size_t i) {
    if (i % 2 == 0)
      c.add();
    else
      obs::counter("test_obs/pool").add();
  });
  EXPECT_EQ(c.get(), kN);
  ThreadPool::instance().set_workers(1);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace::instance().clear();
    obs::Trace::instance().force_enabled(true);
  }
  void TearDown() override {
    obs::Trace::instance().force_enabled(false);
    obs::Trace::instance().clear();
    ThreadPool::instance().set_workers(1);
  }
};

TEST_F(TraceTest, ChromeJsonParsesAndReconcilesWithMetrics) {
  System sys(4);
  run_phased_schedule(sys);
  ASSERT_EQ(obs::Trace::instance().round_count(), 4u);

  std::string text = obs::Trace::instance().chrome_json();
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::parse(text, root, error)) << error;
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Phase-track events (tid 0, ph X) reconcile exactly with Metrics.
  std::uint64_t words = 0, io = 0, pim = 0, work = 0;
  std::size_t round_events = 0, module_events = 0;
  for (const auto& ev : events->arr) {
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() != "X") continue;
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    if (ev.find("tid")->as_int() == 0) {
      ++round_events;
      words += static_cast<std::uint64_t>(args->find("total_words")->as_int());
      io += static_cast<std::uint64_t>(args->find("io_time")->as_int());
      pim += static_cast<std::uint64_t>(args->find("pim_time")->as_int());
      work += static_cast<std::uint64_t>(args->find("total_work")->as_int());
    } else {
      ++module_events;
    }
  }
  EXPECT_EQ(round_events, sys.metrics().io_rounds());
  EXPECT_EQ(words, sys.metrics().total_comm_words());
  EXPECT_EQ(io, sys.metrics().io_time());
  EXPECT_EQ(pim, sys.metrics().pim_time());
  EXPECT_EQ(work, sys.metrics().total_pim_work());
  // Touched modules only: 2*4 for the two ab rounds, 1 for a_only, 4 for
  // the broadcast.
  EXPECT_EQ(module_events, 13u);
}

TEST_F(TraceTest, CsvHasOneLinePerTouchedModule) {
  System sys(2);
  sys.broadcast_round("r", Buffer{5}, echo_kernel);
  std::ostringstream os;
  obs::Trace::instance().write_csv(os);
  std::string csv = os.str();
  // Header + one line per touched module.
  std::size_t lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(csv.find("system,round,label,phase"), std::string::npos);
  EXPECT_NE(csv.find(",r,"), std::string::npos);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  obs::Trace::instance().force_enabled(false);
  System sys(2);
  sys.broadcast_round("r", Buffer{5}, echo_kernel);
  EXPECT_EQ(obs::Trace::instance().round_count(), 0u);
  // And metrics round detail stays off -> RoundStats carry no vectors.
  EXPECT_FALSE(sys.metrics().round_detail());
  EXPECT_TRUE(sys.metrics().rounds().back().module_words.empty());
}

// The determinism contract extended to traces: identical bytes for any
// worker count. Runs a real PimTrie workload (build + LCP + insert),
// which exercises every instrumented phase.
class WorkerSweepTrace : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::instance().set_workers(1);
    obs::Trace::instance().force_enabled(false);
    obs::Trace::instance().clear();
  }
};

TEST_F(WorkerSweepTrace, TraceBytesInvariantAcrossWorkerCounts) {
  auto keys = ptrie::workload::shared_prefix_keys(250, 120, 64, 21);
  auto more = ptrie::workload::uniform_keys(120, 96, 22);
  std::vector<std::uint64_t> values(keys.size(), 1), more_values(more.size(), 2);

  auto run = [&]() -> std::string {
    obs::Trace::instance().clear();
    obs::Trace::instance().force_enabled(true);
    System sys(8);
    ptrie::pimtrie::PimTrie pt(sys, ptrie::pimtrie::Config{});
    pt.build(keys, values);
    pt.batch_lcp(more);
    pt.batch_insert(more, more_values);
    pt.batch_lcp(keys);
    std::string out = obs::Trace::instance().chrome_json();
    obs::Trace::instance().force_enabled(false);
    return out;
  };

  ThreadPool::instance().set_workers(1);
  std::string serial = run();
  EXPECT_GT(serial.size(), 1000u);
  for (std::size_t w : {2u, 8u}) {
    ThreadPool::instance().set_workers(w);
    std::string parallel = run();
    EXPECT_EQ(serial, parallel) << "trace bytes differ at workers=" << w;
  }
}

}  // namespace
