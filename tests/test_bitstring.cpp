// Exhaustive small-size BitString enumeration: every operation compared
// against a std::string reference model for all strings up to 9 bits
// (covering word-boundary-free logic exhaustively) plus targeted
// word-boundary crossings, and PolyHasher pow_r beyond its cache.

#include <gtest/gtest.h>

#include <string>

#include "core/bitstring.hpp"
#include "hash/poly_hash.hpp"

namespace {

using ptrie::core::BitString;

std::string str_of(unsigned v, unsigned len) {
  std::string s(len, '0');
  for (unsigned i = 0; i < len; ++i)
    if ((v >> (len - 1 - i)) & 1) s[i] = '1';
  return s;
}

TEST(BitStringExhaustive, AllPairsUpTo6Bits) {
  std::vector<std::pair<BitString, std::string>> all;
  for (unsigned len = 0; len <= 6; ++len)
    for (unsigned v = 0; v < (1u << len); ++v) {
      std::string s = str_of(v, len);
      all.emplace_back(BitString::from_binary(s), s);
    }
  for (const auto& [a, sa] : all) {
    EXPECT_EQ(a.to_binary(), sa);
    for (const auto& [b, sb] : all) {
      // compare
      int want = sa < sb ? -1 : (sa == sb ? 0 : 1);
      EXPECT_EQ(a.compare(b), want) << sa << " vs " << sb;
      // lcp
      std::size_t l = 0;
      while (l < sa.size() && l < sb.size() && sa[l] == sb[l]) ++l;
      EXPECT_EQ(a.lcp(b), l);
      // prefix relation
      EXPECT_EQ(a.is_prefix_of(b), sb.compare(0, sa.size(), sa) == 0 && sa.size() <= sb.size());
      // append
      BitString c = a;
      c.append(b);
      EXPECT_EQ(c.to_binary(), sa + sb);
    }
  }
}

TEST(BitStringExhaustive, SubstrAllPositions9Bits) {
  for (unsigned v : {0u, 0x1FFu, 0xAAu, 0x155u, 0x93u}) {
    std::string s = str_of(v, 9);
    BitString b = BitString::from_binary(s);
    for (std::size_t from = 0; from <= 9; ++from)
      for (std::size_t len = 0; from + len <= 9; ++len) {
        EXPECT_EQ(b.substr(from, len).to_binary(), s.substr(from, len));
        if (len > 0)
          EXPECT_EQ(b.lcp_range(from, b, from), 9 - from);
      }
  }
}

TEST(BitStringExhaustive, WordBoundaryStraddles) {
  // Strings of length 63..130: append/substr across the 64-bit seams.
  for (std::size_t len : {63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s.push_back((i * 7 + 3) % 5 < 2 ? '1' : '0');
    BitString b = BitString::from_binary(s);
    EXPECT_EQ(b.to_binary(), s);
    for (std::size_t cut : {0u, 1u, 63u, 64u, 65u}) {
      if (cut > len) continue;
      BitString lo = b.prefix(cut), hi = b.suffix(cut);
      BitString re = lo;
      re.append(hi);
      EXPECT_EQ(re.to_binary(), s) << "len=" << len << " cut=" << cut;
    }
  }
}

TEST(PolyHashPow, BeyondCacheAgreesWithChain) {
  ptrie::hash::PolyHasher h(7);
  // pow_r(k) for k past the 512-entry cache must agree with repeated
  // multiplication, validated through hash algebra: hash of 0^k equals
  // r^k + 0 = ... use combine identities instead: h(A)·r^m relation.
  BitString zeros_a;
  for (int i = 0; i < 700; ++i) zeros_a.push_back(false);
  BitString zeros_b;
  for (int i = 0; i < 1300; ++i) zeros_b.push_back(false);
  BitString both = zeros_a;
  both.append(zeros_b);
  EXPECT_EQ(h.combine(h.hash(zeros_a), h.hash(zeros_b), zeros_b.size()), h.hash(both));
  // Direct: pow_r consistency across the cache edge.
  auto mulmod = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t P = (std::uint64_t{1} << 61) - 1;
    unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    std::uint64_t lo = static_cast<std::uint64_t>(t) & P;
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    std::uint64_t s = lo + hi;
    return s >= P ? s - P : s;
  };
  std::uint64_t acc = 1, r = h.pow_r(1);
  for (std::size_t k = 1; k <= 1100; ++k) {
    acc = mulmod(acc, r);
    if (k % 97 == 0 || k > 1090) EXPECT_EQ(h.pow_r(k), acc) << k;
  }
}

}  // namespace
