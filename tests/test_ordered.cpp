// Ordered operations (Predecessor / Successor / RangeScan / TopKByPrefix)
// across PimTrie, the three Table-1 baselines, and the serving front-end:
// property tests against the std::map-backed oracle over the four fuzz key
// profiles, the boundary matrix (empty structure, single key, lo > hi,
// limit = 0, absent prefix, min/max keys, empty-string queries), the cover
// decomposition the host-side composition rests on, and worker-count
// byte-identity of the ordered pipeline (WorkerSweepOrdered — picked up by
// the TSan WorkerSweep* filter in ci/check.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "baselines/range_partitioned.hpp"
#include "check/oracle.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "serve/server.hpp"
#include "trie/ordered_cover.hpp"
#include "workload/generators.hpp"

using namespace ptrie;
using core::BitString;
using core::Rng;

namespace {

// Key pools mirroring the fuzz profiles (src/check/schedule.cpp).
std::vector<BitString> profile_pool(const std::string& profile, std::uint64_t seed) {
  std::vector<BitString> pool;
  if (profile == "cluster") {
    for (auto& k : workload::shared_prefix_keys(96, 40, 24, seed)) pool.push_back(k);
    for (auto& k : workload::caterpillar_keys(24, 5, seed + 1)) pool.push_back(k);
  } else if (profile == "dup") {
    for (auto& k : workload::variable_length_keys(12, 8, 40, seed)) pool.push_back(k);
  } else {  // uniform, zipf
    for (auto& k : workload::uniform_keys(96, 48, seed)) pool.push_back(k);
    for (auto& k : workload::variable_length_keys(48, 4, 80, seed + 1)) pool.push_back(k);
  }
  return pool;
}

// Hit / near-miss / miss query mix over a pool. The zipf profile skews
// the pool picks so hot keys dominate.
std::vector<BitString> profile_queries(const std::vector<BitString>& pool,
                                       const std::string& profile, std::size_t n,
                                       std::uint64_t seed) {
  std::vector<BitString> zipf;
  if (profile == "zipf") zipf = workload::zipf_queries(pool, n, 0.99, seed);
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 5);
  std::vector<BitString> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t roll = rng.below(10);
    if (roll < 5) {
      out.push_back(zipf.empty() ? pool[rng.below(pool.size())] : zipf[i % zipf.size()]);
    } else if (roll < 8 && !pool.empty()) {
      // Near miss: flip one bit of a pool key.
      const BitString& base = pool[rng.below(pool.size())];
      if (base.empty()) {
        out.emplace_back();
        continue;
      }
      std::size_t j = rng.below(base.size());
      BitString q = base.prefix(j);
      q.push_back(!base.bit(j));
      q.append_slice(base, j + 1, base.size() - j - 1);
      out.push_back(q);
    } else {
      std::size_t len = rng.below(60);
      BitString q;
      for (std::size_t b = 0; b < len; ++b) q.push_back(rng.coin());
      out.push_back(q);
    }
  }
  return out;
}

using Neighbor = std::optional<std::pair<BitString, std::uint64_t>>;
using KvList = std::vector<std::pair<BitString, std::uint64_t>>;

void expect_neighbor_eq(const Neighbor& got, const Neighbor& want, const char* what,
                        const BitString& q) {
  ASSERT_EQ(got.has_value(), want.has_value())
      << what << "(" << q.to_binary() << ") presence";
  if (got) {
    EXPECT_EQ(got->first, want->first) << what << "(" << q.to_binary() << ") key";
    EXPECT_EQ(got->second, want->second) << what << "(" << q.to_binary() << ") value";
  }
}

// Runs the full differential sweep (pred/succ/range/topk vs the oracle)
// for one PimTrie + oracle pair.
void sweep_pimtrie(pimtrie::PimTrie& t, const check::Oracle& o,
                   const std::vector<BitString>& queries, std::uint64_t seed) {
  auto preds = t.batch_pred(queries);
  auto succs = t.batch_succ(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_neighbor_eq(preds[i], o.pred(queries[i]), "pred", queries[i]);
    expect_neighbor_eq(succs[i], o.succ(queries[i]), "succ", queries[i]);
  }

  Rng rng(seed);
  std::vector<BitString> los, his, prefixes;
  std::vector<std::size_t> limits, ks;
  for (std::size_t i = 0; i + 1 < queries.size(); i += 2) {
    los.push_back(queries[i]);
    his.push_back(queries[i + 1]);
    limits.push_back(i % 9 == 0 ? 0 : rng.below(40));
    prefixes.push_back(queries[i].prefix(rng.below(queries[i].size() + 1)));
    ks.push_back(i % 11 == 0 ? 0 : rng.below(20));
  }
  auto ranges = t.batch_range(los, his, limits);
  auto topks = t.batch_topk(prefixes, ks);
  for (std::size_t i = 0; i < los.size(); ++i) {
    EXPECT_EQ(ranges[i], o.range(los[i], his[i], limits[i]))
        << "range(" << los[i].to_binary() << ", " << his[i].to_binary() << ", "
        << limits[i] << ")";
    EXPECT_EQ(topks[i], o.topk(prefixes[i], ks[i]))
        << "topk(" << prefixes[i].to_binary() << ", " << ks[i] << ")";
  }
}

}  // namespace

// ---- PimTrie property tests over the four fuzz profiles --------------

TEST(OrderedPimTrie, MatchesOracleAcrossProfiles) {
  std::uint64_t seed = 31;
  for (const char* profile : {"uniform", "zipf", "cluster", "dup"}) {
    auto pool = profile_pool(profile, seed);
    Rng rng(seed * 7 + 3);
    pim::System sys(8, seed);
    pimtrie::Config cfg;
    cfg.seed = seed + 2;
    pimtrie::PimTrie t(sys, cfg);
    check::Oracle o;

    std::vector<BitString> keys(pool.begin(), pool.begin() + pool.size() * 2 / 3);
    std::vector<std::uint64_t> vals;
    for (std::size_t i = 0; i < keys.size(); ++i) vals.push_back(rng());
    t.build(keys, vals);
    for (std::size_t i = 0; i < keys.size(); ++i) o.insert(keys[i], vals[i]);

    auto queries = profile_queries(pool, profile, 60, seed + 9);
    sweep_pimtrie(t, o, queries, seed + 13);

    // Mutate: insert the held-out tail, erase a third of the originals,
    // and sweep again — ordered answers must track the live set.
    std::vector<BitString> extra(pool.begin() + pool.size() * 2 / 3, pool.end());
    std::vector<std::uint64_t> evals;
    for (std::size_t i = 0; i < extra.size(); ++i) evals.push_back(rng());
    t.batch_insert(extra, evals);
    for (std::size_t i = 0; i < extra.size(); ++i) o.insert(extra[i], evals[i]);
    std::vector<BitString> gone(keys.begin(), keys.begin() + keys.size() / 3);
    t.batch_erase(gone);
    for (const auto& k : gone) o.erase(k);

    sweep_pimtrie(t, o, queries, seed + 17);
    EXPECT_EQ(t.debug_check(), "") << profile;
    ++seed;
  }
}

// ---- Boundary matrix -------------------------------------------------

TEST(OrderedPimTrie, EmptyTrieAnswersEmpty) {
  pim::System sys(4, 3);
  pimtrie::Config cfg;
  cfg.seed = 1;
  pimtrie::PimTrie t(sys, cfg);
  BitString q = BitString::from_binary("1010");
  EXPECT_FALSE(t.batch_pred({q})[0].has_value());
  EXPECT_FALSE(t.batch_succ({q})[0].has_value());
  EXPECT_FALSE(t.batch_pred({BitString()})[0].has_value());
  EXPECT_TRUE(t.batch_range({BitString()}, {q}, {10})[0].empty());
  EXPECT_TRUE(t.batch_topk({BitString()}, {5})[0].empty());
}

TEST(OrderedPimTrie, BoundaryCases) {
  pim::System sys(4, 5);
  pimtrie::Config cfg;
  cfg.seed = 9;
  pimtrie::PimTrie t(sys, cfg);
  // min = "000", max = "111"; "" would sort below everything stored.
  std::vector<BitString> keys = {
      BitString::from_binary("000"), BitString::from_binary("0101"),
      BitString::from_binary("011"), BitString::from_binary("10"),
      BitString::from_binary("111")};
  std::vector<std::uint64_t> vals = {1, 2, 3, 4, 5};
  t.build(keys, vals);

  // pred of the minimum and succ of the maximum are absent (strict).
  EXPECT_FALSE(t.batch_pred({keys.front()})[0].has_value());
  EXPECT_FALSE(t.batch_succ({keys.back()})[0].has_value());
  // pred("") is absent — the empty string precedes every key; succ("")
  // is the stored minimum.
  EXPECT_FALSE(t.batch_pred({BitString()})[0].has_value());
  auto s = t.batch_succ({BitString()})[0];
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->first, keys.front());
  // Strictness on a stored key: neighbors, not the key itself.
  auto p1 = t.batch_pred({keys[2]})[0];
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->first, keys[1]);
  auto s1 = t.batch_succ({keys[2]})[0];
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->first, keys[3]);

  // lo > hi and limit = 0 are empty; a wide range with a generous limit
  // returns everything in order.
  EXPECT_TRUE(t.batch_range({keys[3]}, {keys[0]}, {10})[0].empty());
  EXPECT_TRUE(t.batch_range({keys[0]}, {keys[4]}, {0})[0].empty());
  auto all = t.batch_range({BitString()}, {BitString::from_binary("1111")}, {100})[0];
  ASSERT_EQ(all.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(all[i].first, keys[i]);
  // Inclusive bounds: [011, 10] returns exactly the two endpoint keys.
  auto mid = t.batch_range({keys[2]}, {keys[3]}, {10})[0];
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].first, keys[2]);
  EXPECT_EQ(mid[1].first, keys[3]);
  // Limit truncation keeps the smallest elements.
  auto lim = t.batch_range({BitString()}, {BitString::from_binary("1111")}, {2})[0];
  ASSERT_EQ(lim.size(), 2u);
  EXPECT_EQ(lim[0].first, keys[0]);
  EXPECT_EQ(lim[1].first, keys[1]);

  // Absent prefix and k truncation for topk.
  EXPECT_TRUE(t.batch_topk({BitString::from_binary("110")}, {8})[0].empty());
  auto tk = t.batch_topk({BitString::from_binary("0")}, {2})[0];
  ASSERT_EQ(tk.size(), 2u);
  EXPECT_EQ(tk[0].first, keys[0]);
  EXPECT_EQ(tk[1].first, keys[1]);
}

TEST(OrderedPimTrie, SingleKeyTrie) {
  pim::System sys(2, 7);
  pimtrie::Config cfg;
  cfg.seed = 3;
  pimtrie::PimTrie t(sys, cfg);
  BitString k = BitString::from_binary("0110");
  t.build({k}, {42});
  EXPECT_FALSE(t.batch_pred({k})[0].has_value());
  EXPECT_FALSE(t.batch_succ({k})[0].has_value());
  auto below = t.batch_pred({BitString::from_binary("1")})[0];
  ASSERT_TRUE(below.has_value());
  EXPECT_EQ(below->first, k);
  EXPECT_EQ(below->second, 42u);
  auto above = t.batch_succ({BitString::from_binary("0")})[0];
  ASSERT_TRUE(above.has_value());
  EXPECT_EQ(above->first, k);
  auto r = t.batch_range({k}, {k}, {5})[0];
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].first, k);
}

// ---- Cover decomposition (the unit the host compositions rest on) ----

TEST(OrderedCover, CandidatesAndRangeCoverReconstructOracle) {
  Rng rng(91);
  check::Oracle o;
  for (int i = 0; i < 150; ++i) {
    std::size_t len = rng.below(24);
    BitString k;
    for (std::size_t b = 0; b < len; ++b) k.push_back(rng.coin());
    o.insert(k, i);
  }
  auto piece_list = [&](const BitString& prefix, bool exact) {
    KvList out;
    if (exact) {
      if (auto v = o.find(prefix)) out.emplace_back(prefix, *v);
    } else {
      out = o.subtree(prefix);
    }
    return out;
  };
  for (int i = 0; i < 120; ++i) {
    std::size_t len = rng.below(26);
    BitString x;
    for (std::size_t b = 0; b < len; ++b) x.push_back(rng.coin());

    // succ candidates are ascending and disjoint: the first non-empty
    // piece's minimum is the successor.
    Neighbor got_s;
    for (const auto& c : trie::succ_candidates(x)) {
      auto l = piece_list(c.prefix, !c.subtree);
      if (!l.empty()) {
        got_s = l.front();
        break;
      }
    }
    expect_neighbor_eq(got_s, o.succ(x), "cover-succ", x);

    // pred candidates are descending: first non-empty piece's maximum.
    Neighbor got_p;
    for (const auto& c : trie::pred_candidates(x)) {
      auto l = piece_list(c.prefix, !c.subtree);
      if (!l.empty()) {
        got_p = l.back();
        break;
      }
    }
    expect_neighbor_eq(got_p, o.pred(x), "cover-pred", x);

    // range_cover pieces are disjoint and ascending: concatenation is
    // exactly the oracle's inclusive range answer.
    std::size_t len2 = rng.below(26);
    BitString y;
    for (std::size_t b = 0; b < len2; ++b) y.push_back(rng.coin());
    const BitString& lo = x < y ? x : y;
    const BitString& hi = x < y ? y : x;
    KvList got;
    for (const auto& c : trie::range_cover(lo, hi))
      for (auto& kv : piece_list(c.prefix, !c.subtree)) got.push_back(kv);
    EXPECT_EQ(got, o.range(lo, hi, static_cast<std::size_t>(-1)))
        << lo.to_binary() << " .. " << hi.to_binary();
    // Reversed bounds must yield an empty cover.
    if (lo != hi) {
      EXPECT_TRUE(trie::range_cover(hi, lo).empty());
    }
  }
}

// ---- Baselines vs oracle ---------------------------------------------

TEST(OrderedBaselines, RangePartitionedMatchesOracle) {
  for (std::uint64_t seed : {2u, 9u}) {
    auto pool = profile_pool(seed % 2 ? "cluster" : "uniform", seed);
    Rng rng(seed);
    pim::System sys(8, seed);
    baselines::RangePartitionedIndex rp(sys, seed);
    check::Oracle o;
    std::vector<std::uint64_t> vals;
    for (std::size_t i = 0; i < pool.size(); ++i) vals.push_back(rng());
    rp.build(pool, vals);
    for (std::size_t i = 0; i < pool.size(); ++i) o.insert(pool[i], vals[i]);

    auto qs = profile_queries(pool, "uniform", 40, seed + 4);
    auto p = rp.batch_pred(qs);
    auto s = rp.batch_succ(qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      expect_neighbor_eq(p[i], o.pred(qs[i]), "rp-pred", qs[i]);
      expect_neighbor_eq(s[i], o.succ(qs[i]), "rp-succ", qs[i]);
    }
    std::vector<BitString> los, his, prefixes;
    std::vector<std::size_t> lims, ks;
    for (std::size_t i = 0; i + 1 < qs.size(); i += 2) {
      los.push_back(qs[i]);
      his.push_back(qs[i + 1]);
      lims.push_back(i % 7 == 0 ? 0 : rng.below(30));
      prefixes.push_back(qs[i].prefix(rng.below(qs[i].size() + 1)));
      ks.push_back(rng.below(12));
    }
    auto r = rp.batch_range(los, his, lims);
    auto tk = rp.batch_topk(prefixes, ks);
    for (std::size_t i = 0; i < los.size(); ++i) {
      EXPECT_EQ(r[i], o.range(los[i], his[i], lims[i])) << i;
      EXPECT_EQ(tk[i], o.topk(prefixes[i], ks[i])) << i;
    }
  }
}

TEST(OrderedBaselines, RadixMatchesOracleOnChunkAlignedKeys) {
  constexpr unsigned kSpan = 4;
  auto trunc = [](const BitString& k) { return k.prefix(k.size() / kSpan * kSpan); };
  Rng rng(17);
  pim::System sys(8, 21);
  baselines::DistributedRadixTree rt(sys, kSpan);
  check::Oracle o;
  auto pool = profile_pool("uniform", 33);
  std::vector<BitString> keys;
  std::vector<std::uint64_t> vals;
  for (const auto& k : pool) {
    keys.push_back(trunc(k));
    vals.push_back(rng());
  }
  rt.build(keys, vals);
  for (std::size_t i = 0; i < keys.size(); ++i) o.insert(keys[i], vals[i]);

  auto raw = profile_queries(pool, "uniform", 40, 77);
  std::vector<BitString> qs;
  for (const auto& q : raw) qs.push_back(trunc(q));
  auto p = rt.batch_pred(qs);
  auto s = rt.batch_succ(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_neighbor_eq(p[i], o.pred(qs[i]), "rx-pred", qs[i]);
    expect_neighbor_eq(s[i], o.succ(qs[i]), "rx-succ", qs[i]);
  }
  std::vector<BitString> los, his, prefixes;
  std::vector<std::size_t> lims, ks;
  for (std::size_t i = 0; i + 1 < qs.size(); i += 2) {
    los.push_back(qs[i]);
    his.push_back(qs[i + 1]);
    lims.push_back(rng.below(30));
    // Top-k prefixes are arbitrary-length (not chunk-aligned): the host
    // filter must still deliver exact extension answers.
    prefixes.push_back(raw[i].prefix(rng.below(raw[i].size() + 1)));
    ks.push_back(rng.below(12));
  }
  auto r = rt.batch_range(los, his, lims);
  auto tk = rt.batch_topk(prefixes, ks);
  for (std::size_t i = 0; i < los.size(); ++i) {
    EXPECT_EQ(r[i], o.range(los[i], his[i], lims[i])) << i;
    EXPECT_EQ(tk[i], o.topk(prefixes[i], ks[i])) << i;
  }
}

TEST(OrderedBaselines, XFastMatchesStdMap) {
  Rng rng(41);
  pim::System sys(8, 13);
  baselines::DistributedXFastTrie xf(sys, 64);
  std::map<std::uint64_t, std::uint64_t> o;
  std::vector<std::uint64_t> keys, vals;
  for (int i = 0; i < 120; ++i) {
    keys.push_back(rng());
    vals.push_back(rng() >> 8);
  }
  xf.build(keys, vals);
  for (std::size_t i = 0; i < keys.size(); ++i) o[keys[i]] = vals[i];

  std::vector<std::uint64_t> qs;
  for (int i = 0; i < 50; ++i)
    qs.push_back(i % 3 == 0 ? keys[rng.below(keys.size())] : rng());
  auto p = xf.batch_pred(qs);
  auto s = xf.batch_succ(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    std::optional<std::pair<std::uint64_t, std::uint64_t>> wp, ws;
    auto it = o.lower_bound(qs[i]);
    if (it != o.begin()) wp = *std::prev(it);
    auto u = o.upper_bound(qs[i]);
    if (u != o.end()) ws = *u;
    EXPECT_EQ(p[i], wp) << i;
    EXPECT_EQ(s[i], ws) << i;
  }
  std::vector<std::uint64_t> los, his;
  std::vector<std::size_t> lims;
  for (int i = 0; i < 25; ++i) {
    std::uint64_t a = rng(), b = rng();
    los.push_back(std::min(a, b));
    his.push_back(std::max(a, b));
    lims.push_back(i % 6 == 0 ? 0 : rng.below(30));
  }
  auto r = xf.batch_range(los, his, lims);
  for (std::size_t i = 0; i < los.size(); ++i) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
    for (auto it = o.lower_bound(los[i]);
         it != o.end() && it->first <= his[i] && want.size() < lims[i]; ++it)
      want.push_back(*it);
    EXPECT_EQ(r[i], want) << i;
  }
  std::vector<std::pair<std::uint64_t, unsigned>> prefixes;
  std::vector<std::size_t> ks;
  for (int i = 0; i < 20; ++i) {
    unsigned len = static_cast<unsigned>(rng.below(9));
    prefixes.emplace_back(len == 0 ? 0 : keys[rng.below(keys.size())] >> (64 - len), len);
    ks.push_back(rng.below(14));
  }
  auto tk = xf.batch_topk(prefixes, ks);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
    for (const auto& [k, v] : o) {
      bool match =
          prefixes[i].second == 0 || (k >> (64 - prefixes[i].second)) == prefixes[i].first;
      if (match && want.size() < ks[i]) want.emplace_back(k, v);
    }
    EXPECT_EQ(tk[i], want) << i;
  }
}

// ---- Serving front-end -----------------------------------------------

TEST(OrderedServe, SessionFuturesMatchDirectTrie) {
  auto keys = workload::uniform_keys(150, 48, 57);
  std::vector<std::uint64_t> vals(keys.size());
  std::iota(vals.begin(), vals.end(), 1);

  pim::System sys_direct(8, 5);
  pimtrie::Config cfg;
  cfg.seed = 6;
  pimtrie::PimTrie direct(sys_direct, cfg);
  direct.build(keys, vals);

  pim::System sys_srv(8, 5);
  pimtrie::PimTrie served(sys_srv, cfg);
  served.build(keys, vals);
  serve::Server server(served);
  auto session = server.session();

  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < 24; ++i) {
    const BitString& q = keys[(i * 13) % keys.size()];
    auto pr = session.pred(q).get();
    EXPECT_EQ(pr.status, serve::Status::kOk);
    EXPECT_EQ(pr.neighbor, direct.batch_pred({q})[0]);
    auto sr = session.succ(q).get();
    EXPECT_EQ(sr.neighbor, direct.batch_succ({q})[0]);
    const BitString& q2 = keys[(i * 29) % keys.size()];
    const BitString& lo = q < q2 ? q : q2;
    const BitString& hi = q < q2 ? q2 : q;
    std::size_t limit = i % 5 == 0 ? 0 : i + 1;  // per-request result limit
    auto rr = session.range(lo, hi, limit).get();
    EXPECT_EQ(rr.subtree, direct.batch_range({lo}, {hi}, {limit})[0]);
    auto tr = session.topk(q.prefix(4), i % 7).get();
    EXPECT_EQ(tr.subtree, direct.batch_topk({q.prefix(4)}, {i % 7})[0]);
  }
  // Ordered ops interleave with writes through the same coalescer:
  // erase a key, then its former neighbors must skip over it.
  BitString victim = keys[keys.size() / 2];
  session.erase(victim).get();
  direct.batch_erase({victim});
  auto pv = session.pred(keys[keys.size() / 2 + 1]).get();
  EXPECT_EQ(pv.neighbor, direct.batch_pred({keys[keys.size() / 2 + 1]})[0]);
  server.stop();
}

// ---- Worker-count byte-identity --------------------------------------

namespace {

struct OrderedPipelineResult {
  std::vector<Neighbor> preds, succs;
  std::vector<KvList> ranges, topks;
  pim::Metrics::Snapshot metrics;
};

OrderedPipelineResult run_ordered_pipeline(std::size_t workers) {
  core::ThreadPool::instance().set_workers(workers);
  pim::System sys(16, 99);
  pimtrie::Config cfg;
  cfg.seed = 12;
  pimtrie::PimTrie t(sys, cfg);
  auto keys = workload::uniform_keys(600, 80, 8);
  std::vector<std::uint64_t> vals(keys.size());
  std::iota(vals.begin(), vals.end(), 10);
  t.build(keys, vals);
  auto extra = workload::shared_prefix_keys(200, 40, 32, 9);
  std::vector<std::uint64_t> evals(extra.size(), 3);
  t.batch_insert(extra, evals);

  auto queries = workload::zipf_queries(keys, 120, 0.9, 10);
  for (auto& q : workload::miss_queries(60, 80, 11)) queries.push_back(q);
  std::vector<BitString> los, his, prefixes;
  std::vector<std::size_t> limits, ks;
  for (std::size_t i = 0; i + 1 < queries.size(); i += 2) {
    los.push_back(queries[i]);
    his.push_back(queries[i + 1]);
    limits.push_back(i % 3 + 5);
    prefixes.push_back(queries[i].prefix(10));
    ks.push_back(i % 4 + 1);
  }

  OrderedPipelineResult r;
  r.preds = t.batch_pred(queries);
  r.succs = t.batch_succ(queries);
  r.ranges = t.batch_range(los, his, limits);
  r.topks = t.batch_topk(prefixes, ks);
  r.metrics = sys.metrics().snapshot();
  return r;
}

}  // namespace

class WorkerSweepOrdered : public ::testing::Test {
 protected:
  void TearDown() override { core::ThreadPool::instance().set_workers(1); }
};

TEST_F(WorkerSweepOrdered, ByteIdenticalAcrossWorkerCounts) {
  OrderedPipelineResult base = run_ordered_pipeline(1);
  for (std::size_t w : {2, 8}) {
    OrderedPipelineResult got = run_ordered_pipeline(w);
    ASSERT_EQ(got.preds, base.preds) << "workers=" << w;
    ASSERT_EQ(got.succs, base.succs) << "workers=" << w;
    ASSERT_EQ(got.ranges, base.ranges) << "workers=" << w;
    ASSERT_EQ(got.topks, base.topks) << "workers=" << w;
    EXPECT_EQ(got.metrics.rounds, base.metrics.rounds) << "workers=" << w;
    EXPECT_EQ(got.metrics.words, base.metrics.words) << "workers=" << w;
    EXPECT_EQ(got.metrics.pim_time, base.metrics.pim_time) << "workers=" << w;
  }
}
