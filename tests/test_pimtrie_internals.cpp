// Unit tests for the PIM-trie internals: block wire formats and local
// operations (match / insert / erase / get / slice), meta-entry and
// piece serialization, the two-layer index, and hash_match properties.

#include <gtest/gtest.h>

#include "hash/poly_hash.hpp"
#include "pimtrie/block.hpp"
#include "pimtrie/meta_index.hpp"
#include "trie/query_trie.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::hash::PolyHasher;
using ptrie::trie::kNil;
using ptrie::trie::NodeId;
using ptrie::trie::Patricia;
using namespace ptrie::pimtrie;

Block make_block(const std::vector<BitString>& keys, std::uint64_t root_depth,
                 const PolyHasher& h, const BitString& root_str) {
  Block b;
  b.id = 1;
  b.root_depth = root_depth;
  b.root_hash = h.hash(root_str);
  for (std::size_t i = 0; i < keys.size(); ++i) b.trie.insert(keys[i], 100 + i);
  return b;
}

QueryPiece make_query(const std::vector<BitString>& keys, std::uint64_t root_depth,
                      const PolyHasher& h, const BitString& root_str) {
  QueryPiece q;
  q.root_depth = root_depth;
  q.root_hash = h.hash(root_str);
  std::uint64_t pivot = (root_depth / 64) * 64;
  q.root_pivot_hash = h.hash_prefix(root_str, pivot);
  std::uint64_t tail = std::min<std::uint64_t>(64, root_depth);
  q.root_tail = root_str.suffix(root_str.size() - tail);
  for (std::size_t i = 0; i < keys.size(); ++i) q.trie.insert(keys[i], i);
  // Assign origins = node ids for test visibility.
  q.trie.preorder([&](NodeId id) { q.trie.mutable_node(id).origin = id; });
  return q;
}

TEST(BlockWire, SerializeRoundTripWithMirrors) {
  PolyHasher h(1);
  auto keys = ptrie::workload::uniform_keys(30, 40, 1);
  Block b = make_block(keys, 0, h, BitString());
  // Mark two leaves as mirrors.
  auto leaves = b.trie.leaves();
  b.mirrors.emplace(leaves[0], 77);
  b.mirrors.emplace(leaves[1], 88);

  ptrie::pim::Buffer wire;
  b.serialize(wire);
  BufReader r{wire};
  Block c = Block::deserialize(r);
  EXPECT_EQ(c.id, b.id);
  EXPECT_EQ(c.root_hash, b.root_hash);
  EXPECT_EQ(c.trie.key_count(), b.trie.key_count());
  ASSERT_EQ(c.mirrors.size(), 2u);
  // The mirrored nodes must represent the same strings after the id
  // remap.
  std::vector<std::string> want, got;
  for (auto [n, cb] : b.mirrors) want.push_back(b.trie.node_string(n).to_binary());
  for (auto [n, cb] : c.mirrors) got.push_back(c.trie.node_string(n).to_binary());
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);

  // Round-trip again (id layouts may differ after deserialize).
  ptrie::pim::Buffer wire2;
  c.serialize(wire2);
  BufReader r2{wire2};
  Block d = Block::deserialize(r2);
  EXPECT_EQ(d.mirrors.size(), 2u);
  EXPECT_EQ(d.trie.key_count(), b.trie.key_count());
}

TEST(BlockLocal, MatchReportsDepthsAndBoundaries) {
  PolyHasher h(2);
  // Data block at depth 0 storing two keys; one leaf is a mirror.
  std::vector<BitString> dk = {BitString::from_binary("0011"), BitString::from_binary("0101")};
  Block b = make_block(dk, 0, h, BitString());
  NodeId mirror_leaf = kNil;
  b.trie.preorder([&](NodeId id) {
    if (b.trie.node_string(id).to_binary() == "0101") mirror_leaf = id;
  });
  ASSERT_NE(mirror_leaf, kNil);
  b.mirrors.emplace(mirror_leaf, 9);

  // Query: one exact hit, one divergence, one passing through the mirror.
  std::vector<BitString> qk = {BitString::from_binary("0011"),
                               BitString::from_binary("0111"),
                               BitString::from_binary("010111")};
  QueryPiece q = make_query(qk, 0, h, BitString());
  std::uint64_t work = 0;
  auto lens = match_block(q, b, &work);
  EXPECT_GT(work, 0u);
  bool saw_exact = false, saw_diverge = false, saw_boundary = false;
  for (const auto& ml : lens) {
    BitString s = q.trie.node_string(ml.origin);
    if (s.to_binary() == "0011") {
      EXPECT_TRUE(ml.full);
      EXPECT_EQ(ml.match_len, 4u);
      saw_exact = true;
    }
    if (s.to_binary() == "0111") {
      EXPECT_FALSE(ml.full);
      EXPECT_EQ(ml.match_len, 2u);  // diverges after "01"
      saw_diverge = true;
    }
    if (s.to_binary() == "010111") {
      // Stops at the mirror boundary at depth 4.
      EXPECT_TRUE(ml.boundary);
      EXPECT_EQ(ml.match_len, 4u);
      saw_boundary = true;
    }
  }
  EXPECT_TRUE(saw_exact);
  EXPECT_TRUE(saw_diverge);
  EXPECT_TRUE(saw_boundary);
}

TEST(BlockLocal, InsertGraftsAndIsIdempotent) {
  PolyHasher h(3);
  std::vector<BitString> dk = {BitString::from_binary("110011")};
  Block b = make_block(dk, 0, h, BitString());
  std::vector<BitString> qk = {BitString::from_binary("110100"),  // diverges mid-edge
                               BitString::from_binary("1100")};   // prefix key (hidden node)
  QueryPiece q = make_query(qk, 0, h, BitString());
  std::uint64_t work = 0;
  auto s1 = insert_into_block(q, b, &work);
  EXPECT_EQ(s1.new_keys, 2u);
  EXPECT_EQ(b.trie.key_count(), 3u);
  EXPECT_EQ(b.trie.find(qk[0]), std::optional<std::uint64_t>(0));
  EXPECT_EQ(b.trie.find(qk[1]), std::optional<std::uint64_t>(1));
  EXPECT_EQ(b.trie.find(dk[0]), std::optional<std::uint64_t>(100));
  // Idempotent re-apply: only value overwrites.
  auto s2 = insert_into_block(q, b, &work);
  EXPECT_EQ(s2.new_keys, 0u);
  EXPECT_EQ(s2.updated_keys, 2u);
  EXPECT_EQ(b.trie.key_count(), 3u);
}

TEST(BlockLocal, InsertSkipsMirrorBoundary) {
  PolyHasher h(4);
  std::vector<BitString> dk = {BitString::from_binary("0011")};
  Block b = make_block(dk, 0, h, BitString());
  NodeId leaf = b.trie.leaves()[0];
  b.mirrors.emplace(leaf, 5);  // the "0011" leaf is a child block root
  std::vector<BitString> qk = {BitString::from_binary("001101")};  // continues below mirror
  QueryPiece q = make_query(qk, 0, h, BitString());
  std::uint64_t work = 0;
  auto s = insert_into_block(q, b, &work);
  EXPECT_EQ(s.new_keys, 0u);  // the child block's own span must graft this
  EXPECT_EQ(b.trie.key_count(), 1u);
}

TEST(BlockLocal, EraseCompressesButKeepsMirrors) {
  PolyHasher h(5);
  std::vector<BitString> dk = {BitString::from_binary("0000"), BitString::from_binary("0001"),
                               BitString::from_binary("01")};
  Block b = make_block(dk, 0, h, BitString());
  NodeId m = kNil;
  b.trie.preorder([&](NodeId id) {
    if (b.trie.node_string(id).to_binary() == "01") m = id;
  });
  b.mirrors.emplace(m, 6);
  b.trie.clear_value(m);  // mirror stubs carry no local value

  std::vector<BitString> qk = {BitString::from_binary("0000"), BitString::from_binary("0001")};
  QueryPiece q = make_query(qk, 0, h, BitString());
  std::uint64_t work = 0;
  std::size_t removed = erase_from_block(q, b, &work);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(b.trie.key_count(), 0u);
  // The mirror stub must survive path compression.
  ASSERT_TRUE(b.trie.alive(m));
  EXPECT_TRUE(b.is_mirror(m));
}

TEST(BlockLocal, GetReadsExactValuesOnly) {
  PolyHasher h(6);
  std::vector<BitString> dk = {BitString::from_binary("1010"), BitString::from_binary("10")};
  Block b = make_block(dk, 0, h, BitString());
  std::vector<BitString> qk = {BitString::from_binary("1010"), BitString::from_binary("10"),
                               BitString::from_binary("101"),   // hidden position: no value
                               BitString::from_binary("1111")};  // miss
  QueryPiece q = make_query(qk, 0, h, BitString());
  std::uint64_t work = 0;
  auto hits = get_from_block(q, b, &work);
  ASSERT_EQ(hits.size(), 2u);
  std::vector<std::string> got;
  for (auto [origin, v] : hits) got.push_back(q.trie.node_string(origin).to_binary());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], "10");
  EXPECT_EQ(got[1], "1010");
}

TEST(BlockLocal, SliceAtHiddenPosition) {
  PolyHasher h(7);
  std::vector<BitString> dk = {BitString::from_binary("110000"), BitString::from_binary("110011")};
  Block b = make_block(dk, 0, h, BitString());
  // Slice at "1100" — a hidden position on the shared edge... actually
  // "1100" is the branch node here; slice mid-edge at "110".
  auto [len, pos] = b.trie.lcp(BitString::from_binary("110"));
  ASSERT_EQ(len, 3u);
  std::uint64_t work = 0;
  SubtreeSlice s = slice_block(b, pos, 3, &work);
  EXPECT_EQ(s.root_depth, 3u);
  EXPECT_EQ(s.trie.key_count(), 2u);
  // Keys relative to the slice root: "000" + tails.
  auto sub = s.trie.subtree(BitString());
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].first.to_binary(), "000");
  EXPECT_EQ(sub[1].first.to_binary(), "011");
}

TEST(MetaWire, EntryAndPieceRoundTrip) {
  PolyHasher h(8);
  MetaEntry e;
  e.block = 42;
  e.module = 3;
  e.root_hash = 12345;
  e.root_depth = 77;
  e.parent_block = 41;
  e.spre_hash = 999;
  e.srem = BitString::from_binary("1011001110111");
  e.slast = BitString::from_binary("0101110110100");
  ptrie::pim::Buffer wire;
  e.serialize(wire);
  BufReader r{wire};
  MetaEntry f = MetaEntry::deserialize(r);
  EXPECT_EQ(f.block, e.block);
  EXPECT_EQ(f.srem, e.srem);
  EXPECT_EQ(f.slast, e.slast);
  EXPECT_EQ(f.parent_block, e.parent_block);

  Piece p;
  p.id = 7;
  p.parent_piece = 6;
  p.root_block = 42;
  p.entries.push_back(e);
  ChildPieceRef c;
  c.piece = 8;
  c.module = 1;
  c.root = e;
  p.children.push_back(c);
  ptrie::pim::Buffer wire2;
  p.serialize(wire2);
  BufReader r2{wire2};
  Piece q = Piece::deserialize(r2);
  EXPECT_EQ(q.id, 7u);
  ASSERT_EQ(q.entries.size(), 1u);
  ASSERT_EQ(q.children.size(), 1u);
  EXPECT_EQ(q.children[0].piece, 8u);
  q.build_index(h, 64);
  EXPECT_NE(q.entry_of(42), nullptr);
  EXPECT_EQ(q.entry_of(43), nullptr);
}

TEST(TwoLayer, InsertLocateErase) {
  PolyHasher h(9);
  TwoLayerIndex idx(64);
  MetaEntry e;
  e.block = 1;
  BitString s = BitString::from_binary("10110");
  e.root_depth = 5;
  e.spre_hash = h.hash_prefix(s, 0);
  e.srem = s;
  e.slast = s;
  e.root_hash = h.hash(s);
  idx.insert(h, e, {IndexPayload::kEntry, 0});
  EXPECT_TRUE(idx.has_pivot(h.fingerprint(e.spre_hash)));
  auto res = idx.locate(h.fingerprint(e.spre_hash), BitString::from_binary("1011011"));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->first, s);
  idx.erase(h, e);
  EXPECT_FALSE(idx.has_pivot(h.fingerprint(e.spre_hash)));
}

TEST(HashMatch, DeepestPerEdgeOnly) {
  PolyHasher h(10);
  unsigned w = 64;
  // Chain of three on-path roots at depths 10 < 20 < 30; a single query
  // edge covering (0, 40] must report only the deepest (30).
  BitString query = ptrie::workload::uniform_keys(1, 40, 11)[0];
  std::vector<MetaEntry> entries;
  BlockId prev = kNone;
  for (std::uint64_t d : {10u, 20u, 30u}) {
    MetaEntry e;
    e.block = d;
    e.root_depth = d;
    BitString s = query.prefix(d);
    e.root_hash = h.hash(s);
    e.parent_block = prev;
    e.spre_hash = h.hash_prefix(s, 0);
    e.srem = s;
    e.slast = s;
    entries.push_back(e);
    prev = d;
  }
  TwoLayerIndex idx(w);
  for (std::uint32_t i = 0; i < entries.size(); ++i)
    idx.insert(h, entries[i], {IndexPayload::kEntry, i});

  ptrie::trie::QueryTrie qt = ptrie::trie::build_query_trie({query}, h);
  QueryPiece piece;
  piece.root_depth = 0;
  piece.root_hash = h.empty();
  piece.root_pivot_hash = h.empty();
  piece.trie = qt.trie.extract(qt.trie.root(), {});

  auto ms = hash_match(
      piece, idx, h, w,
      [&](IndexPayload pl) -> const MetaEntry* { return &entries[pl.idx]; },
      [&](BlockId b) -> const MetaEntry* {
        for (const auto& e : entries)
          if (e.block == b) return &e;
        return nullptr;
      },
      nullptr, nullptr);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].point.abs_depth, 30u);
}

TEST(HashMatch, SlastRejectsForgedEntry) {
  PolyHasher h(12);
  unsigned w = 64;
  BitString query = ptrie::workload::uniform_keys(1, 40, 13)[0];
  // Forged entry: correct spre hash (pivot 0) but srem/slast from a
  // different string — verification must reject it.
  BitString other = ptrie::workload::uniform_keys(1, 20, 14)[0];
  MetaEntry e;
  e.block = 1;
  e.root_depth = 20;
  e.root_hash = h.hash(other);
  e.parent_block = kNone;
  e.spre_hash = h.empty();
  e.srem = other;
  e.slast = other;
  TwoLayerIndex idx(w);
  idx.insert(h, e, {IndexPayload::kEntry, 0});

  ptrie::trie::QueryTrie qt = ptrie::trie::build_query_trie({query}, h);
  QueryPiece piece;
  piece.root_depth = 0;
  piece.root_hash = h.empty();
  piece.root_pivot_hash = h.empty();
  piece.trie = qt.trie.extract(qt.trie.root(), {});
  HashMatchStats stats;
  auto ms = hash_match(
      piece, idx, h, w, [&](IndexPayload) -> const MetaEntry* { return &e; },
      nullptr, &stats, nullptr);
  EXPECT_TRUE(ms.empty());
  EXPECT_GE(stats.rejected_collisions, 0u);
}

}  // namespace
