// Worker-count invariance of the parallel runtime and of the batch
// pipeline built on it: every primitive in core/parallel.hpp must produce
// the same bytes for any PTRIE_WORKERS, and a full insert + LCP + subtree
// workload must yield byte-identical results and identical model metrics
// (rounds, words, PIM time) at workers=1 and workers=8. The sweep uses
// ThreadPool::set_workers directly, so one test process covers all counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;
using core::ThreadPool;

namespace {

class WorkerSweep : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().set_workers(1); }
  static constexpr std::size_t kCounts[] = {1, 2, 3, 8};
};

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng();
  return v;
}

// Adversarial inputs for sort/scan: random, all-equal, pre-sorted, reverse.
std::vector<std::vector<std::uint64_t>> sort_inputs() {
  std::vector<std::vector<std::uint64_t>> inputs;
  inputs.push_back(random_values(50'000, 7));
  inputs.emplace_back(30'000, 42u);  // all equal
  auto sorted = random_values(40'000, 8);
  std::sort(sorted.begin(), sorted.end());
  inputs.push_back(sorted);
  std::reverse(sorted.begin(), sorted.end());
  inputs.push_back(sorted);
  inputs.emplace_back();           // empty
  inputs.push_back({5});           // single
  inputs.push_back(random_values(4097, 9));  // just past one grain
  return inputs;
}

}  // namespace

TEST_F(WorkerSweep, ParallelSortMatchesSerial) {
  for (const auto& in : sort_inputs()) {
    auto expect = in;
    std::sort(expect.begin(), expect.end());
    for (std::size_t w : kCounts) {
      ThreadPool::instance().set_workers(w);
      auto got = in;
      core::parallel_sort(got.begin(), got.end());
      EXPECT_EQ(got, expect) << "workers=" << w << " n=" << in.size();
    }
  }
}

TEST_F(WorkerSweep, ParallelStableSortIsStable) {
  // Sort pairs by first only; second records input order. Stability means
  // seconds stay ascending within equal firsts — and the whole output is
  // then worker-count invariant.
  core::Rng rng(11);
  std::size_t n = 60'000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(rng() % 64), static_cast<std::uint32_t>(i)};
  auto expect = in;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t w : kCounts) {
    ThreadPool::instance().set_workers(w);
    auto got = in;
    core::parallel_stable_sort(got.begin(), got.end(),
                               [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(got, expect) << "workers=" << w;
  }
}

TEST_F(WorkerSweep, ParallelScansMatchSerial) {
  for (const auto& in : sort_inputs()) {
    auto ex_ref = in;
    std::uint64_t ex_total = core::exclusive_scan(ex_ref);
    auto in_ref = in;
    std::uint64_t in_total = core::inclusive_scan(in_ref);
    for (std::size_t w : kCounts) {
      ThreadPool::instance().set_workers(w);
      auto ex = in;
      EXPECT_EQ(core::parallel_exclusive_scan(ex, /*grain=*/512), ex_total);
      EXPECT_EQ(ex, ex_ref) << "workers=" << w << " n=" << in.size();
      auto inc = in;
      EXPECT_EQ(core::parallel_inclusive_scan(inc, /*grain=*/512), in_total);
      EXPECT_EQ(inc, in_ref) << "workers=" << w << " n=" << in.size();
    }
  }
}

TEST_F(WorkerSweep, ParallelPackPreservesIndexOrder) {
  auto vals = random_values(30'000, 13);
  std::vector<std::uint64_t> expect;
  for (auto v : vals)
    if (v % 3 == 0) expect.push_back(v);
  for (std::size_t w : kCounts) {
    ThreadPool::instance().set_workers(w);
    auto got = core::parallel_filter(vals, [](std::uint64_t v) { return v % 3 == 0; });
    ASSERT_EQ(got, expect) << "workers=" << w;
  }
}

TEST_F(WorkerSweep, BucketOffsetsReplaySerialAppendOrder) {
  auto vals = random_values(20'000, 17);
  const std::size_t kBuckets = 37;
  auto dest = [&](std::size_t i) { return vals[i] % kBuckets; };
  auto size = [&](std::size_t i) { return 1 + vals[i] % 5; };
  // Serial reference: append in index order.
  std::vector<std::size_t> ref_offset(vals.size());
  std::vector<std::size_t> ref_total(kBuckets, 0);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ref_offset[i] = ref_total[dest(i)];
    ref_total[dest(i)] += size(i);
  }
  for (std::size_t w : kCounts) {
    ThreadPool::instance().set_workers(w);
    auto layout = core::parallel_bucket_offsets(vals.size(), kBuckets, dest, size);
    ASSERT_EQ(layout.offset, ref_offset) << "workers=" << w;
    ASSERT_EQ(layout.total, ref_total) << "workers=" << w;
  }
}

TEST_F(WorkerSweep, NestedParallelForFallsBackToSerial) {
  ThreadPool::instance().set_workers(4);
  std::vector<std::uint64_t> sums(1000, 0);
  core::parallel_for(
      0, sums.size(),
      [&](std::size_t i) {
        // Nested constructs must run inline (no deadlock, no data races).
        std::vector<std::uint64_t> local(200);
        core::parallel_for(0, local.size(), [&](std::size_t j) { local[j] = i + j; },
                           /*grain=*/1);
        std::uint64_t total = core::parallel_inclusive_scan(local, /*grain=*/1);
        sums[i] = total;
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < sums.size(); ++i) {
    std::uint64_t expect = 200 * i + 199 * 200 / 2;
    ASSERT_EQ(sums[i], expect) << i;
  }
}

namespace {

struct PipelineResult {
  std::vector<std::size_t> lcp;
  std::vector<std::vector<std::pair<core::BitString, std::uint64_t>>> subtrees;
  std::vector<std::pair<core::BitString, std::uint64_t>> contents;
  pim::Metrics::Snapshot metrics;
};

// Full build + insert + LCP + subtree workload at the given worker count.
PipelineResult run_pipeline(std::size_t workers) {
  ThreadPool::instance().set_workers(workers);
  pim::System sys(16, 77);
  pimtrie::Config cfg;
  cfg.seed = 5;
  pimtrie::PimTrie t(sys, cfg);

  auto keys = workload::uniform_keys(800, 96, 1);
  std::vector<std::uint64_t> vals(keys.size());
  std::iota(vals.begin(), vals.end(), 100);
  t.build(keys, vals);

  // Skewed inserts (shared prefixes) to force block repartitioning.
  auto extra = workload::shared_prefix_keys(400, 48, 48, 2);
  std::vector<std::uint64_t> evals(extra.size());
  std::iota(evals.begin(), evals.end(), 5000);
  t.batch_insert(extra, evals);

  auto queries = workload::zipf_queries(keys, 300, 0.8, 3);
  for (auto& q : workload::miss_queries(100, 96, 4)) queries.push_back(q);

  PipelineResult r;
  r.lcp = t.batch_lcp(queries);
  std::vector<core::BitString> prefixes;
  for (std::size_t i = 0; i < 20; ++i) prefixes.push_back(keys[i * 7].prefix(16));
  r.subtrees = t.batch_subtree(prefixes);
  r.contents = t.debug_collect();
  std::sort(r.contents.begin(), r.contents.end());
  EXPECT_EQ(t.debug_check(), "");
  r.metrics = sys.metrics().snapshot();
  return r;
}

}  // namespace

TEST_F(WorkerSweep, PipelineByteIdenticalAcrossWorkerCounts) {
  PipelineResult base = run_pipeline(1);
  for (std::size_t w : {2, 8}) {
    PipelineResult got = run_pipeline(w);
    ASSERT_EQ(got.lcp, base.lcp) << "workers=" << w;
    ASSERT_EQ(got.subtrees, base.subtrees) << "workers=" << w;
    ASSERT_EQ(got.contents, base.contents) << "workers=" << w;
    EXPECT_EQ(got.metrics.rounds, base.metrics.rounds) << "workers=" << w;
    EXPECT_EQ(got.metrics.words, base.metrics.words) << "workers=" << w;
    EXPECT_EQ(got.metrics.io_time, base.metrics.io_time) << "workers=" << w;
    EXPECT_EQ(got.metrics.pim_time, base.metrics.pim_time) << "workers=" << w;
    EXPECT_EQ(got.metrics.pim_work, base.metrics.pim_work) << "workers=" << w;
  }
}
