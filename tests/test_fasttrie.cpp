// Unit + property tests: x-fast trie, y-fast trie, z-fast trie, and the
// Section 4.4.2 two-layer SecondLayerIndex — all against brute-force
// reference models.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "core/rng.hpp"
#include "fasttrie/second_layer.hpp"
#include "fasttrie/xfast.hpp"
#include "fasttrie/yfast.hpp"
#include "fasttrie/zfast.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::core::Rng;
using ptrie::fasttrie::SecondLayerIndex;
using ptrie::fasttrie::two_fattest;
using ptrie::fasttrie::XFastTrie;
using ptrie::fasttrie::YFastTrie;
using ptrie::fasttrie::ZFastTrie;

template <class Trie>
void ordered_set_property_test(unsigned width, std::uint64_t seed, std::size_t ops) {
  Trie t(width);
  std::set<std::uint64_t> model;
  Rng rng(seed);
  std::uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
  for (std::size_t i = 0; i < ops; ++i) {
    std::uint64_t key = rng() & mask;
    switch (rng.below(4)) {
      case 0:
      case 1: {
        bool fresh = model.insert(key).second;
        EXPECT_EQ(t.insert(key), fresh);
        break;
      }
      case 2: {
        // Erase something present half the time.
        std::uint64_t victim = key;
        if (!model.empty() && rng.coin()) {
          auto it = model.lower_bound(key);
          if (it == model.end()) it = model.begin();
          victim = *it;
        }
        bool present = model.erase(victim) > 0;
        EXPECT_EQ(t.erase(victim), present);
        break;
      }
      default: {
        // pred / succ probes.
        auto it = model.upper_bound(key);
        std::optional<std::uint64_t> want_pred;
        if (it != model.begin()) want_pred = *std::prev(it);
        if (model.contains(key)) want_pred = key;
        auto it2 = model.lower_bound(key);
        std::optional<std::uint64_t> want_succ;
        if (it2 != model.end()) want_succ = *it2;
        EXPECT_EQ(t.pred(key), want_pred) << "pred(" << key << ")";
        EXPECT_EQ(t.succ(key), want_succ) << "succ(" << key << ")";
        EXPECT_EQ(t.contains(key), model.contains(key));
        break;
      }
    }
    EXPECT_EQ(t.size(), model.size());
  }
}

TEST(XFast, PropertyWidth8) { ordered_set_property_test<XFastTrie>(8, 21, 3000); }
TEST(XFast, PropertyWidth16) { ordered_set_property_test<XFastTrie>(16, 22, 3000); }
TEST(XFast, PropertyWidth64) { ordered_set_property_test<XFastTrie>(64, 23, 1500); }

TEST(XFast, LcpLevel) {
  XFastTrie t(8);
  t.insert(0b10110000);
  t.insert(0b10111111);
  EXPECT_EQ(t.lcp_level(0b10110000), 8u);
  EXPECT_EQ(t.lcp_level(0b10111110), 7u);
  EXPECT_EQ(t.lcp_level(0b10100000), 3u);
  EXPECT_EQ(t.lcp_level(0b01000000), 0u);
}

TEST(XFast, MinMax) {
  XFastTrie t(16);
  EXPECT_FALSE(t.min().has_value());
  for (std::uint64_t v : {900u, 5u, 30000u, 77u}) t.insert(v);
  EXPECT_EQ(t.min(), std::optional<std::uint64_t>(5));
  EXPECT_EQ(t.max(), std::optional<std::uint64_t>(30000));
  t.erase(5);
  EXPECT_EQ(t.min(), std::optional<std::uint64_t>(77));
}

TEST(YFast, PropertyWidth16) { ordered_set_property_test<YFastTrie>(16, 24, 3000); }
TEST(YFast, PropertyWidth64) { ordered_set_property_test<YFastTrie>(64, 25, 1500); }

TEST(YFast, BucketsStayBounded) {
  YFastTrie t(16);
  Rng rng(26);
  for (int i = 0; i < 4000; ++i) t.insert(rng() & 0xFFFF);
  // O(n/w) buckets for n keys of width w.
  EXPECT_LE(t.bucket_count(), t.size() / 4 + 2);
  EXPECT_GE(t.bucket_count(), t.size() / (2 * 16 + 1));
}

TEST(YFast, SpaceLinear) {
  YFastTrie t(64);
  Rng rng(27);
  std::size_t n = 3000;
  for (std::size_t i = 0; i < n; ++i) t.insert(rng());
  // Linear space: well under the O(n*w) an x-fast trie would need.
  XFastTrie x(64);
  Rng rng2(27);
  for (std::size_t i = 0; i < n; ++i) x.insert(rng2());
  EXPECT_LT(t.space_words(), x.space_words() / 4);
}

TEST(TwoFattest, Definition) {
  // two_fattest(a, b] = the value in (a, b] divisible by the largest
  // power of two.
  auto brute = [](std::uint64_t a, std::uint64_t b) {
    std::uint64_t best = a + 1;
    auto tz = [](std::uint64_t x) { return x == 0 ? 64 : __builtin_ctzll(x); };
    for (std::uint64_t v = a + 1; v <= b; ++v)
      if (tz(v) > tz(best)) best = v;
    return best;
  };
  Rng rng(28);
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t a = rng.below(500);
    std::uint64_t b = a + 1 + rng.below(500);
    EXPECT_EQ(two_fattest(a, b), brute(a, b)) << a << "," << b;
  }
}

TEST(ZFast, LocateMatchesPatriciaLcp) {
  ptrie::hash::PolyHasher h(3);
  for (int scenario = 0; scenario < 3; ++scenario) {
    auto keys = scenario == 0   ? ptrie::workload::uniform_keys(150, 64, 29)
                : scenario == 1 ? ptrie::workload::caterpillar_keys(80, 6, 30)
                                : ptrie::workload::variable_length_keys(150, 8, 120, 31);
    ptrie::trie::Patricia t;
    for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
    ZFastTrie z(t, h);
    auto queries = keys;
    for (auto& q : ptrie::workload::miss_queries(80, 64, 32)) queries.push_back(q);
    for (const auto& q : queries) {
      auto [want_len, want_pos] = t.lcp(q);
      std::size_t probes = 0;
      auto [got_len, got_pos] = z.locate(q, &probes);
      EXPECT_EQ(got_len, want_len) << q.to_binary();
      EXPECT_EQ(got_pos.node, want_pos.node);
      EXPECT_EQ(got_pos.above, want_pos.above);
    }
  }
}

TEST(ZFast, LogarithmicProbes) {
  ptrie::hash::PolyHasher h(4);
  // Deep caterpillar: height ~ 600 bits; plain walk would touch ~100
  // nodes, fat binary search should need ~O(log height) probes.
  auto keys = ptrie::workload::caterpillar_keys(100, 6, 33);
  ptrie::trie::Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  ZFastTrie z(t, h);
  std::size_t total_probes = 0, n = 0;
  for (std::size_t i = 0; i < keys.size(); i += 5) {
    std::size_t probes = 0;
    z.locate(keys[i], &probes);
    total_probes += probes;
    ++n;
  }
  EXPECT_LE(total_probes, n * 16);  // ~2*log2(600) with slack
}

// ---- SecondLayerIndex: the paper's exact contract ----

struct SLModel {
  std::vector<BitString> strings;
  // Paper semantics: longest LCP with Q; among ties, the one that is not
  // an extension of another tie (i.e., the shortest).
  std::optional<BitString> query(const BitString& q) const {
    std::optional<BitString> best;
    std::size_t best_lcp = 0;
    for (const auto& s : strings) {
      std::size_t l = s.lcp(q);
      if (!best || l > best_lcp || (l == best_lcp && s.size() < best->size())) {
        if (!best || l >= best_lcp) {
          best = s;
          best_lcp = l;
        }
      }
    }
    return best;
  }
};

TEST(SecondLayer, PaperContractSmallW) {
  unsigned w = 8;
  Rng rng(34);
  for (int trial = 0; trial < 40; ++trial) {
    SecondLayerIndex idx(w);
    SLModel model;
    std::set<std::string> used;
    for (int i = 0, n = 1 + rng.below(12); i < n; ++i) {
      std::size_t len = rng.below(w);  // < w
      BitString s;
      for (std::size_t b = 0; b < len; ++b) s.push_back(rng.coin());
      if (!used.insert(s.to_binary()).second) continue;
      idx.insert(s, i);
      model.strings.push_back(s);
    }
    if (model.strings.empty()) continue;
    for (int qi = 0; qi < 30; ++qi) {
      std::size_t qlen = rng.below(w + 1);
      BitString q;
      for (std::size_t b = 0; b < qlen; ++b) q.push_back(rng.coin());
      auto got = idx.query(q);
      auto want = model.query(q);
      ASSERT_TRUE(got.has_value());
      // The paper's guarantee we rely on: the returned string has the
      // maximum LCP with q (ties may resolve to root-or-direct-child;
      // both verify downstream).
      std::size_t want_lcp = want->lcp(q);
      EXPECT_EQ(got->lcp, want_lcp) << "q=" << q.to_binary() << " got=" << got->str.to_binary()
                                    << " want=" << want->to_binary();
    }
  }
}

TEST(SecondLayer, OnPathChainReturnsDeepest) {
  // Stored: nested prefixes of one string (an on-path chain); query = the
  // full string. Must return the deepest (longest) chain member.
  unsigned w = 16;
  SecondLayerIndex idx(w);
  BitString spine = BitString::from_binary("101100111000110");
  for (std::size_t len : {0u, 3u, 7u, 12u})
    idx.insert(spine.prefix(len), len);
  auto got = idx.query(spine);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->str.size(), 12u);
  EXPECT_EQ(got->lcp, 12u);
}

TEST(SecondLayer, EraseRestoresPrevious) {
  unsigned w = 8;
  SecondLayerIndex idx(w);
  idx.insert(BitString::from_binary("101"), 1);
  idx.insert(BitString::from_binary("1011"), 2);
  BitString q = BitString::from_binary("10111111");
  EXPECT_EQ(idx.query(q)->payload, 2u);
  idx.erase(BitString::from_binary("1011"));
  EXPECT_EQ(idx.query(q)->payload, 1u);
  idx.erase(BitString::from_binary("101"));
  EXPECT_FALSE(idx.query(q).has_value());
}

TEST(SecondLayer, EmptyStringStored) {
  SecondLayerIndex idx(8);
  idx.insert(BitString(), 7);
  auto got = idx.query(BitString::from_binary("1010"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, 7u);
  EXPECT_EQ(got->lcp, 0u);
}

TEST(SecondLayer, Figure5Example) {
  // Paper Figure 5 (w = 3): padded "0" -> "011"/"000" in the y-fast trie,
  // validity vectors pick S_rem = "01" for the block root's child.
  unsigned w = 3;
  SecondLayerIndex idx(w);
  idx.insert(BitString::from_binary("01"), 42);  // the child's S_rem
  // Query S'_rem = "0" (padded to "000"/"011").
  auto got = idx.query(BitString::from_binary("0"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->str.to_binary(), "01");
  EXPECT_EQ(got->payload, 42u);
  EXPECT_EQ(got->lcp, 1u);
}

}  // namespace
