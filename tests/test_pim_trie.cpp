// End-to-end PimTrie correctness against a reference Patricia trie:
// batch LCP / Insert / Delete / SubtreeQuery on several workload shapes
// and machine sizes, plus round/communication sanity checks.

#include <gtest/gtest.h>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::pim::System;
using ptrie::pimtrie::Config;
using ptrie::pimtrie::PimTrie;
using ptrie::trie::Patricia;

std::vector<std::uint64_t> iota_values(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1000 + i;
  return v;
}

Patricia reference_of(const std::vector<BitString>& keys,
                      const std::vector<std::uint64_t>& values) {
  Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], values[i]);
  return ref;
}

void check_lcp(PimTrie& pt, const Patricia& ref, const std::vector<BitString>& queries) {
  auto got = pt.batch_lcp(queries);
  ASSERT_EQ(got.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto [want, pos] = ref.lcp(queries[i]);
    (void)pos;
    EXPECT_EQ(got[i], want) << "query " << i << " = " << queries[i].to_binary();
  }
}

struct Scenario {
  const char* name;
  std::vector<BitString> keys;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"uniform64", ptrie::workload::uniform_keys(300, 64, 1)});
  out.push_back({"varlen", ptrie::workload::variable_length_keys(300, 24, 200, 2)});
  out.push_back({"shared_prefix", ptrie::workload::shared_prefix_keys(200, 300, 48, 3)});
  out.push_back({"caterpillar", ptrie::workload::caterpillar_keys(120, 9, 4)});
  return out;
}

class PimTrieScenario : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PimTrieScenario, LcpMatchesReference) {
  auto [p, scen_idx] = GetParam();
  Scenario scen = scenarios()[scen_idx];
  System sys(p, 42);
  Config cfg;
  cfg.seed = 7;
  PimTrie pt(sys, cfg);
  auto values = iota_values(scen.keys.size());
  pt.build(scen.keys, values);
  Patricia ref = reference_of(scen.keys, values);
  ASSERT_EQ(pt.key_count(), ref.key_count());

  // Stored keys: LCP == full length.
  std::vector<BitString> exact(scen.keys.begin(), scen.keys.begin() + scen.keys.size() / 2);
  check_lcp(pt, ref, exact);
  // Random misses.
  check_lcp(pt, ref, ptrie::workload::miss_queries(150, 64, 99));
  // Near hits: stored keys with flipped trailing bits.
  check_lcp(pt, ref, ptrie::workload::hot_spot_queries(scen.keys, 100, 5));
  // Prefixes of stored keys (ends on hidden nodes).
  {
    std::vector<BitString> prefixes;
    for (std::size_t i = 0; i < scen.keys.size(); i += 7)
      prefixes.push_back(scen.keys[i].prefix(scen.keys[i].size() / 2));
    check_lcp(pt, ref, prefixes);
  }
  EXPECT_EQ(pt.verify_stats().redo_rounds, 0u);
}

std::string scenario_name(const ::testing::TestParamInfo<std::tuple<std::size_t, int>>& info) {
  static const char* names[] = {"uniform64", "varlen", "shared_prefix", "caterpillar"};
  return "P" + std::to_string(std::get<0>(info.param)) + "_" + names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(Machine, PimTrieScenario,
                         ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4},
                                                              std::size_t{16}),
                                            ::testing::Values(0, 1, 2, 3)),
                         scenario_name);

TEST(PimTrieInsert, InsertThenLcpAndFind) {
  System sys(8, 43);
  Config cfg;
  cfg.seed = 11;
  PimTrie pt(sys, cfg);
  auto base = ptrie::workload::uniform_keys(200, 64, 21);
  auto values = iota_values(base.size());
  pt.build(base, values);
  Patricia ref = reference_of(base, values);

  auto extra = ptrie::workload::uniform_keys(150, 64, 22);
  std::vector<std::uint64_t> evals(extra.size());
  for (std::size_t i = 0; i < extra.size(); ++i) evals[i] = 5000 + i;
  pt.batch_insert(extra, evals);
  for (std::size_t i = 0; i < extra.size(); ++i) ref.insert(extra[i], evals[i]);
  EXPECT_EQ(pt.key_count(), ref.key_count());

  check_lcp(pt, ref, extra);
  check_lcp(pt, ref, base);
  check_lcp(pt, ref, ptrie::workload::miss_queries(100, 64, 23));
}

TEST(PimTrieInsert, OverlappingAndPrefixKeys) {
  System sys(4, 44);
  Config cfg;
  cfg.seed = 12;
  PimTrie pt(sys, cfg);
  auto base = ptrie::workload::caterpillar_keys(60, 7, 31);
  auto values = iota_values(base.size());
  pt.build(base, values);
  Patricia ref = reference_of(base, values);

  // Insert keys that extend and branch off the caterpillar.
  std::vector<BitString> extra;
  for (std::size_t i = 0; i < base.size(); i += 3) {
    BitString k = base[i];
    k.push_back(!k.bit(k.size() - 1));
    k.append(BitString::from_binary("1011"));
    extra.push_back(std::move(k));
  }
  std::vector<std::uint64_t> evals(extra.size(), 777);
  pt.batch_insert(extra, evals);
  for (std::size_t i = 0; i < extra.size(); ++i) ref.insert(extra[i], evals[i]);
  EXPECT_EQ(pt.key_count(), ref.key_count());
  check_lcp(pt, ref, extra);
  check_lcp(pt, ref, base);
}

TEST(PimTrieErase, EraseHalf) {
  System sys(8, 45);
  Config cfg;
  cfg.seed = 13;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(240, 64, 41);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);

  std::vector<BitString> victims;
  for (std::size_t i = 0; i < keys.size(); i += 2) victims.push_back(keys[i]);
  pt.batch_erase(victims);
  for (const auto& k : victims) ref.erase(k);
  EXPECT_EQ(pt.key_count(), ref.key_count());
  check_lcp(pt, ref, keys);
  check_lcp(pt, ref, ptrie::workload::miss_queries(80, 64, 42));
}

TEST(PimTrieErase, EraseAllOfSubtree) {
  System sys(4, 46);
  Config cfg;
  cfg.seed = 14;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::shared_prefix_keys(150, 120, 40, 51);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);
  pt.batch_erase(keys);
  for (const auto& k : keys) ref.erase(k);
  EXPECT_EQ(pt.key_count(), 0u);
  // After erasing everything, all LCPs should be 0 (only root remains).
  auto got = pt.batch_lcp({keys[0], keys[1]});
  EXPECT_EQ(got[0], ref.lcp(keys[0]).first);
}

TEST(PimTrieSubtree, MatchesReference) {
  System sys(8, 47);
  Config cfg;
  cfg.seed = 15;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(250, 24, 160, 61);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);

  std::vector<BitString> prefixes;
  prefixes.push_back(BitString());                     // whole set
  prefixes.push_back(keys[3].prefix(6));               // shallow prefix
  prefixes.push_back(keys[10].prefix(keys[10].size()));  // exact key
  prefixes.push_back(keys[20].prefix(keys[20].size() / 2));
  prefixes.push_back(ptrie::workload::miss_queries(1, 64, 62)[0]);  // likely miss

  auto got = pt.batch_subtree(prefixes);
  ASSERT_EQ(got.size(), prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    auto want = ref.subtree(prefixes[i]);
    ASSERT_EQ(got[i].size(), want.size()) << "prefix " << i;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[i][k].first, want[k].first);
      EXPECT_EQ(got[i][k].second, want[k].second);
    }
  }
}

TEST(PimTrieFind, PointReads) {
  System sys(4, 48);
  Config cfg;
  cfg.seed = 16;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(100, 64, 71);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  for (std::size_t i = 0; i < keys.size(); i += 11) {
    auto v = pt.find(keys[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, values[i]);
  }
  EXPECT_FALSE(pt.find(ptrie::workload::miss_queries(1, 64, 72)[0]).has_value());
}

TEST(PimTrieRounds, LcpRoundsModest) {
  System sys(16, 49);
  Config cfg;
  cfg.seed = 17;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(400, 64, 81);
  pt.build(keys, iota_values(keys.size()));
  sys.metrics().reset();
  auto queries = ptrie::workload::zipf_queries(keys, 300, 0.0, 82);
  pt.batch_lcp(queries);
  // O(log P) rounds: generous constant for the A/B/C phases.
  EXPECT_LE(sys.metrics().io_rounds(), 10u + 4u * Config::log2_ceil(16));
}

}  // namespace
