// End-to-end PimTrie correctness against a reference Patricia trie:
// batch LCP / Insert / Delete / SubtreeQuery on several workload shapes
// and machine sizes, plus round/communication sanity checks.

#include <gtest/gtest.h>

#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::pim::System;
using ptrie::pimtrie::Config;
using ptrie::pimtrie::PimTrie;
using ptrie::trie::Patricia;

std::vector<std::uint64_t> iota_values(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1000 + i;
  return v;
}

Patricia reference_of(const std::vector<BitString>& keys,
                      const std::vector<std::uint64_t>& values) {
  Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], values[i]);
  return ref;
}

void check_lcp(PimTrie& pt, const Patricia& ref, const std::vector<BitString>& queries) {
  auto got = pt.batch_lcp(queries);
  ASSERT_EQ(got.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto [want, pos] = ref.lcp(queries[i]);
    (void)pos;
    EXPECT_EQ(got[i], want) << "query " << i << " = " << queries[i].to_binary();
  }
}

struct Scenario {
  const char* name;
  std::vector<BitString> keys;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"uniform64", ptrie::workload::uniform_keys(300, 64, 1)});
  out.push_back({"varlen", ptrie::workload::variable_length_keys(300, 24, 200, 2)});
  out.push_back({"shared_prefix", ptrie::workload::shared_prefix_keys(200, 300, 48, 3)});
  out.push_back({"caterpillar", ptrie::workload::caterpillar_keys(120, 9, 4)});
  return out;
}

class PimTrieScenario : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PimTrieScenario, LcpMatchesReference) {
  auto [p, scen_idx] = GetParam();
  Scenario scen = scenarios()[scen_idx];
  System sys(p, 42);
  Config cfg;
  cfg.seed = 7;
  PimTrie pt(sys, cfg);
  auto values = iota_values(scen.keys.size());
  pt.build(scen.keys, values);
  Patricia ref = reference_of(scen.keys, values);
  ASSERT_EQ(pt.key_count(), ref.key_count());

  // Stored keys: LCP == full length.
  std::vector<BitString> exact(scen.keys.begin(), scen.keys.begin() + scen.keys.size() / 2);
  check_lcp(pt, ref, exact);
  // Random misses.
  check_lcp(pt, ref, ptrie::workload::miss_queries(150, 64, 99));
  // Near hits: stored keys with flipped trailing bits.
  check_lcp(pt, ref, ptrie::workload::hot_spot_queries(scen.keys, 100, 5));
  // Prefixes of stored keys (ends on hidden nodes).
  {
    std::vector<BitString> prefixes;
    for (std::size_t i = 0; i < scen.keys.size(); i += 7)
      prefixes.push_back(scen.keys[i].prefix(scen.keys[i].size() / 2));
    check_lcp(pt, ref, prefixes);
  }
  EXPECT_EQ(pt.verify_stats().redo_rounds, 0u);
}

std::string scenario_name(const ::testing::TestParamInfo<std::tuple<std::size_t, int>>& info) {
  static const char* names[] = {"uniform64", "varlen", "shared_prefix", "caterpillar"};
  return "P" + std::to_string(std::get<0>(info.param)) + "_" + names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(Machine, PimTrieScenario,
                         ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4},
                                                              std::size_t{16}),
                                            ::testing::Values(0, 1, 2, 3)),
                         scenario_name);

TEST(PimTrieInsert, InsertThenLcpAndFind) {
  System sys(8, 43);
  Config cfg;
  cfg.seed = 11;
  PimTrie pt(sys, cfg);
  auto base = ptrie::workload::uniform_keys(200, 64, 21);
  auto values = iota_values(base.size());
  pt.build(base, values);
  Patricia ref = reference_of(base, values);

  auto extra = ptrie::workload::uniform_keys(150, 64, 22);
  std::vector<std::uint64_t> evals(extra.size());
  for (std::size_t i = 0; i < extra.size(); ++i) evals[i] = 5000 + i;
  pt.batch_insert(extra, evals);
  for (std::size_t i = 0; i < extra.size(); ++i) ref.insert(extra[i], evals[i]);
  EXPECT_EQ(pt.key_count(), ref.key_count());

  check_lcp(pt, ref, extra);
  check_lcp(pt, ref, base);
  check_lcp(pt, ref, ptrie::workload::miss_queries(100, 64, 23));
}

TEST(PimTrieInsert, OverlappingAndPrefixKeys) {
  System sys(4, 44);
  Config cfg;
  cfg.seed = 12;
  PimTrie pt(sys, cfg);
  auto base = ptrie::workload::caterpillar_keys(60, 7, 31);
  auto values = iota_values(base.size());
  pt.build(base, values);
  Patricia ref = reference_of(base, values);

  // Insert keys that extend and branch off the caterpillar.
  std::vector<BitString> extra;
  for (std::size_t i = 0; i < base.size(); i += 3) {
    BitString k = base[i];
    k.push_back(!k.bit(k.size() - 1));
    k.append(BitString::from_binary("1011"));
    extra.push_back(std::move(k));
  }
  std::vector<std::uint64_t> evals(extra.size(), 777);
  pt.batch_insert(extra, evals);
  for (std::size_t i = 0; i < extra.size(); ++i) ref.insert(extra[i], evals[i]);
  EXPECT_EQ(pt.key_count(), ref.key_count());
  check_lcp(pt, ref, extra);
  check_lcp(pt, ref, base);
}

TEST(PimTrieErase, EraseHalf) {
  System sys(8, 45);
  Config cfg;
  cfg.seed = 13;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(240, 64, 41);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);

  std::vector<BitString> victims;
  for (std::size_t i = 0; i < keys.size(); i += 2) victims.push_back(keys[i]);
  pt.batch_erase(victims);
  for (const auto& k : victims) ref.erase(k);
  EXPECT_EQ(pt.key_count(), ref.key_count());
  check_lcp(pt, ref, keys);
  check_lcp(pt, ref, ptrie::workload::miss_queries(80, 64, 42));
}

TEST(PimTrieErase, EraseAllOfSubtree) {
  System sys(4, 46);
  Config cfg;
  cfg.seed = 14;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::shared_prefix_keys(150, 120, 40, 51);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);
  pt.batch_erase(keys);
  for (const auto& k : keys) ref.erase(k);
  EXPECT_EQ(pt.key_count(), 0u);
  // After erasing everything, all LCPs should be 0 (only root remains).
  auto got = pt.batch_lcp({keys[0], keys[1]});
  EXPECT_EQ(got[0], ref.lcp(keys[0]).first);
}

TEST(PimTrieSubtree, MatchesReference) {
  System sys(8, 47);
  Config cfg;
  cfg.seed = 15;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(250, 24, 160, 61);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  Patricia ref = reference_of(keys, values);

  std::vector<BitString> prefixes;
  prefixes.push_back(BitString());                     // whole set
  prefixes.push_back(keys[3].prefix(6));               // shallow prefix
  prefixes.push_back(keys[10].prefix(keys[10].size()));  // exact key
  prefixes.push_back(keys[20].prefix(keys[20].size() / 2));
  prefixes.push_back(ptrie::workload::miss_queries(1, 64, 62)[0]);  // likely miss

  auto got = pt.batch_subtree(prefixes);
  ASSERT_EQ(got.size(), prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    auto want = ref.subtree(prefixes[i]);
    ASSERT_EQ(got[i].size(), want.size()) << "prefix " << i;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[i][k].first, want[k].first);
      EXPECT_EQ(got[i][k].second, want[k].second);
    }
  }
}

TEST(PimTrieFind, PointReads) {
  System sys(4, 48);
  Config cfg;
  cfg.seed = 16;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(100, 64, 71);
  auto values = iota_values(keys.size());
  pt.build(keys, values);
  for (std::size_t i = 0; i < keys.size(); i += 11) {
    auto v = pt.find(keys[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, values[i]);
  }
  EXPECT_FALSE(pt.find(ptrie::workload::miss_queries(1, 64, 72)[0]).has_value());
}

TEST(PimTrieRounds, LcpRoundsModest) {
  System sys(16, 49);
  Config cfg;
  cfg.seed = 17;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(400, 64, 81);
  pt.build(keys, iota_values(keys.size()));
  sys.metrics().reset();
  auto queries = ptrie::workload::zipf_queries(keys, 300, 0.0, 82);
  pt.batch_lcp(queries);
  // O(log P) rounds: generous constant for the A/B/C phases.
  EXPECT_LE(sys.metrics().io_rounds(), 10u + 4u * Config::log2_ceil(16));
}

// ---- Delete-path edge cases -----------------------------------------

TEST(PimTrieErase, DuplicateKeysInOneEraseBatch) {
  System sys(4, 720);
  Config cfg;
  cfg.seed = 721;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(60, 48, 722);
  pt.build(keys, iota_values(keys.size()));

  // Each victim listed three times: the batch must behave exactly like
  // a single delete of each.
  std::vector<BitString> victims;
  for (int r = 0; r < 3; ++r)
    for (std::size_t i = 0; i < 20; ++i) victims.push_back(keys[i]);
  pt.batch_erase(victims);
  EXPECT_EQ(pt.key_count(), keys.size() - 20);
  EXPECT_EQ(pt.debug_check(), "");
  EXPECT_EQ(pt.debug_check_deep(), "");
  for (std::size_t i = 0; i < 20; ++i) EXPECT_FALSE(pt.find(keys[i]).has_value());
  for (std::size_t i = 20; i < keys.size(); ++i)
    EXPECT_TRUE(pt.find(keys[i]).has_value()) << i;
}

TEST(PimTrieErase, AbsentAndMixedDeletes) {
  System sys(4, 730);
  Config cfg;
  cfg.seed = 731;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(50, 48, 732);
  pt.build(keys, iota_values(keys.size()));

  // Absent keys (near-misses and unrelated) interleaved with present
  // ones; absent deletes must be no-ops.
  std::vector<BitString> batch;
  for (std::size_t i = 0; i < 10; ++i) batch.push_back(keys[i]);
  for (auto& m : ptrie::workload::miss_queries(15, 48, 733)) batch.push_back(m);
  for (std::size_t i = 0; i < 5; ++i) batch.push_back(keys[i].prefix(20));  // prefixes
  pt.batch_erase(batch);
  EXPECT_EQ(pt.key_count(), keys.size() - 10);
  EXPECT_EQ(pt.debug_check(), "");
  EXPECT_EQ(pt.debug_check_deep(), "");

  // Deleting only absent keys changes nothing.
  pt.batch_erase(ptrie::workload::miss_queries(20, 48, 734));
  EXPECT_EQ(pt.key_count(), keys.size() - 10);
  EXPECT_EQ(pt.debug_check(), "");
}

TEST(PimTrieErase, DeleteToEmptyAndReinsert) {
  System sys(8, 740);
  Config cfg;
  cfg.seed = 741;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(200, 16, 100, 742);
  pt.build(keys, iota_values(keys.size()));

  // Erase everything: the cascade collapses the block tree down to the
  // (kept) root block.
  pt.batch_erase(keys);
  EXPECT_EQ(pt.key_count(), 0u);
  EXPECT_EQ(pt.debug_check(), "");
  EXPECT_EQ(pt.debug_check_deep(), "");
  EXPECT_TRUE(pt.debug_collect().empty());
  EXPECT_FALSE(pt.find(keys[0]).has_value());
  EXPECT_EQ(pt.batch_lcp({keys[0]})[0], 0u);

  // Re-insert into the emptied structure and verify full content.
  pt.batch_insert(keys, iota_values(keys.size()));
  EXPECT_EQ(pt.key_count(), keys.size());
  EXPECT_EQ(pt.debug_check(), "");
  EXPECT_EQ(pt.debug_check_deep(), "");
  auto got = pt.batch_lcp(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], keys[i].size()) << i;
}

// Regression: erasing a key whose emptied child block is garbage
// collected must also refresh the surviving parent block's host-side
// space figure (the mirror stub it held is gone). Found by ptrie_fuzz
// seed 1; debug_check_deep flags the stale accounting.
TEST(PimTrieErase, GcRefreshesParentSpaceAccounting) {
  System sys(4, 750);
  Config cfg;
  cfg.seed = 751;
  PimTrie pt(sys, cfg);
  BitString chain = BitString::from_binary("000110001111111100010000111110101101"
                                           "100010001001");
  pt.build({chain}, {7});
  pt.batch_erase({chain});
  EXPECT_EQ(pt.key_count(), 0u);
  EXPECT_EQ(pt.debug_check(), "");
  EXPECT_EQ(pt.debug_check_deep(), "");
}

// Regression: subtree collection must close over the piece's meta
// entries by parent links, not storage order — incremental inserts
// append entries out of preorder. Found by ptrie_fuzz seed 1 (cluster):
// a prefix-chain key in a grandchild block vanished from the answer.
TEST(PimTrieSubtree, PrefixChainAfterInsertSplit) {
  System sys(4, 123);
  Config cfg;
  cfg.seed = 999;
  PimTrie pt(sys, cfg);
  pt.build({BitString::from_binary("00"), BitString::from_binary("0011"),
            BitString::from_binary("00111010")},
           {1, 2, 3});
  pt.batch_insert({BitString::from_binary("1")}, {4});
  auto st = pt.batch_subtree({BitString::from_binary("0")});
  ASSERT_EQ(st[0].size(), 3u);
  EXPECT_EQ(st[0][0].first.to_binary(), "00");
  EXPECT_EQ(st[0][1].first.to_binary(), "0011");
  EXPECT_EQ(st[0][2].first.to_binary(), "00111010");
  auto all = pt.batch_subtree({BitString()});
  EXPECT_EQ(all[0].size(), 4u);
}

}  // namespace
