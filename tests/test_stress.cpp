// Stress / property tests: long randomized mixed-operation sequences
// against a reference Patricia trie, across machine sizes and
// non-default configurations (tiny blocks, tiny meta pieces, shrunken
// word size, truncated fingerprints); structural invariants checked
// after every phase via debug_check/debug_collect.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "obs/env.hpp"
#include "pim/system.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

namespace {

// Iteration scale for the randomized sequences: the default keeps CI
// fast; soak runs crank it up without a rebuild (e.g.
// PTRIE_STRESS_ITERS=100 ctest -L stress).
std::size_t stress_iters() {
  return ptrie::obs::env::u64(
      "PTRIE_STRESS_ITERS", 8,
      "stress-test iterations per randomized sequence (default 8)");
}

using ptrie::core::BitString;
using ptrie::core::Rng;
using ptrie::pim::System;
using ptrie::pimtrie::Config;
using ptrie::pimtrie::PimTrie;
using ptrie::trie::Patricia;

void expect_same_content(PimTrie& pt, const std::map<std::string, std::uint64_t>& model) {
  auto all = pt.debug_collect();
  ASSERT_EQ(all.size(), model.size());
  for (const auto& [k, v] : all) {
    auto it = model.find(k.to_binary());
    ASSERT_NE(it, model.end()) << "stray key " << k.to_binary();
    EXPECT_EQ(v, it->second);
  }
}

struct StressParams {
  std::size_t p;
  Config cfg;
  const char* name;
};

class MixedOps : public ::testing::TestWithParam<int> {
 protected:
  StressParams params() const {
    StressParams sp;
    sp.cfg = Config{};
    switch (GetParam()) {
      case 0:
        sp = {8, Config{}, "default"};
        break;
      case 1: {
        Config c;
        c.kb = 16;
        c.ksmb = 4;
        c.kmb = 8;
        sp = {4, c, "tiny_pieces"};
        break;
      }
      case 2: {
        Config c;
        c.fingerprint_bits = 12;
        sp = {8, c, "small_fingerprints"};
        break;
      }
      case 3: {
        Config c;
        c.kb = 512;
        c.push_pull = 128;
        sp = {16, c, "big_blocks_small_push"};
        break;
      }
      default: {
        Config c;
        c.alpha = 0.55;
        sp = {2, c, "two_modules"};
        break;
      }
    }
    sp.cfg.seed = 1000 + GetParam();
    return sp;
  }
};

TEST_P(MixedOps, RandomizedSequence) {
  StressParams sp = params();
  System sys(sp.p, 7777 + GetParam());
  PimTrie pt(sys, sp.cfg);
  std::map<std::string, std::uint64_t> model;
  Rng rng(31337 + GetParam());

  // Pool of keys the sequence draws from (mix of shapes).
  std::vector<BitString> pool;
  for (auto& k : ptrie::workload::uniform_keys(150, 64, 9001)) pool.push_back(k);
  for (auto& k : ptrie::workload::variable_length_keys(100, 16, 120, 9002)) pool.push_back(k);
  for (auto& k : ptrie::workload::shared_prefix_keys(80, 90, 30, 9003)) pool.push_back(k);
  for (auto& k : ptrie::workload::caterpillar_keys(50, 6, 9004)) pool.push_back(k);

  // Initial build.
  {
    std::vector<BitString> keys(pool.begin(), pool.begin() + 120);
    std::vector<std::uint64_t> vals;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      vals.push_back(i);
      model[keys[i].to_binary()] = i;
    }
    pt.build(keys, vals);
  }

  const int iters = static_cast<int>(stress_iters());
  for (int step = 0; step < iters; ++step) {
    int op = static_cast<int>(rng.below(4));
    std::size_t batch = 30 + rng.below(60);
    if (op == 0) {  // insert
      std::vector<BitString> keys;
      std::vector<std::uint64_t> vals;
      for (std::size_t i = 0; i < batch; ++i) {
        const BitString& k = pool[rng.below(pool.size())];
        keys.push_back(k);
        vals.push_back(step * 1000 + i);
        model[k.to_binary()] = step * 1000 + i;
      }
      pt.batch_insert(keys, vals);
    } else if (op == 1) {  // erase
      std::vector<BitString> keys;
      for (std::size_t i = 0; i < batch; ++i) {
        const BitString& k = pool[rng.below(pool.size())];
        keys.push_back(k);
        model.erase(k.to_binary());
      }
      pt.batch_erase(keys);
    } else if (op == 2) {  // lcp probe
      std::vector<BitString> keys;
      for (std::size_t i = 0; i < batch; ++i) keys.push_back(pool[rng.below(pool.size())]);
      for (auto& k : ptrie::workload::miss_queries(20, 64, 9100 + step)) keys.push_back(k);
      auto got = pt.batch_lcp(keys);
      Patricia ref;
      for (const auto& [ks, v] : model) ref.insert(BitString::from_binary(ks), v);
      for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(got[i], ref.lcp(keys[i]).first)
            << sp.name << " step " << step << " key " << keys[i].to_binary();
    } else {  // get probe
      std::vector<BitString> keys;
      for (std::size_t i = 0; i < batch; ++i) keys.push_back(pool[rng.below(pool.size())]);
      auto got = pt.batch_get(keys);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        auto it = model.find(keys[i].to_binary());
        if (it == model.end()) {
          EXPECT_FALSE(got[i].has_value()) << keys[i].to_binary();
        } else {
          ASSERT_TRUE(got[i].has_value()) << keys[i].to_binary();
          EXPECT_EQ(*got[i], it->second);
        }
      }
    }
    ASSERT_EQ(pt.key_count(), model.size()) << sp.name << " after step " << step;
    ASSERT_EQ(pt.debug_check(), "") << sp.name << " after step " << step;
  }
  expect_same_content(pt, model);
}

std::string config_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"default", "tiny_pieces", "small_fingerprints",
                                "big_blocks_small_push", "two_modules"};
  return names[info.param];
}
INSTANTIATE_TEST_SUITE_P(Configs, MixedOps, ::testing::Values(0, 1, 2, 3, 4), config_name);

TEST(Stress, GrowShrinkGrow) {
  // Repeated full-churn cycles: grow to 600 keys, erase to near-empty,
  // regrow — exercising block re-partitioning, cascade deletion, piece
  // splits and master updates end to end.
  System sys(8, 555);
  Config cfg;
  cfg.seed = 556;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(600, 24, 140, 557);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;

  pt.build({keys.begin(), keys.begin() + 100},
           {vals.begin(), vals.begin() + 100});
  // Default two cycles; PTRIE_STRESS_ITERS scales churn depth (1 cycle
  // per 4 iterations, minimum 2).
  const int cycles = std::max<int>(2, static_cast<int>(stress_iters() / 4));
  for (int cycle = 0; cycle < cycles; ++cycle) {
    pt.batch_insert({keys.begin() + 50, keys.end()}, {vals.begin() + 50, vals.end()});
    ASSERT_EQ(pt.key_count(), keys.size());
    ASSERT_EQ(pt.debug_check(), "");
    pt.batch_erase({keys.begin() + 50, keys.end()});
    ASSERT_EQ(pt.key_count(), 50u);
    ASSERT_EQ(pt.debug_check(), "");
    auto got = pt.batch_lcp({keys[10], keys[200]});
    Patricia ref;
    for (std::size_t i = 0; i < 50; ++i) ref.insert(keys[i], vals[i]);
    EXPECT_EQ(got[0], ref.lcp(keys[10]).first);
    EXPECT_EQ(got[1], ref.lcp(keys[200]).first);
  }
}

TEST(Stress, DuplicateKeysInOneBatch) {
  System sys(4, 600);
  Config cfg;
  cfg.seed = 601;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(50, 48, 602);
  std::vector<BitString> dup;
  std::vector<std::uint64_t> dvals;
  for (int r = 0; r < 3; ++r)
    for (std::size_t i = 0; i < keys.size(); ++i) {
      dup.push_back(keys[i]);
      dvals.push_back(r * 100 + i);
    }
  pt.build(dup, dvals);
  EXPECT_EQ(pt.key_count(), keys.size());
  // Last write wins.
  auto got = pt.batch_get({keys[0], keys[49]});
  EXPECT_EQ(got[0], std::optional<std::uint64_t>(200u));
  EXPECT_EQ(got[1], std::optional<std::uint64_t>(249u));
}

TEST(Stress, EmptyAndDegenerateBatches) {
  System sys(4, 610);
  Config cfg;
  cfg.seed = 611;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::uniform_keys(40, 32, 612);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  pt.build(keys, vals);

  EXPECT_TRUE(pt.batch_lcp({}).empty());
  pt.batch_insert({}, {});
  pt.batch_erase({});
  EXPECT_EQ(pt.key_count(), keys.size());

  // Empty-string key round trip.
  pt.batch_insert({BitString()}, {99});
  EXPECT_EQ(pt.find(BitString()), std::optional<std::uint64_t>(99));
  auto lcp = pt.batch_lcp({BitString()});
  EXPECT_EQ(lcp[0], 0u);
  pt.batch_erase({BitString()});
  EXPECT_FALSE(pt.find(BitString()).has_value());
  EXPECT_EQ(pt.debug_check(), "");
}

TEST(Stress, BatchGetLargeMixed) {
  System sys(8, 620);
  Config cfg;
  cfg.seed = 621;
  PimTrie pt(sys, cfg);
  auto keys = ptrie::workload::variable_length_keys(400, 16, 100, 622);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = 7 * i;
  pt.build(keys, vals);
  std::vector<BitString> probes = keys;
  for (auto& m : ptrie::workload::miss_queries(200, 64, 623)) probes.push_back(m);
  auto got = pt.batch_get(probes);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << i;
    EXPECT_EQ(*got[i], 7 * i);
  }
  // Misses may rarely coincide with stored keys; verify against reference.
  Patricia ref;
  for (std::size_t i = 0; i < keys.size(); ++i) ref.insert(keys[i], 7 * i);
  for (std::size_t i = keys.size(); i < probes.size(); ++i)
    EXPECT_EQ(got[i].has_value(), ref.find(probes[i]).has_value());
}

}  // namespace
