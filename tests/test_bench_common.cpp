// bench/common.hpp histogram helpers: the log2 bucket scheme must carry
// an explicit, complete bound schema — bucket 0 is the exact-zero bucket
// (a 0-valued sample may not vanish or land in a positive bucket), the
// remaining bounds are log2-spaced through the max sample, and the
// counts always partition the sample set.

#include <gtest/gtest.h>

#include <vector>

#include "../bench/common.hpp"

namespace {

TEST(BenchCommon, Log2BucketsEmptyInput) {
  std::vector<double> le;
  std::vector<std::size_t> count;
  bench::log2_buckets({}, &le, &count);
  EXPECT_TRUE(le.empty());
  EXPECT_TRUE(count.empty());
}

TEST(BenchCommon, Log2BucketsZeroSamplesLandInBucketZero) {
  std::vector<double> le;
  std::vector<std::size_t> count;
  bench::log2_buckets({0.0, 0.0, 0.0}, &le, &count);
  ASSERT_GE(le.size(), 1u);
  EXPECT_EQ(le[0], 0.0);
  EXPECT_EQ(count[0], 3u);
  std::size_t sum = 0;
  for (std::size_t c : count) sum += c;
  EXPECT_EQ(sum, 3u);
}

TEST(BenchCommon, Log2BucketsPartitionMixedSamples) {
  // 0 -> bucket 0 (le 0); 0.5, 1 -> (0,1]; 1.5 -> (1,2]; 4 -> (2,4].
  std::vector<double> le;
  std::vector<std::size_t> count;
  bench::log2_buckets({0.0, 0.5, 1.0, 1.5, 4.0}, &le, &count);
  ASSERT_EQ(le.size(), 4u);
  EXPECT_EQ(le[0], 0.0);
  EXPECT_EQ(le[1], 1.0);
  EXPECT_EQ(le[2], 2.0);
  EXPECT_EQ(le[3], 4.0);
  ASSERT_EQ(count.size(), 4u);
  EXPECT_EQ(count[0], 1u);
  EXPECT_EQ(count[1], 2u);
  EXPECT_EQ(count[2], 1u);
  EXPECT_EQ(count[3], 1u);
}

TEST(BenchCommon, Log2BucketsBoundsCoverMaxAndCountsSum) {
  std::vector<double> vals;
  for (int i = 0; i < 200; ++i) vals.push_back(double(i) * 3.7);
  std::sort(vals.begin(), vals.end());
  std::vector<double> le;
  std::vector<std::size_t> count;
  bench::log2_buckets(vals, &le, &count);
  ASSERT_EQ(le.size(), count.size());
  ASSERT_GE(le.size(), 2u);
  // Bounds: exact-zero bucket, then strictly doubling powers of two,
  // ending at or past the max sample.
  EXPECT_EQ(le[0], 0.0);
  EXPECT_EQ(le[1], 1.0);
  for (std::size_t b = 2; b < le.size(); ++b) EXPECT_EQ(le[b], 2.0 * le[b - 1]);
  EXPECT_GE(le.back(), vals.back());
  EXPECT_LT(le.back() / 2.0, vals.back());  // no trailing empty decades
  // Counts partition the samples, and each sample is within its bucket.
  std::size_t sum = 0;
  for (std::size_t c : count) sum += c;
  EXPECT_EQ(sum, vals.size());
  std::size_t vi = 0;
  for (std::size_t b = 0; b < le.size(); ++b) {
    for (std::size_t k = 0; k < count[b]; ++k, ++vi) {
      EXPECT_LE(vals[vi], le[b]);
      if (b > 0) EXPECT_GT(vals[vi], le[b - 1]);
    }
  }
}

TEST(BenchCommon, HistogramKeepsZeroSampleAndSchema) {
  bench::histogram("test/zero_edge", {0.0, 2.0, 5.0}, "us");
  const auto& h = bench::detail::Reporter::instance().hists.back();
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.min, 0.0);
  EXPECT_EQ(h.max, 5.0);
  ASSERT_EQ(h.bucket_le.size(), h.bucket_count.size());
  ASSERT_GE(h.bucket_le.size(), 2u);
  EXPECT_EQ(h.bucket_le[0], 0.0);
  EXPECT_EQ(h.bucket_count[0], 1u);  // the zero sample, explicitly
  std::size_t sum = 0;
  for (std::size_t c : h.bucket_count) sum += c;
  EXPECT_EQ(sum, 3u);
}

}  // namespace
