// Unit tests for the differential fuzz harness itself (src/check):
// oracle semantics against brute force, schedule generation and text
// round-trip, deterministic replay, shrinking, and the test-only
// corruption hooks that prove the invariant checks actually fire.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/adapters.hpp"
#include "check/oracle.hpp"
#include "check/runner.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "core/rng.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::core::Rng;
using namespace ptrie::check;

// ---- Oracle ---------------------------------------------------------

std::size_t brute_lcp(const std::vector<BitString>& keys, const BitString& q) {
  std::size_t best = 0;
  for (const auto& k : keys) best = std::max(best, k.lcp(q));
  return best;
}

TEST(Oracle, MatchesBruteForce) {
  Rng rng(77);
  std::vector<BitString> keys;
  Oracle o;
  for (int i = 0; i < 200; ++i) {
    std::size_t len = 1 + rng.below(40);
    BitString k;
    for (std::size_t b = 0; b < len; ++b) k.push_back(rng.coin());
    if (o.insert(k, i)) keys.push_back(k);
  }
  ASSERT_EQ(o.size(), keys.size());

  for (int i = 0; i < 200; ++i) {
    std::size_t len = rng.below(44);
    BitString q;
    for (std::size_t b = 0; b < len; ++b) q.push_back(rng.coin());
    EXPECT_EQ(o.lcp(q), brute_lcp(keys, q)) << q.to_binary();

    auto st = o.subtree(q);
    std::vector<BitString> want;
    for (const auto& k : keys)
      if (q.is_prefix_of(k)) want.push_back(k);
    std::sort(want.begin(), want.end());
    ASSERT_EQ(st.size(), want.size()) << q.to_binary();
    for (std::size_t j = 0; j < st.size(); ++j) EXPECT_EQ(st[j].first, want[j]);
  }
}

TEST(Oracle, BatchSemantics) {
  Oracle o;
  BitString k = BitString::from_binary("1010");
  EXPECT_TRUE(o.insert(k, 1));
  EXPECT_FALSE(o.insert(k, 2));  // duplicate: overwrite, not fresh
  EXPECT_EQ(o.find(k).value(), 2u);
  EXPECT_FALSE(o.erase(BitString::from_binary("0000")));  // absent: no-op
  EXPECT_TRUE(o.erase(k));
  EXPECT_FALSE(o.erase(k));  // second delete of same key: no-op
  EXPECT_EQ(o.size(), 0u);
  EXPECT_EQ(o.lcp(k), 0u);  // empty set
}

TEST(Oracle, LcpInRangeWindows) {
  Oracle o;
  for (const char* s : {"0001", "0100", "1000", "1100"})
    o.insert(BitString::from_binary(s), 1);
  BitString q = BitString::from_binary("0101");
  BitString lo = BitString::from_binary("1");
  // Unwindowed: best match is 0100 (lcp 3).
  EXPECT_EQ(o.lcp(q), 3u);
  // Restricted to keys >= 1...: only 1000/1100 visible (lcp 0).
  EXPECT_EQ(o.lcp_in_range(q, &lo, nullptr), 0u);
  BitString hi = BitString::from_binary("0011");
  // Restricted to keys < 0011: only 0001 visible (lcp 1).
  EXPECT_EQ(o.lcp_in_range(q, nullptr, &hi), 1u);
}

// ---- Schedule generation and serialization --------------------------

TEST(Schedule, GenerationIsDeterministic) {
  GenParams gp;
  gp.n_batches = 12;
  Schedule a = make_schedule("pimtrie", "cluster", 42, gp);
  Schedule b = make_schedule("pimtrie", "cluster", 42, gp);
  EXPECT_EQ(serialize(a), serialize(b));
  Schedule c = make_schedule("pimtrie", "cluster", 43, gp);
  EXPECT_NE(serialize(a), serialize(c));
  EXPECT_EQ(a.batches.size(), 12u);
  EXPECT_GT(a.op_count(), a.init_keys.size());
}

TEST(Schedule, TextRoundTrip) {
  for (const char* profile : {"uniform", "zipf", "cluster", "dup"}) {
    GenParams gp;
    gp.n_batches = 8;
    Schedule s = make_schedule("radix", profile, 9, gp);
    std::string text = serialize(s);
    Schedule back;
    std::string err;
    ASSERT_TRUE(parse(text, &back, &err)) << err;
    EXPECT_EQ(serialize(back), text) << profile;
    EXPECT_EQ(back.structure, s.structure);
    EXPECT_EQ(back.p, s.p);
    EXPECT_EQ(back.op_count(), s.op_count());
  }
}

TEST(Schedule, ParseRejectsGarbage) {
  Schedule s;
  std::string err;
  EXPECT_FALSE(parse("not a schedule", &s, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse("ptrie-fuzz-schedule v1\nstructure pimtrie\n", &s, &err));
}

// ---- Runner ---------------------------------------------------------

TEST(Runner, AllStructuresPassOneSeed) {
  GenParams gp;
  gp.n_batches = 8;
  gp.batch_cap = 10;
  gp.init_n = 32;
  for (const char* st : {"pimtrie", "radix", "xfast", "range"}) {
    Schedule s = make_schedule(st, "uniform", 3, gp);
    RunResult r = run_schedule(s);
    EXPECT_TRUE(r.ok) << st << ": " << r.error;
    EXPECT_GT(r.checks, 0u);
  }
}

TEST(Runner, ReplayIsDeterministic) {
  GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 12;
  gp.init_n = 32;
  Schedule s = make_schedule("pimtrie", "zipf", 7, gp);
  RunResult a = run_schedule(s);
  RunResult b = run_schedule(s);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.max_batch_rounds, b.max_batch_rounds);
  EXPECT_DOUBLE_EQ(a.max_imbalance, b.max_imbalance);
}

// ---- Corruption hooks and shrinking ---------------------------------

// The acceptance test for the whole harness: a deliberately broken
// invariant must (a) be detected, (b) shrink to a minimal schedule that
// (c) still fails, and (d) survive a serialize/parse round-trip.
TEST(Shrink, CorruptionDetectedAndMinimized) {
  GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 10;
  gp.init_n = 32;
  for (int kind : {0, 1}) {
    Schedule s = make_schedule("pimtrie", "uniform", 11, gp);
    CheckOptions opt;
    opt.corrupt_kind = kind;
    RunResult r = run_schedule(s, opt);
    ASSERT_FALSE(r.ok) << "corruption kind " << kind << " went undetected";

    ShrinkStats st;
    Schedule min = shrink(s, opt, /*max_runs=*/120, &st);
    EXPECT_LE(min.op_count(), s.op_count());
    EXPECT_GT(st.accepted, 0u);
    RunResult mr = run_schedule(min, opt);
    EXPECT_FALSE(mr.ok) << "minimized schedule no longer fails";

    Schedule back;
    std::string err;
    ASSERT_TRUE(parse(serialize(min), &back, &err)) << err;
    RunResult br = run_schedule(back, opt);
    EXPECT_FALSE(br.ok) << "round-tripped schedule no longer fails";
  }
}

TEST(Shrink, PassingScheduleIsReturnedUnchanged) {
  GenParams gp;
  gp.n_batches = 4;
  gp.batch_cap = 6;
  gp.init_n = 16;
  Schedule s = make_schedule("range", "uniform", 2, gp);
  ShrinkStats st;
  Schedule out = shrink(s, CheckOptions{}, /*max_runs=*/50, &st);
  EXPECT_EQ(serialize(out), serialize(s));
}

// ---- Ordered-op schedules -------------------------------------------

// Ordered-biased generation must emit the new op kinds with aligned
// parallel arrays (keys2 for range his, aux for limits/ks) and survive
// the text round-trip byte-identically — the replay format is the
// contract failing seeds are shipped in.
TEST(Schedule, OrderedRoundTripIsExact) {
  for (const char* profile : {"uniform", "zipf", "cluster", "dup"}) {
    GenParams gp;
    gp.n_batches = 16;
    gp.batch_cap = 8;
    gp.init_n = 20;
    gp.ordered_bias = true;
    Schedule s = make_schedule("pimtrie", profile, 21, gp);
    std::size_t ordered = 0;
    for (const auto& b : s.batches) {
      if (b.op == OpKind::kPred || b.op == OpKind::kSucc) ++ordered;
      if (b.op == OpKind::kRange) {
        ++ordered;
        ASSERT_EQ(b.keys2.size(), b.keys.size());
        ASSERT_EQ(b.aux.size(), b.keys.size());
      }
      if (b.op == OpKind::kTopK) {
        ++ordered;
        ASSERT_EQ(b.aux.size(), b.keys.size());
      }
    }
    EXPECT_GT(ordered, s.batches.size() / 2) << profile;
    std::string text = serialize(s);
    Schedule back;
    std::string err;
    ASSERT_TRUE(parse(text, &back, &err)) << err;
    EXPECT_EQ(serialize(back), text) << profile;
  }
}

// Regression for the lossy dump/replay round-trip: parse() stops at the
// first `end` marker, so a multi-schedule dump used to replay only its
// first schedule. parse_all() must recover every schedule (fault tokens
// included) and re-serializing them must reproduce the dump byte for
// byte — dump -> parse_all -> dump is a fixpoint.
TEST(Schedule, ParseAllIsAFixpointOnMultiScheduleDumps) {
  GenParams gp;
  gp.n_batches = 5;
  gp.batch_cap = 6;
  gp.init_n = 12;
  gp.ordered_bias = true;
  std::string dump;
  std::size_t n = 0;
  for (const char* stname : {"pimtrie", "serve", "xfast"}) {
    Schedule s = make_schedule(stname, "uniform", 30 + n, gp);
    if (n == 1) s.faults = "noise@seed=9,rate=0.05,count=2";
    dump += serialize(s);
    ++n;
  }
  std::vector<Schedule> all;
  std::string err;
  ASSERT_TRUE(parse_all(dump, &all, &err)) << err;
  ASSERT_EQ(all.size(), n);
  EXPECT_EQ(all[1].faults, "noise@seed=9,rate=0.05,count=2");
  std::string again;
  for (const auto& s : all) again += serialize(s);
  EXPECT_EQ(again, dump);

  // The old single-schedule parse() only sees the first schedule —
  // that is exactly the lossiness parse_all exists to fix.
  Schedule first;
  ASSERT_TRUE(parse(dump, &first, &err)) << err;
  EXPECT_EQ(serialize(first), serialize(all[0]));
}

// Ordered-biased schedules pass the full differential run (oracle,
// invariants, round envelopes) on every structure.
TEST(Runner, OrderedAllStructuresPassOneSeed) {
  GenParams gp;
  gp.n_batches = 8;
  gp.batch_cap = 8;
  gp.init_n = 32;
  gp.ordered_bias = true;
  for (const char* stname : {"pimtrie", "radix", "xfast", "range", "serve"}) {
    Schedule s = make_schedule(stname, "cluster", 6, gp);
    RunResult r = run_schedule(s);
    EXPECT_TRUE(r.ok) << stname << ": " << r.error;
    EXPECT_GT(r.checks, 0u) << stname;
  }
}

// Shrinking an ordered schedule must keep keys2/aux aligned with keys
// while it drops op slices — a misaligned slice would crash or change
// the failure instead of minimizing it.
TEST(Shrink, OrderedScheduleShrinksAndStillFails) {
  GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 8;
  gp.init_n = 24;
  gp.ordered_bias = true;
  Schedule s = make_schedule("pimtrie", "uniform", 19, gp);
  CheckOptions opt;
  opt.corrupt_kind = 2;  // phantom insert: content diverges from oracle
  RunResult r = run_schedule(s, opt);
  ASSERT_FALSE(r.ok) << "corruption went undetected on ordered schedule";
  ShrinkStats st;
  Schedule min = shrink(s, opt, /*max_runs=*/120, &st);
  for (const auto& b : min.batches) {
    if (b.op == OpKind::kRange) {
      ASSERT_EQ(b.keys2.size(), b.keys.size());
    }
    if (b.op == OpKind::kRange || b.op == OpKind::kTopK) {
      ASSERT_EQ(b.aux.size(), b.keys.size());
    }
  }
  RunResult mr = run_schedule(min, opt);
  EXPECT_FALSE(mr.ok) << "minimized ordered schedule no longer fails";
  Schedule back;
  std::string err;
  ASSERT_TRUE(parse(serialize(min), &back, &err)) << err;
  EXPECT_FALSE(run_schedule(back, opt).ok);
}

// Phantom-insert corruption (kind >= 2) diverges structure content from
// the oracle for every adapter, not just PimTrie.
TEST(Shrink, PhantomInsertCaughtOnBaselines) {
  GenParams gp;
  gp.n_batches = 6;
  gp.batch_cap = 8;
  gp.init_n = 24;
  for (const char* stname : {"radix", "xfast", "range"}) {
    Schedule s = make_schedule(stname, "uniform", 13, gp);
    CheckOptions opt;
    opt.corrupt_kind = 2;
    RunResult r = run_schedule(s, opt);
    EXPECT_FALSE(r.ok) << stname << ": phantom insert went undetected";
  }
}

}  // namespace
