// Unit tests for the execution-backend seam (pim/backend.hpp): name
// parsing and PTRIE_BACKEND selection, exact-vs-threaded byte identity
// across PTRIE_WORKERS, wallclock cost-model monotonicity and result
// identity, and fault-plan retry/CRC accounting identical on every
// backend. The heavyweight cross-backend probe is the full differential
// runner (check::run_schedule + RunResult::digest) — the same equality
// machinery `ptrie_fuzz --backend` uses — so these tests and the fuzz
// CI lines assert the same contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/schedule.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "pim/backend.hpp"
#include "pim/cost_model.hpp"
#include "pim/fault.hpp"
#include "pim/system.hpp"

namespace {

using ptrie::core::ThreadPool;
using ptrie::pim::Backend;
using ptrie::pim::BackendKind;
using ptrie::pim::Buffer;
using ptrie::pim::CostModel;
using ptrie::pim::Module;
using ptrie::pim::System;

// ---- selection ------------------------------------------------------

TEST(Backend, NamesRoundTrip) {
  for (BackendKind k : {BackendKind::kExact, BackendKind::kWallclock, BackendKind::kThreaded}) {
    auto parsed = ptrie::pim::parse_backend(ptrie::pim::backend_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ptrie::pim::parse_backend("").has_value());
  EXPECT_FALSE(ptrie::pim::parse_backend("Exact").has_value());  // case-sensitive
  EXPECT_FALSE(ptrie::pim::parse_backend("gpu").has_value());
}

TEST(Backend, EnvSelectionAndRejection) {
  ASSERT_EQ(unsetenv("PTRIE_BACKEND"), 0);
  EXPECT_EQ(ptrie::pim::backend_from_env(), BackendKind::kExact);
  ASSERT_EQ(setenv("PTRIE_BACKEND", "wallclock", 1), 0);
  EXPECT_EQ(ptrie::pim::backend_from_env(), BackendKind::kWallclock);
  // A typo must fail loudly, not silently run exact: every wall-clock
  // number downstream would be zeros.
  ASSERT_EQ(setenv("PTRIE_BACKEND", "wallclok", 1), 0);
  try {
    (void)ptrie::pim::backend_from_env();
    FAIL() << "bad PTRIE_BACKEND must throw";
  } catch (const ptrie::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("PTRIE_BACKEND"), std::string::npos) << e.what();
  }
  ASSERT_EQ(unsetenv("PTRIE_BACKEND"), 0);
}

TEST(Backend, SystemReportsItsBackend) {
  System sys(4, 7, BackendKind::kThreaded);
  EXPECT_EQ(sys.backend_kind(), BackendKind::kThreaded);
  EXPECT_STREQ(sys.backend().name(), "threaded");
  sys.set_backend(BackendKind::kWallclock);
  EXPECT_EQ(sys.backend_kind(), BackendKind::kWallclock);
}

// ---- wallclock cost model -------------------------------------------

TEST(Backend, CostModelIsMonotone) {
  CostModel m;
  std::uint64_t probes[] = {0, 1, 7, 64, 4096, 1u << 20};
  for (std::uint64_t w1 : probes)
    for (std::uint64_t k1 : probes)
      for (std::uint64_t w2 : probes)
        for (std::uint64_t k2 : probes)
          if (w2 >= w1 && k2 >= k1)
            EXPECT_GE(m.round_ns(w2, k2), m.round_ns(w1, k1))
                << w1 << "," << k1 << " -> " << w2 << "," << k2;
  // An all-idle round is skipped by System and never charged; a launched
  // round always pays at least the fixed launch+sync latency.
  EXPECT_GE(m.round_ns(0, 0), m.round_latency_ns);
}

TEST(Backend, WallclockChargesRoundsExactDoesNot) {
  System exact(4, 7, BackendKind::kExact);
  System wall(4, 7, BackendKind::kWallclock);
  auto probe = [](System& sys) {
    std::vector<Buffer> to(4);
    to[1] = {10, 20, 30};
    to[3] = {7};
    return sys.round("probe", std::move(to), [](Module& m, Buffer in) {
      m.work(in.size());
      return in;
    });
  };
  EXPECT_EQ(probe(exact), probe(wall));  // identical execution...
  EXPECT_EQ(exact.metrics().modelled_ns(), 0u);
  // ...but only wallclock charges time: the round's straggler moved
  // 3+3=6 words and ran 3 work units.
  CostModel m;
  EXPECT_EQ(wall.metrics().modelled_ns(), m.round_ns(6, 3));
  EXPECT_EQ(wall.metrics().rounds().back().modelled_ns, m.round_ns(6, 3));

  // An all-idle round charges nothing on any backend.
  wall.round("idle", std::vector<Buffer>(4), [](Module&, Buffer in) { return in; });
  EXPECT_EQ(wall.metrics().modelled_ns(), m.round_ns(6, 3));
}

// ---- cross-backend byte identity ------------------------------------

// Runs one generated schedule on every backend and asserts the full
// answer digest (query results, statuses, per-batch round counts,
// content snapshots) plus the model metrics agree with exact.
void expect_backends_agree(const std::string& structure, const std::string& profile,
                           std::uint64_t seed, const std::string& faults = "") {
  ptrie::check::GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 16;
  gp.init_n = 48;
  ptrie::check::Schedule s = ptrie::check::make_schedule(structure, profile, seed, gp);
  s.faults = faults;

  ptrie::check::CheckOptions opt;
  opt.backend = BackendKind::kExact;
  ptrie::check::RunResult ref = ptrie::check::run_schedule(s, opt);
  ASSERT_TRUE(ref.ok) << ref.error;

  for (BackendKind k : {BackendKind::kWallclock, BackendKind::kThreaded}) {
    opt.backend = k;
    ptrie::check::RunResult got = ptrie::check::run_schedule(s, opt);
    const char* name = ptrie::pim::backend_name(k);
    ASSERT_TRUE(got.ok) << name << ": " << got.error;
    EXPECT_EQ(got.digest, ref.digest) << name;
    EXPECT_EQ(got.ops, ref.ops) << name;
    EXPECT_EQ(got.checks, ref.checks) << name;
    EXPECT_EQ(got.rounds, ref.rounds) << name;
    EXPECT_EQ(got.max_batch_rounds, ref.max_batch_rounds) << name;
    EXPECT_EQ(got.faulted, ref.faulted) << name;
    EXPECT_EQ(got.fault_retries, ref.fault_retries) << name;
  }
}

class BackendSweep : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().set_workers(1); }
};

TEST_F(BackendSweep, ThreadedMatchesExactAcrossWorkerCounts) {
  // The threaded backend spawns its own per-module workers, but kernels
  // may still use the shared pool internally — identity must hold for
  // any PTRIE_WORKERS setting.
  for (std::size_t w : {1u, 2u, 3u, 8u}) {
    ThreadPool::instance().set_workers(w);
    expect_backends_agree("pimtrie", "zipf", 100 + w);
  }
}

TEST_F(BackendSweep, AllProfilesAgree) {
  std::uint64_t seed = 200;
  for (const char* profile : {"uniform", "zipf", "cluster", "dup"})
    expect_backends_agree("pimtrie", profile, seed++);
}

TEST_F(BackendSweep, FaultPlansRetryIdenticallyOnEveryBackend) {
  // Recoverable noise (count=2 < default retry budget 3): every injected
  // drop/corrupt is retried away, and the retry/CRC accounting — not
  // just the answers — must agree bit-for-bit across backends.
  expect_backends_agree("pimtrie", "zipf", 300, "noise@seed=41,rate=0.05,count=2");
  expect_backends_agree("pimtrie", "uniform", 301, "corrupt@module=1,count=3;retries=4");
}

TEST_F(BackendSweep, FaultStatsMatchAtSystemLevel) {
  ptrie::pim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(
      ptrie::pim::FaultPlan::parse("noise@seed=9,rate=0.3,count=1;retries=3", &plan, &err))
      << err;
  auto run = [&](BackendKind k) {
    System sys(4, 11, k);
    sys.set_fault_plan(plan);
    for (int r = 0; r < 20; ++r) {
      std::vector<Buffer> to(4);
      for (std::size_t i = 0; i < 4; ++i) to[i] = {std::uint64_t(r), i, 42};
      sys.round("p", std::move(to), [](Module& m, Buffer in) {
        m.work(in.size());
        in.push_back(in[0] + in[1]);
        return in;
      });
    }
    return sys.fault_stats();
  };
  auto ref = run(BackendKind::kExact);
  EXPECT_GT(ref.retries, 0u);  // the plan actually fired
  for (BackendKind k : {BackendKind::kWallclock, BackendKind::kThreaded}) {
    auto got = run(k);
    EXPECT_EQ(got.drops, ref.drops);
    EXPECT_EQ(got.corruptions, ref.corruptions);
    EXPECT_EQ(got.crc_mismatches, ref.crc_mismatches);
    EXPECT_EQ(got.retries, ref.retries);
    EXPECT_EQ(got.backoff_words, ref.backoff_words);
    EXPECT_EQ(got.failed_rounds, ref.failed_rounds);
  }
}

TEST(Backend, ThreadedMatchesExactMetricsSnapshot) {
  auto drive = [](BackendKind k) {
    System sys(8, 3, k);
    for (int r = 0; r < 6; ++r) {
      std::vector<Buffer> to(8);
      for (int i = 0; i <= r; ++i) to[std::size_t(i)] = Buffer(std::size_t(3 + i), 5);
      sys.round("mix", std::move(to), [](Module& m, Buffer in) {
        m.work(2 * in.size());
        Buffer out;
        for (std::uint64_t v : in) out.push_back(v * 2 + 1);
        return out;
      });
    }
    return sys.metrics().snapshot();
  };
  auto a = drive(BackendKind::kExact);
  auto b = drive(BackendKind::kThreaded);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.pim_time, b.pim_time);
  EXPECT_EQ(a.pim_work, b.pim_work);
  EXPECT_EQ(a.module_words, b.module_words);
  EXPECT_EQ(a.modelled_ns, b.modelled_ns);  // both zero: neither models time
  EXPECT_EQ(a.modelled_ns, 0u);
}

}  // namespace
