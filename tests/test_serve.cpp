// Serving front-end (src/serve): coalescing triggers, session sugar,
// concurrent clients, and — the contract the pipeline optimization
// rides on — byte-identical results and model metrics between the
// pipelined executor and sequential execution, for any PTRIE_WORKERS.
// The WorkerSweepServe suite name keeps these tests inside the TSan
// CI's `--gtest_filter=WorkerSweep*` net.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "check/runner.hpp"
#include "check/schedule.hpp"
#include "core/parallel.hpp"
#include "pimtrie/pim_trie.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

using namespace ptrie;
using core::BitString;
using core::ThreadPool;

namespace {

serve::Op to_serve_op(workload::ReqOp op) {
  return static_cast<serve::Op>(static_cast<std::uint8_t>(op));
}

struct StreamResult {
  std::vector<std::size_t> lcps;
  std::vector<std::uint64_t> gets;  // ~0 = miss
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtrees;
  std::uint64_t rounds = 0, words = 0, pim_time = 0;
  std::vector<std::pair<BitString, std::uint64_t>> contents;

  bool operator==(const StreamResult& o) const {
    return lcps == o.lcps && gets == o.gets && subtrees == o.subtrees &&
           rounds == o.rounds && words == o.words && pim_time == o.pim_time &&
           contents == o.contents;
  }
};

// Builds a fresh trie, replays `reqs` through a Server (single-threaded
// submission, size-only batch closing -> deterministic batch
// composition), and captures every answer plus the model-metric deltas
// and the final trie contents.
StreamResult replay_stream(const std::vector<workload::Request>& reqs,
                           const std::vector<BitString>& keys, serve::Server::Options opt) {
  pim::System sys(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 11;
  pimtrie::PimTrie trie(sys, cfg);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;
  trie.build(keys, vals);

  auto before = sys.metrics().snapshot();
  StreamResult r;
  {
    serve::Server server(trie, opt);
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(reqs.size());
    for (const auto& q : reqs)
      futs.push_back(server.submit(to_serve_op(q.op), q.key, q.value));
    server.drain();
    server.stop();
    for (auto& f : futs) {
      serve::Response resp = f.get();
      switch (resp.op) {
        case serve::Op::kLcp: r.lcps.push_back(resp.lcp); break;
        case serve::Op::kGet: r.gets.push_back(resp.value.value_or(~0ull)); break;
        case serve::Op::kSubtree: r.subtrees.push_back(std::move(resp.subtree)); break;
        default: break;
      }
    }
  }
  auto after = sys.metrics().snapshot();
  r.rounds = after.rounds - before.rounds;
  r.words = after.words - before.words;
  r.pim_time = after.pim_time - before.pim_time;
  r.contents = trie.debug_collect();
  std::sort(r.contents.begin(), r.contents.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return r;
}

class WorkerSweepServe : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().set_workers(1); }
};

}  // namespace

// The tentpole contract: for a fixed batch composition, the pipelined
// executor (prepare k+1 overlapped with execute k, prep on its own
// thread) produces byte-identical answers, model metrics, and final
// trie contents to sequential prepare+execute — at PTRIE_WORKERS 1, 4,
// and the hardware count, and with the preparation stage either serial
// or sharing the worker pool with the executor.
TEST_F(WorkerSweepServe, PipelinedMatchesSequentialAcrossWorkerCounts) {
  auto keys = workload::uniform_keys(400, 64, 31);
  workload::MixProfile mix;
  auto reqs = workload::request_stream(keys, 240, mix, 32);

  serve::Server::Options base;
  base.max_batch = 64;
  base.max_delay = std::chrono::hours(2);  // size/flush closes only

  serve::Server::Options seq = base;
  seq.pipelined = false;
  ThreadPool::instance().set_workers(1);
  StreamResult want = replay_stream(reqs, keys, seq);
  ASSERT_FALSE(want.lcps.empty());
  ASSERT_FALSE(want.gets.empty());
  ASSERT_GT(want.rounds, 0u);

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  for (std::size_t w : {std::size_t(1), std::size_t(4), hw}) {
    for (bool parallel_prepare : {false, true}) {
      ThreadPool::instance().set_workers(w);
      serve::Server::Options pipe = base;
      pipe.pipelined = true;
      pipe.parallel_prepare = parallel_prepare;
      StreamResult got = replay_stream(reqs, keys, pipe);
      EXPECT_TRUE(got == want) << "divergence at workers=" << w
                               << " parallel_prepare=" << parallel_prepare;
    }
  }
}

// Sequential mode must itself be worker-count invariant (the pipeline
// comparison above would not catch a bug common to both paths).
TEST_F(WorkerSweepServe, SequentialInvariantAcrossWorkerCounts) {
  auto keys = workload::uniform_keys(300, 64, 41);
  workload::MixProfile mix;
  auto reqs = workload::request_stream(keys, 160, mix, 42);
  serve::Server::Options seq;
  seq.max_batch = 32;
  seq.max_delay = std::chrono::hours(2);
  seq.pipelined = false;

  ThreadPool::instance().set_workers(1);
  StreamResult want = replay_stream(reqs, keys, seq);
  for (std::size_t w : {std::size_t(2), std::size_t(4)}) {
    ThreadPool::instance().set_workers(w);
    EXPECT_TRUE(replay_stream(reqs, keys, seq) == want) << "workers=" << w;
  }
}

TEST(ServeCoalescer, ClosesOnSizeTrigger) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(64, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 8;
  opt.max_delay = std::chrono::hours(2);
  serve::Server server(trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 20; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, keys[i % keys.size()]));
  server.drain();
  auto st = server.stats();
  server.stop();
  EXPECT_EQ(st.ops, 20u);
  EXPECT_EQ(st.close_size, 2u);   // two full batches of 8
  EXPECT_EQ(st.close_flush, 1u);  // drain flushes the remaining 4
  ASSERT_EQ(st.batch_sizes.size(), 3u);
  EXPECT_EQ(st.batch_sizes[0], 8u);
  EXPECT_EQ(st.batch_sizes[1], 8u);
  EXPECT_EQ(st.batch_sizes[2], 4u);
  for (auto& f : futs) f.get();
}

TEST(ServeCoalescer, ClosesOnDeadlineWithoutFlush) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(32, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 1 << 20;  // size trigger unreachable
  opt.max_delay = std::chrono::milliseconds(2);
  serve::Server server(trie, opt);
  auto f0 = server.submit(serve::Op::kLcp, keys[0]);
  auto f1 = server.submit(serve::Op::kGet, keys[1]);
  // No flush: only the deadline can close the batch.
  EXPECT_EQ(f0.get().lcp, keys[0].size());
  EXPECT_EQ(f1.get().value.value_or(0), 1u);
  auto st = server.stats();
  server.stop();
  EXPECT_GE(st.close_deadline, 1u);
  EXPECT_EQ(st.close_flush, 0u);
}

TEST(ServeSession, RoundTripMatchesDirectTrie) {
  auto keys = workload::uniform_keys(200, 64, 17);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;

  pim::System sys_direct(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 4;
  pimtrie::PimTrie direct(sys_direct, cfg);
  direct.build(keys, vals);

  pim::System sys_srv(16, 5);
  pimtrie::PimTrie served(sys_srv, cfg);
  served.build(keys, vals);
  serve::Server server(served);
  auto session = server.session();

  auto fresh = workload::uniform_keys(8, 64, 99);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    session.insert(fresh[i], 1000 + i).get();
    ASSERT_EQ(session.get(fresh[i]).get().value.value_or(0), 1000 + i);
  }
  direct.batch_insert(fresh, [&] {
    std::vector<std::uint64_t> v;
    for (std::size_t i = 0; i < fresh.size(); ++i) v.push_back(1000 + i);
    return v;
  }());

  for (std::size_t i = 0; i < 32; ++i) {
    const BitString& k = keys[(i * 7) % keys.size()];
    EXPECT_EQ(session.lcp(k).get().lcp, direct.batch_lcp({k})[0]);
    EXPECT_EQ(session.get(k).get().value, direct.batch_get({k})[0]);
    BitString prefix = k.prefix(6);
    EXPECT_EQ(session.subtree(prefix).get().subtree, direct.batch_subtree({prefix})[0]);
  }

  session.erase(fresh[0]).get();
  EXPECT_FALSE(session.get(fresh[0]).get().value.has_value());
  server.stop();
}

TEST(ServeConcurrentClients, AnswersMatchDirect) {
  auto keys = workload::uniform_keys(300, 64, 23);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;

  pim::System sys_direct(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 6;
  pimtrie::PimTrie direct(sys_direct, cfg);
  direct.build(keys, vals);
  auto want = direct.batch_lcp(keys);

  pim::System sys_srv(16, 5);
  pimtrie::PimTrie served(sys_srv, cfg);
  served.build(keys, vals);
  serve::Server::Options opt;
  opt.max_batch = 37;  // odd size so batches straddle client boundaries
  opt.max_delay = std::chrono::microseconds(200);
  serve::Server server(served, opt);

  constexpr std::size_t kClients = 4;
  std::vector<std::future<serve::Response>> futs(keys.size());
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < keys.size(); i += kClients)
        futs[i] = server.submit(serve::Op::kLcp, keys[i]);
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(futs[i].get().lcp, want[i]);
  auto st = server.stats();
  server.stop();
  EXPECT_EQ(st.ops, keys.size());
  EXPECT_GT(st.mean_batch(), 1.0);
}

TEST(ServeOrder, EpochGroupingVsStrictOrder) {
  auto keys = workload::uniform_keys(64, 64, 53);
  std::vector<std::uint64_t> vals(keys.size(), 7);

  for (bool strict : {false, true}) {
    pim::System sys(8, 3);
    pimtrie::Config cfg;
    cfg.seed = 8;
    pimtrie::PimTrie trie(sys, cfg);
    trie.build(keys, vals);

    serve::Server::Options opt;
    opt.max_batch = 1 << 20;
    opt.max_delay = std::chrono::hours(2);
    opt.strict_order = strict;
    serve::Server server(trie, opt);
    // One batch containing get(k) submitted BEFORE erase(k): strict
    // arrival order answers the get from the pre-erase state; epoch
    // grouping runs writes first, so the get misses.
    auto get_f = server.submit(serve::Op::kGet, keys[0]);
    auto erase_f = server.submit(serve::Op::kErase, keys[0]);
    server.flush();
    server.drain();
    erase_f.get();
    if (strict)
      EXPECT_EQ(get_f.get().value.value_or(0), 7u);
    else
      EXPECT_FALSE(get_f.get().value.has_value());
    server.stop();
  }
}

// The fuzz harness's serve adapter: schedules driven through the
// serving front-end must pass the same oracle, invariant, and envelope
// checks as the direct PimTrie adapter.
TEST(ServeFuzzAdapter, ScheduleSmoke) {
  check::GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 10;
  gp.init_n = 32;
  check::CheckOptions opt;
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto sched = check::make_schedule("serve", seed % 2 ? "zipf" : "uniform", seed, gp);
    auto res = check::run_schedule(sched, opt);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
    EXPECT_GT(res.checks, 0u);
  }
}
